// Ablation for the paper's section 5: vertex addressing strategies.
//
// Conventional frameworks resolve a message's recipient through a hashmap
// from vertex id to location — "additional memory accesses, grows the
// memory footprint and exposes bad data locality". iPregel's semantic
// enrichment makes the id the location: direct mapping (slot == id),
// offset mapping (one subtraction), desolate memory (direct mapping bought
// with a few wasted slots). All three should deliver messages at
// indistinguishable cost; the hashmap should be measurably slower and
// carry tens of bytes of index per vertex.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <unordered_map>
#include <vector>

#include "graph/types.hpp"
#include "runtime/rng.hpp"

namespace {

using ipregel::graph::vid_t;
using ipregel::runtime::Xoshiro256;

constexpr std::size_t kVertices = 1 << 20;
constexpr vid_t kIdBase = 1;  // the paper's graphs start at id 1

std::vector<vid_t> make_destinations() {
  // A fixed stream of message recipients, scattered like real deliveries.
  Xoshiro256 rng(99);
  std::vector<vid_t> dst(1 << 16);
  for (auto& d : dst) {
    d = kIdBase + static_cast<vid_t>(rng.next_below(kVertices));
  }
  return dst;
}

void BM_AddressDirectEquivalent(benchmark::State& state) {
  // Direct & desolate mapping: slot == id, zero arithmetic. (Desolate's
  // cost is memory, not time: the wasted slots below the base.)
  const auto dst = make_destinations();
  std::vector<std::uint64_t> inbox(kVertices + kIdBase);
  for (auto _ : state) {
    for (const vid_t d : dst) {
      inbox[d] += d;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dst.size()));
}

void BM_AddressOffset(benchmark::State& state) {
  // Offset mapping: slot = id - base — "a marginal overhead".
  const auto dst = make_destinations();
  std::vector<std::uint64_t> inbox(kVertices);
  const vid_t base = kIdBase;
  for (auto _ : state) {
    for (const vid_t d : dst) {
      inbox[d - base] += d;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dst.size()));
}

void BM_AddressHashmap(benchmark::State& state) {
  // The conventional layer: id -> location through an unordered_map.
  const auto dst = make_destinations();
  std::vector<std::uint64_t> inbox(kVertices);
  std::unordered_map<vid_t, std::uint32_t> index;
  index.reserve(kVertices);
  for (vid_t id = 0; id < kVertices; ++id) {
    index.emplace(id + kIdBase, id);
  }
  for (auto _ : state) {
    for (const vid_t d : dst) {
      inbox[index.find(d)->second] += d;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(dst.size()));
}

BENCHMARK(BM_AddressDirectEquivalent);
BENCHMARK(BM_AddressOffset);
BENCHMARK(BM_AddressHashmap);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "section 5 memory accounting at |V| = %zu:\n"
      "  direct/offset mapping index: 0 bytes\n"
      "  desolate memory waste at id base %u: %zu bytes (one slot per "
      "skipped id — \"a reasonable memory sacrifice\")\n"
      "  hashmap index (~48 B/entry): ~%zu MB\n\n",
      kVertices, kIdBase, static_cast<std::size_t>(kIdBase) * 8,
      kVertices * 48 / 1'000'000);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
