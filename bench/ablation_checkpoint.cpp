// Checkpoint-overhead ablation: what does fault tolerance cost per
// superstep, and how much cheaper is the lightweight (values-only) mode
// than the heavyweight (full-state) one?
//
// Mirrors FTPregel's headline measurement — its lightweight checkpoint is
// an order of magnitude cheaper than a full checkpoint because in-flight
// messages dominate snapshot volume. Here the gap tracks the ratio of
// (values + halted) to (values + halted + mailbox generation + frontier):
// roughly 2x for 8-byte messages over 4-byte values, and larger for
// programs with fat messages.
//
// Expected shape:
//  - off: the baseline; the checkpoint hook is a branch per barrier.
//  - heavyweight: overhead grows with mailbox volume (PageRank, whose
//    generation is always full, pays the most).
//  - lightweight: writes values + halted flags only; SSSP's near-empty
//    mailboxes make HW ~= LW on the road graph, PageRank shows the gap.

#include <filesystem>
#include <iostream>
#include <string>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "benchlib/reporting.hpp"
#include "benchlib/workloads.hpp"
#include "core/runner.hpp"
#include "ft/checkpoint.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace ipregel;         // NOLINT(google-build-using-namespace)
using namespace ipregel::bench;  // NOLINT(google-build-using-namespace)

struct Measurement {
  RunResult result;
  double per_snapshot_seconds = 0.0;
  double overhead_fraction = 0.0;  // checkpoint time / total time
};

template <typename Program>
Measurement measure(const Workload& w, Program program, VersionId version,
                    runtime::ThreadPool& pool, const std::string& dir,
                    ft::CheckpointTrigger trigger, ft::CheckpointMode mode) {
  EngineOptions options;
  options.checkpoint.trigger = trigger;
  options.checkpoint.mode = mode;
  options.checkpoint.every = 1;  // worst case: a snapshot at every barrier
  options.checkpoint.directory = dir;
  Measurement m;
  m.result = run_version(w.graph, program, version, options, &pool);
  if (m.result.checkpoints_written != 0) {
    m.per_snapshot_seconds =
        m.result.checkpoint_seconds /
        static_cast<double>(m.result.checkpoints_written);
  }
  if (m.result.seconds > 0.0) {
    m.overhead_fraction = m.result.checkpoint_seconds / m.result.seconds;
  }
  return m;
}

template <typename Program>
void rows(Table& table, const std::string& app, const Workload& w,
          Program program, VersionId version, runtime::ThreadPool& pool,
          const std::string& dir) {
  const Measurement off =
      measure(w, program, version, pool, dir, ft::CheckpointTrigger::kOff,
              ft::CheckpointMode::kHeavyweight);
  const Measurement hw =
      measure(w, program, version, pool, dir, ft::CheckpointTrigger::kEveryK,
              ft::CheckpointMode::kHeavyweight);
  const Measurement lw =
      measure(w, program, version, pool, dir, ft::CheckpointTrigger::kEveryK,
              ft::CheckpointMode::kLightweight);
  const auto per_step = [](const Measurement& m) {
    return m.result.checkpoints_written == 0
               ? std::string("-")
               : fmt_seconds(m.per_snapshot_seconds);
  };
  table.add_row({app, std::string(version_name(version)), w.name,
                 fmt_seconds(off.result.seconds),
                 fmt_seconds(hw.result.seconds), per_step(hw),
                 fmt_seconds(lw.result.seconds), per_step(lw),
                 fmt_factor(hw.per_snapshot_seconds /
                            (lw.per_snapshot_seconds > 0.0
                                 ? lw.per_snapshot_seconds
                                 : 1.0))});
}

}  // namespace

int main() {
  runtime::ThreadPool pool;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ipregel_ablation_ckpt")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  std::cout << "iPregel checkpoint-overhead ablation (threads = "
            << pool.size() << ", snapshot at every superstep barrier)\n";
  Table table("Checkpointing off vs heavyweight vs lightweight",
              {"application", "version", "graph", "off (s)", "HW (s)",
               "HW/snap", "LW (s)", "LW/snap", "HW/LW snap"});

  const Workload wiki = make_wiki_like();
  const Workload road = make_road_like();
  rows(table, "PageRank", wiki, apps::PageRank{.rounds = kPageRankRounds},
       {CombinerKind::kSpinlockPush, false}, pool, dir);
  rows(table, "PageRank", wiki, apps::PageRank{.rounds = kPageRankRounds},
       {CombinerKind::kPull, false}, pool, dir);
  rows(table, "Hashmin", wiki, apps::Hashmin{},
       {CombinerKind::kSpinlockPush, true}, pool, dir);
  rows(table, "SSSP", road, apps::Sssp{.source = kSsspSource},
       {CombinerKind::kSpinlockPush, true}, pool, dir);
  table.print();
  table.write_csv("results/bench_checkpoint.csv");

  // The adaptive trigger, for contrast: one early snapshot to measure the
  // cost, then spacing chosen so overhead stays near the 5% budget.
  Table adaptive("Adaptive trigger (5% overhead budget), heavyweight",
                 {"application", "graph", "snapshots", "supersteps",
                  "overhead"});
  const auto adaptive_row = [&](const std::string& app, const Workload& w,
                                auto program, VersionId version) {
    const Measurement m =
        measure(w, program, version, pool, dir,
                ft::CheckpointTrigger::kAdaptive,
                ft::CheckpointMode::kHeavyweight);
    adaptive.add_row({app, w.name,
                      std::to_string(m.result.checkpoints_written),
                      std::to_string(m.result.supersteps),
                      fmt_factor(m.overhead_fraction)});
  };
  adaptive_row("PageRank", wiki, apps::PageRank{.rounds = kPageRankRounds},
               {CombinerKind::kSpinlockPush, false});
  adaptive_row("SSSP", road, apps::Sssp{.source = kSsspSource},
               {CombinerKind::kSpinlockPush, true});
  adaptive.print();

  std::filesystem::remove_all(dir);
  std::cout << "\nexpected: lightweight snapshots cost a fraction of "
               "heavyweight ones (no mailbox section); the adaptive "
               "trigger writes far fewer snapshots than every-superstep "
               "while keeping overhead near its budget.\n";
  return 0;
}
