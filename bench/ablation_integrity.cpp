// Integrity-detector ablation: what does each silent-data-corruption
// detector tier cost per run, relative to a detector-free baseline?
//
//  - invariants: one O(V) reduction per barrier plus the program's
//    audit_check — cheap, and the only tier that understands the
//    *semantics* of the values.
//  - checksums: sectioned digests over values/halted/mailboxes/frontier.
//    The <= 10% acceptance bar is gated at the recommended production
//    cadence (checksum_every = 8); the every-barrier column is reported
//    but not gated, because its floor is structural: the two digest
//    passes per superstep (store after compute, verify before the next)
//    re-read the whole resident state, and on a memory-bandwidth-bound
//    core that re-read is a fixed fraction of compute's own traffic —
//    ~25-30% for pull PageRank, whose supersteps stream comparatively
//    few bytes per vertex, no matter how fast the hash is. The cadence
//    knob is the designed answer: it trades at-rest *coverage* (only
//    every k-th barrier's window is guarded) for throughput, and the
//    matrix's cadence test pins exactly that trade.
//  - shadow: recomputes a small vertex sample per superstep and compares
//    bit-for-bit — cost scales with samples, not |V|, so it should be
//    noise at the default 16.
//  - all: the three stacked, what a paranoid production run pays.
//
// Overhead columns are (t_tier - t_off) / t_off of whole-run wall time.

#include <algorithm>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "benchlib/reporting.hpp"
#include "benchlib/workloads.hpp"
#include "core/runner.hpp"
#include "integrity/options.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace ipregel;         // NOLINT(google-build-using-namespace)
using namespace ipregel::bench;  // NOLINT(google-build-using-namespace)

template <typename Program>
double timed_run(const Workload& w, Program program, VersionId version,
                 runtime::ThreadPool& pool,
                 const integrity::IntegrityOptions& tiers) {
  // Best-of-3: single runs on a contended machine produce negative
  // "overheads"; the minimum is the least-noisy estimator of the true
  // cost of each configuration.
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    EngineOptions options;
    options.integrity = tiers;
    const RunResult r =
        run_version(w.graph, program, version, options, &pool);
    best = std::min(best, r.seconds);
  }
  return best;
}

std::string fmt_overhead(double tier_seconds, double off_seconds) {
  if (off_seconds <= 0.0) {
    return "-";
  }
  const double pct = (tier_seconds - off_seconds) / off_seconds * 100.0;
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << (pct >= 0.0 ? "+" : "") << pct << "%";
  return os.str();
}

template <typename Program>
void rows(Table& table, const std::string& app, const Workload& w,
          Program program, VersionId version, runtime::ThreadPool& pool,
          double* worst_every1, double* worst_every8) {
  integrity::IntegrityOptions off;
  integrity::IntegrityOptions inv;
  inv.invariants = true;
  integrity::IntegrityOptions cksum;
  cksum.checksums = true;
  integrity::IntegrityOptions cksum8;
  cksum8.checksums = true;
  cksum8.checksum_every = 8;
  integrity::IntegrityOptions shadow;
  shadow.shadow = true;
  integrity::IntegrityOptions all;
  all.invariants = true;
  all.checksums = true;
  all.shadow = true;

  // A throwaway warm-up run so the first measured configuration does not
  // also pay the page-cache / allocator cold start.
  (void)timed_run(w, program, version, pool, off);

  const double t_off = timed_run(w, program, version, pool, off);
  const double t_inv = timed_run(w, program, version, pool, inv);
  const double t_ck = timed_run(w, program, version, pool, cksum);
  const double t_ck8 = timed_run(w, program, version, pool, cksum8);
  const double t_sh = timed_run(w, program, version, pool, shadow);
  const double t_all = timed_run(w, program, version, pool, all);
  if (worst_every1 != nullptr && t_off > 0.0) {
    *worst_every1 = std::max(*worst_every1, (t_ck - t_off) / t_off);
  }
  if (worst_every8 != nullptr && t_off > 0.0) {
    *worst_every8 = std::max(*worst_every8, (t_ck8 - t_off) / t_off);
  }
  table.add_row({app, std::string(version_name(version)), w.name,
                 fmt_seconds(t_off), fmt_overhead(t_inv, t_off),
                 fmt_overhead(t_ck, t_off), fmt_overhead(t_ck8, t_off),
                 fmt_overhead(t_sh, t_off), fmt_overhead(t_all, t_off)});
}

}  // namespace

int main() {
  runtime::ThreadPool pool;
  std::cout << "iPregel integrity-detector ablation (threads = "
            << pool.size() << ", shadow samples = "
            << integrity::IntegrityOptions{}.shadow_samples << ")\n";
  Table table("Per-tier overhead vs detector-free baseline",
              {"application", "version", "graph", "off (s)", "invariants",
               "checksums", "cksum/8", "shadow", "all"});

  // The <= 10% acceptance bar applies to the dense workloads, where a
  // superstep does Omega(V) compute the digest passes can amortise
  // against. Road-graph SSSP is the anti-workload ON PURPOSE: its
  // sub-millisecond wavefront supersteps touch a few hundred vertices
  // while the checksum tier still digests all |V| of them — no cadence
  // makes that fit 10%, which is exactly why checksum_every exists and
  // why its row stays in the table (and CSV) un-gated: it quantifies the
  // pathology instead of hiding it.
  double worst_every1 = 0.0;
  double worst_every8 = 0.0;
  const Workload wiki = make_wiki_like();
  const Workload road = make_road_like();
  rows(table, "PageRank", wiki, apps::PageRank{.rounds = kPageRankRounds},
       {CombinerKind::kSpinlockPush, false}, pool, &worst_every1,
       &worst_every8);
  rows(table, "PageRank", wiki, apps::PageRank{.rounds = kPageRankRounds},
       {CombinerKind::kPull, false}, pool, &worst_every1, &worst_every8);
  rows(table, "Hashmin", wiki, apps::Hashmin{},
       {CombinerKind::kSpinlockPush, true}, pool, &worst_every1,
       &worst_every8);
  rows(table, "SSSP", road, apps::Sssp{.source = kSsspSource},
       {CombinerKind::kSpinlockPush, true}, pool, nullptr, nullptr);
  table.print();
  table.write_csv("results/bench_integrity.csv");

  std::cout << "\nworst checksum-tier overhead on the dense (wiki-like) "
               "workloads: "
            << fmt_overhead(1.0 + worst_every8, 1.0)
            << " at the recommended production cadence (checksum_every = 8; "
               "acceptance bar: +10.0%), "
            << fmt_overhead(1.0 + worst_every1, 1.0)
            << " at every-barrier coverage (reported, not gated)\n"
            << "expected: invariants and shadow are noise; checksums are "
               "the priciest tier and every-8 buys most of it back; the "
               "road-SSSP row shows the short-superstep pathology the "
               "cadence knob exists for (un-gated by design).\n";
  return worst_every8 > 0.10 ? 1 : 0;
}
