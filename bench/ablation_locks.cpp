// Ablation for the paper's section 6.1: block-waiting (mutex) vs
// busy-waiting (spinlock) push combiners.
//
// Two claims are checked:
//  1. Size: a mutex is 40 bytes, a spinlock 4 — a 90% reduction that,
//     multiplied by one-lock-per-vertex, shrinks the data-race protection
//     of the paper's graphs from 730/958 MB to 73/96 MB. The exact paper
//     numbers are recomputed from the real |V| values and printed.
//  2. Speed: for critical sections as short as a combiner's
//     compare-and-replace, busy-waiting beats suspending the thread,
//     uncontended and contended alike.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <mutex>

#include "core/mailbox.hpp"
#include "runtime/spin_lock.hpp"

namespace {

using ipregel::PushMailboxes;
using ipregel::runtime::SpinLock;

constexpr std::size_t kSlots = 1 << 16;

void combine_min(std::uint64_t& old, const std::uint64_t& incoming) {
  if (incoming < old) {
    old = incoming;
  }
}

template <typename Lock>
void BM_PushDeliver(benchmark::State& state) {
  static PushMailboxes<std::uint64_t, Lock>* boxes = nullptr;
  if (state.thread_index() == 0) {
    boxes = new PushMailboxes<std::uint64_t, Lock>(kSlots);
  }
  // Each thread walks the slots with a different stride so contention is
  // incidental (as in real deliveries), not pathological.
  const std::size_t stride =
      state.thread_index() == 0 ? 7 : 13;
  std::size_t slot = static_cast<std::size_t>(state.thread_index()) * 31;
  std::uint64_t value = 0;
  for (auto _ : state) {
    slot = (slot + stride) % kSlots;
    boxes->deliver(0, slot, ++value, combine_min);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete boxes;
    boxes = nullptr;
  }
}

template <typename Lock>
void BM_PushDeliverHotSpot(benchmark::State& state) {
  // All threads hammer 8 slots: the high-contention regime of a hub vertex
  // in a scale-free graph.
  static PushMailboxes<std::uint64_t, Lock>* boxes = nullptr;
  if (state.thread_index() == 0) {
    boxes = new PushMailboxes<std::uint64_t, Lock>(kSlots);
  }
  std::uint64_t value = 0;
  std::size_t slot = 0;
  for (auto _ : state) {
    slot = (slot + 1) % 8;
    boxes->deliver(0, slot, ++value, combine_min);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete boxes;
    boxes = nullptr;
  }
}

BENCHMARK_TEMPLATE(BM_PushDeliver, std::mutex)->Threads(1)->Threads(2);
BENCHMARK_TEMPLATE(BM_PushDeliver, SpinLock)->Threads(1)->Threads(2);
BENCHMARK_TEMPLATE(BM_PushDeliverHotSpot, std::mutex)->Threads(1)->Threads(2);
BENCHMARK_TEMPLATE(BM_PushDeliverHotSpot, SpinLock)->Threads(1)->Threads(2);

void print_size_accounting() {
  struct PaperGraph {
    const char* name;
    std::size_t vertices;
  };
  constexpr PaperGraph graphs[] = {{"Wikipedia", 18'268'992},
                                   {"USA roads", 23'947'347}};
  std::printf("section 6.1 size accounting on this toolchain:\n");
  std::printf("  sizeof(std::mutex) = %zu bytes (paper: 40)\n",
              sizeof(std::mutex));
  std::printf("  sizeof(SpinLock)   = %zu bytes (paper: 4)\n",
              sizeof(SpinLock));
  for (const auto& g : graphs) {
    const double mutex_mb =
        static_cast<double>(g.vertices * sizeof(std::mutex)) / 1e6;
    const double spin_mb =
        static_cast<double>(g.vertices * sizeof(SpinLock)) / 1e6;
    std::printf(
        "  %s (|V| = %zu): mutex locks %.0f MB -> spinlocks %.0f MB "
        "(paper: 730->73 and 958->96)\n",
        g.name, g.vertices, mutex_mb, spin_mb);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_size_accounting();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
