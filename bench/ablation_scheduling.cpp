// Ablation for the paper's future-work direction ("further investigations
// about load-balancing strategies would certainly benefit iPregel"):
// static equal shares vs dynamic chunk scheduling.
//
// Expected shape:
//  - On the scan-all versions of a *scale-free* graph, static shares are
//    uneven (a share containing the hubs does several times the work), so
//    dynamic scheduling helps PageRank.
//  - Under the selection bypass, shares contain only active vertices —
//    the paper's own load-balancing argument — so dynamic scheduling has
//    little left to fix and its per-chunk atomics are pure overhead on
//    near-regular graphs.

#include <iostream>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "benchlib/reporting.hpp"
#include "benchlib/workloads.hpp"
#include "core/runner.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace ipregel;         // NOLINT(google-build-using-namespace)
using namespace ipregel::bench;  // NOLINT(google-build-using-namespace)

template <typename Program>
void row(Table& table, const std::string& app, const Workload& w,
         Program program, VersionId version, runtime::ThreadPool& pool) {
  EngineOptions static_opts;
  static_opts.schedule = Schedule::kStatic;
  EngineOptions dynamic_opts;
  dynamic_opts.schedule = Schedule::kDynamic;
  const RunResult s = run_version(w.graph, program, version, static_opts,
                                  &pool);
  const RunResult d = run_version(w.graph, program, version, dynamic_opts,
                                  &pool);
  table.add_row({app, std::string(version_name(version)), w.name,
                 fmt_seconds(s.seconds), fmt_seconds(d.seconds),
                 fmt_factor(s.seconds / d.seconds)});
}

}  // namespace

int main() {
  runtime::ThreadPool pool;
  std::cout << "iPregel scheduling ablation (threads = " << pool.size()
            << ")\n";
  Table table("Static equal shares vs dynamic chunks",
              {"application", "version", "graph", "static (s)",
               "dynamic (s)", "static/dynamic"});
  const Workload wiki = make_wiki_like();
  const Workload road = make_road_like();
  row(table, "PageRank", wiki, apps::PageRank{.rounds = kPageRankRounds},
      {CombinerKind::kSpinlockPush, false}, pool);
  row(table, "PageRank", wiki, apps::PageRank{.rounds = kPageRankRounds},
      {CombinerKind::kPull, false}, pool);
  row(table, "Hashmin", wiki, apps::Hashmin{},
      {CombinerKind::kSpinlockPush, true}, pool);
  row(table, "SSSP", road, apps::Sssp{.source = kSsspSource},
      {CombinerKind::kSpinlockPush, true}, pool);
  table.print();
  table.write_csv("results/bench_scheduling.csv");
  std::cout << "\nexpected: dynamic helps scan-all on the skewed graph; "
               "under the bypass the shares are already balanced (the "
               "paper's section 4 argument) and dynamic's atomics are "
               "overhead.\n";
  return 0;
}
