// Ablation for the paper's section 4: the cost of the selection phase.
//
// The traditional approach iterates all vertices every superstep and
// checks each one's active state and inbox; inactive vertices are
// "unfruitful checks". The selection bypass replaces the scan with a
// sender-built work list. The benchmark sweeps the active-vertex ratio and
// measures the per-superstep selection cost of both strategies: scan-all
// is O(|V|) regardless of activity, the bypass is O(active) — they cross
// near ratio 1, and the bypass wins by orders of magnitude in the SSSP
// regime (ratio ~1e-3 on road networks).

#include <benchmark/benchmark.h>

#include <vector>

#include "core/frontier.hpp"
#include "runtime/rng.hpp"

namespace {

using ipregel::Frontier;
using ipregel::runtime::Xoshiro256;

constexpr std::size_t kVertices = 1 << 20;

/// active-per-mille comes in as the benchmark argument.
std::vector<std::uint8_t> make_activity(std::int64_t per_mille) {
  std::vector<std::uint8_t> active(kVertices, 0);
  Xoshiro256 rng(5);
  const auto target = static_cast<std::size_t>(
      kVertices * static_cast<std::size_t>(per_mille) / 1000);
  std::size_t set = 0;
  while (set < target) {
    const auto i = static_cast<std::size_t>(rng.next_below(kVertices));
    if (active[i] == 0) {
      active[i] = 1;
      ++set;
    }
  }
  return active;
}

void BM_ScanAllSelection(benchmark::State& state) {
  const auto active = make_activity(state.range(0));
  std::uint64_t executed = 0;
  for (auto _ : state) {
    // The traditional selection phase: check every vertex.
    for (std::size_t v = 0; v < kVertices; ++v) {
      if (active[v] != 0) {
        benchmark::DoNotOptimize(++executed);
      }
    }
  }
  state.counters["active_ratio"] =
      static_cast<double>(state.range(0)) / 1000.0;
}

void BM_BypassSelection(benchmark::State& state) {
  const auto active = make_activity(state.range(0));
  // Senders built the list during the previous superstep; measure the
  // consumer side: build + drain, which is what replaces the scan.
  std::vector<std::size_t> active_slots;
  for (std::size_t v = 0; v < kVertices; ++v) {
    if (active[v] != 0) {
      active_slots.push_back(v);
    }
  }
  Frontier frontier(kVertices, 1, /*with_dedup_bitmap=*/false);
  std::uint64_t executed = 0;
  for (auto _ : state) {
    for (const std::size_t v : active_slots) {
      frontier.add_claimed(v, 0);
    }
    frontier.flip();
    for (const std::size_t v : frontier.current()) {
      benchmark::DoNotOptimize(executed += v != 0 ? 1 : 1);
    }
  }
  state.counters["active_ratio"] =
      static_cast<double>(state.range(0)) / 1000.0;
}

BENCHMARK(BM_ScanAllSelection)->Arg(1)->Arg(10)->Arg(100)->Arg(500)->Arg(1000);
BENCHMARK(BM_BypassSelection)->Arg(1)->Arg(10)->Arg(100)->Arg(500)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
