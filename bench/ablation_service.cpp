// Admission-control ablation: what does the serving layer's bounded
// queue + memory ledger buy under overload?
//
// For each offered load (0.5x, 1x, 2x of what the service can hold =
// executors + queue depth) a wave of mixed jobs (PageRank / Hashmin /
// SSSP round-robin) is submitted back-to-back against two configurations:
//
//  - admission on: the bounded queue and reservation ledger from the
//    service's Config — overload arrivals are rejected typed at submit.
//  - admission off: an effectively unbounded queue and no ledger — every
//    arrival is accepted and queues.
//
// Expected shape: identical numbers at 0.5x (admission control is free
// when the service is not overloaded; at 1x the instantaneous burst may
// clip a job or two before the executors dequeue). At 2x the "off"
// column completes every job but its p99 latency grows with the backlog;
// the "on" column sheds the excess at submit time and keeps the p99 of
// the jobs it accepted near the 1x figure — the latency/goodput trade
// the serving layer exists to make.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "benchlib/reporting.hpp"
#include "benchlib/workloads.hpp"
#include "runtime/timer.hpp"
#include "service/job_manager.hpp"

namespace {

using namespace ipregel;         // NOLINT(google-build-using-namespace)
using namespace ipregel::bench;  // NOLINT(google-build-using-namespace)

constexpr std::size_t kExecutors = 2;
constexpr std::size_t kDepth = 4;
constexpr std::size_t kCapacity = kExecutors + kDepth;
// Nominal per-job reservation; the ledger maths is what is under test,
// not the actual footprint, so a fixed unit keeps the waves comparable.
constexpr std::size_t kReservation = 1u << 20;

service::JobManager::Config make_config(bool admission_on) {
  service::JobManager::Config config;
  config.executors = kExecutors;
  config.team_threads = 2;
  if (admission_on) {
    config.max_queue_depth = kDepth;
    config.memory_budget_bytes = kCapacity * kReservation;
  } else {
    config.max_queue_depth = static_cast<std::size_t>(1) << 20;
    config.memory_budget_bytes = 0;  // unlimited ledger
  }
  return config;
}

struct WaveResult {
  std::size_t offered = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;  ///< typed ShedError at submit
  double wall_seconds = 0.0;
  std::vector<double> latencies;  ///< queue + run seconds, completed only
};

[[nodiscard]] double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) {
    return 0.0;
  }
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(xs.size())));
  return xs[std::min(rank == 0 ? 0 : rank - 1, xs.size() - 1)];
}

WaveResult run_wave(const Workload& w, bool admission_on,
                    std::size_t offered) {
  service::JobManager manager(make_config(admission_on));
  const VersionId version{CombinerKind::kSpinlockPush, false};
  service::JobSpec spec;
  spec.memory_reservation_bytes = kReservation;

  WaveResult out;
  out.offered = offered;
  std::vector<service::JobTicket<apps::PageRank>> pagerank_jobs;
  std::vector<service::JobTicket<apps::Hashmin>> hashmin_jobs;
  std::vector<service::JobTicket<apps::Sssp>> sssp_jobs;

  runtime::Timer timer;
  for (std::size_t i = 0; i < offered; ++i) {
    try {
      switch (i % 3) {
        case 0:
          pagerank_jobs.push_back(
              manager.submit(w.graph, apps::PageRank{.rounds = 10}, version,
                             {}, spec));
          break;
        case 1:
          hashmin_jobs.push_back(
              manager.submit(w.graph, apps::Hashmin{}, version, {}, spec));
          break;
        default:
          sssp_jobs.push_back(
              manager.submit(w.graph, apps::Sssp{.source = kSsspSource},
                             version, {}, spec));
          break;
      }
    } catch (const service::ShedError&) {
      ++out.rejected;
    }
  }

  const auto account = [&out](const service::JobReport& report) {
    if (report.state == service::JobState::kCompleted) {
      ++out.completed;
      out.latencies.push_back(report.queue_seconds + report.run_seconds);
    }
  };
  for (auto& t : pagerank_jobs) {
    account(t.wait());
  }
  for (auto& t : hashmin_jobs) {
    account(t.wait());
  }
  for (auto& t : sssp_jobs) {
    account(t.wait());
  }
  out.wall_seconds = timer.seconds();
  return out;
}

void row(Table& table, JsonReport& report, const Workload& w,
         bool admission_on, double load) {
  const auto offered = static_cast<std::size_t>(
      std::lround(load * static_cast<double>(kCapacity)));
  const WaveResult r = run_wave(w, admission_on, offered);
  const double throughput =
      r.wall_seconds > 0.0
          ? static_cast<double>(r.completed) / r.wall_seconds
          : 0.0;
  const double p50 = percentile(r.latencies, 0.50);
  const double p99 = percentile(r.latencies, 0.99);
  table.add_row({admission_on ? "on" : "off",
                 fmt_factor(load),
                 std::to_string(r.offered),
                 std::to_string(r.completed),
                 std::to_string(r.rejected),
                 fmt_seconds(r.wall_seconds),
                 fmt_factor(throughput),
                 fmt_seconds(p50),
                 fmt_seconds(p99)});
  char key[64];
  std::snprintf(key, sizeof key, "admission_%s.load_%.1fx",
                admission_on ? "on" : "off", load);
  const std::string k = key;
  report.count(k + ".offered", r.offered);
  report.count(k + ".completed", r.completed);
  report.count(k + ".rejected", r.rejected);
  report.num(k + ".throughput_qps", throughput);
  report.num(k + ".p50_ms", p50 * 1e3);
  report.num(k + ".p99_ms", p99 * 1e3);
}

}  // namespace

int main() {
  const Workload wiki = make_wiki_like();
  std::cout << "iPregel admission-control ablation (" << wiki.name
            << "; capacity = " << kExecutors << " executors + " << kDepth
            << " queue slots; mixed PageRank/Hashmin/SSSP waves)\n";

  Table table("Offered load vs admission control",
              {"admission", "load", "offered", "completed", "rejected",
               "wall (s)", "jobs/s", "p50 (s)", "p99 (s)"});
  JsonReport report("ablation_service");
  report.text("graph", wiki.name);
  for (const bool admission_on : {true, false}) {
    for (const double load : {0.5, 1.0, 2.0}) {
      row(table, report, wiki, admission_on, load);
    }
  }
  table.print();
  table.write_csv("results/bench_service.csv");
  report.write("results/bench_service.json");

  std::cout << "\nexpected: both configurations match below capacity "
               "(the instantaneous 1x burst may clip a job or two before "
               "the executors dequeue); at 2x the unbounded queue "
               "completes everything at the cost of a backlog-sized p99, "
               "while admission control sheds the excess typed at submit "
               "and holds p99 near the 1x figure.\n";
  return 0;
}
