// Supervisor-overhead ablation: what does running under ft::supervise
// cost when nothing goes wrong, and what does recovery cost when faults
// do strike?
//
// Three configurations per workload:
//  - bare: run_version, no checkpointing, no supervisor — the baseline.
//  - supervised, 0 faults: per-superstep checkpoints plus the supervisor
//    wrapper, but a clean run. The delta over bare is the steady-state
//    price of crash insurance (dominated by snapshot writes; the
//    supervisor itself adds one directory scan).
//  - supervised, 3 faults: a deterministic 3-fault schedule; the
//    supervisor restores the newest snapshot after each crash. The delta
//    over the 0-fault run is the recovery cost: re-executed supersteps
//    plus three snapshot restores.
//
// Expected shape: the 0-fault overhead tracks the checkpoint ablation's
// every-superstep heavyweight numbers; the 3-fault wall time stays well
// under 4x bare because each retry loses only the work since the last
// barrier snapshot, not the whole run.

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "benchlib/reporting.hpp"
#include "benchlib/workloads.hpp"
#include "core/runner.hpp"
#include "ft/supervisor.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"

namespace {

using namespace ipregel;         // NOLINT(google-build-using-namespace)
using namespace ipregel::bench;  // NOLINT(google-build-using-namespace)

struct SupervisedCost {
  double wall_seconds = 0.0;
  std::size_t attempts = 0;
};

template <typename Program>
SupervisedCost measure_supervised(const Workload& w, Program program,
                                  VersionId version,
                                  runtime::ThreadPool& pool,
                                  const std::string& dir,
                                  std::size_t num_faults,
                                  std::size_t supersteps,
                                  std::size_t every) {
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  EngineOptions options;
  options.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  options.checkpoint.every = every;
  options.checkpoint.directory = dir;

  ft::RetryPolicy policy;
  policy.max_attempts = num_faults + 2;
  // Spread the faults across the run: each attempt crashes at the first
  // compute call of an evenly spaced superstep.
  for (std::size_t f = 0; f < num_faults; ++f) {
    policy.fault_schedule.push_back(ft::FaultPlan{
        .superstep = 1 + (f + 1) * (supersteps - 2) / (num_faults + 1),
        .after_compute_calls = 0});
  }

  SupervisedCost cost;
  runtime::Timer timer;
  const ft::SupervisedOutcome out =
      ft::supervise(w.graph, program, version, options, policy, &pool);
  cost.wall_seconds = timer.seconds();
  cost.attempts = out.attempts;
  if (!out.ok()) {
    std::cerr << "supervised run failed: " << out.error->what() << "\n";
  }
  return cost;
}

template <typename Program>
void row(Table& table, const std::string& app, const Workload& w,
         Program program, VersionId version, runtime::ThreadPool& pool,
         const std::string& dir, std::size_t every) {
  runtime::Timer timer;
  const RunResult bare = run_version(w.graph, program, version, {}, &pool);
  const double bare_seconds = timer.seconds();

  const SupervisedCost clean = measure_supervised(
      w, program, version, pool, dir, 0, bare.supersteps, every);
  const SupervisedCost faulty = measure_supervised(
      w, program, version, pool, dir, 3, bare.supersteps, every);

  table.add_row({app, std::string(version_name(version)), w.name,
                 std::to_string(bare.supersteps) + "/" +
                     std::to_string(every),
                 fmt_seconds(bare_seconds),
                 fmt_seconds(clean.wall_seconds),
                 fmt_factor(clean.wall_seconds /
                            (bare_seconds > 0.0 ? bare_seconds : 1.0)),
                 fmt_seconds(faulty.wall_seconds),
                 std::to_string(faulty.attempts)});
}

}  // namespace

int main() {
  runtime::ThreadPool pool;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ipregel_ablation_sup")
          .string();

  std::cout << "iPregel supervisor-overhead ablation (threads = "
            << pool.size()
            << ", heavyweight snapshots; cadence in the steps/ckpt "
               "column)\n";
  Table table("Bare vs supervised (0 faults) vs supervised (3 faults)",
              {"application", "version", "graph", "steps/ckpt", "bare (s)",
               "sup+0f (s)", "sup/bare", "sup+3f (s)", "attempts"});

  // Checkpoint cadence matches the regime: a snapshot per superstep for
  // the short heavy supersteps of the wiki-like graph, one every 50 for
  // the road graph's thousand feather-weight supersteps (per-superstep
  // snapshots there would cost 100x the run itself — see the checkpoint
  // ablation's adaptive trigger for the principled cadence choice).
  const Workload wiki = make_wiki_like();
  const Workload road = make_road_like();
  row(table, "PageRank", wiki, apps::PageRank{.rounds = kPageRankRounds},
      {CombinerKind::kSpinlockPush, false}, pool, dir, 1);
  row(table, "Hashmin", wiki, apps::Hashmin{},
      {CombinerKind::kSpinlockPush, true}, pool, dir, 1);
  row(table, "SSSP", road, apps::Sssp{.source = kSsspSource},
      {CombinerKind::kSpinlockPush, true}, pool, dir, 50);
  table.print();
  table.write_csv("results/bench_supervisor.csv");

  std::filesystem::remove_all(dir);
  std::cout << "\nexpected: the 0-fault supervised run pays only the "
               "checkpoint-write overhead over bare; the 3-fault run "
               "finishes in ~1-2x the 0-fault time because every retry "
               "resumes from the last barrier snapshot instead of "
               "superstep 0.\n";
  return 0;
}
