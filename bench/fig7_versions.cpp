// Reproduces the paper's Figure 7: runtime of every applicable iPregel
// version (3 combiners x {with, without} selection bypass) for PageRank,
// Hashmin and SSSP on the wiki-like and road-like graphs.
//
// Expected shape (paper section 7.2):
//  - PageRank: mutex -> spinlock drops ~30%; broadcast halves spinlock and
//    is the best version (all vertices stay active: optimal pull ratio).
//  - Hashmin/SSSP: spinlock < mutex < broadcast (without bypass); every
//    combiner improves with the bypass; spinlock+bypass is always best and
//    broadcast-without-bypass always worst.
//  - The bypass gap explodes on the road-like graph (low density, few
//    active vertices): paper reports 20x for Hashmin and 1,400x for SSSP.

#include <cstdlib>
#include <iostream>
#include <string>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "benchlib/reporting.hpp"
#include "benchlib/workloads.hpp"
#include "core/runner.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace ipregel;          // NOLINT(google-build-using-namespace)
using namespace ipregel::bench;   // NOLINT(google-build-using-namespace)

bool precise_mode() {
  return std::getenv("IPREGEL_BENCH_PRECISE") != nullptr;
}

/// Runs one (program, version) cell, optionally with the paper's
/// repeat-until-1%-margin methodology (IPREGEL_BENCH_PRECISE=1).
template <typename Program>
void bench_cell(Table& table, const std::string& app,
                const graph::CsrGraph& g, Program program, VersionId version,
                runtime::ThreadPool& pool, double& best_seconds,
                std::string& best_name) {
  RunResult last;
  double seconds = 0.0;
  if (precise_mode()) {
    const auto measured = runtime::run_until_precise(
        [&] {
          last = run_version(g, program, version, {}, &pool);
          return last.seconds;
        },
        {.min_runs = 5, .max_runs = 30, .target_relative_margin = 0.01});
    seconds = measured.summary.mean;
  } else {
    last = run_version(g, program, version, {}, &pool);
    seconds = last.seconds;
  }
  table.add_row({app, std::string(version_name(version)),
                 fmt_seconds(seconds), std::to_string(last.supersteps),
                 fmt_count(last.total_messages)});
  if (seconds < best_seconds) {
    best_seconds = seconds;
    best_name = version_name(version);
  }
}

template <typename Program>
void bench_app(Table& table, const std::string& app,
               const graph::CsrGraph& g, Program program,
               runtime::ThreadPool& pool) {
  double best_seconds = 1e300;
  std::string best_name;
  for (const VersionId v : applicable_versions<Program>()) {
    bench_cell(table, app, g, program, v, pool, best_seconds, best_name);
  }
  std::cout << "  -> best version for " << app << ": " << best_name << " ("
            << fmt_seconds(best_seconds) << " s)\n";
}

void run_workload(const Workload& w, runtime::ThreadPool& pool) {
  Table table("Figure 7 analog — iPregel version runtimes on " + w.name +
                  " [stand-in for " + w.paper_name + "]",
              {"application", "version", "runtime (s)", "supersteps",
               "messages"});
  std::cout << "\n== " << w.name << " ==\n";
  bench_app(table, "PageRank", w.graph,
            apps::PageRank{.rounds = kPageRankRounds}, pool);
  bench_app(table, "Hashmin", w.graph, apps::Hashmin{}, pool);
  bench_app(table, "SSSP", w.graph, apps::Sssp{.source = kSsspSource}, pool);
  table.print();
  table.write_csv("results/bench_fig7.csv");
}

}  // namespace

int main() {
  runtime::ThreadPool pool;
  std::cout << "iPregel Fig. 7 reproduction (threads = " << pool.size()
            << (precise_mode() ? ", precise mode" : "") << ")\n";
  run_workload(make_wiki_like(), pool);
  run_workload(make_road_like(), pool);
  return 0;
}
