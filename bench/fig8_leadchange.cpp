// Reproduces the paper's Figure 8: the Pregel+ baseline's runtime as the
// cluster grows from 1 to 16 nodes (2 processes per node), against the
// single-node iPregel reference, for PageRank, Hashmin and SSSP on both
// graphs. Prints the per-node-count curve, marks memory failures, applies
// the paper's footnote-8 constant-efficiency extrapolation, and reports the
// "lead change" — the node count Pregel+ needs to overtake iPregel.
//
// Expected shape (paper section 7.3):
//  - iPregel beats Pregel+ on a single node in every cell (paper: median
//    6.5x, min 3.5x, max >600x);
//  - the lead change needs >= 11 nodes, except SSSP on the road-like graph
//    where the bypass regime pushes it beyond any reasonable cluster
//    (paper: estimated > 15,000 nodes);
//  - Pregel+ hits per-node memory failures at low node counts on the
//    larger workloads.
//
// The cluster is simulated: worker computation, combining, wrapped-message
// serialisation and hashmap delivery execute for real and are timed; node
// concurrency and the 450 Mb/s wire are modelled (see
// src/pregelplus/cluster.hpp and DESIGN.md "Substitutions").

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "benchlib/extrapolate.hpp"
#include "benchlib/reporting.hpp"
#include "benchlib/workloads.hpp"
#include "core/runner.hpp"
#include "pregelplus/cluster.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace ipregel;         // NOLINT(google-build-using-namespace)
using namespace ipregel::bench;  // NOLINT(google-build-using-namespace)

constexpr std::size_t kNodeCounts[] = {1, 2, 4, 8, 16};
/// The paper extrapolates SSSP/USA to >15,000 nodes; 12 doublings past 16
/// nodes reaches 65,536, enough to detect that regime.
constexpr std::size_t kForwardDoublings = 12;

/// Per-node memory cap for the simulated cluster. The paper's nodes have
/// 8 GB; our workloads are scaled down ~25x, so the cap scales with them
/// to keep the "Pregel+ memory failure" markers of Fig. 8 reproducible.
std::size_t node_memory_cap(BenchSize size) {
  switch (size) {
    case BenchSize::kSmall:
      return std::size_t{64} << 20;  // 64 MiB
    case BenchSize::kLarge:
      return std::size_t{2} << 30;  // 2 GiB
    case BenchSize::kDefault:
      break;
  }
  return std::size_t{320} << 20;  // 320 MiB
}

pregelplus::ClusterConfig cluster_config(std::size_t nodes) {
  return pregelplus::ClusterConfig{
      .num_nodes = nodes,
      .procs_per_node = 2,           // the paper's 2 MPI processes per node
      .bandwidth_mbps = 450.0,       // the paper's EC2 bandwidth
      .superstep_latency_s = 5e-4,
      .node_memory_bytes = node_memory_cap(bench_size()),
      .process_env_bytes = std::size_t{8} << 20,
  };
}

template <typename Program>
void bench_cell(const std::string& app, const Workload& w, Program program,
                VersionId ipregel_version, runtime::ThreadPool& pool,
                bool demonstrate_oom = false) {
  // Single-node iPregel reference: the best version from Fig. 7's
  // conclusions (broadcast for PageRank, spinlock+bypass for the rest).
  const RunResult reference =
      run_version(w.graph, program, ipregel_version, {}, &pool);

  // The paper's SSSP round "exposes insufficient memory failures" at low
  // node counts, whose runtimes Fig. 8 reconstructs by backward
  // extrapolation. Our workloads are scaled, so the failure threshold is
  // derived from measurement: probe the 1-node peak, then cap every node
  // at 60% of it — single-node runs must fail, larger clusters fit.
  std::size_t cap = node_memory_cap(bench_size());
  if (demonstrate_oom) {
    pregelplus::ClusterConfig probe_cfg = cluster_config(1);
    probe_cfg.node_memory_bytes = 0;
    pregelplus::Cluster<Program> probe(w.graph, program, probe_cfg, &pool);
    const auto probed = probe.run();
    cap = probed.peak_node_memory_bytes * 3 / 5;
  }

  Table table("Figure 8 analog — " + app + " on " + w.name +
                  "  [iPregel single-node reference: " +
                  std::string(version_name(ipregel_version)) + " = " +
                  fmt_seconds(reference.seconds) + " s]",
              {"nodes", "pregel+ runtime (s)", "status", "vs iPregel"});

  std::vector<ScalingPoint> curve;
  for (const std::size_t nodes : kNodeCounts) {
    pregelplus::ClusterConfig cfg = cluster_config(nodes);
    cfg.node_memory_bytes = cap;
    pregelplus::Cluster<Program> cluster(w.graph, program, cfg, &pool);
    const auto sim = cluster.run();
    ScalingPoint point{nodes, sim.simulated_seconds, true,
                       sim.out_of_memory};
    curve.push_back(point);
  }
  curve = extrapolate_scaling(std::move(curve), kForwardDoublings);

  for (const ScalingPoint& p : curve) {
    std::string status = p.memory_failure ? "memory failure"
                         : p.measured     ? "measured"
                                          : "extrapolated";
    table.add_row({std::to_string(p.nodes),
                   p.memory_failure ? "-" : fmt_seconds(p.seconds), status,
                   p.memory_failure
                       ? "-"
                       : fmt_factor(p.seconds / reference.seconds)});
  }
  table.print();
  table.write_csv("results/bench_fig8.csv");

  const std::optional<std::size_t> change =
      lead_change(curve, reference.seconds);
  if (change.has_value()) {
    std::cout << "  lead change: Pregel+ needs " << *change
              << " nodes to overtake single-node iPregel\n";
  } else {
    std::cout << "  lead change: not reached within "
              << curve.back().nodes
              << " extrapolated nodes (the paper's SSSP/USA '>15,000 "
                 "nodes' regime)\n";
  }
}

void run_workload(const Workload& w, runtime::ThreadPool& pool) {
  std::cout << "\n== " << w.name << " [stand-in for " << w.paper_name
            << "] ==\n";
  bench_cell("PageRank", w, apps::PageRank{.rounds = kPageRankRounds},
             VersionId{CombinerKind::kPull, false}, pool);
  bench_cell("Hashmin", w, apps::Hashmin{},
             VersionId{CombinerKind::kSpinlockPush, true}, pool);
  bench_cell("SSSP", w, apps::Sssp{.source = kSsspSource},
             VersionId{CombinerKind::kSpinlockPush, true}, pool,
             /*demonstrate_oom=*/true);
}

}  // namespace

int main() {
  runtime::ThreadPool pool;
  std::cout << "iPregel Fig. 8 reproduction — Pregel+ scaling vs iPregel "
               "single node (threads = "
            << pool.size() << ")\n";
  const Workload wiki = make_wiki_like();
  run_workload(wiki, pool);
  const Workload road = make_road_like();
  run_workload(road, pool);
  return 0;
}
