// Reproduces the paper's Figure 9 and section 7.4: the memory footprint of
// iPregel running PageRank on synthetic Twitter clones of growing size.
//
// The paper's methodology (7.4.2): generate synthetic graphs with |V| and
// |E| proportional to Twitter(MPI) (a graph described as "20%" has a fifth
// of the vertices and edges), run PageRank on each from smallest to
// largest, record the maximum resident set size, and find the breaking
// point under the machine's 8 GB. Then (7.4.3) linearly extrapolate to
// 100%, verify on a larger machine (11.01 GB measured), and compare with
// Pregel+ (109 GB) and Giraph (264 GB).
//
// Expected shape: a straight line through the measured points; the
// breaking point sits where the line crosses the memory cap (paper: 70% of
// Twitter under 8 GB, i.e. cap/full-size ratio 8/11.01 = 72.7%).
//
// The footprint is reported from the framework's own byte-exact
// MemoryTracker (every allocation is tagged), with the process VmHWM
// printed alongside for reference. PageRank runs in the spinlock-push
// version: the paper's own arithmetic (8 GB graph + 3 GB overhead = 11 GB)
// only adds up for an out-edges-only configuration.

#include <iostream>
#include <vector>

#include "apps/pagerank.hpp"
#include "benchlib/extrapolate.hpp"
#include "benchlib/reporting.hpp"
#include "benchlib/workloads.hpp"
#include "core/engine.hpp"
#include "graph/csr.hpp"
#include "runtime/memory_tracker.hpp"

namespace {

using namespace ipregel;         // NOLINT(google-build-using-namespace)
using namespace ipregel::bench;  // NOLINT(google-build-using-namespace)

struct Sample {
  unsigned percent;
  std::size_t vertices;
  std::size_t edges;
  std::size_t tracked_bytes;   ///< framework-owned peak (MemoryTracker)
  std::size_t graph_bytes;     ///< of which: graph topology
  std::size_t vm_hwm_bytes;    ///< process peak RSS (the paper's time -v metric;
                               ///< falls back to current RSS on kernels
                               ///< without VmHWM), sampled at the peak
};

Sample run_at(unsigned percent) {
  auto& tracker = runtime::MemoryTracker::instance();
  tracker.reset();
  const graph::EdgeList edges = make_twitter_scaled(percent);
  const graph::CsrGraph g = graph::CsrGraph::build(
      edges, {.addressing = graph::AddressingMode::kDirect,
              .build_in_edges = false,
              .keep_weights = false});
  Sample s{};
  s.percent = percent;
  s.vertices = g.num_vertices();
  s.edges = static_cast<std::size_t>(g.num_edges());
  s.graph_bytes = g.topology_bytes();
  // Memory does not depend on the round count, so three rounds suffice to
  // reach the framework's peak footprint.
  Engine<apps::PageRank, CombinerKind::kSpinlockPush, false> engine(
      g, apps::PageRank{.rounds = 3});
  (void)engine.run();
  s.tracked_bytes = tracker.peak();
  s.vm_hwm_bytes = runtime::read_peak_rss_bytes();
  return s;
}

}  // namespace

int main() {
  const ScaledTarget target = twitter_target();
  std::cout << "iPregel Fig. 9 reproduction — PageRank memory footprint on "
               "synthetic Twitter clones\n(full size: "
            << fmt_count(target.num_vertices) << " vertices, "
            << fmt_count(target.num_edges)
            << " edges; paper full size: 52,579,682 / 1,963,263,821)\n";

  Table table("Figure 9 analog — max framework footprint vs graph size",
              {"size (%)", "|V|", "|E|", "tracked peak", "graph topology",
               "framework overhead", "VmHWM"});

  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<Sample> samples;
  for (unsigned percent = 10; percent <= 70; percent += 10) {
    const Sample s = run_at(percent);
    samples.push_back(s);
    xs.push_back(static_cast<double>(percent));
    ys.push_back(static_cast<double>(s.tracked_bytes));
    table.add_row({std::to_string(percent), fmt_count(s.vertices),
                   fmt_count(s.edges), fmt_bytes(s.tracked_bytes),
                   fmt_bytes(s.graph_bytes),
                   fmt_bytes(s.tracked_bytes - s.graph_bytes),
                   fmt_bytes(s.vm_hwm_bytes)});
  }

  // 7.4.3: linear extrapolation from the sub-breaking-point measurements...
  const LinearFit fit = fit_line(xs, ys);
  const double projected_100 = fit.at(100.0);
  std::cout << "\nlinear projection to 100%: "
            << fmt_bytes(static_cast<std::size_t>(projected_100))
            << " (paper: projection said 11 GB)\n";

  // ...then verify by actually running the full-size graph (the paper
  // deployed a 16 GB m4.xlarge for this step).
  const Sample full = run_at(100);
  table.add_row({"100", fmt_count(full.vertices), fmt_count(full.edges),
                 fmt_bytes(full.tracked_bytes), fmt_bytes(full.graph_bytes),
                 fmt_bytes(full.tracked_bytes - full.graph_bytes),
                 fmt_bytes(full.vm_hwm_bytes)});
  table.print();
  table.write_csv("results/bench_fig9.csv");

  const double error =
      (static_cast<double>(full.tracked_bytes) - projected_100) /
      static_cast<double>(full.tracked_bytes);
  std::cout << "measured 100%: " << fmt_bytes(full.tracked_bytes)
            << " — projection error " << fmt_seconds(error * 100.0)
            << "% (paper verified its 11 GB projection at 11.01 GB)\n";

  // Breaking point under the paper-proportional cap: the paper's 8 GB
  // machine held 70% of a graph whose full footprint is 11.01 GB, a
  // cap/full ratio of 0.727.
  const auto cap = static_cast<std::size_t>(
      static_cast<double>(full.tracked_bytes) * 8.0 / 11.01);
  unsigned breaking_point = 0;
  for (const Sample& s : samples) {
    if (s.tracked_bytes <= cap) {
      breaking_point = s.percent;
    }
  }
  // Refine with the fitted line.
  const double exact =
      (static_cast<double>(cap) - fit.intercept) / fit.slope;
  std::cout << "breaking point under a paper-proportional cap of "
            << fmt_bytes(cap) << ": last fitting measurement " << breaking_point
            << "%, fitted crossing at " << fmt_seconds(exact)
            << "% (paper: 70%)\n";

  std::cout << "\nPaper cross-framework comparison for full Twitter(MPI):\n"
               "  iPregel 11.01 GB (3 GB overhead) | Pregel+ 109 GB (101 GB "
               "overhead, 33x iPregel) | Giraph 264 GB (256 GB overhead, 85x "
               "iPregel)\n  this reproduction's overhead at 100%: "
            << fmt_bytes(full.tracked_bytes - full.graph_bytes) << " on a "
            << fmt_bytes(full.graph_bytes) << " graph ("
            << fmt_factor(static_cast<double>(full.tracked_bytes) /
                          static_cast<double>(full.graph_bytes))
            << " of the graph itself; paper: 11/8 = 1.38x)\n";
  return 0;
}
