// Slowdown curve of the beyond-RAM paged mode: PageRank on the wiki-like
// R-MAT graph through the streaming runner under a descending cache-budget
// ladder (all edge bytes resident, then 1/2, 1/4, 1/8), against the
// in-RAM engine baseline.
//
// Results go to results/bench_paged{,_smoke}.{csv,json}; the JSON feeds
// scripts/check_bench_regression.py. The embedded gates are correctness,
// not speed: every arm's values must be BIT-identical to the engine's
// (values_match floor), the cache may never hold more bytes than its
// ledger budget (max_overrun ceiling of zero), and the smallest arm must
// actually be beyond-RAM (streamed bytes >= 4x its budget). A paged run
// that answers differently, or overruns its reservation, exits nonzero
// and can never become a committed baseline. --smoke shrinks the graph
// and page size for the CI smoke test.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "apps/pagerank.hpp"
#include "benchlib/reporting.hpp"
#include "benchlib/workloads.hpp"
#include "core/engine.hpp"
#include "io/vfs.hpp"
#include "runtime/timer.hpp"
#include "store/page_cache.hpp"
#include "store/paged_graph.hpp"
#include "store/paged_store.hpp"
#include "store/store_writer.hpp"
#include "store/streaming_runner.hpp"

namespace {

using namespace ipregel;         // NOLINT(google-build-using-namespace)
using namespace ipregel::bench;  // NOLINT(google-build-using-namespace)

struct Params {
  bool smoke = false;
  std::size_t rounds = 10;
  std::size_t page_bytes = std::size_t{1} << 16;
  std::size_t threads = 4;
};

struct Arm {
  std::string name;
  double fraction = 1.0;  ///< cache budget as a fraction of streamed bytes
};

std::string fmt3(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: paged_scaling [--smoke]\n";
      return 2;
    }
  }
  Params p;
  p.smoke = smoke;
  if (smoke) {
    p.rounds = 6;
    p.page_bytes = std::size_t{1} << 12;
    p.threads = 2;
  }

  const Workload w =
      make_wiki_like(smoke ? BenchSize::kSmall : BenchSize::kDefault);
  const graph::CsrGraph& g = w.graph;
  apps::PageRank pr;
  pr.rounds = p.rounds;
  std::cout << "iPregel paged scaling (" << w.name
            << (smoke ? ", smoke" : "") << ", " << p.rounds
            << " PageRank rounds, " << p.page_bytes << " B pages)\n";

  const std::string bench_name =
      smoke ? "paged_scaling_smoke" : "paged_scaling";
  JsonReport report(bench_name);
  report.text("graph", w.name);
  report.text("mode", smoke ? "smoke" : "full");
  report.count("rounds", p.rounds);
  report.count("page_bytes", p.page_bytes);
  Table table("PageRank wall clock by cache budget",
              {"arm", "budget_bytes", "seconds", "slowdown", "miss_rate",
               "evictions", "ladder_level"});

  // ---- In-RAM engine baseline ------------------------------------------
  Engine<apps::PageRank, CombinerKind::kPull, false> engine(
      g, pr, EngineOptions{.threads = p.threads});
  double engine_seconds = 0.0;
  {
    runtime::Timer timer;
    (void)engine.run();
    engine_seconds = timer.seconds();
  }
  table.add_row({"in-ram engine", "-", fmt3(engine_seconds), "1.0x", "-",
                 "-", "-"});
  report.num("engine.seconds", engine_seconds);

  // ---- Write the paged store -------------------------------------------
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("ipregel_" + bench_name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "graph.pages").string();
  {
    runtime::Timer timer;
    store::write_store(g, path, nullptr,
                       {.page_bytes = p.page_bytes});
    report.num("store.write_seconds", timer.seconds());
  }

  const store::PagedStore store(io::real_vfs(), path);
  const std::uint64_t streamed =
      store.superblock().section(store::Section::kOutTargets).payload_bytes +
      store.superblock().section(store::Section::kInTargets).payload_bytes;
  report.count("store.streamed_bytes", streamed);
  std::cout << "streamed sections: " << streamed << " B in "
            << store.num_pages() << " pages\n";

  // ---- Budget ladder ----------------------------------------------------
  // Floors: the budget must at least admit one frame per thread plus one
  // for read-ahead, or the arm measures budget exhaustion, not paging.
  const std::uint64_t min_budget = (p.threads + 1) * p.page_bytes;
  const std::vector<Arm> arms = {{"budget_full", 1.0},
                                 {"budget_half", 0.5},
                                 {"budget_quarter", 0.25},
                                 {"budget_eighth", 0.125}};
  std::size_t max_overrun = 0;
  bool all_match = true;
  double smallest_budget = 0.0;
  for (const Arm& arm : arms) {
    const std::size_t budget = static_cast<std::size_t>(std::max<std::uint64_t>(
        min_budget,
        static_cast<std::uint64_t>(static_cast<double>(streamed) *
                                   arm.fraction)));
    smallest_budget = static_cast<double>(budget);
    store::PageCache cache(store, {.budget_bytes = budget});
    store::PagedGraph pg(store, cache);
    store::StreamingRunner<apps::PageRank> runner(pg, pr,
                                                  {.threads = p.threads});
    runtime::Timer timer;
    const store::PagedRunResult out = runner.run(store::StreamMode::kPull);
    const double seconds = timer.seconds();

    // Correctness is part of the bench contract: bit-identical to the
    // engine, byte for byte.
    for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
      if (std::memcmp(&runner.values()[s], &engine.values()[s],
                      sizeof(double)) != 0) {
        std::cerr << "FAIL: " << arm.name
                  << " diverges from the engine at slot " << s << "\n";
        all_match = false;
        break;
      }
    }
    const std::size_t overrun =
        out.cache.peak_resident_bytes > budget
            ? out.cache.peak_resident_bytes - budget
            : 0;
    max_overrun = std::max(max_overrun, overrun);
    const double accesses =
        static_cast<double>(out.cache.hits + out.cache.misses);
    const double miss_rate =
        accesses > 0.0 ? static_cast<double>(out.cache.misses) / accesses
                       : 0.0;
    const double slowdown =
        engine_seconds > 0.0 ? seconds / engine_seconds : 0.0;
    table.add_row({arm.name, std::to_string(budget), fmt3(seconds),
                   fmt3(slowdown) + "x", fmt3(miss_rate),
                   fmt_count(out.cache.evictions),
                   std::to_string(out.cache.level)});
    report.num(arm.name + ".seconds", seconds);
    report.num(arm.name + ".slowdown", slowdown);
    report.num(arm.name + ".miss_rate", miss_rate);
    report.count(arm.name + ".evictions", out.cache.evictions);
  }
  std::filesystem::remove_all(dir);

  // ---- Embedded gates ---------------------------------------------------
  report.num("values_match", all_match ? 1.0 : 0.0);
  report.floor("values_match", 1.0);
  report.num("cache.max_overrun_bytes", static_cast<double>(max_overrun));
  report.ceiling("cache.max_overrun_bytes", 0.0);
  // The smallest arm must be genuinely beyond-RAM: streamed bytes at
  // least 4x its cache budget (unless the min-frames floor dominates on
  // a tiny smoke graph, in which case the ratio is reported but the
  // claim is carried by the full run).
  const double beyond_ram_ratio =
      smallest_budget > 0.0 ? static_cast<double>(streamed) / smallest_budget
                            : 0.0;
  report.num("beyond_ram_ratio", beyond_ram_ratio);
  if (!smoke) {
    report.floor("beyond_ram_ratio", 4.0);
  }

  table.print();
  const std::string stem =
      smoke ? "results/bench_paged_smoke" : "results/bench_paged";
  table.write_csv(stem + ".csv");
  report.write(stem + ".json");
  std::cout << "\nwrote " << stem << ".json\n";

  // Self-enforce the embedded gates so a collapsed run cannot be
  // committed as a baseline that would bless the collapse.
  const std::vector<std::string> violations = report.violations();
  if (!violations.empty()) {
    std::cerr << "FAIL: " << violations.size() << " gate violation(s):\n";
    for (const std::string& v : violations) {
      std::cerr << "  " << v << "\n";
    }
    return 1;
  }
  return 0;
}
