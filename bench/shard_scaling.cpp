// Scaling and recovery costs of the multi-process sharded runtime:
// PageRank on the wiki-like R-MAT graph through 1/2/4/8 worker processes
// vs the single-process engine, plus recovery-time-per-kill under the
// chaos schedule (SIGKILL mid-run, restore from the newest per-shard
// snapshot while survivors wait at the barrier).
//
// Results go to results/bench_shard{,_smoke}.{csv,json}; the JSON feeds
// scripts/check_bench_regression.py. The embedded gates are structural,
// not machine-tuned: the 1-shard arm must stay within an order of
// magnitude of the engine (the fork/ring/barrier plumbing is overhead,
// not a slowdown machine), recovery must complete in bounded time, and
// the binary enforces result correctness itself — the sharded values
// must match the engine (bit-identical at 1 shard, re-association noise
// only beyond) and the post-recovery values must be BIT-identical to the
// undisturbed sharded run, else it exits nonzero and can never become a
// committed baseline. --smoke shrinks the graph and the shard ladder for
// the CI smoke test.
//
// --transport=tcp re-runs the same ladder and recovery cycle over TCP
// loopback instead of the shm rings (results/bench_shard_tcp{,_smoke}):
// same correctness contract, same structural gates with wider overhead
// margins (a loopback socket hop per frame is real cost, not a
// regression), so the network data plane is priced and gated separately
// from the shm one.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "apps/pagerank.hpp"
#include "benchlib/reporting.hpp"
#include "benchlib/workloads.hpp"
#include "core/runner.hpp"
#include "runtime/timer.hpp"
#include "shard/resilient.hpp"

namespace {

using namespace ipregel;         // NOLINT(google-build-using-namespace)
using namespace ipregel::bench;  // NOLINT(google-build-using-namespace)

struct Params {
  bool smoke = false;
  bool tcp = false;
  std::size_t rounds = 10;
  std::vector<std::size_t> shard_ladder{1, 2, 4, 8};
  double shard1_speedup_floor = 0.1;   ///< 1-shard <= 10x engine wall
  double recovery_ceiling_seconds = 60.0;
  /// Superstep at which the COORDINATOR is killed, and the ceiling on the
  /// takeover's resume-to-first-committed-barrier latency.
  std::uint64_t coord_kill_superstep = 7;
  double coord_recovery_ceiling_seconds = 60.0;
};

Params make_params(bool smoke, bool tcp) {
  Params p;
  p.smoke = smoke;
  p.tcp = tcp;
  if (smoke) {
    p.rounds = 6;
    p.shard_ladder = {1, 2};
    // Sanitizer CI boxes are ~10x slower and the smoke graph is small
    // enough that fixed fork/mmap setup dominates: keep the structural
    // claim (bounded overhead, bounded recovery), widen the margins.
    p.shard1_speedup_floor = 0.02;
    p.recovery_ceiling_seconds = 120.0;
    // The smoke run is only p.rounds=6 supersteps long: kill earlier.
    p.coord_kill_superstep = 4;
    p.coord_recovery_ceiling_seconds = 120.0;
  }
  if (tcp) {
    // Every frame pays a loopback socket round-trip and the ctrl plane
    // runs over TCP too; halve the overhead floor rather than letting
    // the shm gate condemn the priced-in network cost.
    p.shard1_speedup_floor /= 2.0;
  }
  return p;
}

struct Arm {
  double seconds = 0.0;
  std::size_t supersteps = 0;
  std::uint64_t messages = 0;
  std::vector<double> values;
};

[[nodiscard]] double max_abs_diff(const std::vector<double>& a,
                                  const std::vector<double>& b,
                                  std::size_t first_slot) {
  double worst = 0.0;
  for (std::size_t s = first_slot; s < a.size(); ++s) {
    worst = std::max(worst, std::abs(a[s] - b[s]));
  }
  return worst;
}

std::string fmt3(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool tcp = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--transport=tcp") {
      tcp = true;
    } else if (arg == "--transport=shm") {
      tcp = false;
    } else {
      std::cerr << "usage: shard_scaling [--smoke] [--transport=shm|tcp]\n";
      return 2;
    }
  }
  const Params p = make_params(smoke, tcp);
  const Workload w =
      make_wiki_like(smoke ? BenchSize::kSmall : BenchSize::kDefault);
  const graph::CsrGraph& g = w.graph;
  apps::PageRank pr;
  pr.rounds = p.rounds;
  const char* transport_name = tcp ? "tcp" : "shm";
  std::cout << "iPregel shard scaling (" << w.name
            << (smoke ? ", smoke" : "") << ", " << transport_name
            << " transport, " << p.rounds << " PageRank rounds)\n";

  std::string bench_name = "shard_scaling";
  if (tcp) bench_name += "_tcp";
  if (smoke) bench_name += "_smoke";
  JsonReport report(bench_name);
  report.text("graph", w.name);
  report.text("mode", smoke ? "smoke" : "full");
  report.text("transport", transport_name);
  report.count("rounds", p.rounds);
  Table table("PageRank wall clock by worker-process count",
              {"arm", "seconds", "speedup", "supersteps", "messages"});

  // ---- Single-process engine baseline ----------------------------------
  Arm single;
  {
    runtime::Timer timer;
    const RunResult r =
        run_version(g, pr, VersionId{CombinerKind::kPull, false},
                    EngineOptions{}, nullptr, &single.values);
    single.seconds = timer.seconds();
    single.supersteps = r.supersteps;
    single.messages = r.total_messages;
  }
  table.add_row({"single-process", fmt3(single.seconds), "1.0x",
                 fmt_count(single.supersteps), fmt_count(single.messages)});
  report.num("single_process.seconds", single.seconds);

  // ---- Shard ladder ----------------------------------------------------
  for (const std::size_t shards : p.shard_ladder) {
    shard::ShardOptions opt;
    opt.num_shards = shards;
    if (p.tcp) opt.transport = shard::TransportKind::kTcp;
    Arm arm;
    runtime::Timer timer;
    const auto outcome = shard::run_sharded(g, pr, opt, &arm.values);
    arm.seconds = timer.seconds();
    if (!outcome.ok()) {
      std::cerr << "FAIL: " << shards
                << "-shard run errored: " << outcome.error->what() << "\n";
      return 1;
    }
    arm.supersteps = outcome.result.supersteps;
    arm.messages = outcome.result.total_messages;
    // Correctness is part of the bench contract: re-association across
    // shard batches moves doubles by ~1e-12 ULP noise, nothing more.
    const double diff =
        max_abs_diff(arm.values, single.values, g.first_slot());
    if (diff > 1e-9) {
      std::cerr << "FAIL: " << shards
                << "-shard values diverge from the engine by " << diff
                << "\n";
      return 1;
    }
    const double speedup =
        arm.seconds > 0.0 ? single.seconds / arm.seconds : 0.0;
    const std::string name = "shards_" + std::to_string(shards);
    table.add_row({name, fmt3(arm.seconds), fmt_factor(speedup),
                   fmt_count(arm.supersteps), fmt_count(arm.messages)});
    report.num(name + ".seconds", arm.seconds);
    report.num(name + ".speedup", speedup);
  }
  report.floor("shards_1.speedup", p.shard1_speedup_floor);

  // ---- Recovery time per kill ------------------------------------------
  // A checkpointed 2-shard run where each shard is SIGKILLed once at a
  // different superstep; the coordinator's recovery_seconds counts death
  // detection to barrier re-entry, and the values must still be
  // bit-identical to an undisturbed run with the same options.
  const std::filesystem::path ckpt_dir =
      std::filesystem::temp_directory_path() /
      ("ipregel_bench_" + bench_name);
  std::filesystem::remove_all(ckpt_dir);
  std::filesystem::create_directories(ckpt_dir);
  shard::ShardOptions chaos;
  chaos.num_shards = 2;
  if (p.tcp) chaos.transport = shard::TransportKind::kTcp;
  chaos.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  chaos.checkpoint.every = 2;
  chaos.checkpoint.directory = ckpt_dir.string();
  chaos.retain_supersteps = 4;
  chaos.supervisor.backoff_initial_seconds = 0.01;

  std::vector<double> undisturbed;
  const auto base = shard::run_sharded(g, pr, chaos, &undisturbed);
  if (!base.ok()) {
    std::cerr << "FAIL: undisturbed recovery baseline errored: "
              << base.error->what() << "\n";
    return 1;
  }
  std::filesystem::remove_all(ckpt_dir);
  std::filesystem::create_directories(ckpt_dir);
  for (const std::size_t shard : {1u, 0u}) {
    shard::ShardFault kill;
    kill.kind = shard::ShardFault::Kind::kSigkill;
    kill.shard = shard;
    kill.superstep = shard == 1 ? p.rounds / 2 : p.rounds / 2 + 2;
    kill.phase = shard::ShardFault::Phase::kCompute;
    chaos.faults.push_back(kill);
  }
  std::vector<double> recovered;
  const auto outcome = shard::run_sharded(g, pr, chaos, &recovered);
  std::filesystem::remove_all(ckpt_dir);
  if (!outcome.ok()) {
    std::cerr << "FAIL: chaos run errored: " << outcome.error->what()
              << "\n";
    return 1;
  }
  if (outcome.shard.respawns == 0) {
    std::cerr << "FAIL: chaos schedule produced no kills\n";
    return 1;
  }
  for (std::size_t s = g.first_slot(); s < recovered.size(); ++s) {
    if (std::memcmp(&recovered[s], &undisturbed[s], sizeof(double)) != 0) {
      std::cerr << "FAIL: post-recovery values are not bit-identical at "
                   "slot "
                << s << "\n";
      return 1;
    }
  }
  const double per_kill =
      outcome.shard.recovery_seconds /
      static_cast<double>(outcome.shard.respawns);
  std::cout << "recovery: " << outcome.shard.respawns << " kills, "
            << fmt3(outcome.shard.recovery_seconds)
            << " s recovering total, " << fmt3(per_kill)
            << " s per kill, " << outcome.shard.snapshot_recoveries
            << " snapshot restores\n";
  report.count("recovery.kills", outcome.shard.respawns);
  report.count("recovery.snapshot_restores",
               outcome.shard.snapshot_recoveries);
  report.num("recovery.total_seconds", outcome.shard.recovery_seconds);
  report.num("recovery.seconds_per_kill", per_kill);
  report.ceiling("recovery.seconds_per_kill", p.recovery_ceiling_seconds);

  // ---- Coordinator recovery time ---------------------------------------
  // The tentpole cost: SIGKILL the COORDINATOR right after a partial
  // proceed delivery and price the takeover — supervisor fork to the
  // takeover's first freshly committed barrier (manifest load, fence
  // claim, reattach window, adoption, resumed release). Values must
  // still be bit-identical to the undisturbed run, and the latency is a
  // self-enforced ceiling so a takeover that crawls (or silently
  // restarts from scratch) can never become a committed baseline.
  const std::filesystem::path run_dir =
      std::filesystem::temp_directory_path() /
      ("ipregel_bench_" + bench_name + "_coord");
  std::filesystem::remove_all(ckpt_dir);
  std::filesystem::remove_all(run_dir);
  std::filesystem::create_directories(ckpt_dir);
  std::filesystem::create_directories(run_dir);
  shard::ShardOptions coord;
  coord.num_shards = 2;
  if (p.tcp) coord.transport = shard::TransportKind::kTcp;
  coord.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  coord.checkpoint.every = 2;
  coord.checkpoint.directory = ckpt_dir.string();
  coord.retain_supersteps = 4;
  coord.supervisor.backoff_initial_seconds = 0.01;
  coord.recovery.directory = run_dir.string();
  coord.recovery.reattach_wait_seconds = 0.4;
  shard::CoordFault coord_kill;
  coord_kill.kind = shard::CoordFault::Kind::kSigkill;
  coord_kill.phase = shard::CoordFault::Phase::kProceed;
  coord_kill.superstep = p.coord_kill_superstep;
  coord.coord_faults = {coord_kill};
  std::vector<double> resumed;
  const auto takeover = shard::run_sharded_resilient(g, pr, coord, &resumed);
  std::filesystem::remove_all(ckpt_dir);
  std::filesystem::remove_all(run_dir);
  if (!takeover.ok()) {
    std::cerr << "FAIL: coordinator-kill run errored: "
              << takeover.error->what() << "\n";
    return 1;
  }
  if (takeover.shard.coordinator_takeovers == 0) {
    std::cerr << "FAIL: the coordinator kill never fired\n";
    return 1;
  }
  for (std::size_t s = g.first_slot(); s < resumed.size(); ++s) {
    if (std::memcmp(&resumed[s], &undisturbed[s], sizeof(double)) != 0) {
      std::cerr << "FAIL: post-takeover values are not bit-identical at "
                   "slot "
                << s << "\n";
      return 1;
    }
  }
  const double coord_seconds = takeover.shard.coordinator_recovery_seconds;
  std::cout << "coordinator recovery: "
            << takeover.shard.coordinator_takeovers << " takeover(s), "
            << takeover.shard.adopted_workers << " worker(s) adopted, "
            << fmt3(coord_seconds) << " s resume-to-barrier\n";
  table.add_row({"coordinator-recovery", fmt3(coord_seconds), "-", "-",
                 fmt_count(takeover.shard.adopted_workers)});
  report.count("recovery.coordinator_takeovers",
               takeover.shard.coordinator_takeovers);
  report.count("recovery.adopted_workers", takeover.shard.adopted_workers);
  report.num("recovery.coordinator_recovery_seconds", coord_seconds);
  report.ceiling("recovery.coordinator_recovery_seconds",
                 p.coord_recovery_ceiling_seconds);

  table.print();
  std::string stem = "results/bench_shard";
  if (tcp) stem += "_tcp";
  if (smoke) stem += "_smoke";
  table.write_csv(stem + ".csv");
  report.write(stem + ".json");
  std::cout << "\nwrote " << stem << ".json\n";

  // Self-enforce the embedded gates so a collapsed run cannot be
  // committed as a baseline that would bless the collapse.
  const std::vector<std::string> violations = report.violations();
  if (!violations.empty()) {
    std::cerr << "FAIL: " << violations.size()
              << " gate violation(s):\n";
    for (const std::string& v : violations) {
      std::cerr << "  " << v << "\n";
    }
    return 1;
  }
  return 0;
}
