// Reproduces the paper's Table 1: the graphs of the Pregel+ comparison.
// Prints the stand-ins' structural statistics next to the paper's
// originals, making the substitution auditable: the wiki-like stand-in must
// be dense and skewed, the road-like one sparse and near-regular.

#include <iostream>

#include "benchlib/reporting.hpp"
#include "benchlib/workloads.hpp"
#include "graph/graph_stats.hpp"

int main() {
  using namespace ipregel;         // NOLINT(google-build-using-namespace)
  using namespace ipregel::bench;  // NOLINT(google-build-using-namespace)

  Table table("Table 1 analog — graphs used in the comparison with Pregel+",
              {"name", "|V|", "|E|", "avg out-deg", "max out-deg",
               "paper graph", "paper |V|", "paper |E|"});

  const Workload wiki = make_wiki_like();
  const graph::GraphStats ws = graph::compute_stats(wiki.graph);
  table.add_row({wiki.name, fmt_count(ws.num_vertices),
                 fmt_count(static_cast<std::size_t>(ws.num_edges)),
                 fmt_seconds(ws.average_out_degree),
                 fmt_count(ws.max_out_degree), wiki.paper_name, "18,268,992",
                 "172,183,984"});

  const Workload road = make_road_like();
  const graph::GraphStats rs = graph::compute_stats(road.graph);
  table.add_row({road.name, fmt_count(rs.num_vertices),
                 fmt_count(static_cast<std::size_t>(rs.num_edges)),
                 fmt_seconds(rs.average_out_degree),
                 fmt_count(rs.max_out_degree), road.paper_name, "23,947,347",
                 "58,333,344"});

  table.print();
  table.write_csv("results/bench_table1.csv");

  std::cout << "\nstructural contract: wiki-like must be dense & skewed "
               "(paper avg deg 9.4), road-like sparse & near-regular with "
               "huge diameter (paper avg deg 2.4).\n";
  return 0;
}
