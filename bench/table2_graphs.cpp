// Reproduces the paper's Table 2: the graphs of the memory-footprint
// experiments (Twitter(MPI) and Friendster). The stand-ins are generated at
// the configured |V|/|E| targets, proportionally scaled from the paper's
// originals exactly as the paper's own section 7.4.2 scales its synthetic
// clones. A 10% instance of each is generated and verified against its
// target ratio.

#include <iostream>

#include "benchlib/reporting.hpp"
#include "benchlib/workloads.hpp"
#include "graph/csr.hpp"
#include "graph/graph_stats.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace ipregel;         // NOLINT(google-build-using-namespace)
  using namespace ipregel::bench;  // NOLINT(google-build-using-namespace)

  Table table("Table 2 analog — graphs for the memory-footprint experiments",
              {"name", "target |V|", "target |E|", "edges per vertex",
               "paper |V|", "paper |E|", "paper e/v"});

  const ScaledTarget tw = twitter_target();
  table.add_row({"twitter-like", fmt_count(tw.num_vertices),
                 fmt_count(tw.num_edges),
                 fmt_seconds(static_cast<double>(tw.num_edges) /
                             static_cast<double>(tw.num_vertices)),
                 "52,579,682", "1,963,263,821", "37.34"});
  const ScaledTarget fr = friendster_target();
  table.add_row({"friendster-like", fmt_count(fr.num_vertices),
                 fmt_count(fr.num_edges),
                 fmt_seconds(static_cast<double>(fr.num_edges) /
                             static_cast<double>(fr.num_vertices)),
                 "68,349,466", "2,586,147,869", "37.84"});
  table.print();
  table.write_csv("results/bench_table2.csv");

  // Verify the generator honours the 10% contract of section 7.4.2.
  const graph::EdgeList ten = make_twitter_scaled(10);
  const graph::CsrGraph g = graph::CsrGraph::build(
      ten, {.addressing = graph::AddressingMode::kDirect,
            .build_in_edges = false});
  const auto stats = graph::compute_stats(g);
  std::cout << "\n10% twitter-like instance: "
            << stats.to_string("generated") << "\n(targets: |V| >= "
            << fmt_count(tw.num_vertices / 10) << ", |E| = "
            << fmt_count(tw.num_edges / 10) << ")\n";
  return 0;
}
