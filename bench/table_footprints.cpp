// Reproduces the per-version memory accounting of the paper's section
// 7.4.1: for every framework version, the byte-exact breakdown of the
// engine's footprint on the wiki-like graph, by MemoryTracker category.
//
// Expected shape (paper, Wikipedia graph):
//  - mutex versions heaviest among push (2 GB): 40-byte locks per vertex;
//  - spinlock versions lighter (1.5 GB): 4-byte locks — the section 6.1
//    "90% reduction of the data-race protection";
//  - broadcast (pull) versions carry zero lock memory, but need
//    in-neighbour lists, and with the selection bypass additionally
//    out-neighbour lists (paper: 1.5 GB -> 2.5 GB).

#include <iostream>
#include <string>

#include "apps/hashmin.hpp"
#include "benchlib/reporting.hpp"
#include "benchlib/workloads.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "runtime/memory_tracker.hpp"

namespace {

using namespace ipregel;         // NOLINT(google-build-using-namespace)
using namespace ipregel::bench;  // NOLINT(google-build-using-namespace)
using runtime::MemCategory;
using runtime::MemoryTracker;

graph::EdgeList wiki_edges() {
  auto size = bench_size();
  unsigned scale = size == BenchSize::kSmall ? 14u : 18u;
  unsigned ef = size == BenchSize::kSmall ? 8u : 12u;
  return graph::rmat(scale, ef, {.seed = 20180813});
}

/// Builds the graph with exactly the neighbour lists the version needs —
/// the paper's "tailor-made internals (in only, out only, in and out)"
/// driven by compilation flags (section 3.2/6.2).
graph::CsrGraph build_for(const graph::EdgeList& e, bool needs_in) {
  return graph::CsrGraph::build(
      e, {.addressing = graph::AddressingMode::kDirect,
          .build_in_edges = needs_in,
          .keep_weights = false});
}

template <CombinerKind K, bool Bypass>
void report(Table& table, const graph::EdgeList& e) {
  MemoryTracker& tracker = MemoryTracker::instance();
  tracker.reset();
  const graph::CsrGraph g = build_for(e, K == CombinerKind::kPull);
  Engine<apps::Hashmin, K, Bypass> engine(g);
  (void)engine.run();  // frontiers/outboxes reach their peak while running
  table.add_row({std::string(version_name({K, Bypass})),
                 fmt_bytes(tracker.bytes(MemCategory::kGraphTopology)),
                 fmt_bytes(tracker.bytes(MemCategory::kVertexValues) +
                           tracker.bytes(MemCategory::kVertexInternals)),
                 fmt_bytes(tracker.bytes(MemCategory::kMailboxes)),
                 fmt_bytes(tracker.bytes(MemCategory::kLocks)),
                 fmt_bytes(tracker.bytes(MemCategory::kOutboxes)),
                 fmt_bytes(tracker.bytes(MemCategory::kFrontier)),
                 fmt_bytes(tracker.peak())});
}

}  // namespace

int main() {
  std::cout << "iPregel section 7.4.1 reproduction — per-version memory "
               "footprint (Hashmin on the wiki-like graph)\n";
  const graph::EdgeList e = wiki_edges();
  Table table("Per-version framework footprint",
              {"version", "graph", "vertex state", "mailboxes", "locks",
               "outboxes", "frontier", "peak total"});
  report<CombinerKind::kMutexPush, false>(table, e);
  report<CombinerKind::kMutexPush, true>(table, e);
  report<CombinerKind::kSpinlockPush, false>(table, e);
  report<CombinerKind::kSpinlockPush, true>(table, e);
  report<CombinerKind::kPull, false>(table, e);
  report<CombinerKind::kPull, true>(table, e);
  table.print();
  table.write_csv("results/bench_footprints.csv");

  std::cout << "\nchecks: locks(mutex) = 10x locks(spinlock) per section "
               "6.1 (40 B vs 4 B per vertex); locks(broadcast) = 0; pull "
               "versions carry the in-edge half of the graph; the bypass "
               "frontier is the only addition of the bypass versions.\n";
  return 0;
}
