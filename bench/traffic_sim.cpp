// Traffic simulation for the resident query service: Poisson-arrival
// point-query streams at several offered loads against a pinned R-MAT
// epoch, reporting the SLO surface (p50/p99 latency, throughput), batch
// occupancy, cache hit rate, and shed counts per load.
//
// Two phases:
//
//  1. Batching ablation (cache off): the same hot-source distance-query
//     stream — sources Zipf-drawn from a small popular set, targets all
//     different, the shape of per-user queries about trending content —
//     through max_batch = 1 (every query a solo engine run) and
//     max_batch = 8 (queries coalesced into MultiBfs lanes, same-source
//     members deduplicated onto shared lanes). The throughput ratio is
//     the service's headline number — lanes share one graph scan per
//     superstep and a popular source costs one lane per batch instead
//     of one run per query — and is gated as an absolute floor in the
//     JSON report.
//
//  2. Mixed traffic: a Zipf-popular pool of repeat queries (distance /
//     reachability / PPR) plus a small unique long tail, arriving as a
//     Poisson process at 0.5x / 1x / 2x of the measured closed-loop
//     capacity. Repeats hit the result cache at submit; tail misses
//     accumulate behind running batches and fill lanes, so occupancy
//     climbs with load while admission control (queue bound, deadlines)
//     sheds typed rather than letting latency grow without bound.
//
// Results go to results/bench_traffic{,_smoke}.csv and .json; the JSON
// is the input to scripts/check_bench_regression.py. Besides the
// batching-speedup floor, the JSON embeds absolute SLO gates (hit rate,
// completion fraction, throughput, p99 ceilings) that the binary
// enforces on itself before exiting — an invalid run (cold cache, debug
// build, contended box) fails loudly instead of producing a report that
// could be committed as a self-blessing baseline. --smoke shrinks the
// graph and the stream for the CI smoke test; the full run answers
// >= 10^5 queries (3 loads x 40,000) on the wiki-like R-MAT s18 epoch.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "benchlib/reporting.hpp"
#include "benchlib/workloads.hpp"
#include "graph/csr.hpp"
#include "query/service.hpp"
#include "runtime/timer.hpp"
#include "service/shed.hpp"

namespace {

using namespace ipregel;         // NOLINT(google-build-using-namespace)
using namespace ipregel::bench;  // NOLINT(google-build-using-namespace)
using query::PointQuery;
using query::QueryKind;
using query::QueryResult;
using query::QueryService;
using query::QueryTicket;

struct SimParams {
  bool smoke = false;
  std::size_t pool_size = 512;        ///< distinct repeat queries
  std::size_t queries_per_load = 40000;
  std::size_t calibration = 4000;
  double tail_fraction = 0.005;       ///< unique (always-miss) share
  double deadline_fraction = 0.10;
  double deadline_seconds = 1.0;
  double speedup_floor = 3.0;
  // Absolute SLO gates, embedded in the JSON so they travel with the
  // run: a collapsed run (cold cache, engine-bound traffic, unbounded
  // queueing) fails at generation time and can never be committed as a
  // baseline that would re-derive the regression limits from itself.
  // Wide margins — healthy runs sit 10-1000x inside them — because they
  // exist to catch order-of-magnitude collapse, not machine variance.
  double hit_rate_floor = 0.90;        ///< warm Zipf pool, 0.5% tail
  double completed_floor = 0.97;       ///< completed/offered at <= 1x load
  double throughput_floor_qps = 200;   ///< cache-hit-dominated service
  double p99_ceiling_ms = 250;         ///< at <= 1x offered load
  double overload_p99_ceiling_ms = 5000;  ///< at > 1x: shed, don't queue
  std::size_t ablation_queries = 64;
  /// Distinct Zipf-popular sources in the ablation stream. Small on
  /// purpose: batching pays off when concurrent queries ask about the
  /// same trending vertices.
  std::size_t ablation_hot_sources = 3;
  std::vector<double> loads{0.5, 1.0, 2.0};
};

SimParams make_params(bool smoke) {
  SimParams p;
  p.smoke = smoke;
  if (smoke) {
    p.pool_size = 48;
    p.queries_per_load = 400;
    p.calibration = 200;
    p.tail_fraction = 0.05;
    p.deadline_seconds = 2.0;
    // The smoke graph is small enough that fixed per-run overhead eats
    // into the lane win (measured ~5x vs ~4.7x full); the smoke floor
    // asserts the structural claim — coalescing wins well beyond noise —
    // with margin for slow CI boxes.
    p.speedup_floor = 2.0;
    p.ablation_queries = 16;
    // Smoke runs on arbitrary CI boxes: relax the absolute SLO gates
    // further (the smoke tail is 5%, so engine-run misses sit inside the
    // p99; a slow box pushes them to tens of ms, not seconds).
    p.hit_rate_floor = 0.85;
    p.throughput_floor_qps = 100;
    p.p99_ceiling_ms = 1000;
  }
  return p;
}

QueryService::Config service_config(std::size_t max_batch, double linger,
                                    bool enable_cache) {
  QueryService::Config cfg;
  cfg.jobs.executors = 1;  // single-core box: one engine run at a time
  cfg.jobs.team_threads = 1;
  cfg.broker.dispatchers = 1;
  cfg.broker.max_batch = max_batch;
  cfg.broker.max_linger_seconds = linger;
  cfg.broker.max_pending = 4096;
  cfg.broker.ppr_rounds = 10;
  cfg.broker.enable_cache = enable_cache;
  return cfg;
}

[[nodiscard]] double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) {
    return 0.0;
  }
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(xs.size())));
  return xs[std::min(rank == 0 ? 0 : rank - 1, xs.size() - 1)];
}

[[nodiscard]] graph::vid_t random_id(const graph::CsrGraph& g,
                                     std::mt19937_64& rng) {
  std::uniform_int_distribution<std::size_t> slot(g.first_slot(),
                                                  g.num_slots() - 1);
  return g.id_of(slot(rng));
}

/// `bfs_only` restricts the draw to the BFS family. The always-miss tail
/// uses it: an uncached PPR is a full power iteration costing seconds,
/// so a fresh-PPR tail would measure the engine, not the service — PPR
/// traffic instead lives in the repeat pool, where it is computed once
/// per epoch and cache-served (and re-computed after an epoch swap).
PointQuery random_query(const graph::CsrGraph& g, std::mt19937_64& rng,
                        const SimParams& p, bool bfs_only = false) {
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  const double kind_draw = coin(rng) * (bfs_only ? 0.85 : 1.0);
  PointQuery q;
  if (kind_draw < 0.70) {
    q.kind = QueryKind::kDistance;
    q.source = random_id(g, rng);
    const std::size_t targets = 1 + static_cast<std::size_t>(rng() % 3);
    for (std::size_t t = 0; t < targets; ++t) {
      q.targets.push_back(random_id(g, rng));
    }
  } else if (kind_draw < 0.85) {
    q.kind = QueryKind::kReachability;
    q.source = random_id(g, rng);
    q.targets = {random_id(g, rng)};
  } else {
    q.kind = QueryKind::kPpr;
    const std::size_t seeds = 1 + static_cast<std::size_t>(rng() % 3);
    for (std::size_t s = 0; s < seeds; ++s) {
      q.seeds.push_back(random_id(g, rng));
    }
  }
  // Deadlines go on the interactive (BFS-family) queries only: a full
  // PPR power iteration costs orders of magnitude more than any
  // interactive SLO, so a deadlined PPR would never complete, never be
  // cached, and burn a watchdog-killed engine run on every repeat —
  // best-effort is the only sane contract for it.
  if (q.kind != QueryKind::kPpr && coin(rng) < p.deadline_fraction) {
    q.deadline_seconds = p.deadline_seconds;
  }
  return q;
}

/// Zipf-popular repeat pool: query i is drawn with weight 1/(i+1)^0.9.
struct TrafficPool {
  std::vector<PointQuery> queries;
  std::vector<double> cdf;

  TrafficPool(const graph::CsrGraph& g, std::mt19937_64& rng,
              const SimParams& p) {
    queries.reserve(p.pool_size);
    cdf.reserve(p.pool_size);
    double mass = 0.0;
    for (std::size_t i = 0; i < p.pool_size; ++i) {
      queries.push_back(random_query(g, rng, p));
      mass += 1.0 / std::pow(static_cast<double>(i + 1), 0.9);
      cdf.push_back(mass);
    }
    for (double& c : cdf) {
      c /= mass;
    }
  }

  [[nodiscard]] const PointQuery& sample(std::mt19937_64& rng) const {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    const auto it = std::upper_bound(cdf.begin(), cdf.end(), u(rng));
    const auto idx = static_cast<std::size_t>(it - cdf.begin());
    return queries[std::min(idx, queries.size() - 1)];
  }
};

struct LoadResult {
  double offered_qps = 0.0;
  std::size_t offered = 0;
  std::size_t completed = 0;
  std::size_t cache_hits = 0;
  std::size_t shed = 0;      ///< typed: submit rejections + shed results
  std::size_t failed = 0;
  double wall_seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double occupancy = 0.0;    ///< mean lanes per engine run this load
};

/// Drives `count` queries through `svc` and accounts the outcomes. When
/// `arrival_qps` > 0 arrivals follow a Poisson process at that rate
/// (open loop: the schedule does not wait for answers); 0 = closed-loop
/// back-to-back submission.
LoadResult run_stream(QueryService& svc, const TrafficPool& pool,
                      const graph::CsrGraph& g, const SimParams& p,
                      std::mt19937_64& rng, std::size_t count,
                      double arrival_qps) {
  const query::QueryBroker::Stats before = svc.broker_stats();
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::exponential_distribution<double> interarrival(
      arrival_qps > 0.0 ? arrival_qps : 1.0);

  std::vector<QueryTicket> tickets;
  tickets.reserve(count);
  LoadResult out;
  out.offered = count;
  out.offered_qps = arrival_qps;

  runtime::Timer timer;
  auto next_arrival = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < count; ++i) {
    if (arrival_qps > 0.0) {
      next_arrival += std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(interarrival(rng)));
      std::this_thread::sleep_until(next_arrival);
    }
    const bool tail = u(rng) < p.tail_fraction;
    PointQuery q = tail ? random_query(g, rng, p, /*bfs_only=*/true)
                        : pool.sample(rng);
    try {
      tickets.push_back(svc.query(std::move(q)));
    } catch (const service::ShedError&) {
      ++out.shed;  // typed admission rejection (queue full / shutdown)
    }
  }

  std::vector<double> latencies;
  latencies.reserve(tickets.size());
  for (QueryTicket& t : tickets) {
    const QueryResult& r = t.wait();
    switch (r.status) {
      case QueryResult::Status::kOk:
        ++out.completed;
        out.cache_hits += r.from_cache ? 1 : 0;
        latencies.push_back(r.latency_seconds);
        break;
      case QueryResult::Status::kShed:
        ++out.shed;
        break;
      case QueryResult::Status::kFailed:
        ++out.failed;
        break;
    }
  }
  out.wall_seconds = timer.seconds();
  out.p50_ms = percentile(latencies, 0.50) * 1e3;
  out.p99_ms = percentile(latencies, 0.99) * 1e3;

  const query::QueryBroker::Stats after = svc.broker_stats();
  const std::size_t batches = after.batches - before.batches;
  const std::size_t lanes = after.lanes - before.lanes;
  out.occupancy = batches > 0
                      ? static_cast<double>(lanes) /
                            static_cast<double>(batches)
                      : 0.0;
  return out;
}

struct AblationResult {
  double qps = 0.0;
  std::size_t lanes = 0;         ///< queries served by engine runs
  std::size_t engine_lanes = 0;  ///< lanes actually computed (post-dedup)
};

/// Phase 1: identical hot-source distance-query stream, batch-of-1 vs
/// batch-of-8, cache disabled so every query reaches the engine. Sources
/// are Zipf-drawn from `ablation_hot_sources` popular vertices (targets
/// all different, so the result cache could not have answered these
/// either). CsrGraph is move-only (it owns its memory reservation), so
/// each arm regenerates the deterministic workload instead of copying.
AblationResult run_ablation_arm(BenchSize size, const SimParams& p,
                                std::size_t max_batch) {
  QueryService svc(service_config(max_batch, /*linger=*/0.005,
                                  /*enable_cache=*/false));
  Workload w = make_wiki_like(size);
  svc.publish(std::move(w.graph));
  const graph::CsrGraph& graph = svc.current_epoch()->graph();
  std::mt19937_64 rng(7);  // same stream for both arms

  // The hot set is the graph's top-out-degree vertices — on a wiki-like
  // graph the trending hubs are exactly what concurrent users ask about,
  // and hub BFS is the expensive case worth coalescing (a random vertex
  // of a directed R-MAT often reaches almost nothing). Zipf(1.1)
  // popularity across the set, same shape as the phase-2 repeat pool.
  std::vector<std::size_t> by_degree(graph.num_slots() -
                                     graph.first_slot());
  for (std::size_t i = 0; i < by_degree.size(); ++i) {
    by_degree[i] = graph.first_slot() + i;
  }
  const std::size_t hot_n =
      std::min(p.ablation_hot_sources, by_degree.size());
  std::partial_sort(by_degree.begin(),
                    by_degree.begin() + static_cast<std::ptrdiff_t>(hot_n),
                    by_degree.end(),
                    [&](std::size_t a, std::size_t b) {
                      return graph.out_degree(a) > graph.out_degree(b);
                    });
  std::vector<graph::vid_t> hot;
  std::vector<double> cdf;
  double mass = 0.0;
  for (std::size_t i = 0; i < hot_n; ++i) {
    hot.push_back(graph.id_of(by_degree[i]));
    mass += 1.0 / std::pow(static_cast<double>(i + 1), 1.1);
    cdf.push_back(mass);
  }
  for (double& c : cdf) {
    c /= mass;
  }
  const auto hot_source = [&](std::mt19937_64& r) {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    const auto it = std::upper_bound(cdf.begin(), cdf.end(), u(r));
    const auto idx = static_cast<std::size_t>(it - cdf.begin());
    return hot[std::min(idx, hot.size() - 1)];
  };

  std::vector<QueryTicket> tickets;
  tickets.reserve(p.ablation_queries);
  runtime::Timer timer;
  for (std::size_t i = 0; i < p.ablation_queries; ++i) {
    PointQuery q;
    q.kind = QueryKind::kDistance;
    q.source = hot_source(rng);
    q.targets = {random_id(graph, rng)};
    tickets.push_back(svc.query(std::move(q)));
  }
  for (QueryTicket& t : tickets) {
    const QueryResult& r = t.wait();
    if (r.status != QueryResult::Status::kOk) {
      std::cerr << "ablation query did not complete\n";
      std::exit(1);
    }
  }
  AblationResult out;
  const double wall = timer.seconds();
  out.qps = wall > 0.0
                ? static_cast<double>(p.ablation_queries) / wall
                : 0.0;
  const auto stats = svc.broker_stats();
  out.lanes = stats.lanes;
  out.engine_lanes = stats.engine_lanes;
  return out;
}

std::string fmt_rate(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

std::string fmt_load(double load) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.1fx", load);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: traffic_sim [--smoke]\n";
      return 2;
    }
  }
  const SimParams p = make_params(smoke);
  const BenchSize size = smoke ? BenchSize::kSmall : BenchSize::kDefault;
  Workload w = make_wiki_like(size);
  const std::string graph_name = w.name;
  std::cout << "iPregel query-service traffic simulation (" << graph_name
            << (smoke ? ", smoke" : "") << ")\n";

  // ---- Phase 1: batching ablation --------------------------------------
  const AblationResult solo = run_ablation_arm(size, p, 1);
  const AblationResult batched =
      run_ablation_arm(size, p, query::QueryBroker::kMaxLanes);
  const double solo_qps = solo.qps;
  const double batched_qps = batched.qps;
  const double speedup = solo_qps > 0.0 ? batched_qps / solo_qps : 0.0;
  std::cout << "batching ablation: solo " << fmt_rate(solo_qps)
            << " q/s, batched " << fmt_rate(batched_qps) << " q/s ("
            << fmt_factor(speedup) << "), " << batched.engine_lanes
            << " computed lanes served " << batched.lanes << " queries\n";

  // ---- Phase 2: Poisson mixed traffic ----------------------------------
  QueryService svc(
      service_config(query::QueryBroker::kMaxLanes, 0.002, true));
  svc.publish(std::move(w.graph));
  const graph::CsrGraph& g = svc.current_epoch()->graph();
  std::mt19937_64 rng(20180813);
  const TrafficPool pool(g, rng, p);

  // Warm the cache with one pass over the pool so the measured loads see
  // steady-state traffic (hits dominate; the tail keeps the engine busy).
  // Deadlines are stripped for the warm pass: they are execution hints,
  // not part of the cache key, and a deadlined query expiring behind a
  // slow PPR batch here would leave a permanently-cold pool entry that
  // no steady-state service would have.
  {
    std::vector<QueryTicket> warm;
    warm.reserve(pool.queries.size());
    for (const PointQuery& q : pool.queries) {
      PointQuery relaxed = q;
      relaxed.deadline_seconds = 0.0;
      warm.push_back(svc.query(std::move(relaxed)));
    }
    for (QueryTicket& t : warm) {
      (void)t.wait();
    }
  }

  {
    const auto ws = svc.broker_stats();
    std::cout << "after warmup: submitted " << ws.submitted << ", hits "
              << ws.cache_hits << ", completed " << ws.completed
              << ", shed " << ws.shed << ", failed " << ws.failed
              << ", batches " << ws.batches << ", engine lanes "
              << ws.engine_lanes << "\n";
  }
  const auto cal_before = svc.broker_stats();
  const LoadResult base =
      run_stream(svc, pool, g, p, rng, p.calibration, 0.0);
  const double base_qps =
      base.wall_seconds > 0.0
          ? static_cast<double>(base.completed) / base.wall_seconds
          : 0.0;
  const auto cal_after = svc.broker_stats();
  std::cout << "closed-loop capacity: " << fmt_rate(base_qps)
            << " q/s (wall " << fmt_seconds(base.wall_seconds)
            << " s, hits " << base.cache_hits << "/" << base.completed
            << ", shed " << base.shed << ", failed " << base.failed
            << ", batches " << (cal_after.batches - cal_before.batches)
            << ", engine lanes "
            << (cal_after.engine_lanes - cal_before.engine_lanes)
            << ")\n";

  Table table("Poisson traffic vs offered load",
              {"load", "offered q/s", "queries", "completed", "hits",
               "shed", "failed", "occupancy", "q/s", "p50 (ms)",
               "p99 (ms)"});
  JsonReport report(smoke ? "traffic_sim_smoke" : "traffic_sim");
  report.text("graph", graph_name);
  report.text("mode", smoke ? "smoke" : "full");
  report.count("pool_size", p.pool_size);
  report.count("queries_per_load", p.queries_per_load);
  report.num("tail_fraction", p.tail_fraction);
  report.num("batching.solo_qps", solo_qps);
  report.num("batching.batched_qps", batched_qps);
  report.count("batching.queries_served", batched.lanes);
  report.count("batching.lanes_computed", batched.engine_lanes);
  report.num("batching_speedup", speedup);
  report.floor("batching_speedup", p.speedup_floor);

  std::size_t total_queries = 0;
  for (const double load : p.loads) {
    const LoadResult r = run_stream(svc, pool, g, p, rng,
                                    p.queries_per_load, load * base_qps);
    total_queries += r.offered;
    const double qps =
        r.wall_seconds > 0.0
            ? static_cast<double>(r.completed) / r.wall_seconds
            : 0.0;
    const double hit_rate =
        r.completed > 0 ? static_cast<double>(r.cache_hits) /
                              static_cast<double>(r.completed)
                        : 0.0;
    const double completed_fraction =
        r.offered > 0 ? static_cast<double>(r.completed) /
                            static_cast<double>(r.offered)
                      : 0.0;
    table.add_row({fmt_load(load), fmt_rate(r.offered_qps),
                   fmt_count(r.offered), fmt_count(r.completed),
                   fmt_count(r.cache_hits), fmt_count(r.shed),
                   fmt_count(r.failed), fmt_rate(r.occupancy),
                   fmt_rate(qps), fmt_seconds(r.p50_ms),
                   fmt_seconds(r.p99_ms)});
    const std::string key = "load_" + fmt_load(load);
    report.num(key + ".offered_qps", r.offered_qps);
    report.count(key + ".completed", r.completed);
    report.count(key + ".shed", r.shed);
    report.count(key + ".failed", r.failed);
    report.num(key + ".completed_fraction", completed_fraction);
    report.num(key + ".throughput_qps", qps);
    report.num(key + ".hit_rate", hit_rate);
    report.num(key + ".occupancy", r.occupancy);
    report.num(key + ".p50_ms", r.p50_ms);
    report.num(key + ".p99_ms", r.p99_ms);
    // Absolute SLO gates per load. At <= 1x (sustainable) load the
    // service must keep up: near-total completion, warm-cache hit rate,
    // hit-path tail latency. At deliberate overload (> 1x) admission
    // control sheds typed instead of queueing without bound, so
    // completion is not gated there but the tail still must stay
    // deadline-bounded rather than growing to minutes.
    report.floor(key + ".hit_rate", p.hit_rate_floor);
    report.floor(key + ".throughput_qps", p.throughput_floor_qps);
    if (load <= 1.0) {
      report.floor(key + ".completed_fraction", p.completed_floor);
      report.ceiling(key + ".p99_ms", p.p99_ceiling_ms);
    } else {
      report.ceiling(key + ".p99_ms", p.overload_p99_ceiling_ms);
    }
  }
  report.count("total_queries", total_queries);

  table.print();
  const std::string stem =
      smoke ? "results/bench_traffic_smoke" : "results/bench_traffic";
  table.write_csv(stem + ".csv");
  report.write(stem + ".json");
  std::cout << "\nwrote " << stem << ".json\n";

  // Self-enforce every embedded floor/ceiling: a run that violates its
  // own SLO gates exits nonzero, so its report cannot quietly become the
  // committed baseline (which would re-derive the relative regression
  // limits from the collapsed numbers and bless them forever).
  const std::vector<std::string> violations = report.violations();
  if (!violations.empty()) {
    std::cerr << "FAIL: " << violations.size()
              << " SLO gate violation(s):\n";
    for (const std::string& v : violations) {
      std::cerr << "  " << v << "\n";
    }
    return 1;
  }
  return 0;
}
