file(REMOVE_RECURSE
  "CMakeFiles/ablation_addressing.dir/ablation_addressing.cpp.o"
  "CMakeFiles/ablation_addressing.dir/ablation_addressing.cpp.o.d"
  "ablation_addressing"
  "ablation_addressing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_addressing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
