# Empty compiler generated dependencies file for ablation_addressing.
# This may be replaced when dependencies are built.
