file(REMOVE_RECURSE
  "CMakeFiles/ablation_locks.dir/ablation_locks.cpp.o"
  "CMakeFiles/ablation_locks.dir/ablation_locks.cpp.o.d"
  "ablation_locks"
  "ablation_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
