file(REMOVE_RECURSE
  "CMakeFiles/fig7_versions.dir/fig7_versions.cpp.o"
  "CMakeFiles/fig7_versions.dir/fig7_versions.cpp.o.d"
  "fig7_versions"
  "fig7_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
