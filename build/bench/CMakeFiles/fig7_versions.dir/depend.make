# Empty dependencies file for fig7_versions.
# This may be replaced when dependencies are built.
