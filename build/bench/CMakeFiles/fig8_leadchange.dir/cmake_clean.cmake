file(REMOVE_RECURSE
  "CMakeFiles/fig8_leadchange.dir/fig8_leadchange.cpp.o"
  "CMakeFiles/fig8_leadchange.dir/fig8_leadchange.cpp.o.d"
  "fig8_leadchange"
  "fig8_leadchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_leadchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
