# Empty dependencies file for fig8_leadchange.
# This may be replaced when dependencies are built.
