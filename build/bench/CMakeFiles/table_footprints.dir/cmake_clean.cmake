file(REMOVE_RECURSE
  "CMakeFiles/table_footprints.dir/table_footprints.cpp.o"
  "CMakeFiles/table_footprints.dir/table_footprints.cpp.o.d"
  "table_footprints"
  "table_footprints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_footprints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
