# Empty dependencies file for table_footprints.
# This may be replaced when dependencies are built.
