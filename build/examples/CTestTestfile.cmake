# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_algorithm "/root/repo/build/examples/custom_algorithm")
set_tests_properties(example_custom_algorithm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cluster_simulation "/root/repo/build/examples/cluster_simulation" "2")
set_tests_properties(example_cluster_simulation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
