file(REMOVE_RECURSE
  "CMakeFiles/ipregel_apps.dir/serial_reference.cpp.o"
  "CMakeFiles/ipregel_apps.dir/serial_reference.cpp.o.d"
  "libipregel_apps.a"
  "libipregel_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipregel_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
