file(REMOVE_RECURSE
  "libipregel_apps.a"
)
