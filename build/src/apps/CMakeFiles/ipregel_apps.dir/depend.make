# Empty dependencies file for ipregel_apps.
# This may be replaced when dependencies are built.
