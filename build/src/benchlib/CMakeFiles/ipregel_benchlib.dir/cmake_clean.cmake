file(REMOVE_RECURSE
  "CMakeFiles/ipregel_benchlib.dir/extrapolate.cpp.o"
  "CMakeFiles/ipregel_benchlib.dir/extrapolate.cpp.o.d"
  "CMakeFiles/ipregel_benchlib.dir/reporting.cpp.o"
  "CMakeFiles/ipregel_benchlib.dir/reporting.cpp.o.d"
  "CMakeFiles/ipregel_benchlib.dir/workloads.cpp.o"
  "CMakeFiles/ipregel_benchlib.dir/workloads.cpp.o.d"
  "libipregel_benchlib.a"
  "libipregel_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipregel_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
