file(REMOVE_RECURSE
  "libipregel_benchlib.a"
)
