# Empty compiler generated dependencies file for ipregel_benchlib.
# This may be replaced when dependencies are built.
