file(REMOVE_RECURSE
  "CMakeFiles/ipregel_graph.dir/csr.cpp.o"
  "CMakeFiles/ipregel_graph.dir/csr.cpp.o.d"
  "CMakeFiles/ipregel_graph.dir/edge_list.cpp.o"
  "CMakeFiles/ipregel_graph.dir/edge_list.cpp.o.d"
  "CMakeFiles/ipregel_graph.dir/generators.cpp.o"
  "CMakeFiles/ipregel_graph.dir/generators.cpp.o.d"
  "CMakeFiles/ipregel_graph.dir/graph_stats.cpp.o"
  "CMakeFiles/ipregel_graph.dir/graph_stats.cpp.o.d"
  "CMakeFiles/ipregel_graph.dir/io.cpp.o"
  "CMakeFiles/ipregel_graph.dir/io.cpp.o.d"
  "CMakeFiles/ipregel_graph.dir/normalize.cpp.o"
  "CMakeFiles/ipregel_graph.dir/normalize.cpp.o.d"
  "libipregel_graph.a"
  "libipregel_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipregel_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
