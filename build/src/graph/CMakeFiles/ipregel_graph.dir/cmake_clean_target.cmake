file(REMOVE_RECURSE
  "libipregel_graph.a"
)
