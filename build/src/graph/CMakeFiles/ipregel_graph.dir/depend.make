# Empty dependencies file for ipregel_graph.
# This may be replaced when dependencies are built.
