file(REMOVE_RECURSE
  "CMakeFiles/ipregel_runtime.dir/memory_tracker.cpp.o"
  "CMakeFiles/ipregel_runtime.dir/memory_tracker.cpp.o.d"
  "CMakeFiles/ipregel_runtime.dir/stats.cpp.o"
  "CMakeFiles/ipregel_runtime.dir/stats.cpp.o.d"
  "CMakeFiles/ipregel_runtime.dir/thread_pool.cpp.o"
  "CMakeFiles/ipregel_runtime.dir/thread_pool.cpp.o.d"
  "libipregel_runtime.a"
  "libipregel_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipregel_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
