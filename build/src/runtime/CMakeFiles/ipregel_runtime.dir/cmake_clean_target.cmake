file(REMOVE_RECURSE
  "libipregel_runtime.a"
)
