# Empty compiler generated dependencies file for ipregel_runtime.
# This may be replaced when dependencies are built.
