file(REMOVE_RECURSE
  "CMakeFiles/test_apps_components.dir/test_apps_components.cpp.o"
  "CMakeFiles/test_apps_components.dir/test_apps_components.cpp.o.d"
  "test_apps_components"
  "test_apps_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
