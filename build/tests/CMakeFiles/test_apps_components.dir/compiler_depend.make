# Empty compiler generated dependencies file for test_apps_components.
# This may be replaced when dependencies are built.
