file(REMOVE_RECURSE
  "CMakeFiles/test_apps_paths.dir/test_apps_paths.cpp.o"
  "CMakeFiles/test_apps_paths.dir/test_apps_paths.cpp.o.d"
  "test_apps_paths"
  "test_apps_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
