# Empty compiler generated dependencies file for test_apps_paths.
# This may be replaced when dependencies are built.
