file(REMOVE_RECURSE
  "CMakeFiles/test_core_aggregator.dir/test_core_aggregator.cpp.o"
  "CMakeFiles/test_core_aggregator.dir/test_core_aggregator.cpp.o.d"
  "test_core_aggregator"
  "test_core_aggregator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_aggregator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
