# Empty dependencies file for test_core_aggregator.
# This may be replaced when dependencies are built.
