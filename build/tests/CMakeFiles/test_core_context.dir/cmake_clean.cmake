file(REMOVE_RECURSE
  "CMakeFiles/test_core_context.dir/test_core_context.cpp.o"
  "CMakeFiles/test_core_context.dir/test_core_context.cpp.o.d"
  "test_core_context"
  "test_core_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
