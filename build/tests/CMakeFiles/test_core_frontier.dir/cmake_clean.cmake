file(REMOVE_RECURSE
  "CMakeFiles/test_core_frontier.dir/test_core_frontier.cpp.o"
  "CMakeFiles/test_core_frontier.dir/test_core_frontier.cpp.o.d"
  "test_core_frontier"
  "test_core_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
