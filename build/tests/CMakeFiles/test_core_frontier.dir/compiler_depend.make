# Empty compiler generated dependencies file for test_core_frontier.
# This may be replaced when dependencies are built.
