file(REMOVE_RECURSE
  "CMakeFiles/test_core_halting.dir/test_core_halting.cpp.o"
  "CMakeFiles/test_core_halting.dir/test_core_halting.cpp.o.d"
  "test_core_halting"
  "test_core_halting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_halting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
