# Empty compiler generated dependencies file for test_core_halting.
# This may be replaced when dependencies are built.
