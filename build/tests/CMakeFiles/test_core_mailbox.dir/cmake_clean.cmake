file(REMOVE_RECURSE
  "CMakeFiles/test_core_mailbox.dir/test_core_mailbox.cpp.o"
  "CMakeFiles/test_core_mailbox.dir/test_core_mailbox.cpp.o.d"
  "test_core_mailbox"
  "test_core_mailbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_mailbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
