# Empty compiler generated dependencies file for test_core_mailbox.
# This may be replaced when dependencies are built.
