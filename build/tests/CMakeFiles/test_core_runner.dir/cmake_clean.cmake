file(REMOVE_RECURSE
  "CMakeFiles/test_core_runner.dir/test_core_runner.cpp.o"
  "CMakeFiles/test_core_runner.dir/test_core_runner.cpp.o.d"
  "test_core_runner"
  "test_core_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
