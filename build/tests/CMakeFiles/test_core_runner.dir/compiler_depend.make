# Empty compiler generated dependencies file for test_core_runner.
# This may be replaced when dependencies are built.
