file(REMOVE_RECURSE
  "CMakeFiles/test_core_scheduling.dir/test_core_scheduling.cpp.o"
  "CMakeFiles/test_core_scheduling.dir/test_core_scheduling.cpp.o.d"
  "test_core_scheduling"
  "test_core_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
