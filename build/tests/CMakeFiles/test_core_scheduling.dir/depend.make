# Empty dependencies file for test_core_scheduling.
# This may be replaced when dependencies are built.
