file(REMOVE_RECURSE
  "CMakeFiles/test_graph_normalize.dir/test_graph_normalize.cpp.o"
  "CMakeFiles/test_graph_normalize.dir/test_graph_normalize.cpp.o.d"
  "test_graph_normalize"
  "test_graph_normalize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_normalize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
