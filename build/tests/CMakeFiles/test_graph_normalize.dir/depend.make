# Empty dependencies file for test_graph_normalize.
# This may be replaced when dependencies are built.
