file(REMOVE_RECURSE
  "CMakeFiles/test_pregelplus.dir/test_pregelplus.cpp.o"
  "CMakeFiles/test_pregelplus.dir/test_pregelplus.cpp.o.d"
  "test_pregelplus"
  "test_pregelplus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pregelplus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
