# Empty dependencies file for test_pregelplus.
# This may be replaced when dependencies are built.
