file(REMOVE_RECURSE
  "CMakeFiles/test_pregelplus_apps.dir/test_pregelplus_apps.cpp.o"
  "CMakeFiles/test_pregelplus_apps.dir/test_pregelplus_apps.cpp.o.d"
  "test_pregelplus_apps"
  "test_pregelplus_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pregelplus_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
