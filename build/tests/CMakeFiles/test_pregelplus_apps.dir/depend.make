# Empty dependencies file for test_pregelplus_apps.
# This may be replaced when dependencies are built.
