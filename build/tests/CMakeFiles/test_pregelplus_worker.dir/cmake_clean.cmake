file(REMOVE_RECURSE
  "CMakeFiles/test_pregelplus_worker.dir/test_pregelplus_worker.cpp.o"
  "CMakeFiles/test_pregelplus_worker.dir/test_pregelplus_worker.cpp.o.d"
  "test_pregelplus_worker"
  "test_pregelplus_worker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pregelplus_worker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
