file(REMOVE_RECURSE
  "CMakeFiles/test_property_all_versions.dir/test_property_all_versions.cpp.o"
  "CMakeFiles/test_property_all_versions.dir/test_property_all_versions.cpp.o.d"
  "test_property_all_versions"
  "test_property_all_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_all_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
