# Empty compiler generated dependencies file for test_property_all_versions.
# This may be replaced when dependencies are built.
