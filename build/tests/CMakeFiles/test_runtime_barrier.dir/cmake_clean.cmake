file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_barrier.dir/test_runtime_barrier.cpp.o"
  "CMakeFiles/test_runtime_barrier.dir/test_runtime_barrier.cpp.o.d"
  "test_runtime_barrier"
  "test_runtime_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
