# Empty compiler generated dependencies file for test_runtime_barrier.
# This may be replaced when dependencies are built.
