file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_memory_tracker.dir/test_runtime_memory_tracker.cpp.o"
  "CMakeFiles/test_runtime_memory_tracker.dir/test_runtime_memory_tracker.cpp.o.d"
  "test_runtime_memory_tracker"
  "test_runtime_memory_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_memory_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
