file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_partition_rng.dir/test_runtime_partition_rng.cpp.o"
  "CMakeFiles/test_runtime_partition_rng.dir/test_runtime_partition_rng.cpp.o.d"
  "test_runtime_partition_rng"
  "test_runtime_partition_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_partition_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
