# Empty dependencies file for test_runtime_partition_rng.
# This may be replaced when dependencies are built.
