file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_spinlock.dir/test_runtime_spinlock.cpp.o"
  "CMakeFiles/test_runtime_spinlock.dir/test_runtime_spinlock.cpp.o.d"
  "test_runtime_spinlock"
  "test_runtime_spinlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_spinlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
