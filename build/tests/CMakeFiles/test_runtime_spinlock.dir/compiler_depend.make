# Empty compiler generated dependencies file for test_runtime_spinlock.
# This may be replaced when dependencies are built.
