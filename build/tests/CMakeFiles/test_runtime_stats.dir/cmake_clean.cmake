file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_stats.dir/test_runtime_stats.cpp.o"
  "CMakeFiles/test_runtime_stats.dir/test_runtime_stats.cpp.o.d"
  "test_runtime_stats"
  "test_runtime_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
