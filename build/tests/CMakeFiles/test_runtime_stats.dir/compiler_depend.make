# Empty compiler generated dependencies file for test_runtime_stats.
# This may be replaced when dependencies are built.
