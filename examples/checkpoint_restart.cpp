// Checkpoint/restart walkthrough: run SSSP with checkpointing on, crash
// it mid-run with the deterministic fault injector, then recover from the
// newest snapshot and verify the result matches an uninterrupted run.
//
//   $ ./examples/checkpoint_restart
//
// Everything here is driven through EngineOptions — the same program and
// the same run_version call, with fault tolerance switched on by filling
// in options.checkpoint (and, for the demo, options.fault).

#include <cstdio>
#include <filesystem>
#include <vector>

#include "ipregel.hpp"
#include "apps/sssp.hpp"

int main() {
  using namespace ipregel;  // NOLINT(google-build-using-namespace)

  // A grid road network: a long SSSP wavefront, many supersteps.
  const graph::CsrGraph g = graph::CsrGraph::build(
      graph::grid_2d(48, 48, {.removal_fraction = 0.05, .seed = 4}),
      {.addressing = graph::AddressingMode::kDirect,
       .build_in_edges = false});
  const apps::Sssp program{.source = 0};
  const VersionId version{CombinerKind::kSpinlockPush,
                          /*selection_bypass=*/true};

  // 1. The reference: an uninterrupted run.
  std::vector<std::uint32_t> expected;
  const RunResult clean =
      run_version(g, program, version, {}, nullptr, &expected);
  std::printf("clean run:     %zu supersteps\n", clean.supersteps);

  // 2. A run with checkpointing on — and a planted crash.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ipregel_ckpt_example")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  EngineOptions options;
  options.checkpoint.trigger = ft::CheckpointTrigger::kEveryK;
  options.checkpoint.every = 5;        // snapshot every 5 supersteps
  options.checkpoint.mode = ft::CheckpointMode::kLightweight;
  options.checkpoint.directory = dir;  // "<dir>/snapshot.<N>.ipsnap"
  options.fault.superstep = clean.supersteps / 2;  // crash mid-run
  options.fault.after_compute_calls = 10;

  try {
    (void)run_version(g, program, version, options);
    std::printf("the planted fault did not trip?\n");
    return 1;
  } catch (const ft::InjectedFault& crash) {
    std::printf("crashed:       %s\n", crash.what());
  }

  // 3. Recovery: resume from the newest snapshot. The engine validates it
  // first (graph fingerprint, format version, per-section checksums) and
  // — since this is a lightweight snapshot — regenerates the in-flight
  // messages from the restored distances via Sssp::resend.
  const auto snapshot = ft::latest_snapshot(dir, "snapshot");
  if (!snapshot) {
    std::printf("no snapshot found\n");
    return 1;
  }
  std::printf("recovering:    %s\n", snapshot->c_str());

  std::vector<std::uint32_t> recovered;
  const RunResult resumed = run_version(g, program, version, {}, nullptr,
                                        &recovered, *snapshot);
  std::printf("resumed run:   %zu supersteps total (re-ran %zu)\n",
              resumed.supersteps,
              resumed.supersteps - ft::read_snapshot_meta(*snapshot).superstep);

  // 4. The recovered result must be identical to the uninterrupted one.
  std::size_t mismatches = 0;
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    if (recovered[s] != expected[s]) {
      ++mismatches;
    }
  }
  std::filesystem::remove_all(dir);
  if (mismatches != 0) {
    std::printf("FAILED: %zu vertices diverged after recovery\n",
                mismatches);
    return 1;
  }
  std::printf("verified:      recovered distances identical on all %zu "
              "vertices\n",
              g.num_vertices());
  return 0;
}
