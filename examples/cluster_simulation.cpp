// Driving the Pregel+ baseline directly: simulate a distributed in-memory
// vertex-centric framework on a cluster of your choosing and compare it
// with single-node iPregel — a miniature of the paper's Fig. 8 experiment.
//
//   $ ./examples/cluster_simulation [nodes]

#include <cstdio>
#include <cstdlib>

#include "ipregel.hpp"
#include "apps/pagerank.hpp"
#include "pregelplus/cluster.hpp"

int main(int argc, char** argv) {
  using namespace ipregel;  // NOLINT(google-build-using-namespace)
  const std::size_t nodes =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;

  graph::EdgeList edges = graph::rmat(16, 10, {.seed = 2});
  const graph::CsrGraph g = graph::CsrGraph::build(
      edges, {.addressing = graph::AddressingMode::kDirect,
              .build_in_edges = true});
  std::printf("graph: %zu vertices, %llu edges\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  const apps::PageRank program{.rounds = 30};

  // Single-node iPregel, the paper's best PageRank version (pull).
  Engine<apps::PageRank, CombinerKind::kPull, false> engine(g, program);
  const RunResult local = engine.run();
  std::printf("iPregel (1 node, broadcast version): %.3f s\n", local.seconds);

  // The simulated Pregel+ cluster: the paper's EC2 m4.large parameters.
  pregelplus::Cluster<apps::PageRank> cluster(
      g, program,
      {.num_nodes = nodes,
       .procs_per_node = 2,
       .bandwidth_mbps = 450.0,
       .superstep_latency_s = 5e-4});
  const auto sim = cluster.run();
  std::printf(
      "Pregel+ (%zu nodes x 2 procs): %.3f s simulated "
      "(compute %.3f s + network %.3f s, %.1f MB crossed the wire)\n",
      nodes, sim.simulated_seconds, sim.compute_seconds, sim.comm_seconds,
      static_cast<double>(sim.cross_node_bytes) / 1e6);
  std::printf("single-node iPregel is %.2fx %s\n",
              sim.simulated_seconds > local.seconds
                  ? sim.simulated_seconds / local.seconds
                  : local.seconds / sim.simulated_seconds,
              sim.simulated_seconds > local.seconds ? "faster" : "slower");

  // The results must be identical, cluster or not.
  const auto cluster_values = cluster.collect_values();
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    const double diff = engine.values()[s] - cluster_values[s];
    if (diff > 1e-12 || diff < -1e-12) {
      std::printf("MISMATCH at vertex %u\n", g.id_of(s));
      return 1;
    }
  }
  std::printf("cluster and single-node results agree exactly.\n");
  return 0;
}
