// Connected components of a social network — the paper's Hashmin scenario.
//
// Generates a scale-free network (the regime of the paper's Wikipedia
// graph), symmetrises it (components are defined on the undirected
// structure), labels every vertex with its component's minimum id via
// Hashmin, and prints the component-size distribution.
//
//   $ ./examples/connected_components            # generated network
//   $ ./examples/connected_components edges.txt  # any "src dst" edge list

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "ipregel.hpp"
#include "apps/hashmin.hpp"

int main(int argc, char** argv) {
  using namespace ipregel;  // NOLINT(google-build-using-namespace)

  graph::EdgeList edges;
  if (argc > 1) {
    std::printf("loading edge list %s ...\n", argv[1]);
    edges = graph::load_edge_list_text(argv[1]);
  } else {
    std::printf("generating a scale-free network (R-MAT s17) ...\n");
    edges = graph::rmat(17, 8, {.seed = 11});
  }
  edges.symmetrize();

  const graph::CsrGraph g = graph::CsrGraph::build(
      edges, {.addressing = graph::AddressingMode::kOffset,
              .build_in_edges = false,
              .keep_weights = false});
  std::printf("graph: %zu vertices, %llu directed edges\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  Engine<apps::Hashmin, CombinerKind::kSpinlockPush, /*Bypass=*/true> engine(
      g);
  const RunResult result = engine.run();
  std::printf("Hashmin: %zu supersteps, %zu messages, %.3f s\n",
              result.supersteps, result.total_messages, result.seconds);

  // Component size census.
  std::map<graph::vid_t, std::size_t> size_of_component;
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    ++size_of_component[engine.values()[s]];
  }
  std::vector<std::size_t> sizes;
  sizes.reserve(size_of_component.size());
  for (const auto& [label, size] : size_of_component) {
    sizes.push_back(size);
  }
  std::sort(sizes.rbegin(), sizes.rend());

  std::printf("\ncomponents: %zu\n", sizes.size());
  std::printf("largest component: %zu vertices (%.1f%% of the graph)\n",
              sizes.front(),
              100.0 * static_cast<double>(sizes.front()) /
                  static_cast<double>(g.num_vertices()));
  std::printf("top component sizes:");
  for (std::size_t i = 0; i < std::min<std::size_t>(10, sizes.size()); ++i) {
    std::printf(" %zu", sizes[i]);
  }
  std::printf("\n");
  return 0;
}
