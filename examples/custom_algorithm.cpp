// Writing your own vertex program — the user-facing side of the paper's
// Fig. 4 ("IP_compute" / "IP_combine").
//
// This example implements multi-source BFS ("how far is every vertex from
// its nearest fire station?") from scratch against the public API, then
// runs it under two different framework versions to show that a program is
// written once and executes under any module version (paper section 3.1.2).
//
//   $ ./examples/custom_algorithm

#include <algorithm>
#include <cstdio>
#include <limits>
#include <span>

#include "ipregel.hpp"

namespace {

using namespace ipregel;  // NOLINT(google-build-using-namespace)

/// A vertex program is a plain struct:
///  - two type aliases (vertex value, message),
///  - two capability flags that unlock the framework's optimised versions,
///  - initial_value / compute / combine.
struct NearestStation {
  using value_type = std::uint32_t;    // hop distance to the closest source
  using message_type = std::uint32_t;

  // We only ever broadcast the same value to all out-neighbours, so the
  // race-free pull combiner is applicable...
  static constexpr bool broadcast_only = true;
  // ...and every vertex votes to halt every superstep, so the selection
  // bypass is applicable too. All six framework versions are legal.
  static constexpr bool always_halts = true;

  static constexpr value_type kFar = std::numeric_limits<value_type>::max();

  std::span<const graph::vid_t> stations;

  [[nodiscard]] value_type initial_value(graph::vid_t) const noexcept {
    return kFar;
  }

  void compute(auto& ctx) const {
    // Seed: stations are at distance 0 of themselves.
    std::uint32_t best =
        std::find(stations.begin(), stations.end(), ctx.id()) !=
                stations.end() && ctx.is_first_superstep()
            ? 0u
            : kFar;
    std::uint32_t m = 0;
    while (ctx.get_next_message(m)) {
      best = std::min(best, m);
    }
    if (best < ctx.value()) {
      ctx.value() = best;                // improved: record and propagate
      ctx.broadcast(ctx.value() + 1);
    }
    ctx.vote_to_halt();                  // always halt; messages reactivate
  }

  /// Must be commutative & associative; min is.
  static void combine(message_type& old,
                      const message_type& incoming) noexcept {
    old = std::min(old, incoming);
  }
};

}  // namespace

int main() {
  // A city-block street grid with three fire stations.
  graph::EdgeList streets = graph::grid_2d(60, 80, {.seed = 3});
  const graph::CsrGraph g = graph::CsrGraph::build(
      streets, {.addressing = graph::AddressingMode::kDirect,
                .build_in_edges = true});  // in-edges: allow the pull version

  const graph::vid_t stations[] = {0, 2444, 4799};
  const NearestStation program{.stations = stations};

  // Version 1: spinlock push combiner + selection bypass.
  Engine<NearestStation, CombinerKind::kSpinlockPush, true> push_engine(
      g, program);
  const RunResult push_run = push_engine.run();

  // Version 2: pull combiner (race-free), same program source.
  Engine<NearestStation, CombinerKind::kPull, false> pull_engine(g, program);
  const RunResult pull_run = pull_engine.run();

  std::printf("push+bypass: %zu supersteps, %.3f ms\n", push_run.supersteps,
              push_run.seconds * 1e3);
  std::printf("pull:        %zu supersteps, %.3f ms\n", pull_run.supersteps,
              pull_run.seconds * 1e3);

  // Both versions must agree, whatever the message delivery order was.
  std::uint32_t worst = 0;
  double sum = 0.0;
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    if (push_engine.values()[s] != pull_engine.values()[s]) {
      std::printf("MISMATCH at vertex %u\n", g.id_of(s));
      return 1;
    }
    worst = std::max(worst, push_engine.values()[s]);
    sum += push_engine.values()[s];
  }
  std::printf(
      "every corner agrees: max distance to a station %u blocks, mean "
      "%.1f\n",
      worst, sum / static_cast<double>(g.num_vertices()));
  return 0;
}
