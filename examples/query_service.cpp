// Query-service walkthrough: a resident graph served as immutable
// epochs, with point queries (distance, reachability, personalized
// PageRank) batched into shared engine runs, answered from a result
// cache on repeats, and surviving an epoch swap mid-flight.
//
//   $ ./examples/query_service
//
// The serving pipeline under the hood: QueryService::query() pins the
// current GraphEpoch and checks the ResultCache; on a miss the
// QueryBroker lingers briefly for batch-compatible companions, packs up
// to 8 queries into the lanes of ONE MultiBfs/MultiPpr engine run, and
// submits it through the JobManager — so admission control, deadlines,
// and memory budgeting from the serving layer apply to query traffic
// unchanged.

#include <cstdio>
#include <vector>

#include "ipregel.hpp"

int main() {
  using namespace ipregel;  // NOLINT(google-build-using-namespace)
  using query::PointQuery;
  using query::QueryKind;
  using query::QueryResult;

  // A resident service: one engine run at a time, queries batched up to
  // 8 lanes, answers cached until the epoch they were computed on is
  // replaced by different content.
  query::QueryService::Config config;
  config.jobs.executors = 1;
  config.jobs.team_threads = 2;
  config.broker.max_batch = 8;
  config.broker.max_linger_seconds = 0.005;
  config.broker.ppr_rounds = 15;
  query::QueryService service(config);

  // Publish the first epoch. Epochs are immutable: reloading the graph
  // later swaps a NEW epoch in atomically instead of mutating this one.
  service.publish(graph::CsrGraph::build(
      graph::rmat(12, 8, {.seed = 42}),
      {.addressing = graph::AddressingMode::kDirect,
       .build_in_edges = true}));
  const auto epoch = service.current_epoch();
  std::printf("epoch %llu published (fingerprint %016llx)\n",
              static_cast<unsigned long long>(epoch->id()),
              static_cast<unsigned long long>(epoch->fingerprint()));

  // A burst of compatible point queries: submitted together, they share
  // one engine run (watch batch_occupancy).
  std::vector<query::QueryTicket> burst;
  for (const graph::vid_t source : {7u, 100u, 555u, 2048u}) {
    burst.push_back(service.query(PointQuery{
        .kind = QueryKind::kDistance, .source = source, .targets = {0}}));
  }
  for (query::QueryTicket& ticket : burst) {
    const QueryResult& r = ticket.wait();
    std::printf("distance -> 0: %u   (batch of %zu, %.2f ms)\n",
                r.distances[0], r.batch_occupancy,
                r.latency_seconds * 1e3);
  }

  // Repeats hit the result cache: no engine run, microsecond latency.
  const QueryResult cold = service.query_sync(PointQuery{
      .kind = QueryKind::kReachability, .source = 7, .targets = {2048}});
  const QueryResult warm = service.query_sync(PointQuery{
      .kind = QueryKind::kReachability, .source = 7, .targets = {2048}});
  std::printf("reachable(7 -> 2048): %s  cold %.2f ms, cached %.3f ms\n",
              cold.reachable ? "yes" : "no", cold.latency_seconds * 1e3,
              warm.latency_seconds * 1e3);

  // Personalized PageRank around a seed set: top-ranked vertices only —
  // the service returns the requested slice, never an O(|V|) vector.
  const QueryResult ppr = service.query_sync(
      PointQuery{.kind = QueryKind::kPpr, .seeds = {7, 100}, .top_n = 5});
  std::printf("ppr top-%zu from {7, 100}:", ppr.top.size());
  for (const query::RankedVertex& v : ppr.top) {
    std::printf("  %u (%.4f)", v.id, v.rank);
  }
  std::printf("\n");

  // Reload: publish a different graph. In-flight queries finish against
  // the epoch they pinned; new queries see the new epoch; the replaced
  // epoch's cache entries are invalidated.
  service.publish(graph::CsrGraph::build(
      graph::rmat(12, 8, {.seed = 43}),
      {.addressing = graph::AddressingMode::kDirect,
       .build_in_edges = true}));
  const QueryResult fresh = service.query_sync(PointQuery{
      .kind = QueryKind::kReachability, .source = 7, .targets = {2048}});
  std::printf("after reload: epoch %llu answers (cache was invalidated: "
              "from_cache=%s)\n",
              static_cast<unsigned long long>(fresh.epoch_id),
              fresh.from_cache ? "true" : "false");

  const auto broker = service.broker_stats();
  const auto cache = service.cache_stats();
  std::printf("service: %zu queries, %zu engine runs serving %zu lanes, "
              "%zu cache hits\n",
              broker.submitted, broker.batches, broker.lanes,
              cache.hits);

  service.shutdown();
  return broker.failed == 0 ? 0 : 1;
}
