// Quickstart: the smallest complete iPregel program.
//
// Builds a toy web graph, runs PageRank under the pull ("broadcast")
// combiner — the fastest version for PageRank per the paper's Fig. 7 —
// and prints the ranking.
//
//   $ ./examples/quickstart
//
// The same program can be re-run under any framework version by changing
// one template argument; results are identical (that is tested in
// tests/test_engine_smoke.cpp).

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "ipregel.hpp"
#include "apps/pagerank.hpp"

int main() {
  using namespace ipregel;  // NOLINT(google-build-using-namespace)

  // A little link graph: page 0 is a hub, pages 3-5 form a ring.
  graph::EdgeList links;
  links.add(1, 0);
  links.add(2, 0);
  links.add(3, 0);
  links.add(0, 3);
  links.add(3, 4);
  links.add(4, 5);
  links.add(5, 3);
  links.add(2, 3);
  links.add(1, 2);

  // The pull combiner gathers from in-neighbours, so build them.
  const graph::CsrGraph g = graph::CsrGraph::build(
      links, {.addressing = graph::AddressingMode::kDirect,
              .build_in_edges = true});

  Engine<apps::PageRank, CombinerKind::kPull, /*Bypass=*/false> engine(
      g, apps::PageRank{.rounds = 30});
  const RunResult result = engine.run();

  std::printf("PageRank finished: %zu supersteps, %zu messages, %.3f ms\n",
              result.supersteps, result.total_messages,
              result.seconds * 1e3);

  std::vector<std::size_t> order(g.num_slots());
  std::iota(order.begin(), order.end(), std::size_t{0});
  const auto ranks = engine.values();
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return ranks[a] > ranks[b]; });

  std::printf("\n page | rank\n------+--------\n");
  for (const std::size_t slot : order) {
    std::printf(" %4u | %.4f\n", g.id_of(slot), ranks[slot]);
  }
  return 0;
}
