// Serving-layer walkthrough: a JobManager multiplexing concurrent graph
// jobs over a fixed executor pool, with admission control, priorities,
// deadlines, per-job memory reservations, and supervised retry.
//
//   $ ./examples/serve_jobs
//
// The engine itself stays single-tenant (one run_version call per job);
// the service layer owns everything multi-tenant: who gets in, who runs
// first, who gets shed, and what each job may consume.

#include <cstdio>
#include <vector>

#include "ipregel.hpp"
#include "apps/hashmin.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"

int main() {
  using namespace ipregel;  // NOLINT(google-build-using-namespace)

  // Two tenants' graphs: a scale-free web-ish graph and a road grid.
  const graph::CsrGraph web = graph::CsrGraph::build(
      graph::rmat(10, 8, {.seed = 7}),
      {.addressing = graph::AddressingMode::kDirect,
       .build_in_edges = false});
  const graph::CsrGraph road = graph::CsrGraph::build(
      graph::grid_2d(32, 32, {.max_weight = 9, .seed = 3}),
      {.addressing = graph::AddressingMode::kDirect,
       .build_in_edges = false});

  // A small service: 2 jobs run concurrently, 4 may wait, and the ledger
  // covers 64 MiB of admitted reservations in total.
  service::JobManager::Config config;
  config.executors = 2;
  config.team_threads = 2;
  config.max_queue_depth = 4;
  config.memory_budget_bytes = 64u << 20;
  service::JobManager manager(config);

  const VersionId version{CombinerKind::kSpinlockPush,
                          /*selection_bypass=*/false};

  // Submit three jobs. The batch analytics job is low priority with no
  // deadline; the interactive query is high priority with a 2-second
  // wall budget covering queue wait AND execution; the component scan
  // reserves its bytes explicitly and asks the service to enforce them
  // as its own memory budget.
  auto batch = manager.submit(web, apps::PageRank{.rounds = 20}, version,
                              {}, {.priority = -1});
  auto interactive =
      manager.submit(road, apps::Sssp{.source = 0}, version, {},
                     {.priority = 10, .deadline_seconds = 2.0});
  auto scan = manager.submit(
      web, apps::Hashmin{}, version, {},
      {.priority = 0, .memory_reservation_bytes = 32u << 20,
       .enforce_reservation = true});

  // A ticket blocks until the job completes, fails typed, or is shed.
  const service::JobReport& hot = interactive.wait();
  std::printf("interactive:  %s in %.3fs queue + %.3fs run (%zu threads)\n",
              to_string(hot.state).data(), hot.queue_seconds,
              hot.run_seconds, hot.threads_used);

  const service::JobReport& cold = batch.wait();
  const service::JobReport& scanned = scan.wait();
  std::printf("batch:        %s after %zu supersteps\n",
              to_string(cold.state).data(), cold.result.supersteps);
  std::printf("scan:         %s, peak %zu KiB of %u MiB reserved\n",
              to_string(scanned.state).data(),
              scanned.peak_tracked_bytes / 1024, 32u);

  // Completed values are regular vectors — the same data run_version
  // would have produced solo (bit-identical for min-combined programs).
  if (hot.state == service::JobState::kCompleted) {
    std::printf("shortest path to the far corner: %u\n",
                interactive.values().back());
  }

  // Overload demo: flood the service past its queue depth. Arrivals the
  // service cannot hold are rejected *typed* at submit — callers see a
  // ShedError naming the reason instead of an unbounded backlog.
  std::vector<service::JobTicket<apps::Hashmin>> flood;
  std::size_t rejected = 0;
  for (int i = 0; i < 16; ++i) {
    try {
      flood.push_back(manager.submit(web, apps::Hashmin{}, version, {},
                                     {.priority = -5}));
    } catch (const service::ShedError& e) {
      ++rejected;
      if (rejected == 1) {
        std::printf("flood:        first rejection: %s\n", e.what());
      }
    }
  }
  std::size_t flood_completed = 0;
  for (auto& ticket : flood) {
    if (ticket.wait().state == service::JobState::kCompleted) {
      ++flood_completed;
    }
  }
  std::printf("flood:        %zu admitted+completed, %zu rejected typed\n",
              flood_completed, rejected);

  const service::JobManager::Stats stats = manager.stats();
  std::printf("service:      %zu submitted, %zu completed, %zu failed, "
              "%zu shed, peak queue %zu\n",
              stats.submitted, stats.completed, stats.failed, stats.shed,
              stats.max_queue_depth_seen);

  manager.shutdown();
  return stats.failed == 0 ? 0 : 1;
}
