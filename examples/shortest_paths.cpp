// Road-network shortest paths — the paper's SSSP scenario.
//
// Runs single-source shortest path over a road network with the paper's
// winning configuration (spinlock push combiner + selection bypass; Fig. 7
// shows a 1,400x gap over the worst version on the USA graph) and reports
// the reachability and distance distribution from the source.
//
//   $ ./examples/shortest_paths                  # generated road grid
//   $ ./examples/shortest_paths USA-road-d.USA.gr [source]
//
// With a file argument, the real DIMACS USA graph (the paper's) is loaded.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ipregel.hpp"
#include "apps/sssp.hpp"

int main(int argc, char** argv) {
  using namespace ipregel;  // NOLINT(google-build-using-namespace)

  graph::EdgeList edges;
  if (argc > 1) {
    std::printf("loading DIMACS graph %s ...\n", argv[1]);
    edges = graph::load_dimacs_gr(argv[1]);
  } else {
    std::printf("generating a 500x700 road grid ...\n");
    edges = graph::grid_2d(500, 700, {.removal_fraction = 0.03, .seed = 7});
    graph::shift_ids(edges, 1);  // road graphs conventionally start at id 1
  }
  const graph::vid_t source =
      argc > 2 ? static_cast<graph::vid_t>(std::atoi(argv[2])) : 2;

  // The paper runs its road graphs with "offset mapping with desolate
  // memory" (section 7.1.3): ids start at 1, one slot is wasted, lookups
  // stay subtraction-free.
  const graph::CsrGraph g = graph::CsrGraph::build(
      edges, {.addressing = graph::AddressingMode::kDesolate,
              .build_in_edges = false,
              .keep_weights = false});
  std::printf("graph: %zu vertices, %llu edges (avg degree %.2f)\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()),
              g.average_degree());

  Engine<apps::Sssp, CombinerKind::kSpinlockPush, /*Bypass=*/true> engine(
      g, apps::Sssp{.source = source});
  const RunResult result = engine.run();
  std::printf(
      "SSSP from vertex %u: %zu supersteps, %zu messages, %.3f s "
      "(spinlock + selection bypass)\n",
      source, result.supersteps, result.total_messages, result.seconds);

  // Distance distribution.
  const auto dist = engine.values();
  std::size_t reached = 0;
  std::uint32_t max_dist = 0;
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    if (dist[s] != apps::Sssp::kInfinity) {
      ++reached;
      max_dist = std::max(max_dist, dist[s]);
    }
  }
  std::printf("reached %zu / %zu vertices; eccentricity of the source: %u\n",
              reached, g.num_vertices(), max_dist);

  constexpr int kBuckets = 10;
  std::vector<std::size_t> histogram(kBuckets, 0);
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    if (dist[s] != apps::Sssp::kInfinity && max_dist > 0) {
      const int b = static_cast<int>(
          static_cast<std::uint64_t>(dist[s]) * (kBuckets - 1) / max_dist);
      ++histogram[static_cast<std::size_t>(b)];
    }
  }
  std::printf("\n distance decile | vertices\n-----------------+----------\n");
  for (int b = 0; b < kBuckets; ++b) {
    std::printf("   %3d%% - %3d%%   | %zu\n", b * 10, (b + 1) * 10,
                histogram[static_cast<std::size_t>(b)]);
  }
  return 0;
}
