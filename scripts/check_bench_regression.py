#!/usr/bin/env python3
"""Regression gate for the benchlib JSON reports.

Compares a candidate run (results/bench_*.json fresh from a bench
binary) against a committed baseline of the same shape and fails when a
gated metric regressed beyond the tolerance:

  * latency metrics  (key contains "p99" or "p50"): may not INCREASE by
    more than the tolerance (only p99 keys gate by default; p50 on the
    cache-hit path is ~0 and too noisy — enable with --gate-p50);
  * throughput metrics (key ends with "_qps" or contains "throughput",
    plus "*speedup" and "*hit_rate"): may not DECREASE by more than the
    tolerance.

Independent of any baseline, the candidate's own "gates" section (see
bench::JsonReport::floor) is enforced as absolute floors — e.g. the
traffic bench requires batching_speedup >= 3 on the full run — and its
"ceilings" section (bench::JsonReport::ceiling) as absolute maxima —
e.g. p99 latency bounds. Thresholds travel with the run that produced
them, so a smoke run carries smoke thresholds, and a collapsed run
cannot re-baseline itself: even if its report replaced the committed
baseline, its own embedded gates would still fail it.

The default tolerance (10%) is meant for like-for-like comparisons on
the machine that produced the baseline. CI compares against a baseline
from a different box, so it passes a wide tolerance (--tolerance 0.75)
and relies on the absolute floors for the load-bearing guarantees.

Usage:
  check_bench_regression.py BASELINE CANDIDATE [--tolerance 0.10]
  check_bench_regression.py --floors-only CANDIDATE

Tolerance may also be set with the IPREGEL_BENCH_TOL environment
variable (the flag wins). Exit codes: 0 ok, 1 regression, 2 usage/IO.
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if "metrics" not in doc:
        print(f"error: {path} has no 'metrics' section", file=sys.stderr)
        sys.exit(2)
    return doc


def is_latency(key):
    return "p99" in key or "p50" in key


def is_throughput(key):
    return (
        key.endswith("_qps")
        or "throughput" in key
        or "speedup" in key
        or "hit_rate" in key
    )


def check_floors(candidate, failures):
    metrics = candidate.get("metrics", {})
    for key, floor in candidate.get("gates", {}).items():
        value = metrics.get(key)
        if value is None:
            failures.append(f"gate '{key}': metric missing from candidate")
        elif value < floor:
            failures.append(
                f"gate '{key}': {value:.4g} below the {floor:.4g} floor"
            )
        else:
            print(f"  ok    {key} = {value:.4g} (floor {floor:.4g})")
    for key, ceiling in candidate.get("ceilings", {}).items():
        value = metrics.get(key)
        if value is None:
            failures.append(f"ceiling '{key}': metric missing from candidate")
        elif value > ceiling:
            failures.append(
                f"ceiling '{key}': {value:.4g} above the {ceiling:.4g} max"
            )
        else:
            print(f"  ok    {key} = {value:.4g} (ceiling {ceiling:.4g})")


def check_against_baseline(baseline, candidate, tol, gate_p50, failures):
    base = baseline.get("metrics", {})
    cand = candidate.get("metrics", {})
    for key, base_value in base.items():
        if key not in cand:
            failures.append(f"'{key}': present in baseline, missing now")
            continue
        value = cand[key]
        if not isinstance(base_value, (int, float)) or isinstance(
            base_value, bool
        ):
            continue
        if is_latency(key):
            if "p50" in key and not gate_p50:
                continue
            # Sub-millisecond baselines are cache-hit noise; an absolute
            # floor keeps "0.01ms -> 0.03ms" from tripping a 3x alarm.
            limit = max(base_value, 0.5) * (1.0 + tol)
            if value > limit:
                failures.append(
                    f"'{key}': {value:.4g} > {limit:.4g} "
                    f"(baseline {base_value:.4g}, +{tol:.0%} allowed)"
                )
            else:
                print(f"  ok    {key}: {value:.4g} (<= {limit:.4g})")
        elif is_throughput(key):
            limit = base_value * (1.0 - tol)
            if value < limit:
                failures.append(
                    f"'{key}': {value:.4g} < {limit:.4g} "
                    f"(baseline {base_value:.4g}, -{tol:.0%} allowed)"
                )
            else:
                print(f"  ok    {key}: {value:.4g} (>= {limit:.4g})")


def main():
    parser = argparse.ArgumentParser(
        description="Gate a bench JSON report against a baseline."
    )
    parser.add_argument("baseline", nargs="?", help="baseline JSON report")
    parser.add_argument("candidate", nargs="?", help="candidate JSON report")
    parser.add_argument(
        "--floors-only",
        action="store_true",
        help="skip the baseline diff; enforce only the candidate's own "
        "'gates' floors and 'ceilings' maxima (positional: CANDIDATE "
        "only)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed relative regression (default 0.10 or "
        "$IPREGEL_BENCH_TOL)",
    )
    parser.add_argument(
        "--gate-p50",
        action="store_true",
        help="also gate p50 latencies (off by default: the cache-hit "
        "median is ~0 and noisy)",
    )
    args = parser.parse_args()

    tol = args.tolerance
    if tol is None:
        tol = float(os.environ.get("IPREGEL_BENCH_TOL", "0.10"))
    if tol < 0:
        parser.error("tolerance must be non-negative")

    failures = []
    if args.floors_only:
        if args.candidate is not None or args.baseline is None:
            parser.error("--floors-only takes exactly one report")
        candidate = load(args.baseline)
        print(f"checking floors of {args.baseline}")
        check_floors(candidate, failures)
    else:
        if args.baseline is None or args.candidate is None:
            parser.error("need BASELINE and CANDIDATE (or --floors-only)")
        baseline = load(args.baseline)
        candidate = load(args.candidate)
        if baseline.get("bench") != candidate.get("bench"):
            print(
                f"warning: comparing bench '{baseline.get('bench')}' "
                f"against '{candidate.get('bench')}'",
                file=sys.stderr,
            )
        print(
            f"comparing {args.candidate} against {args.baseline} "
            f"(tolerance {tol:.0%})"
        )
        check_against_baseline(baseline, candidate, tol, args.gate_p50,
                               failures)
        check_floors(candidate, failures)

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s)", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("PASS: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
