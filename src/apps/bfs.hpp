#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string_view>

#include "graph/types.hpp"

namespace ipregel::apps {

/// BFS parent finding: computes, for every vertex reachable from `source`,
/// the smallest-id predecessor on some shortest (hop-count) path.
///
/// Each newly-reached vertex broadcasts its own id; recipients that are
/// still unreached adopt the smallest sender id as parent. Deterministic
/// under any message delivery order because the combiner keeps the minimum.
/// Bypass-compatible and broadcast-only, like the paper's SSSP.
struct BfsParent {
  using value_type = graph::vid_t;
  using message_type = graph::vid_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;
  static constexpr std::string_view kProgramName = "ipregel.BfsParent";

  static constexpr value_type kUnreached =
      std::numeric_limits<value_type>::max();

  graph::vid_t source = 0;

  // --- integrity auditors (EngineOptions::integrity.invariants) ----------
  /// Per-partition reached-count audit: a vertex adopts a parent exactly
  /// once and never reverts to kUnreached, so each partition's reached
  /// count is non-decreasing — a flip that turns a parent back into
  /// kUnreached (or vice versa across a shrinking wave) trips it.
  using audit_type = std::uint64_t;
  static constexpr bool audit_per_partition = true;
  [[nodiscard]] std::uint64_t audit_identity() const noexcept { return 0; }
  void audit_accumulate(std::uint64_t& acc,
                        const value_type& v) const noexcept {
    if (v != kUnreached) {
      ++acc;
    }
  }
  static void audit_merge(std::uint64_t& acc,
                          const std::uint64_t& other) noexcept {
    acc += other;
  }
  [[nodiscard]] const char* audit_check(const std::uint64_t* prev,
                                        const std::uint64_t& cur,
                                        std::size_t /*superstep*/)
      const noexcept {
    if (prev != nullptr && cur < *prev) {
      return "reached-vertex count decreased (a parent assignment "
             "reverted)";
    }
    return nullptr;
  }

  [[nodiscard]] value_type initial_value(graph::vid_t) const noexcept {
    return kUnreached;
  }

  void compute(auto& ctx) const {
    if (ctx.is_first_superstep()) {
      if (ctx.id() == source) {
        ctx.value() = source;  // the source is its own parent
        ctx.broadcast(ctx.id());
      }
    } else if (ctx.value() == kUnreached) {
      graph::vid_t parent = kUnreached;
      graph::vid_t m = 0;
      while (ctx.get_next_message(m)) {
        parent = std::min(parent, m);
      }
      if (parent != kUnreached) {
        ctx.value() = parent;
        ctx.broadcast(ctx.id());
      }
    }
    ctx.vote_to_halt();
  }

  static void combine(graph::vid_t& old,
                      const graph::vid_t& incoming) noexcept {
    old = std::min(old, incoming);
  }
};

}  // namespace ipregel::apps
