#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "graph/types.hpp"

namespace ipregel::apps {

/// Hashmin connected components: every vertex propagates the minimum vertex
/// id it has seen; at fixpoint all vertices of a (weakly, if the graph is
/// symmetric) connected component share the component's minimum id as label.
///
/// Activity starts at 100% and decays to zero as labels converge — the
/// paper's middle case between PageRank (always all active) and SSSP
/// (always few active). Every vertex votes to halt every superstep
/// (`always_halts = true`), so the selection bypass applies, and
/// communication is broadcast-only, so all six versions apply.
struct Hashmin {
  using value_type = graph::vid_t;
  using message_type = graph::vid_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;
  static constexpr std::string_view kProgramName = "ipregel.Hashmin";

  // --- integrity auditors (EngineOptions::integrity.invariants) ----------
  /// Per-partition label-sum audit: every label starts as the vertex's own
  /// id and only ever decreases (min-propagation), so each partition's sum
  /// of labels is non-increasing across barriers — an upward-flipped label
  /// bit breaks the law in its own partition.
  using audit_type = std::uint64_t;
  static constexpr bool audit_per_partition = true;
  [[nodiscard]] std::uint64_t audit_identity() const noexcept { return 0; }
  void audit_accumulate(std::uint64_t& acc,
                        const value_type& v) const noexcept {
    acc += v;
  }
  static void audit_merge(std::uint64_t& acc,
                          const std::uint64_t& other) noexcept {
    acc += other;
  }
  [[nodiscard]] const char* audit_check(const std::uint64_t* prev,
                                        const std::uint64_t& cur,
                                        std::size_t /*superstep*/)
      const noexcept {
    if (prev != nullptr && cur > *prev) {
      return "component-label sum increased (min-propagation only lowers "
             "labels)";
    }
    return nullptr;
  }
  /// Per-vertex audit: a vertex's label is the minimum id seen so far and
  /// starts at its own id, so it can never exceed the id.
  [[nodiscard]] const char* audit_value(graph::vid_t id, const value_type& v,
                                        std::size_t /*n*/) const noexcept {
    if (v > id) {
      return "component label above the vertex's own id";
    }
    return nullptr;
  }

  [[nodiscard]] graph::vid_t initial_value(graph::vid_t id) const noexcept {
    return id;
  }

  void compute(auto& ctx) const {
    if (ctx.is_first_superstep()) {
      // Seed the propagation with this vertex's own id.
      ctx.broadcast(ctx.value());
    } else {
      graph::vid_t smallest = ctx.value();
      graph::vid_t m = 0;
      while (ctx.get_next_message(m)) {
        smallest = std::min(smallest, m);
      }
      if (smallest < ctx.value()) {
        ctx.value() = smallest;
        ctx.broadcast(smallest);
      }
    }
    ctx.vote_to_halt();
  }

  /// Lightweight-recovery hook: every vertex re-offers its current label.
  /// A superset of the in-flight messages (the original run only
  /// broadcasts on label change), but extra labels are ≥ the recipient's
  /// eventual minimum and cannot perturb the min-combined fixpoint: final
  /// labels are bit-identical.
  void resend(auto& ctx) const { ctx.broadcast(ctx.value()); }

  static void combine(graph::vid_t& old,
                      const graph::vid_t& incoming) noexcept {
    old = std::min(old, incoming);
  }
};

}  // namespace ipregel::apps
