#pragma once

#include <algorithm>

#include "graph/types.hpp"

namespace ipregel::apps {

/// Hashmin connected components: every vertex propagates the minimum vertex
/// id it has seen; at fixpoint all vertices of a (weakly, if the graph is
/// symmetric) connected component share the component's minimum id as label.
///
/// Activity starts at 100% and decays to zero as labels converge — the
/// paper's middle case between PageRank (always all active) and SSSP
/// (always few active). Every vertex votes to halt every superstep
/// (`always_halts = true`), so the selection bypass applies, and
/// communication is broadcast-only, so all six versions apply.
struct Hashmin {
  using value_type = graph::vid_t;
  using message_type = graph::vid_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;

  [[nodiscard]] graph::vid_t initial_value(graph::vid_t id) const noexcept {
    return id;
  }

  void compute(auto& ctx) const {
    if (ctx.is_first_superstep()) {
      // Seed the propagation with this vertex's own id.
      ctx.broadcast(ctx.value());
    } else {
      graph::vid_t smallest = ctx.value();
      graph::vid_t m = 0;
      while (ctx.get_next_message(m)) {
        smallest = std::min(smallest, m);
      }
      if (smallest < ctx.value()) {
        ctx.value() = smallest;
        ctx.broadcast(smallest);
      }
    }
    ctx.vote_to_halt();
  }

  /// Lightweight-recovery hook: every vertex re-offers its current label.
  /// A superset of the in-flight messages (the original run only
  /// broadcasts on label change), but extra labels are ≥ the recipient's
  /// eventual minimum and cannot perturb the min-combined fixpoint: final
  /// labels are bit-identical.
  void resend(auto& ctx) const { ctx.broadcast(ctx.value()); }

  static void combine(graph::vid_t& old,
                      const graph::vid_t& incoming) noexcept {
    old = std::min(old, incoming);
  }
};

}  // namespace ipregel::apps
