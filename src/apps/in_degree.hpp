#pragma once

#include <cstdint>

#include "graph/types.hpp"

namespace ipregel::apps {

/// In-degree counting via messaging: superstep 0 every vertex broadcasts
/// "1", superstep 1 every recipient sums its combined inbox.
///
/// Two supersteps, exercises the sum combiner with integer messages, and —
/// unlike reading the CSR's in-neighbour arrays — works in configurations
/// that never build in-edges. Bypass-compatible and broadcast-only.
struct InDegree {
  using value_type = std::uint64_t;
  using message_type = std::uint64_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;

  [[nodiscard]] value_type initial_value(graph::vid_t) const noexcept {
    return 0;
  }

  void compute(auto& ctx) const {
    if (ctx.is_first_superstep()) {
      ctx.broadcast(1);
    } else {
      message_type count = 0;
      message_type m = 0;
      while (ctx.get_next_message(m)) {
        count += m;
      }
      ctx.value() = count;
    }
    ctx.vote_to_halt();
  }

  static void combine(message_type& old,
                      const message_type& incoming) noexcept {
    old += incoming;
  }
};

}  // namespace ipregel::apps
