#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "graph/types.hpp"

namespace ipregel::apps {

/// k-core membership: iteratively peel vertices of degree < k; whatever
/// survives is the k-core. Assumes a symmetric (undirected) graph.
///
/// Included as an extension beyond the paper's three applications: it
/// exercises a *struct-valued* vertex (remaining degree + removed flag)
/// and an integer sum combiner, while staying bypass-compatible (every
/// vertex votes to halt; removals reactivate neighbours by message) and
/// broadcast-only (a removed vertex tells all neighbours "one of your
/// neighbours is gone").
struct KCore {
  struct State {
    std::uint32_t remaining_degree = 0;
    bool removed = false;

    friend bool operator==(const State&, const State&) = default;
  };

  using value_type = State;
  using message_type = std::uint32_t;  ///< count of newly removed neighbours
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;
  static constexpr std::string_view kProgramName = "ipregel.KCore";

  std::uint32_t k = 2;

  // --- integrity auditors (EngineOptions::integrity.invariants) ----------
  /// Per-partition peeling audit: removal is one-way and remaining degrees
  /// only ever shrink, so across barriers the removed count is
  /// non-decreasing and the degree sum non-increasing. The first barrier
  /// (after superstep 0) already sees real degrees — superstep 0 installs
  /// them before the audit runs — so every prev/cur pair is comparable.
  struct Audit {
    std::uint64_t degree_sum = 0;
    std::uint64_t removed = 0;
  };
  using audit_type = Audit;
  static constexpr bool audit_per_partition = true;
  [[nodiscard]] Audit audit_identity() const noexcept { return {}; }
  void audit_accumulate(Audit& acc, const State& v) const noexcept {
    acc.degree_sum += v.remaining_degree;
    if (v.removed) {
      ++acc.removed;
    }
  }
  static void audit_merge(Audit& acc, const Audit& other) noexcept {
    acc.degree_sum += other.degree_sum;
    acc.removed += other.removed;
  }
  [[nodiscard]] const char* audit_check(const Audit* prev, const Audit& cur,
                                        std::size_t /*superstep*/)
      const noexcept {
    if (prev != nullptr) {
      if (cur.removed < prev->removed) {
        return "removed-vertex count decreased (peeling is one-way)";
      }
      if (cur.degree_sum > prev->degree_sum) {
        return "remaining-degree sum increased (peeling only removes "
               "edges)";
      }
    }
    return nullptr;
  }

  [[nodiscard]] State initial_value(graph::vid_t) const noexcept {
    return {};
  }

  void compute(auto& ctx) const {
    State& state = ctx.value();
    if (ctx.is_first_superstep()) {
      state.remaining_degree =
          static_cast<std::uint32_t>(ctx.out_degree());
    } else {
      message_type removed_neighbours = 0;
      message_type m = 0;
      while (ctx.get_next_message(m)) {
        removed_neighbours += m;
      }
      if (!state.removed) {
        state.remaining_degree -=
            std::min(state.remaining_degree, removed_neighbours);
      }
    }
    if (!state.removed && state.remaining_degree < k) {
      state.removed = true;
      ctx.broadcast(1);
    }
    ctx.vote_to_halt();
  }

  static void combine(message_type& old,
                      const message_type& incoming) noexcept {
    old += incoming;
  }
};

}  // namespace ipregel::apps
