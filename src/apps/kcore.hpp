#pragma once

#include <cstdint>

#include "graph/types.hpp"

namespace ipregel::apps {

/// k-core membership: iteratively peel vertices of degree < k; whatever
/// survives is the k-core. Assumes a symmetric (undirected) graph.
///
/// Included as an extension beyond the paper's three applications: it
/// exercises a *struct-valued* vertex (remaining degree + removed flag)
/// and an integer sum combiner, while staying bypass-compatible (every
/// vertex votes to halt; removals reactivate neighbours by message) and
/// broadcast-only (a removed vertex tells all neighbours "one of your
/// neighbours is gone").
struct KCore {
  struct State {
    std::uint32_t remaining_degree = 0;
    bool removed = false;

    friend bool operator==(const State&, const State&) = default;
  };

  using value_type = State;
  using message_type = std::uint32_t;  ///< count of newly removed neighbours
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;

  std::uint32_t k = 2;

  [[nodiscard]] State initial_value(graph::vid_t) const noexcept {
    return {};
  }

  void compute(auto& ctx) const {
    State& state = ctx.value();
    if (ctx.is_first_superstep()) {
      state.remaining_degree =
          static_cast<std::uint32_t>(ctx.out_degree());
    } else {
      message_type removed_neighbours = 0;
      message_type m = 0;
      while (ctx.get_next_message(m)) {
        removed_neighbours += m;
      }
      if (!state.removed) {
        state.remaining_degree -=
            std::min(state.remaining_degree, removed_neighbours);
      }
    }
    if (!state.removed && state.remaining_degree < k) {
      state.removed = true;
      ctx.broadcast(1);
    }
    ctx.vote_to_halt();
  }

  static void combine(message_type& old,
                      const message_type& incoming) noexcept {
    old += incoming;
  }
};

}  // namespace ipregel::apps
