#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "graph/types.hpp"

namespace ipregel::apps {

/// Degree-anchored label propagation: every vertex adopts the label of the
/// best-connected vertex it has transitively heard from, where "best" is
/// highest out-degree with lowest id as the tie-break. At fixpoint every
/// vertex of a (weakly, on a symmetric graph) connected component carries
/// the component's hub label — the deterministic, combiner-compatible
/// member of the label-propagation family.
///
/// Classic frequency-voting LP needs the full multiset of neighbour labels
/// per superstep, which no single-slot combiner can carry. This variant
/// replaces the vote with a total order packed into one 64-bit key
/// (~out_degree in the high half, id in the low half), making combine() a
/// plain integer min — commutative, associative, and EXACT, so sharded
/// runs are bit-identical to the single-process engine regardless of how
/// message delivery is re-associated across shard batches.
///
/// Why it earns its keep in the sharded runtime's test diet: hub labels
/// flood outward for many supersteps (every adoption re-broadcasts), so
/// inter-shard combiner batches stay dense far longer than SSSP's thin
/// wavefront or Hashmin's fast-collapsing frontier — the heaviest
/// sustained load on the shard-to-shard rings among the shipped apps.
struct LabelPropagation {
  /// Packed (out-degree descending, id ascending) priority key; see pack().
  using value_type = std::uint64_t;
  using message_type = std::uint64_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;
  static constexpr std::string_view kProgramName = "ipregel.LabelPropagation";

  /// Key ordering: lower key = stronger label. ~degree in the high 32 bits
  /// makes higher degree win; id in the low 32 bits breaks ties toward the
  /// smaller id.
  [[nodiscard]] static constexpr std::uint64_t pack(
      std::uint32_t out_degree, graph::vid_t id) noexcept {
    return (static_cast<std::uint64_t>(~out_degree) << 32) |
           static_cast<std::uint64_t>(id);
  }
  /// The label (anchor vertex id) carried by a packed key.
  [[nodiscard]] static constexpr graph::vid_t label_of(
      std::uint64_t key) noexcept {
    return static_cast<graph::vid_t>(key & 0xFFFFFFFFULL);
  }

  // --- integrity auditors (EngineOptions::integrity.invariants) ----------
  /// Per-partition key-sum audit: keys only ever decrease (min-
  /// propagation over a total order), so each partition's sum of keys is
  /// non-increasing across barriers.
  using audit_type = std::uint64_t;
  static constexpr bool audit_per_partition = true;
  [[nodiscard]] std::uint64_t audit_identity() const noexcept { return 0; }
  void audit_accumulate(std::uint64_t& acc,
                        const value_type& v) const noexcept {
    // Fold the low halves only: full 64-bit keys could wrap the
    // accumulator on large partitions, and monotonicity of the sum needs
    // exact arithmetic. The key itself still decreases monotonically, so
    // auditing (key >> 16) keeps detection while bounding the sum.
    acc += v >> 16;
  }
  static void audit_merge(std::uint64_t& acc,
                          const std::uint64_t& other) noexcept {
    acc += other;
  }
  [[nodiscard]] const char* audit_check(const std::uint64_t* prev,
                                        const std::uint64_t& cur,
                                        std::size_t /*superstep*/)
      const noexcept {
    if (prev != nullptr && cur > *prev) {
      return "label-key sum increased (propagation only lowers keys)";
    }
    return nullptr;
  }
  [[nodiscard]] value_type initial_value(graph::vid_t id) const noexcept {
    // The engine re-seeds with the real degree at superstep 0 (degree is
    // not visible here); start from the weakest self-key so the reseed
    // only strengthens it.
    return pack(0, id);
  }

  void compute(auto& ctx) const {
    if (ctx.is_first_superstep()) {
      // Re-anchor on the real out-degree, then offer the label around.
      ctx.value() =
          pack(static_cast<std::uint32_t>(std::min<std::size_t>(
                   ctx.out_degree(), 0xFFFFFFFFULL)),
               ctx.id());
      ctx.broadcast(ctx.value());
    } else {
      std::uint64_t best = ctx.value();
      std::uint64_t m = 0;
      while (ctx.get_next_message(m)) {
        best = std::min(best, m);
      }
      if (best < ctx.value()) {
        ctx.value() = best;
        ctx.broadcast(best);
      }
    }
    ctx.vote_to_halt();
  }

  /// Lightweight-recovery hook: every vertex re-offers its current key —
  /// a superset of the in-flight messages, but extra keys are ≥ the
  /// recipient's eventual minimum, so the min-combined fixpoint (and the
  /// final labels) are bit-identical. Same argument as Hashmin's resend.
  void resend(auto& ctx) const { ctx.broadcast(ctx.value()); }

  static void combine(std::uint64_t& old,
                      const std::uint64_t& incoming) noexcept {
    old = std::min(old, incoming);
  }
};

}  // namespace ipregel::apps
