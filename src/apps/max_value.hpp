#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "graph/types.hpp"
#include "runtime/rng.hpp"

namespace ipregel::apps {

/// Maximum-value propagation — the introductory example of the original
/// Pregel paper (Malewicz et al., SIGMOD'10): every vertex starts with a
/// pseudo-random value derived from its id and the fixpoint leaves each
/// vertex holding the maximum value of any vertex that can reach it.
///
/// Included as the mirror image of Hashmin (max instead of min, arbitrary
/// values instead of ids): a useful property-test subject because the
/// expected fixpoint is computable independently.
struct MaxValue {
  using value_type = std::uint64_t;
  using message_type = std::uint64_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;
  static constexpr std::string_view kProgramName = "ipregel.MaxValue";

  /// Seed for the per-vertex initial values.
  std::uint64_t seed = 42;

  // --- integrity auditors (EngineOptions::integrity.invariants) ----------
  /// Per-partition value-sum audit, the mirror of Hashmin: values only ever
  /// grow towards the per-component maximum, so each partition's sum is
  /// non-decreasing. 128-bit accumulation: 64-bit values over many slots
  /// would wrap a 64-bit sum and fake a decrease.
  using audit_type = unsigned __int128;
  static constexpr bool audit_per_partition = true;
  [[nodiscard]] unsigned __int128 audit_identity() const noexcept {
    return 0;
  }
  void audit_accumulate(unsigned __int128& acc,
                        const value_type& v) const noexcept {
    acc += v;
  }
  static void audit_merge(unsigned __int128& acc,
                          const unsigned __int128& other) noexcept {
    acc += other;
  }
  [[nodiscard]] const char* audit_check(const unsigned __int128* prev,
                                        const unsigned __int128& cur,
                                        std::size_t /*superstep*/)
      const noexcept {
    if (prev != nullptr && cur < *prev) {
      return "value sum decreased (max-propagation only raises values)";
    }
    return nullptr;
  }
  /// Per-vertex audit: a value never drops below the vertex's seeded
  /// initial value (recomputable from the seed, so no recorded baseline
  /// is needed).
  [[nodiscard]] const char* audit_value(graph::vid_t id, const value_type& v,
                                        std::size_t /*n*/) const noexcept {
    if (v < initial_value(id)) {
      return "value below the vertex's seeded initial value";
    }
    return nullptr;
  }

  [[nodiscard]] value_type initial_value(graph::vid_t id) const noexcept {
    return runtime::mix64(runtime::mix64(seed) ^ id);
  }

  void compute(auto& ctx) const {
    if (ctx.is_first_superstep()) {
      ctx.broadcast(ctx.value());
    } else {
      value_type largest = ctx.value();
      message_type m = 0;
      while (ctx.get_next_message(m)) {
        largest = std::max(largest, m);
      }
      if (largest > ctx.value()) {
        ctx.value() = largest;
        ctx.broadcast(largest);
      }
    }
    ctx.vote_to_halt();
  }

  static void combine(message_type& old,
                      const message_type& incoming) noexcept {
    old = std::max(old, incoming);
  }
};

}  // namespace ipregel::apps
