#pragma once

#include <algorithm>
#include <cstdint>

#include "graph/types.hpp"
#include "runtime/rng.hpp"

namespace ipregel::apps {

/// Maximum-value propagation — the introductory example of the original
/// Pregel paper (Malewicz et al., SIGMOD'10): every vertex starts with a
/// pseudo-random value derived from its id and the fixpoint leaves each
/// vertex holding the maximum value of any vertex that can reach it.
///
/// Included as the mirror image of Hashmin (max instead of min, arbitrary
/// values instead of ids): a useful property-test subject because the
/// expected fixpoint is computable independently.
struct MaxValue {
  using value_type = std::uint64_t;
  using message_type = std::uint64_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;

  /// Seed for the per-vertex initial values.
  std::uint64_t seed = 42;

  [[nodiscard]] value_type initial_value(graph::vid_t id) const noexcept {
    return runtime::mix64(runtime::mix64(seed) ^ id);
  }

  void compute(auto& ctx) const {
    if (ctx.is_first_superstep()) {
      ctx.broadcast(ctx.value());
    } else {
      value_type largest = ctx.value();
      message_type m = 0;
      while (ctx.get_next_message(m)) {
        largest = std::max(largest, m);
      }
      if (largest > ctx.value()) {
        ctx.value() = largest;
        ctx.broadcast(largest);
      }
    }
    ctx.vote_to_halt();
  }

  static void combine(message_type& old,
                      const message_type& incoming) noexcept {
    old = std::max(old, incoming);
  }
};

}  // namespace ipregel::apps
