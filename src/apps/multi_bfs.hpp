#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string_view>

#include "graph/types.hpp"

namespace ipregel::apps {

/// Multi-source BFS levels: K independent unit-weight BFS computations in
/// one engine pass. Lane k computes, for every vertex, its hop distance
/// from `sources[k]` (kInfinity when unreachable) — per lane exactly the
/// value of serial::sssp_unit(g, sources[k]).
///
/// The batching workhorse of the resident query service (src/query): one
/// graph scan serves up to K point queries, so the per-query cost of a
/// wavefront superstep is divided by the batch occupancy. A vertex
/// broadcasts whenever ANY lane improved, and the message carries all
/// lanes; the extra lanes re-offer already-absorbed distances, which the
/// lane-wise min combine makes harmless (the same superset argument as
/// Sssp::resend). Supersteps run to the max eccentricity over the batch —
/// the amortisation is per-superstep work, not superstep count.
///
/// Broadcast-only and always-halting, so all six framework versions apply;
/// the selection bypass keeps the per-superstep cost proportional to the
/// union of the K wavefronts.
template <std::size_t K>
struct MultiBfs {
  static_assert(K >= 1, "a lane program carries at least one lane");

  using value_type = std::array<std::uint32_t, K>;
  using message_type = std::array<std::uint32_t, K>;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;
  static constexpr std::size_t kLanes = K;
  // program_fingerprint mixes sizeof(value_type), so MultiBfs<4> and
  // MultiBfs<8> snapshots can never be cross-restored despite one name.
  static constexpr std::string_view kProgramName = "ipregel.MultiBfs";

  static constexpr std::uint32_t kInfinity =
      std::numeric_limits<std::uint32_t>::max();

  /// One BFS source per lane. Short batches pad the tail lanes with a
  /// repeat of a served source; the duplicate lane costs almost nothing
  /// (its wavefront rides the same supersteps).
  std::array<graph::vid_t, K> sources{};

  // --- integrity auditors (EngineOptions::integrity.invariants) ----------
  /// Per-partition audit over all lanes: a (vertex, lane) pair adopts a
  /// finite distance at most once and never reverts, so the reached count
  /// is non-decreasing; and a unit-weight wavefront cannot outrun the
  /// barrier count in any lane.
  struct Audit {
    std::uint64_t reached = 0;
    std::uint64_t max_dist = 0;
  };
  using audit_type = Audit;
  static constexpr bool audit_per_partition = true;
  [[nodiscard]] Audit audit_identity() const noexcept { return {}; }
  void audit_accumulate(Audit& acc, const value_type& v) const noexcept {
    for (std::size_t k = 0; k < K; ++k) {
      if (v[k] != kInfinity) {
        ++acc.reached;
        acc.max_dist = std::max<std::uint64_t>(acc.max_dist, v[k]);
      }
    }
  }
  static void audit_merge(Audit& acc, const Audit& other) noexcept {
    acc.reached += other.reached;
    acc.max_dist = std::max(acc.max_dist, other.max_dist);
  }
  [[nodiscard]] const char* audit_check(const Audit* prev, const Audit& cur,
                                        std::size_t superstep)
      const noexcept {
    if (cur.max_dist > superstep) {
      return "finite distance exceeds the superstep number in some lane";
    }
    if (prev != nullptr && cur.reached < prev->reached) {
      return "reached (vertex, lane) count decreased (a distance reverted "
             "to infinity)";
    }
    return nullptr;
  }
  /// Per-vertex audit: every finite hop count is below |V|.
  [[nodiscard]] const char* audit_value(graph::vid_t /*id*/,
                                        const value_type& v,
                                        std::size_t num_vertices)
      const noexcept {
    for (std::size_t k = 0; k < K; ++k) {
      if (v[k] != kInfinity && v[k] >= num_vertices) {
        return "finite distance not below |V|";
      }
    }
    return nullptr;
  }

  [[nodiscard]] value_type initial_value(graph::vid_t) const noexcept {
    value_type v;
    v.fill(kInfinity);
    return v;
  }

  void compute(auto& ctx) const {
    value_type ref;
    for (std::size_t k = 0; k < K; ++k) {
      ref[k] = (ctx.id() == sources[k]) ? 0 : kInfinity;
    }
    message_type m{};
    while (ctx.get_next_message(m)) {
      for (std::size_t k = 0; k < K; ++k) {
        ref[k] = std::min(ref[k], m[k]);
      }
    }
    value_type& v = ctx.value();
    bool improved = false;
    for (std::size_t k = 0; k < K; ++k) {
      if (ref[k] < v[k]) {
        v[k] = ref[k];
        improved = true;
      }
    }
    if (improved) {
      message_type out;
      for (std::size_t k = 0; k < K; ++k) {
        out[k] = v[k] == kInfinity ? kInfinity : v[k] + 1;
      }
      ctx.broadcast(out);
    }
    ctx.vote_to_halt();
  }

  /// Lightweight-recovery hook: every vertex with any reached lane
  /// re-offers its current distances — a superset of the in-flight
  /// messages, absorbed or ignored under the lane-wise min (the Sssp
  /// resend contract, lane by lane).
  void resend(auto& ctx) const {
    const value_type& v = ctx.value();
    bool any = false;
    message_type out;
    for (std::size_t k = 0; k < K; ++k) {
      out[k] = v[k] == kInfinity ? kInfinity : v[k] + 1;
      any = any || v[k] != kInfinity;
    }
    if (any) {
      ctx.broadcast(out);
    }
  }

  static void combine(message_type& old,
                      const message_type& incoming) noexcept {
    for (std::size_t k = 0; k < K; ++k) {
      old[k] = std::min(old[k], incoming[k]);
    }
  }
};

}  // namespace ipregel::apps
