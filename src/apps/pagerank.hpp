#pragma once

#include <cstddef>
#include <string_view>

#include "graph/types.hpp"

namespace ipregel::apps {

/// PageRank, transcribed from the paper's Fig. 6.
///
/// Runs a fixed number of rounds: every vertex stays active until the last
/// round (`always_halts = false`), which is why the selection bypass is NOT
/// applicable to PageRank (paper section 4, note) — and why the pull
/// combiner shines on it: the ratio of active vertices is constantly 1,
/// the optimum of section 6.2's first performance factor.
///
/// Communication is pure out-neighbour broadcast (rank / out-degree), so
/// all three combiner versions apply.
struct PageRank {
  using value_type = double;
  using message_type = double;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = false;
  static constexpr std::string_view kProgramName = "ipregel.PageRank";

  /// Number of rank-propagation rounds (the paper runs 30).
  std::size_t rounds = 30;
  /// Damping factor (the paper's Fig. 6 hard-codes 0.85).
  double damping = 0.85;

  // --- integrity auditors (EngineOptions::integrity.invariants) ----------
  /// Reduction audit: total rank mass. Superstep 0 distributes exactly 1;
  /// afterwards every vertex holds (1-d)/n + d * (received mass), so the
  /// global sum stays within [1 - damping, 1] — dangling vertices leak
  /// their damped share, nothing can create mass — up to float noise.
  /// Global-only (audit_per_partition = false): mass moves freely between
  /// partitions, only the total is conserved.
  using audit_type = double;
  static constexpr bool audit_per_partition = false;
  [[nodiscard]] double audit_identity() const noexcept { return 0.0; }
  void audit_accumulate(double& acc, const double& v) const noexcept {
    acc += v;
  }
  static void audit_merge(double& acc, const double& other) noexcept {
    acc += other;
  }
  [[nodiscard]] const char* audit_check(const double* /*prev*/,
                                        const double& cur,
                                        std::size_t /*superstep*/)
      const noexcept {
    constexpr double kTol = 1e-6;
    if (!(cur >= 1.0 - damping - kTol)) {  // also catches NaN
      return "total rank mass fell below 1 - damping";
    }
    if (!(cur <= 1.0 + kTol)) {
      return "total rank mass exceeds 1 (rank created from nothing)";
    }
    return nullptr;
  }
  /// Per-vertex audit: a rank is a share of unit probability mass.
  [[nodiscard]] const char* audit_value(graph::vid_t /*id*/, const double& v,
                                        std::size_t /*n*/) const noexcept {
    if (!(v >= 0.0)) {  // also catches NaN
      return "negative or NaN rank";
    }
    if (!(v <= 1.0 + 1e-6)) {
      return "rank above the total mass of 1";
    }
    return nullptr;
  }

  [[nodiscard]] double initial_value(graph::vid_t) const noexcept {
    return 0.0;
  }

  void compute(auto& ctx) const {
    const auto n = static_cast<double>(ctx.num_vertices());
    if (ctx.is_first_superstep()) {
      ctx.value() = 1.0 / n;
    } else {
      double sum = 0.0;
      double m = 0.0;
      while (ctx.get_next_message(m)) {
        sum += m;
      }
      ctx.value() = (1.0 - damping) / n + damping * sum;
    }
    if (ctx.superstep() < rounds) {
      if (ctx.out_degree() > 0) {
        ctx.broadcast(ctx.value() / static_cast<double>(ctx.out_degree()));
      }
    } else {
      ctx.vote_to_halt();
    }
  }

  /// Lightweight-recovery hook: regenerates the messages this vertex sent
  /// in the superstep the context reports (the one preceding the resumed
  /// superstep). PageRank's broadcast is a pure function of the vertex
  /// value at the barrier — rank / out-degree, sent whenever the round
  /// limit had not been reached — so the regenerated messages are exactly
  /// the originals and recovery is bit-identical.
  void resend(auto& ctx) const {
    if (ctx.superstep() < rounds && ctx.out_degree() > 0) {
      ctx.broadcast(ctx.value() / static_cast<double>(ctx.out_degree()));
    }
  }

  static void combine(double& old, const double& incoming) noexcept {
    old += incoming;  // Fig. 6: *old += new
  }
};

/// PageRank with aggregator-driven convergence (extension): instead of the
/// paper's fixed 30 rounds, every vertex contributes its |rank delta| to a
/// max-aggregator, and the whole computation votes to halt once the
/// previous superstep's largest delta drops below `epsilon`.
///
/// Demonstrates the Pregel aggregator mechanism this reproduction adds on
/// top of the paper (see core/aggregator_traits.hpp): the aggregate of
/// superstep S is visible to every vertex of superstep S+1, so the halt
/// decision is globally consistent without any extra synchronisation.
struct PageRankConverging {
  using value_type = double;
  using message_type = double;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = false;
  static constexpr std::string_view kProgramName =
      "ipregel.PageRankConverging";

  using aggregate_type = double;
  static aggregate_type aggregate_identity() noexcept { return 0.0; }
  static void aggregate(aggregate_type& acc,
                        const aggregate_type& x) noexcept {
    if (x > acc) {
      acc = x;  // max: the largest per-vertex rank movement
    }
  }

  double damping = 0.85;
  /// Convergence threshold on the max per-vertex delta.
  double epsilon = 1e-9;

  // Same mass-conservation and rank-range auditors as PageRank (the
  // aggregator changes termination, not the rank arithmetic).
  using audit_type = double;
  static constexpr bool audit_per_partition = false;
  [[nodiscard]] double audit_identity() const noexcept { return 0.0; }
  void audit_accumulate(double& acc, const double& v) const noexcept {
    acc += v;
  }
  static void audit_merge(double& acc, const double& other) noexcept {
    acc += other;
  }
  [[nodiscard]] const char* audit_check(const double* /*prev*/,
                                        const double& cur,
                                        std::size_t /*superstep*/)
      const noexcept {
    constexpr double kTol = 1e-6;
    if (!(cur >= 1.0 - damping - kTol)) {
      return "total rank mass fell below 1 - damping";
    }
    if (!(cur <= 1.0 + kTol)) {
      return "total rank mass exceeds 1 (rank created from nothing)";
    }
    return nullptr;
  }
  [[nodiscard]] const char* audit_value(graph::vid_t /*id*/, const double& v,
                                        std::size_t /*n*/) const noexcept {
    if (!(v >= 0.0)) {
      return "negative or NaN rank";
    }
    if (!(v <= 1.0 + 1e-6)) {
      return "rank above the total mass of 1";
    }
    return nullptr;
  }

  [[nodiscard]] double initial_value(graph::vid_t) const noexcept {
    return 0.0;
  }

  void compute(auto& ctx) const {
    const auto n = static_cast<double>(ctx.num_vertices());
    if (ctx.is_first_superstep()) {
      ctx.value() = 1.0 / n;
    } else {
      double sum = 0.0;
      double m = 0.0;
      while (ctx.get_next_message(m)) {
        sum += m;
      }
      const double updated = (1.0 - damping) / n + damping * sum;
      const double delta = updated > ctx.value() ? updated - ctx.value()
                                                 : ctx.value() - updated;
      ctx.value() = updated;
      ctx.aggregate(delta);
      // ctx.aggregated() is superstep S-1's max delta; it only becomes
      // meaningful from superstep 2 on (superstep 0 aggregates nothing).
      if (ctx.superstep() >= 2 && ctx.aggregated() < epsilon) {
        ctx.vote_to_halt();
        return;
      }
    }
    if (ctx.out_degree() > 0) {
      ctx.broadcast(ctx.value() / static_cast<double>(ctx.out_degree()));
    }
  }

  static void combine(double& old, const double& incoming) noexcept {
    old += incoming;
  }
};

}  // namespace ipregel::apps
