#pragma once

#include <cstddef>
#include <string_view>

#include "graph/types.hpp"

namespace ipregel::apps {

/// PageRank with dangling-mass redistribution, ported from FTPregel's
/// HW_CP_Log PageRank (SNIPPETS.md snippet 1) onto this framework's
/// aggregator mechanism (core/aggregator_traits.hpp).
///
/// Plain apps::PageRank drops the rank mass of dangling vertices (no
/// out-edges → nothing broadcast), so total mass decays toward 1-d on
/// graphs with sinks. FTPregel instead collects the dangling ranks into a
/// sum aggregator every superstep and has every vertex of the NEXT
/// superstep fold the redistributed residual back in:
///
///   residual = aggregated() / n                        // BSP: superstep S-1's sum
///   rank     = (1-d)/n + d * (sum(messages) + residual)
///
/// The aggregator is the first-class cross-shard reduction of the sharded
/// runtime: each worker process folds its local dangling mass into a
/// partial, ships the partial to the coordinator with its barrier entry,
/// and the coordinator's deterministic shard-order fold comes back with
/// the barrier release (see HasSerializableAggregator). The same program
/// runs unmodified single-process, where the engine's per-thread partials
/// play the role of the shards.
///
/// Heavyweight checkpoints only: the folded aggregate is part of the
/// consistent cut and cannot be regenerated from vertex values, so — like
/// every aggregator program — lightweight recovery is rejected.
struct PageRankDangling {
  using value_type = double;
  using message_type = double;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = false;
  static constexpr std::string_view kProgramName = "ipregel.PageRankDangling";

  /// Sum of the ranks held by dangling vertices this superstep.
  using aggregate_type = double;
  static aggregate_type aggregate_identity() noexcept { return 0.0; }
  static void aggregate(aggregate_type& acc,
                        const aggregate_type& x) noexcept {
    acc += x;
  }

  std::size_t rounds = 30;
  double damping = 0.85;

  // --- integrity auditors (EngineOptions::integrity.invariants) ----------
  /// Mass conservation, tighter than plain PageRank's: redistribution
  /// recycles the dangling share, so total mass stays in [1 - d, 1 + tol]
  /// (one superstep of dangling mass is always in flight through the
  /// aggregator, hence the same lower bound as the dropping variant).
  using audit_type = double;
  static constexpr bool audit_per_partition = false;
  [[nodiscard]] double audit_identity() const noexcept { return 0.0; }
  void audit_accumulate(double& acc, const double& v) const noexcept {
    acc += v;
  }
  static void audit_merge(double& acc, const double& other) noexcept {
    acc += other;
  }
  [[nodiscard]] const char* audit_check(const double* /*prev*/,
                                        const double& cur,
                                        std::size_t /*superstep*/)
      const noexcept {
    constexpr double kTol = 1e-6;
    if (!(cur >= 1.0 - damping - kTol)) {  // also catches NaN
      return "total rank mass fell below 1 - damping";
    }
    if (!(cur <= 1.0 + kTol)) {
      return "total rank mass exceeds 1 (rank created from nothing)";
    }
    return nullptr;
  }
  [[nodiscard]] const char* audit_value(graph::vid_t /*id*/, const double& v,
                                        std::size_t /*n*/) const noexcept {
    if (!(v >= 0.0)) {  // also catches NaN
      return "negative or NaN rank";
    }
    if (!(v <= 1.0 + 1e-6)) {
      return "rank above the total mass of 1";
    }
    return nullptr;
  }

  [[nodiscard]] double initial_value(graph::vid_t) const noexcept {
    return 0.0;
  }

  void compute(auto& ctx) const {
    const auto n = static_cast<double>(ctx.num_vertices());
    if (ctx.is_first_superstep()) {
      ctx.value() = 1.0 / n;
    } else {
      double sum = 0.0;
      double m = 0.0;
      while (ctx.get_next_message(m)) {
        sum += m;
      }
      const double residual = ctx.aggregated() / n;
      ctx.value() = (1.0 - damping) / n + damping * (sum + residual);
    }
    if (ctx.superstep() < rounds) {
      if (ctx.out_degree() > 0) {
        ctx.broadcast(ctx.value() / static_cast<double>(ctx.out_degree()));
      } else {
        // FTPregel's stepPartial: dangling mass goes to the aggregator
        // instead of being dropped.
        ctx.aggregate(ctx.value());
      }
    } else {
      ctx.vote_to_halt();
    }
  }

  static void combine(double& old, const double& incoming) noexcept {
    old += incoming;
  }
};

}  // namespace ipregel::apps
