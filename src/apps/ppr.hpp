#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <string_view>
#include <vector>

#include "graph/types.hpp"

namespace ipregel::apps {

/// Personalized PageRank from a seed set, K lanes per engine pass.
///
/// Lane k runs power iteration with restart mass concentrated on its seed
/// set S_k instead of spread uniformly (classic PageRank is the special
/// case S = V): rank = (1-d) * restart(v) + d * sum(incoming rank /
/// out-degree), restart(v) = 1/|S_k| for seeds and 0 elsewhere. After
/// `rounds` propagation rounds the lane's ranks order vertices by their
/// relevance to the seed set — the per-user "what matters near me" point
/// query of the resident query service (src/query), where each user's
/// seed set occupies one lane of a shared run.
///
/// Same round structure as the paper's Fig. 6 PageRank: every vertex stays
/// active until the last round (always_halts = false, so no selection
/// bypass), communication is pure broadcast, dangling vertices drop their
/// damped mass. A lane with an EMPTY seed set has restart 0 everywhere and
/// converges to all-zero ranks — what the broker's padding lanes rely on.
template <std::size_t K>
struct MultiPpr {
  static_assert(K >= 1, "a lane program carries at least one lane");

  using value_type = std::array<double, K>;
  using message_type = std::array<double, K>;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = false;
  static constexpr std::size_t kLanes = K;
  static constexpr std::string_view kProgramName = "ipregel.MultiPpr";

  /// Propagation rounds (PageRank's fixed-round scheme; the service picks
  /// a service-wide value so queries stay batch-compatible).
  std::size_t rounds = 20;
  double damping = 0.85;

  /// Per-lane seed sets, each sorted ascending (set_seeds enforces it);
  /// compute binary-searches them, so ordering is a correctness contract,
  /// not a hint. Seeds are external vertex ids.
  std::array<std::vector<graph::vid_t>, K> seeds{};

  void set_seeds(std::size_t lane, std::vector<graph::vid_t> s) {
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    seeds[lane] = std::move(s);
  }

  [[nodiscard]] double restart(std::size_t lane,
                               graph::vid_t id) const noexcept {
    const std::vector<graph::vid_t>& s = seeds[lane];
    if (s.empty() ||
        !std::binary_search(s.begin(), s.end(), id)) {
      return 0.0;
    }
    return 1.0 / static_cast<double>(s.size());
  }

  // --- integrity auditor (per-vertex; EngineOptions::integrity) ----------
  /// A personalized rank is a share of one unit of restart mass per lane.
  [[nodiscard]] const char* audit_value(graph::vid_t /*id*/,
                                        const value_type& v,
                                        std::size_t /*n*/) const noexcept {
    for (std::size_t k = 0; k < K; ++k) {
      if (!(v[k] >= 0.0)) {  // also catches NaN
        return "negative or NaN personalized rank";
      }
      if (!(v[k] <= 1.0 + 1e-6)) {
        return "personalized rank above the lane's total mass of 1";
      }
    }
    return nullptr;
  }

  [[nodiscard]] value_type initial_value(graph::vid_t) const noexcept {
    return value_type{};  // zeros; superstep 0 plants the restart mass
  }

  void compute(auto& ctx) const {
    value_type& v = ctx.value();
    if (ctx.is_first_superstep()) {
      for (std::size_t k = 0; k < K; ++k) {
        v[k] = restart(k, ctx.id());
      }
    } else {
      value_type sum{};
      message_type m{};
      while (ctx.get_next_message(m)) {
        for (std::size_t k = 0; k < K; ++k) {
          sum[k] += m[k];
        }
      }
      for (std::size_t k = 0; k < K; ++k) {
        v[k] = (1.0 - damping) * restart(k, ctx.id()) + damping * sum[k];
      }
    }
    if (ctx.superstep() < rounds) {
      if (ctx.out_degree() > 0) {
        message_type out;
        const double inv_deg =
            1.0 / static_cast<double>(ctx.out_degree());
        for (std::size_t k = 0; k < K; ++k) {
          out[k] = v[k] * inv_deg;
        }
        ctx.broadcast(out);
      }
    } else {
      ctx.vote_to_halt();
    }
  }

  /// Lightweight-recovery hook, same argument as PageRank::resend: the
  /// broadcast is a pure function of the barrier value, so regenerated
  /// messages are bit-identical to the lost originals.
  void resend(auto& ctx) const {
    if (ctx.superstep() < rounds && ctx.out_degree() > 0) {
      const value_type& v = ctx.value();
      message_type out;
      const double inv_deg = 1.0 / static_cast<double>(ctx.out_degree());
      for (std::size_t k = 0; k < K; ++k) {
        out[k] = v[k] * inv_deg;
      }
      ctx.broadcast(out);
    }
  }

  static void combine(message_type& old,
                      const message_type& incoming) noexcept {
    for (std::size_t k = 0; k < K; ++k) {
      old[k] += incoming[k];
    }
  }
};

/// Single-query personalized PageRank — one seed set, one lane. What the
/// serial reference validates directly and examples use standalone.
using PersonalizedPageRank = MultiPpr<1>;

}  // namespace ipregel::apps
