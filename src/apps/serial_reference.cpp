#include "apps/serial_reference.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>

#include "runtime/rng.hpp"

namespace ipregel::apps::serial {

std::vector<double> pagerank(const graph::CsrGraph& g, std::size_t rounds,
                             double damping) {
  const std::size_t slots = g.num_slots();
  const auto n = static_cast<double>(g.num_vertices());
  std::vector<double> rank(slots, 0.0);
  std::vector<double> next(slots, 0.0);
  for (std::size_t s = g.first_slot(); s < slots; ++s) {
    rank[s] = 1.0 / n;
  }
  for (std::size_t round = 0; round < rounds; ++round) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t s = g.first_slot(); s < slots; ++s) {
      const std::size_t d = g.out_degree(s);
      if (d == 0) {
        continue;
      }
      const double share = rank[s] / static_cast<double>(d);
      for (const graph::vid_t v : g.out_neighbours(s)) {
        next[g.slot_of(v)] += share;
      }
    }
    for (std::size_t s = g.first_slot(); s < slots; ++s) {
      rank[s] = (1.0 - damping) / n + damping * next[s];
    }
  }
  return rank;
}

std::vector<double> ppr(const graph::CsrGraph& g,
                        const std::vector<graph::vid_t>& seeds,
                        std::size_t rounds, double damping) {
  const std::size_t slots = g.num_slots();
  std::vector<double> restart(slots, 0.0);
  if (!seeds.empty()) {
    // Deduplicate so the restart mass sums to exactly 1, matching
    // MultiPpr::set_seeds.
    std::vector<graph::vid_t> unique_seeds = seeds;
    std::sort(unique_seeds.begin(), unique_seeds.end());
    unique_seeds.erase(
        std::unique(unique_seeds.begin(), unique_seeds.end()),
        unique_seeds.end());
    const double share = 1.0 / static_cast<double>(unique_seeds.size());
    for (const graph::vid_t v : unique_seeds) {
      restart[g.slot_of(v)] = share;
    }
  }
  std::vector<double> rank = restart;
  std::vector<double> next(slots, 0.0);
  for (std::size_t round = 0; round < rounds; ++round) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t s = g.first_slot(); s < slots; ++s) {
      const std::size_t d = g.out_degree(s);
      if (d == 0) {
        continue;
      }
      const double share = rank[s] / static_cast<double>(d);
      for (const graph::vid_t v : g.out_neighbours(s)) {
        next[g.slot_of(v)] += share;
      }
    }
    for (std::size_t s = g.first_slot(); s < slots; ++s) {
      rank[s] = (1.0 - damping) * restart[s] + damping * next[s];
    }
  }
  return rank;
}

std::vector<graph::vid_t> hashmin(const graph::CsrGraph& g) {
  const std::size_t slots = g.num_slots();
  std::vector<graph::vid_t> label(slots, 0);
  for (std::size_t s = g.first_slot(); s < slots; ++s) {
    label[s] = g.id_of(s);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t s = g.first_slot(); s < slots; ++s) {
      for (const graph::vid_t v : g.out_neighbours(s)) {
        const std::size_t t = g.slot_of(v);
        if (label[s] < label[t]) {
          label[t] = label[s];
          changed = true;
        }
      }
    }
  }
  return label;
}

std::vector<std::uint32_t> sssp_unit(const graph::CsrGraph& g,
                                     graph::vid_t source) {
  constexpr auto kInf = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(g.num_slots(), kInf);
  const std::size_t src_slot = g.slot_of(source);
  dist[src_slot] = 0;
  std::deque<std::size_t> queue{src_slot};
  while (!queue.empty()) {
    const std::size_t s = queue.front();
    queue.pop_front();
    for (const graph::vid_t v : g.out_neighbours(s)) {
      const std::size_t t = g.slot_of(v);
      if (dist[t] == kInf) {
        dist[t] = dist[s] + 1;
        queue.push_back(t);
      }
    }
  }
  return dist;
}

std::vector<std::uint64_t> sssp_weighted(const graph::CsrGraph& g,
                                         graph::vid_t source) {
  constexpr auto kInf = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint64_t> dist(g.num_slots(), kInf);
  const std::size_t src_slot = g.slot_of(source);
  dist[src_slot] = 0;
  using Entry = std::pair<std::uint64_t, std::size_t>;  // (distance, slot)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0, src_slot);
  while (!heap.empty()) {
    const auto [d, s] = heap.top();
    heap.pop();
    if (d != dist[s]) {
      continue;  // stale entry
    }
    const auto neighbours = g.out_neighbours(s);
    const auto weights = g.out_weights(s);
    for (std::size_t i = 0; i < neighbours.size(); ++i) {
      const std::size_t t = g.slot_of(neighbours[i]);
      const std::uint64_t nd = d + weights[i];
      if (nd < dist[t]) {
        dist[t] = nd;
        heap.emplace(nd, t);
      }
    }
  }
  return dist;
}

std::vector<graph::vid_t> bfs_parent(const graph::CsrGraph& g,
                                     graph::vid_t source) {
  constexpr auto kUnreached = std::numeric_limits<graph::vid_t>::max();
  const std::size_t slots = g.num_slots();
  std::vector<graph::vid_t> parent(slots, kUnreached);
  std::vector<std::size_t> frontier{g.slot_of(source)};
  parent[g.slot_of(source)] = source;
  while (!frontier.empty()) {
    // Expand one BFS level; every newly reached vertex takes the smallest
    // sender id, mirroring the min combiner.
    std::vector<std::size_t> next;
    std::vector<std::pair<std::size_t, graph::vid_t>> proposals;
    for (const std::size_t s : frontier) {
      for (const graph::vid_t v : g.out_neighbours(s)) {
        const std::size_t t = g.slot_of(v);
        if (parent[t] == kUnreached) {
          proposals.emplace_back(t, g.id_of(s));
        }
      }
    }
    for (const auto& [t, p] : proposals) {
      if (parent[t] == kUnreached) {
        parent[t] = p;
        next.push_back(t);
      } else if (std::find(next.begin(), next.end(), t) != next.end()) {
        parent[t] = std::min(parent[t], p);
      }
    }
    frontier = std::move(next);
  }
  return parent;
}

std::vector<std::uint64_t> max_value(const graph::CsrGraph& g,
                                     std::uint64_t seed) {
  const std::size_t slots = g.num_slots();
  std::vector<std::uint64_t> value(slots, 0);
  for (std::size_t s = g.first_slot(); s < slots; ++s) {
    value[s] = runtime::mix64(runtime::mix64(seed) ^ g.id_of(s));
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t s = g.first_slot(); s < slots; ++s) {
      for (const graph::vid_t v : g.out_neighbours(s)) {
        const std::size_t t = g.slot_of(v);
        if (value[s] > value[t]) {
          value[t] = value[s];
          changed = true;
        }
      }
    }
  }
  return value;
}

std::vector<std::uint64_t> in_degree(const graph::CsrGraph& g) {
  std::vector<std::uint64_t> count(g.num_slots(), 0);
  for (std::size_t s = g.first_slot(); s < g.num_slots(); ++s) {
    for (const graph::vid_t v : g.out_neighbours(s)) {
      ++count[g.slot_of(v)];
    }
  }
  return count;
}

std::vector<bool> k_core(const graph::CsrGraph& g, std::uint32_t k) {
  const std::size_t slots = g.num_slots();
  std::vector<std::uint32_t> degree(slots, 0);
  std::vector<bool> alive(slots, false);
  for (std::size_t s = g.first_slot(); s < slots; ++s) {
    degree[s] = static_cast<std::uint32_t>(g.out_degree(s));
    alive[s] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t s = g.first_slot(); s < slots; ++s) {
      if (alive[s] && degree[s] < k) {
        alive[s] = false;
        changed = true;
        for (const graph::vid_t v : g.out_neighbours(s)) {
          const std::size_t t = g.slot_of(v);
          if (alive[t] && degree[t] > 0) {
            --degree[t];
          }
        }
      }
    }
  }
  return alive;
}

std::vector<double> pagerank_dangling(const graph::CsrGraph& g,
                                      std::size_t rounds, double damping) {
  const std::size_t slots = g.num_slots();
  const auto n = static_cast<double>(g.num_vertices());
  std::vector<double> rank(slots, 0.0);
  std::vector<double> next(slots, 0.0);
  double residual = 0.0;  // previous round's total dangling rank
  for (std::size_t s = g.first_slot(); s < slots; ++s) {
    rank[s] = 1.0 / n;
    if (g.out_degree(s) == 0) {
      residual += rank[s];
    }
  }
  for (std::size_t round = 0; round < rounds; ++round) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t s = g.first_slot(); s < slots; ++s) {
      const std::size_t d = g.out_degree(s);
      if (d == 0) {
        continue;
      }
      const double share = rank[s] / static_cast<double>(d);
      for (const graph::vid_t v : g.out_neighbours(s)) {
        next[g.slot_of(v)] += share;
      }
    }
    double dangling = 0.0;
    for (std::size_t s = g.first_slot(); s < slots; ++s) {
      rank[s] =
          (1.0 - damping) / n + damping * (next[s] + residual / n);
      if (g.out_degree(s) == 0) {
        dangling += rank[s];
      }
    }
    residual = dangling;
  }
  return rank;
}

std::vector<std::uint64_t> label_propagation(const graph::CsrGraph& g) {
  const std::size_t slots = g.num_slots();
  std::vector<std::uint64_t> key(slots, ~0ULL);
  for (std::size_t s = g.first_slot(); s < slots; ++s) {
    const auto degree = static_cast<std::uint32_t>(
        std::min<std::size_t>(g.out_degree(s), 0xFFFFFFFFULL));
    key[s] = (static_cast<std::uint64_t>(~degree) << 32) |
             static_cast<std::uint64_t>(g.id_of(s));
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t s = g.first_slot(); s < slots; ++s) {
      for (const graph::vid_t v : g.out_neighbours(s)) {
        const std::size_t t = g.slot_of(v);
        if (key[s] < key[t]) {
          key[t] = key[s];
          changed = true;
        }
      }
    }
  }
  return key;
}

}  // namespace ipregel::apps::serial
