#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace ipregel::apps::serial {

/// Straight-line, single-threaded reference implementations of every
/// shipped vertex program. They share no code with the framework — the test
/// suite cross-validates all six engine versions against these.
///
/// All functions return values indexed by *slot* (graph.slot_of(id)), so
/// they compare element-wise with Engine::values().

/// Power iteration with the exact update rule of the paper's Fig. 6
/// PageRank: rank = (1-d)/n + d * sum(incoming rank/out_degree), `rounds`
/// propagation rounds. Dangling vertices broadcast nothing (their rank mass
/// is dropped), matching the vertex-centric program.
[[nodiscard]] std::vector<double> pagerank(const graph::CsrGraph& g,
                                           std::size_t rounds,
                                           double damping = 0.85);

/// Personalized PageRank power iteration: restart mass 1/|seeds| on each
/// seed (0 elsewhere), rank = (1-d) * restart + d * sum(incoming
/// rank/out_degree), `rounds` propagation rounds, dangling mass dropped —
/// the exact update rule of apps::MultiPpr, one lane. An empty seed set
/// yields all-zero ranks.
[[nodiscard]] std::vector<double> ppr(const graph::CsrGraph& g,
                                      const std::vector<graph::vid_t>& seeds,
                                      std::size_t rounds,
                                      double damping = 0.85);

/// Fixpoint of label[v] = min(label[v], min over in-edges (u,v) of
/// label[u]), seeded with label[v] = id(v) — the Hashmin fixpoint.
[[nodiscard]] std::vector<graph::vid_t> hashmin(const graph::CsrGraph& g);

/// Unit-weight single-source shortest path (BFS levels), unreachable =
/// UINT32_MAX. Matches Fig. 5's semantics.
[[nodiscard]] std::vector<std::uint32_t> sssp_unit(const graph::CsrGraph& g,
                                                   graph::vid_t source);

/// Weighted single-source shortest path (Dijkstra), unreachable =
/// UINT64_MAX. The graph must carry weights.
[[nodiscard]] std::vector<std::uint64_t> sssp_weighted(
    const graph::CsrGraph& g, graph::vid_t source);

/// BFS smallest-id parent on some shortest hop-count path; the source is
/// its own parent, unreachable = UINT32_MAX.
[[nodiscard]] std::vector<graph::vid_t> bfs_parent(const graph::CsrGraph& g,
                                                   graph::vid_t source);

/// Fixpoint of value[v] = max(value[v], max over in-edges (u,v) of
/// value[u]), seeded with mix64(seed ^ id) — the MaxValue fixpoint.
[[nodiscard]] std::vector<std::uint64_t> max_value(const graph::CsrGraph& g,
                                                   std::uint64_t seed);

/// In-degree of every vertex, counted from the out-edge arrays.
[[nodiscard]] std::vector<std::uint64_t> in_degree(const graph::CsrGraph& g);

/// k-core membership by iterative peeling on a symmetric graph: true for
/// vertices that survive in the k-core, false for peeled ones. Matches the
/// KCore vertex program's `!removed` flag.
[[nodiscard]] std::vector<bool> k_core(const graph::CsrGraph& g,
                                       std::uint32_t k);

/// Power iteration with FTPregel's dangling-mass redistribution: rank =
/// (1-d)/n + d * (sum(incoming rank/out_degree) + residual/n) where
/// residual is the previous round's total dangling rank. Matches
/// apps::PageRankDangling superstep for superstep (the residual lags one
/// round, the aggregator's BSP visibility rule).
[[nodiscard]] std::vector<double> pagerank_dangling(const graph::CsrGraph& g,
                                                    std::size_t rounds,
                                                    double damping = 0.85);

/// Fixpoint of key[v] = min(key[v], min over in-edges (u,v) of key[u]),
/// seeded with key[v] = LabelPropagation::pack(out_degree(v), id(v)) —
/// the degree-anchored label-propagation fixpoint. Returns packed keys;
/// unpack labels with LabelPropagation::label_of.
[[nodiscard]] std::vector<std::uint64_t> label_propagation(
    const graph::CsrGraph& g);

}  // namespace ipregel::apps::serial
