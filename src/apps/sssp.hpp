#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

#include "graph/types.hpp"

namespace ipregel::apps {

/// Single-Source Shortest Path with unit edge weights, transcribed from the
/// paper's Fig. 5 (footnote 1: "all edge weights are equal to 1").
///
/// Activity follows a bell curve: one active vertex (the source), a growing
/// then shrinking wavefront. On low-density graphs the wavefront is tiny
/// relative to |V| for thousands of supersteps — the regime where the
/// selection bypass delivers the paper's 1400x SSSP speed-up on USA roads.
struct Sssp {
  using value_type = std::uint32_t;
  using message_type = std::uint32_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;

  static constexpr value_type kInfinity =
      std::numeric_limits<value_type>::max();

  /// The paper's experiments "use the vertex identified by '2' as the
  /// source".
  graph::vid_t source = 2;

  [[nodiscard]] value_type initial_value(graph::vid_t) const noexcept {
    return kInfinity;
  }

  void compute(auto& ctx) const {
    // Fig. 5 verbatim: ref = is_source(id) ? 0 : UINT_MAX, folded with the
    // combined message, then relax-and-broadcast on improvement.
    message_type ref = (ctx.id() == source) ? 0 : kInfinity;
    message_type m = 0;
    while (ctx.get_next_message(m)) {
      ref = std::min(ref, m);
    }
    if (ref < ctx.value()) {
      ctx.value() = ref;
      ctx.broadcast(ctx.value() + 1);
    }
    ctx.vote_to_halt();
  }

  /// Lightweight-recovery hook: every reached vertex re-offers its current
  /// distance to its out-neighbours. This is a *superset* of the messages
  /// actually in flight at the snapshot barrier (the original run only
  /// broadcasts on improvement), but every extra message is a valid
  /// relaxation the recipient has already absorbed or will simply ignore —
  /// the min-combined fixpoint, and therefore the final values, are
  /// bit-identical.
  void resend(auto& ctx) const {
    if (ctx.value() != kInfinity) {
      ctx.broadcast(ctx.value() + 1);
    }
  }

  static void combine(message_type& old,
                      const message_type& incoming) noexcept {
    old = std::min(old, incoming);  // Fig. 5: if (*old > new) *old = new
  }
};

/// Weighted SSSP extension: relaxes with per-edge weights, which rules out
/// broadcast (each out-neighbour receives a different distance) — this is
/// the framework's targeted-send path, push combiners only. Still
/// bypass-compatible: every vertex votes to halt each superstep.
struct WeightedSssp {
  using value_type = std::uint64_t;
  using message_type = std::uint64_t;
  static constexpr bool broadcast_only = false;
  static constexpr bool always_halts = true;

  static constexpr value_type kInfinity =
      std::numeric_limits<value_type>::max();

  graph::vid_t source = 2;

  [[nodiscard]] value_type initial_value(graph::vid_t) const noexcept {
    return kInfinity;
  }

  void compute(auto& ctx) const {
    message_type ref = (ctx.id() == source) ? 0 : kInfinity;
    message_type m = 0;
    while (ctx.get_next_message(m)) {
      ref = std::min(ref, m);
    }
    if (ref < ctx.value()) {
      ctx.value() = ref;
      const auto neighbours = ctx.out_neighbours();
      const auto weights = ctx.out_weights();
      for (std::size_t i = 0; i < neighbours.size(); ++i) {
        ctx.send_message(neighbours[i], ref + weights[i]);
      }
    }
    ctx.vote_to_halt();
  }

  static void combine(message_type& old,
                      const message_type& incoming) noexcept {
    old = std::min(old, incoming);
  }
};

}  // namespace ipregel::apps
