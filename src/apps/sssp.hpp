#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string_view>

#include "graph/types.hpp"

namespace ipregel::apps {

/// Single-Source Shortest Path with unit edge weights, transcribed from the
/// paper's Fig. 5 (footnote 1: "all edge weights are equal to 1").
///
/// Activity follows a bell curve: one active vertex (the source), a growing
/// then shrinking wavefront. On low-density graphs the wavefront is tiny
/// relative to |V| for thousands of supersteps — the regime where the
/// selection bypass delivers the paper's 1400x SSSP speed-up on USA roads.
struct Sssp {
  using value_type = std::uint32_t;
  using message_type = std::uint32_t;
  static constexpr bool broadcast_only = true;
  static constexpr bool always_halts = true;
  static constexpr std::string_view kProgramName = "ipregel.Sssp";

  static constexpr value_type kInfinity =
      std::numeric_limits<value_type>::max();

  /// The paper's experiments "use the vertex identified by '2' as the
  /// source".
  graph::vid_t source = 2;

  // --- integrity auditors (EngineOptions::integrity.invariants) ----------
  /// Per-partition reduction audit over {reached count, distance sum, max
  /// finite distance}. Relaxation only ever lowers distances and never
  /// un-reaches a vertex, and a unit-weight wavefront advances one hop per
  /// superstep — three monotone laws a flipped distance bit breaks.
  struct Audit {
    std::uint64_t reached = 0;
    std::uint64_t sum = 0;
    std::uint64_t max_dist = 0;
  };
  using audit_type = Audit;
  static constexpr bool audit_per_partition = true;
  [[nodiscard]] Audit audit_identity() const noexcept { return {}; }
  void audit_accumulate(Audit& acc, const value_type& v) const noexcept {
    if (v != kInfinity) {
      ++acc.reached;
      acc.sum += v;
      acc.max_dist = std::max<std::uint64_t>(acc.max_dist, v);
    }
  }
  static void audit_merge(Audit& acc, const Audit& other) noexcept {
    acc.reached += other.reached;
    acc.sum += other.sum;
    acc.max_dist = std::max(acc.max_dist, other.max_dist);
  }
  [[nodiscard]] const char* audit_check(const Audit* prev, const Audit& cur,
                                        std::size_t superstep)
      const noexcept {
    if (cur.max_dist > superstep) {
      return "finite distance exceeds the superstep number (a unit-weight "
             "wavefront cannot outrun the barrier count)";
    }
    if (prev != nullptr) {
      if (cur.reached < prev->reached) {
        return "reached-vertex count decreased (a distance reverted to "
               "infinity)";
      }
      if (cur.sum > prev->sum + (cur.reached - prev->reached) * superstep) {
        return "distance sum grew faster than relaxation allows";
      }
    }
    return nullptr;
  }
  /// Per-vertex audit: with unit weights every shortest path has at most
  /// |V| - 1 hops.
  [[nodiscard]] const char* audit_value(graph::vid_t /*id*/,
                                        const value_type& v,
                                        std::size_t num_vertices)
      const noexcept {
    if (v != kInfinity && v >= num_vertices) {
      return "finite distance not below |V|";
    }
    return nullptr;
  }

  [[nodiscard]] value_type initial_value(graph::vid_t) const noexcept {
    return kInfinity;
  }

  void compute(auto& ctx) const {
    // Fig. 5 verbatim: ref = is_source(id) ? 0 : UINT_MAX, folded with the
    // combined message, then relax-and-broadcast on improvement.
    message_type ref = (ctx.id() == source) ? 0 : kInfinity;
    message_type m = 0;
    while (ctx.get_next_message(m)) {
      ref = std::min(ref, m);
    }
    if (ref < ctx.value()) {
      ctx.value() = ref;
      ctx.broadcast(ctx.value() + 1);
    }
    ctx.vote_to_halt();
  }

  /// Lightweight-recovery hook: every reached vertex re-offers its current
  /// distance to its out-neighbours. This is a *superset* of the messages
  /// actually in flight at the snapshot barrier (the original run only
  /// broadcasts on improvement), but every extra message is a valid
  /// relaxation the recipient has already absorbed or will simply ignore —
  /// the min-combined fixpoint, and therefore the final values, are
  /// bit-identical.
  void resend(auto& ctx) const {
    if (ctx.value() != kInfinity) {
      ctx.broadcast(ctx.value() + 1);
    }
  }

  static void combine(message_type& old,
                      const message_type& incoming) noexcept {
    old = std::min(old, incoming);  // Fig. 5: if (*old > new) *old = new
  }
};

/// Weighted SSSP extension: relaxes with per-edge weights, which rules out
/// broadcast (each out-neighbour receives a different distance) — this is
/// the framework's targeted-send path, push combiners only. Still
/// bypass-compatible: every vertex votes to halt each superstep.
struct WeightedSssp {
  using value_type = std::uint64_t;
  using message_type = std::uint64_t;
  static constexpr bool broadcast_only = false;
  static constexpr bool always_halts = true;
  static constexpr std::string_view kProgramName = "ipregel.WeightedSssp";

  static constexpr value_type kInfinity =
      std::numeric_limits<value_type>::max();

  graph::vid_t source = 2;

  /// Weighted relaxation still never un-reaches a vertex, and with an
  /// unchanged reached set the distance sum can only fall. (No hop bound:
  /// weights are arbitrary.) Sums accumulate in 128 bits so large weights
  /// cannot wrap the comparison.
  struct Audit {
    std::uint64_t reached = 0;
    unsigned __int128 sum = 0;
  };
  using audit_type = Audit;
  static constexpr bool audit_per_partition = true;
  [[nodiscard]] Audit audit_identity() const noexcept { return {}; }
  void audit_accumulate(Audit& acc, const value_type& v) const noexcept {
    if (v != kInfinity) {
      ++acc.reached;
      acc.sum += v;
    }
  }
  static void audit_merge(Audit& acc, const Audit& other) noexcept {
    acc.reached += other.reached;
    acc.sum += other.sum;
  }
  [[nodiscard]] const char* audit_check(const Audit* prev, const Audit& cur,
                                        std::size_t /*superstep*/)
      const noexcept {
    if (prev != nullptr) {
      if (cur.reached < prev->reached) {
        return "reached-vertex count decreased (a distance reverted to "
               "infinity)";
      }
      if (cur.reached == prev->reached && cur.sum > prev->sum) {
        return "distance sum increased without newly reached vertices "
               "(relaxation only lowers distances)";
      }
    }
    return nullptr;
  }

  [[nodiscard]] value_type initial_value(graph::vid_t) const noexcept {
    return kInfinity;
  }

  void compute(auto& ctx) const {
    message_type ref = (ctx.id() == source) ? 0 : kInfinity;
    message_type m = 0;
    while (ctx.get_next_message(m)) {
      ref = std::min(ref, m);
    }
    if (ref < ctx.value()) {
      ctx.value() = ref;
      const auto neighbours = ctx.out_neighbours();
      const auto weights = ctx.out_weights();
      for (std::size_t i = 0; i < neighbours.size(); ++i) {
        ctx.send_message(neighbours[i], ref + weights[i]);
      }
    }
    ctx.vote_to_halt();
  }

  static void combine(message_type& old,
                      const message_type& incoming) noexcept {
    old = std::min(old, incoming);
  }
};

}  // namespace ipregel::apps
