#include "benchlib/extrapolate.hpp"

#include <algorithm>
#include <cassert>

namespace ipregel::bench {

std::vector<ScalingPoint> extrapolate_scaling(
    std::vector<ScalingPoint> points, std::size_t forward_doublings) {
  std::sort(points.begin(), points.end(),
            [](const ScalingPoint& a, const ScalingPoint& b) {
              return a.nodes < b.nodes;
            });
  // Collect the successfully measured points only.
  std::vector<std::size_t> ok;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].measured && !points[i].memory_failure) {
      ok.push_back(i);
    }
  }
  if (ok.size() < 2) {
    return points;  // nothing to extrapolate from
  }
  // Efficiency of the last measured doubling (or closest pair): the
  // speed-up ratio per node-count doubling.
  const ScalingPoint& a = points[ok[ok.size() - 2]];
  const ScalingPoint& b = points[ok.back()];
  assert(b.nodes > a.nodes);
  const double node_ratio =
      static_cast<double>(b.nodes) / static_cast<double>(a.nodes);
  const double time_ratio = a.seconds / b.seconds;  // >1 when scaling helps

  // Backward reconstruction for failed/missing smaller node counts.
  const ScalingPoint& first_ok = points[ok.front()];
  for (ScalingPoint& p : points) {
    if (p.nodes < first_ok.nodes && (!p.measured || p.memory_failure)) {
      double seconds = first_ok.seconds;
      double n = static_cast<double>(first_ok.nodes);
      while (n / node_ratio >= static_cast<double>(p.nodes) - 1e-9) {
        seconds *= time_ratio;
        n /= node_ratio;
      }
      p.seconds = seconds;
      p.measured = false;
    }
  }

  // Forward projection.
  double seconds = b.seconds;
  std::size_t nodes = b.nodes;
  for (std::size_t d = 0; d < forward_doublings; ++d) {
    nodes *= 2;
    seconds /= time_ratio;
    points.push_back(ScalingPoint{nodes, seconds, false, false});
  }
  return points;
}

std::optional<std::size_t> lead_change(const std::vector<ScalingPoint>& curve,
                                       double ipregel_seconds) {
  // Scan for the first point at or below the reference, then refine to a
  // whole node count by linear interpolation between the bracketing points
  // (node counts between the measured powers of two were never run; the
  // paper reports the lead change at this granularity, e.g. "11 nodes").
  const ScalingPoint* prev = nullptr;
  for (const ScalingPoint& p : curve) {
    if (p.memory_failure) {
      continue;
    }
    if (p.seconds <= ipregel_seconds) {
      if (prev == nullptr || prev->seconds <= ipregel_seconds) {
        return p.nodes;
      }
      for (std::size_t n = prev->nodes + 1; n < p.nodes; ++n) {
        const double frac = static_cast<double>(n - prev->nodes) /
                            static_cast<double>(p.nodes - prev->nodes);
        const double t = prev->seconds + frac * (p.seconds - prev->seconds);
        if (t <= ipregel_seconds) {
          return n;
        }
      }
      return p.nodes;
    }
    prev = &p;
  }
  return std::nullopt;
}

LinearFit fit_line(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  LinearFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) {
    return fit;
  }
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) {
    return fit;
  }
  fit.slope = (dn * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / dn;
  return fit;
}

}  // namespace ipregel::bench
