#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace ipregel::bench {

/// A (num_nodes, runtime) point of a Pregel+ scaling curve. `measured` is
/// false for points reconstructed by extrapolation (including backward
/// reconstruction of node counts where the real run failed with
/// insufficient memory — the paper's Fig. 8 hollow markers).
struct ScalingPoint {
  std::size_t nodes = 0;
  double seconds = 0.0;
  bool measured = true;
  bool memory_failure = false;
};

/// The paper's footnote-8 extrapolation: "Given an efficiency of x between
/// 8 and 16 nodes, the runtime of 32 nodes is projected assuming an
/// efficiency of x between 16 and 32 nodes" — i.e. the speed-up ratio of
/// the last measured doubling is assumed to repeat for every further
/// doubling. The same ratio is applied backward for node counts below the
/// smallest successful run.
///
/// `forward_doublings` extra points are appended beyond the largest
/// measured node count.
[[nodiscard]] std::vector<ScalingPoint> extrapolate_scaling(
    std::vector<ScalingPoint> measured, std::size_t forward_doublings);

/// The "lead change": the smallest node count at which the (possibly
/// extrapolated) Pregel+ curve meets or beats the single-node iPregel
/// reference. Returns nullopt when even the last extrapolated point is
/// slower (the paper's "more than 15,000 nodes" case is detected by the
/// caller extrapolating far enough).
[[nodiscard]] std::optional<std::size_t> lead_change(
    const std::vector<ScalingPoint>& curve, double ipregel_seconds);

/// Least-squares linear fit y = a + b*x; used by the Fig. 9 memory
/// projection ("linear extrapolation ... indicates that 11GB would be
/// sufficient").
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;

  [[nodiscard]] double at(double x) const noexcept {
    return intercept + slope * x;
  }
};
[[nodiscard]] LinearFit fit_line(const std::vector<double>& xs,
                                 const std::vector<double>& ys);

}  // namespace ipregel::bench
