#include "benchlib/reporting.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "io/vfs.hpp"

namespace ipregel::bench {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::size_t total = headers_.size() * 3 + 1;
  for (const std::size_t w : width) {
    total += w;
  }
  std::cout << '\n' << title_ << '\n' << std::string(total, '-') << '\n';
  const auto print_row = [&](const std::vector<std::string>& cells) {
    std::cout << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::cout << ' ' << cells[c]
                << std::string(width[c] - cells[c].size() + 1, ' ') << '|';
    }
    std::cout << '\n';
  };
  print_row(headers_);
  std::cout << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
  std::cout << std::string(total, '-') << '\n';
}

void Table::write_csv(const std::string& path, io::Vfs* vfs) const {
  std::ostringstream out;
  const auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) {
      return s;
    }
    std::string quoted = "\"";
    for (const char ch : s) {
      if (ch == '"') {
        quoted += '"';
      }
      quoted += ch;
    }
    return quoted + '"';
  };
  out << "# " << title_ << '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c ? "," : "") << escape(headers_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "," : "") << escape(row[c]);
    }
    out << '\n';
  }
  // CSV dump is best-effort; the console table is authoritative.
  try {
    io::Vfs& fs = io::vfs_or_real(vfs);
    const std::string parent = io::parent_dir(path);
    if (parent != "." && parent != "/") {
      fs.mkdir(parent);
    }
    const std::string body = out.str();
    const auto file = fs.open(path, io::Vfs::OpenMode::kTruncate);
    file->write(body.data(), body.size());
    file->close();
  } catch (const io::IoError&) {
  }
}

JsonReport::JsonReport(std::string bench) : bench_(std::move(bench)) {}

void JsonReport::text(const std::string& key, const std::string& value) {
  fields_.push_back({key, Field::Kind::kText, value, 0.0, 0});
}

void JsonReport::num(const std::string& key, double value) {
  fields_.push_back({key, Field::Kind::kNum, {}, value, 0});
}

void JsonReport::count(const std::string& key, std::uint64_t value) {
  fields_.push_back({key, Field::Kind::kCount, {}, 0.0, value});
}

void JsonReport::floor(const std::string& key, double min_value) {
  fields_.push_back({key, Field::Kind::kFloor, {}, min_value, 0});
}

void JsonReport::ceiling(const std::string& key, double max_value) {
  fields_.push_back({key, Field::Kind::kCeiling, {}, max_value, 0});
}

std::vector<std::string> JsonReport::violations() const {
  const auto metric = [&](const std::string& key) -> const Field* {
    for (const Field& f : fields_) {
      if ((f.kind == Field::Kind::kNum || f.kind == Field::Kind::kCount) &&
          f.key == key) {
        return &f;
      }
    }
    return nullptr;
  };
  std::vector<std::string> out;
  char buf[160];
  for (const Field& f : fields_) {
    if (f.kind != Field::Kind::kFloor && f.kind != Field::Kind::kCeiling) {
      continue;
    }
    const Field* m = metric(f.key);
    if (m == nullptr) {
      out.push_back("gate '" + f.key + "': metric was never recorded");
      continue;
    }
    const double value = m->kind == Field::Kind::kCount
                             ? static_cast<double>(m->count)
                             : m->num;
    if (f.kind == Field::Kind::kFloor && value < f.num) {
      std::snprintf(buf, sizeof buf, "'%s': %.4g below the %.4g floor",
                    f.key.c_str(), value, f.num);
      out.emplace_back(buf);
    } else if (f.kind == Field::Kind::kCeiling && value > f.num) {
      std::snprintf(buf, sizeof buf, "'%s': %.4g above the %.4g ceiling",
                    f.key.c_str(), value, f.num);
      out.emplace_back(buf);
    }
  }
  return out;
}

std::string JsonReport::dump() const {
  const auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
      if (ch == '"' || ch == '\\') {
        out += '\\';
        out += ch;
      } else if (ch == '\n') {
        out += "\\n";
      } else {
        out += ch;
      }
    }
    return out;
  };
  const auto fmt_num = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    // JSON has no inf/nan; clamp to null so parsers stay happy.
    std::string s = buf;
    if (s.find("inf") != std::string::npos ||
        s.find("nan") != std::string::npos) {
      return std::string("null");
    }
    return s;
  };
  std::ostringstream out;
  out << "{\n  \"bench\": \"" << escape(bench_) << "\",\n";
  const auto section = [&](Field::Kind a, Field::Kind b,
                           const char* name, bool trailing_comma) {
    out << "  \"" << name << "\": {";
    bool first = true;
    for (const Field& f : fields_) {
      if (f.kind != a && f.kind != b) {
        continue;
      }
      out << (first ? "\n" : ",\n") << "    \"" << escape(f.key) << "\": ";
      if (f.kind == Field::Kind::kText) {
        out << '"' << escape(f.text) << '"';
      } else if (f.kind == Field::Kind::kCount) {
        out << f.count;
      } else {
        out << fmt_num(f.num);
      }
      first = false;
    }
    out << (first ? "}" : "\n  }") << (trailing_comma ? ",\n" : "\n");
  };
  section(Field::Kind::kText, Field::Kind::kText, "meta", true);
  section(Field::Kind::kNum, Field::Kind::kCount, "metrics", true);
  section(Field::Kind::kFloor, Field::Kind::kFloor, "gates", true);
  section(Field::Kind::kCeiling, Field::Kind::kCeiling, "ceilings", false);
  out << "}\n";
  return out.str();
}

void JsonReport::write(const std::string& path, io::Vfs* vfs) const {
  try {
    io::Vfs& fs = io::vfs_or_real(vfs);
    const std::string parent = io::parent_dir(path);
    if (parent != "." && parent != "/") {
      fs.mkdir(parent);
    }
    const std::string body = dump();
    const auto file = fs.open(path, io::Vfs::OpenMode::kTruncate);
    file->write(body.data(), body.size());
    file->close();
  } catch (const io::IoError&) {
  }
}

std::string fmt_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", s);
  return buf;
}

std::string fmt_bytes(std::size_t bytes) {
  char buf[32];
  const double mib = static_cast<double>(bytes) / (1024.0 * 1024.0);
  if (mib >= 1024.0) {
    std::snprintf(buf, sizeof buf, "%.2f GiB", mib / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f MiB", mib);
  }
  return buf;
}

std::string fmt_factor(double f) {
  char buf[32];
  if (f >= 100.0) {
    std::snprintf(buf, sizeof buf, "%.0fx", f);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fx", f);
  }
  return buf;
}

std::string fmt_count(std::size_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t since_sep = digits.size() % 3;
  if (since_sep == 0) {
    since_sep = 3;
  }
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && since_sep == 0) {
      out += ',';
      since_sep = 3;
    }
    out += digits[i];
    --since_sep;
  }
  return out;
}

}  // namespace ipregel::bench
