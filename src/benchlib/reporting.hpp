#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ipregel::io {
class Vfs;
}  // namespace ipregel::io

namespace ipregel::bench {

/// Fixed-width console table, the output format of every figure/table
/// reproduction binary. Also dumps itself as CSV so results can be
/// post-processed (EXPERIMENTS.md is written from these).
class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  /// Appends a row; cells are preformatted strings.
  void add_row(std::vector<std::string> cells);

  /// Renders the table (title, rule, headers, rows) to stdout.
  void print() const;

  /// Writes the table as CSV to `path`, truncating any previous file
  /// (every bench writes exactly one table per file; re-runs replace it,
  /// so a committed CSV never accumulates stale tables). Creates the
  /// file — and its parent directory, one level — if needed, through
  /// `vfs` (nullptr = the real filesystem). Best-effort: the console
  /// table is authoritative, so I/O failures are swallowed.
  void write_csv(const std::string& path, io::Vfs* vfs = nullptr) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Machine-readable companion to Table: a flat metrics document the
/// regression gate (scripts/check_bench_regression.py) diffs across
/// runs. Two sections keep the contract simple — `meta` (strings:
/// provenance, graph names, mode) and `metrics` (numbers: the gated
/// values). Optional `gates` (absolute floors) and `ceilings` (absolute
/// maxima) entries carry thresholds the bench itself asserts (e.g.
/// minimum batching speed-up, maximum p99), so they travel with the run
/// that produced them instead of living in CI YAML — and a run that
/// violates its own thresholds fails at generation time (see
/// `violations`), so a collapsed run cannot be committed as a baseline
/// that would then bless the collapse.
class JsonReport {
 public:
  explicit JsonReport(std::string bench);

  /// Adds a provenance string under `meta`.
  void text(const std::string& key, const std::string& value);
  /// Adds a gated numeric metric under `metrics`.
  void num(const std::string& key, double value);
  /// Adds an integral metric under `metrics` (rendered without a dot).
  void count(const std::string& key, std::uint64_t value);
  /// Adds an absolute floor under `gates`: the gate script fails the run
  /// when `metrics[key] < floor`, independent of any baseline.
  void floor(const std::string& key, double min_value);
  /// Adds an absolute ceiling under `ceilings`: the gate script fails
  /// the run when `metrics[key] > ceiling`, independent of any baseline.
  void ceiling(const std::string& key, double max_value);

  /// Checks every floor/ceiling against the recorded metrics. Returns
  /// one human-readable line per violated threshold (empty = all hold);
  /// a threshold whose metric was never recorded is itself a violation.
  [[nodiscard]] std::vector<std::string> violations() const;

  /// The serialized document (insertion order preserved).
  [[nodiscard]] std::string dump() const;

  /// Writes (truncating) the document to `path`, creating the parent
  /// directory if needed. Best-effort like Table::write_csv.
  void write(const std::string& path, io::Vfs* vfs = nullptr) const;

 private:
  struct Field {
    std::string key;
    enum class Kind : std::uint8_t {
      kText,
      kNum,
      kCount,
      kFloor,
      kCeiling
    } kind;
    std::string text;
    double num = 0.0;
    std::uint64_t count = 0;
  };
  std::string bench_;
  std::vector<Field> fields_;
};

/// Formats seconds with 3 significant decimals ("12.345 s" -> "12.345").
[[nodiscard]] std::string fmt_seconds(double s);
/// Formats bytes as MiB or GiB with two decimals.
[[nodiscard]] std::string fmt_bytes(std::size_t bytes);
/// Formats a speed-up factor ("6.5x").
[[nodiscard]] std::string fmt_factor(double f);
/// Formats a large count with thousands separators.
[[nodiscard]] std::string fmt_count(std::size_t n);

}  // namespace ipregel::bench
