#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ipregel::io {
class Vfs;
}  // namespace ipregel::io

namespace ipregel::bench {

/// Fixed-width console table, the output format of every figure/table
/// reproduction binary. Also dumps itself as CSV so results can be
/// post-processed (EXPERIMENTS.md is written from these).
class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  /// Appends a row; cells are preformatted strings.
  void add_row(std::vector<std::string> cells);

  /// Renders the table (title, rule, headers, rows) to stdout.
  void print() const;

  /// Appends the table as CSV to `path` (creates the file — and its
  /// parent directory, one level — if needed) through `vfs` (nullptr =
  /// the real filesystem). Best-effort: the console table is
  /// authoritative, so I/O failures are swallowed.
  void write_csv(const std::string& path, io::Vfs* vfs = nullptr) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats seconds with 3 significant decimals ("12.345 s" -> "12.345").
[[nodiscard]] std::string fmt_seconds(double s);
/// Formats bytes as MiB or GiB with two decimals.
[[nodiscard]] std::string fmt_bytes(std::size_t bytes);
/// Formats a speed-up factor ("6.5x").
[[nodiscard]] std::string fmt_factor(double f);
/// Formats a large count with thousands separators.
[[nodiscard]] std::string fmt_count(std::size_t n);

}  // namespace ipregel::bench
