#include "benchlib/workloads.hpp"

#include <cstdlib>
#include <string_view>

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace ipregel::bench {
namespace {

graph::CsrGraph build_full(const graph::EdgeList& e) {
  // All benches may run every combiner version, so in-edges are built.
  // Offset addressing handles any id base the stand-ins or files use.
  return graph::CsrGraph::build(
      e, graph::CsrBuildOptions{.addressing = graph::AddressingMode::kOffset,
                                .build_in_edges = true,
                                .keep_weights = false});
}

}  // namespace

BenchSize bench_size() {
  const char* env = std::getenv("IPREGEL_BENCH_SIZE");
  if (env == nullptr) {
    return BenchSize::kDefault;
  }
  const std::string_view v(env);
  if (v == "small") {
    return BenchSize::kSmall;
  }
  if (v == "large") {
    return BenchSize::kLarge;
  }
  return BenchSize::kDefault;
}

Workload make_wiki_like(BenchSize size) {
  unsigned scale = 18;
  unsigned edge_factor = 12;
  switch (size) {
    case BenchSize::kSmall:
      scale = 14;
      edge_factor = 8;
      break;
    case BenchSize::kDefault:
      break;
    case BenchSize::kLarge:
      scale = 20;
      edge_factor = 12;
      break;
  }
  Workload w;
  w.name = "wiki-like (R-MAT s" + std::to_string(scale) + " ef" +
           std::to_string(edge_factor) + ")";
  w.paper_name = "Wikipedia (dbpedia-link)";
  const auto generate = [scale, edge_factor] {
    auto e = graph::rmat(scale, edge_factor, {.seed = 20180813});
    // The paper's graphs have "contiguous indexes starting at 1"; shift so
    // the benches exercise offset/desolate addressing like the paper does.
    graph::shift_ids(e, 1);
    return e;
  };
  if (const char* path = std::getenv("IPREGEL_WIKI_PATH"); path != nullptr) {
    w.name += std::string(" [file: ") + path + "]";
    w.graph = build_full(graph::load_edge_list_text(path));
  } else {
    w.graph = build_full(generate());
  }
  return w;
}

Workload make_road_like(BenchSize size) {
  graph::vid_t rows = 400;
  graph::vid_t cols = 600;
  switch (size) {
    case BenchSize::kSmall:
      rows = 100;
      cols = 160;
      break;
    case BenchSize::kDefault:
      break;
    case BenchSize::kLarge:
      rows = 1000;
      cols = 1400;
      break;
  }
  Workload w;
  w.name = "road-like (grid " + std::to_string(rows) + "x" +
           std::to_string(cols) + ")";
  w.paper_name = "USA road network (DIMACS)";
  if (const char* path = std::getenv("IPREGEL_ROAD_PATH"); path != nullptr) {
    w.name += std::string(" [file: ") + path + "]";
    w.graph = build_full(graph::load_dimacs_gr(path));
  } else {
    auto e = graph::grid_2d(rows, cols,
                            {.removal_fraction = 0.03, .seed = 20180813});
    graph::shift_ids(e, 1);
    w.graph = build_full(e);
  }
  return w;
}

ScaledTarget twitter_target(BenchSize size) {
  // Paper: 52,579,682 V / 1,963,263,821 E (ratio ~1:37). Kept proportional,
  // scaled to the box.
  switch (size) {
    case BenchSize::kSmall:
      return {100'000, 3'700'000};
    case BenchSize::kLarge:
      return {4'000'000, 149'000'000};
    case BenchSize::kDefault:
      break;
  }
  return {1'000'000, 37'300'000};
}

ScaledTarget friendster_target(BenchSize size) {
  // Paper: 68,349,466 V / 2,586,147,869 E (ratio ~1:38).
  switch (size) {
    case BenchSize::kSmall:
      return {130'000, 4'900'000};
    case BenchSize::kLarge:
      return {5'200'000, 196'000'000};
    case BenchSize::kDefault:
      break;
  }
  return {1'300'000, 49'200'000};
}

graph::EdgeList make_twitter_scaled(unsigned percent, BenchSize size) {
  const ScaledTarget target = twitter_target(size);
  // "a synthetic graph described as 20% contains a fifth of the number of
  // vertices and a fifth of the number of edges of the original" (7.4.2).
  const auto v = static_cast<graph::vid_t>(
      target.num_vertices * percent / 100);
  const auto e = static_cast<graph::eid_t>(target.num_edges) * percent / 100;
  return graph::uniform_random(std::max<graph::vid_t>(v, 2), e,
                               0xC0FFEE ^ percent);
}

}  // namespace ipregel::bench
