#pragma once

#include <cstddef>
#include <string>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"

namespace ipregel::bench {

/// The experiment workloads.
///
/// The paper's graphs (Wikipedia/dbpedia-link, USA roads, Twitter(MPI),
/// Friendster) are multi-gigabyte downloads that cannot ship with this
/// repository, so every benchmark runs on a generated stand-in that
/// preserves the structural property the experiment depends on (see
/// DESIGN.md "Substitutions"):
///
///  - wiki-like: R-MAT — scale-free, dense, low effective diameter;
///  - road-like: 2-D lattice — constant low degree, huge diameter;
///  - twitter-like: uniform random at a target |V|/|E| ratio (the paper's
///    own section 7.4.2 methodology for its scaled synthetic clones).
///
/// Loaders for the real formats exist in graph/io.hpp: point
/// IPREGEL_WIKI_PATH / IPREGEL_ROAD_PATH at the KONECT / DIMACS files to
/// run the benches on the paper's actual graphs.
///
/// Sizes are scaled to a two-core laptop-class box and adjustable with the
/// IPREGEL_BENCH_SIZE environment variable: "small" (CI-quick), "default",
/// "large".

enum class BenchSize { kSmall, kDefault, kLarge };

/// Reads IPREGEL_BENCH_SIZE (default kDefault).
[[nodiscard]] BenchSize bench_size();

/// A named, ready-to-run workload graph.
struct Workload {
  std::string name;        ///< e.g. "wiki-like (R-MAT s18)"
  std::string paper_name;  ///< the graph it stands in for
  graph::CsrGraph graph;
};

/// Scale-free stand-in for the Wikipedia graph. Built with in-edges (the
/// pull combiner needs them) and offset addressing.
[[nodiscard]] Workload make_wiki_like(BenchSize size = bench_size());

/// High-diameter road-network stand-in for the USA graph.
[[nodiscard]] Workload make_road_like(BenchSize size = bench_size());

/// Twitter-clone edge list at `percent` of the configured full size —
/// the Fig. 9 sweep. Only the edge list: the caller chooses CSR options
/// so memory can be measured per configuration.
[[nodiscard]] graph::EdgeList make_twitter_scaled(unsigned percent,
                                                  BenchSize size =
                                                      bench_size());

/// Full-size |V| / |E| of the twitter-like stand-in for `size`.
struct ScaledTarget {
  std::size_t num_vertices;
  std::size_t num_edges;
};
[[nodiscard]] ScaledTarget twitter_target(BenchSize size = bench_size());
[[nodiscard]] ScaledTarget friendster_target(BenchSize size = bench_size());

/// SSSP source used by all benches (the paper uses vertex '2').
inline constexpr graph::vid_t kSsspSource = 2;

/// PageRank rounds used by all benches (the paper runs 30 iterations).
inline constexpr std::size_t kPageRankRounds = 30;

}  // namespace ipregel::bench
