#pragma once

#include <concepts>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

namespace ipregel {

/// Optional aggregator support on a vertex program (an extension beyond
/// the paper, following the original Pregel's aggregator mechanism).
///
/// A program opts in by declaring:
///
///   using aggregate_type = double;
///   static aggregate_type aggregate_identity();
///   static void aggregate(aggregate_type& acc,
///                         const aggregate_type& contribution);
///
/// During superstep S every vertex may call `ctx.aggregate(x)`; the engine
/// folds all contributions (per-thread partials, then a deterministic
/// cross-thread reduce at the superstep barrier) and exposes the result of
/// superstep S to every vertex of superstep S+1 via `ctx.aggregated()` —
/// the BSP visibility rule, same as for messages. `aggregate` must be
/// commutative and associative for thread-count-independent results.
///
/// Two canonical uses ship as apps:
///  - global convergence detection (stop PageRank when the largest
///    per-vertex delta drops below a threshold) — apps::PageRankConverging;
///  - FTPregel's dangling-mass PageRank: dangling vertices contribute
///    their rank to a sum aggregator each superstep and every vertex of
///    the next superstep folds the redistributed residual back in —
///    apps::PageRankDangling.
template <typename P>
concept HasAggregator = requires(typename P::aggregate_type& acc,
                                 const typename P::aggregate_type& x) {
  typename P::aggregate_type;
  { P::aggregate_identity() } -> std::same_as<typename P::aggregate_type>;
  { P::aggregate(acc, x) } -> std::same_as<void>;
};

/// An aggregator whose accumulator can cross a process boundary as raw
/// bytes — the contract of the sharded runtime's cross-shard reduction
/// (src/shard). Each worker process folds its local contributions into a
/// partial, ships the partial's bytes to the coordinator inside its
/// barrier-entry message, and the coordinator folds the per-shard
/// partials *in shard order* (a deterministic reduce, mirroring the
/// engine's in-thread-order fold) before broadcasting the result with the
/// barrier release. Trivial copyability is exactly what makes the
/// byte-level ship/fold round trip an identity.
template <typename P>
concept HasSerializableAggregator =
    HasAggregator<P> &&
    std::is_trivially_copyable_v<typename P::aggregate_type>;

/// Serializes an aggregate accumulator for the wire (shard barrier
/// messages, heavyweight snapshots).
template <typename P>
  requires HasSerializableAggregator<P>
[[nodiscard]] inline std::vector<std::uint8_t> aggregate_to_bytes(
    const typename P::aggregate_type& value) {
  std::vector<std::uint8_t> bytes(sizeof(value));
  std::memcpy(bytes.data(), &value, sizeof(value));
  return bytes;
}

/// Inverse of aggregate_to_bytes. Returns the identity when `bytes` is
/// empty (a shard that aggregated nothing ships an empty blob) — callers
/// must reject any other size mismatch before trusting the bytes.
template <typename P>
  requires HasSerializableAggregator<P>
[[nodiscard]] inline typename P::aggregate_type aggregate_from_bytes(
    std::span<const std::uint8_t> bytes) {
  typename P::aggregate_type value = P::aggregate_identity();
  if (bytes.size() == sizeof(value)) {
    std::memcpy(&value, bytes.data(), sizeof(value));
  }
  return value;
}

}  // namespace ipregel
