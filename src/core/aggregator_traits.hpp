#pragma once

#include <concepts>

namespace ipregel {

/// Optional aggregator support on a vertex program (an extension beyond
/// the paper, following the original Pregel's aggregator mechanism).
///
/// A program opts in by declaring:
///
///   using aggregate_type = double;
///   static aggregate_type aggregate_identity();
///   static void aggregate(aggregate_type& acc,
///                         const aggregate_type& contribution);
///
/// During superstep S every vertex may call `ctx.aggregate(x)`; the engine
/// folds all contributions (per-thread partials, then a deterministic
/// cross-thread reduce at the superstep barrier) and exposes the result of
/// superstep S to every vertex of superstep S+1 via `ctx.aggregated()` —
/// the BSP visibility rule, same as for messages. `aggregate` must be
/// commutative and associative for thread-count-independent results.
///
/// The canonical use is global convergence detection (e.g. stop PageRank
/// when the largest per-vertex delta drops below a threshold) — see
/// apps::PageRankConverging.
template <typename P>
concept HasAggregator = requires(typename P::aggregate_type& acc,
                                 const typename P::aggregate_type& x) {
  typename P::aggregate_type;
  { P::aggregate_identity() } -> std::same_as<typename P::aggregate_type>;
  { P::aggregate(acc, x) } -> std::same_as<void>;
};

}  // namespace ipregel
