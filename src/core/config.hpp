#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

#include "core/run_error.hpp"
#include "ft/checkpoint.hpp"
#include "ft/fault.hpp"
#include "integrity/fault.hpp"
#include "integrity/options.hpp"

namespace ipregel {

/// The combiner module versions of the paper's Fig. 2 / section 6.
enum class CombinerKind {
  /// Push-based combiner, block-waiting synchronisation: one 40-byte
  /// std::mutex per vertex mailbox.
  kMutexPush,
  /// Push-based combiner, busy-waiting synchronisation: one 4-byte spinlock
  /// per vertex mailbox (90% lighter data-race protection).
  kSpinlockPush,
  /// Pull-based combiner ("broadcast" version): senders buffer a single
  /// outbox value, receivers gather from in-neighbours. Race-free, zero
  /// lock memory; requires broadcast-only communication and in-neighbour
  /// lists.
  kPull,
};

[[nodiscard]] constexpr std::string_view to_string(CombinerKind k) noexcept {
  switch (k) {
    case CombinerKind::kMutexPush:
      return "mutex";
    case CombinerKind::kSpinlockPush:
      return "spinlock";
    case CombinerKind::kPull:
      return "broadcast";
  }
  return "invalid";
}

/// One of the six framework versions of section 7.2: a combiner choice,
/// optionally paired with the selection bypass of section 4.
struct VersionId {
  CombinerKind combiner = CombinerKind::kSpinlockPush;
  bool selection_bypass = false;

  friend bool operator==(const VersionId&, const VersionId&) = default;
};

/// All six versions, in the paper's Fig. 7 legend order.
inline constexpr VersionId kAllVersions[] = {
    {CombinerKind::kMutexPush, false},    {CombinerKind::kMutexPush, true},
    {CombinerKind::kSpinlockPush, false}, {CombinerKind::kSpinlockPush, true},
    {CombinerKind::kPull, false},         {CombinerKind::kPull, true},
};

/// Human-readable version name matching the paper's legends, e.g.
/// "spinlock with selection bypass".
[[nodiscard]] inline std::string_view version_name(VersionId v) noexcept {
  switch (v.combiner) {
    case CombinerKind::kMutexPush:
      return v.selection_bypass ? "mutex with selection bypass" : "mutex";
    case CombinerKind::kSpinlockPush:
      return v.selection_bypass ? "spinlock with selection bypass"
                                : "spinlock";
    case CombinerKind::kPull:
      return v.selection_bypass ? "broadcast with selection bypass"
                                : "broadcast";
  }
  return "invalid";
}

/// How vertices are distributed across threads within a superstep.
enum class Schedule {
  /// Equal contiguous shares (the paper's distribution): zero scheduling
  /// overhead, perfect when per-vertex work is uniform — which the
  /// selection bypass guarantees by shipping only active vertices.
  kStatic,
  /// Chunks claimed from a shared cursor: one atomic per chunk, but
  /// rebalances skewed work (hub vertices of scale-free graphs). The
  /// "further investigations about load-balancing strategies" of the
  /// paper's conclusion.
  kDynamic,
};

/// Engine options common to all versions.
struct EngineOptions {
  /// Worker threads; 0 = hardware concurrency. Ignored when an external
  /// pool is supplied to the engine.
  std::size_t threads = 0;
  /// Safety cap on supersteps (the BSP loop stops even if the computation
  /// has not converged). SIZE_MAX = unlimited.
  std::size_t max_supersteps = static_cast<std::size_t>(-1);
  /// Record per-superstep statistics (active count, messages, seconds) in
  /// the RunResult. Costs one small allocation per superstep.
  bool collect_superstep_stats = false;
  /// Vertex-to-thread scheduling policy.
  Schedule schedule = Schedule::kStatic;
  /// Chunk size for Schedule::kDynamic (ignored under kStatic).
  std::size_t dynamic_chunk = 2048;
  /// Superstep-boundary checkpointing (off by default — zero overhead).
  ft::CheckpointPolicy checkpoint{};
  /// Deterministic crash injection for fault-tolerance tests and benches
  /// (disarmed by default).
  ft::FaultPlan fault{};
  /// Silent-data-corruption detectors evaluated at superstep barriers
  /// (all off by default — see integrity/options.hpp for the tiers).
  integrity::IntegrityOptions integrity{};
  /// Deterministic single-bit corruption injection, the SDC counterpart of
  /// `fault` (disarmed by default). Applied by the engine at the planned
  /// superstep's barrier points, where state is quiescent.
  integrity::FlipPlan flip{};
  /// Failure-domain guards: superstep/run watchdog timeouts and the
  /// tracked-memory budget (all disabled by default).
  RunGuards guards{};
};

/// Per-superstep execution record.
struct SuperstepStats {
  std::size_t executed_vertices = 0;  ///< vertices whose compute ran
  std::size_t remaining_active = 0;   ///< vertices that did not vote to halt
  std::size_t messages_sent = 0;      ///< send/broadcast message deliveries
  double seconds = 0.0;
};

/// Result of Engine::run. Timings cover the superstep loop only, matching
/// the paper's methodology ("graph preprocessing and graph loading are not
/// included", section 7.1.2).
struct RunResult {
  std::size_t supersteps = 0;
  double seconds = 0.0;
  std::size_t total_messages = 0;
  std::size_t total_executed_vertices = 0;
  bool reached_superstep_cap = false;
  /// Snapshots written by this run's checkpoint policy, and the wall time
  /// they cost (capture + serialise + fsync + atomic rename + parent-
  /// directory fsync) — the numerator of the checkpoint-overhead ablation.
  std::size_t checkpoints_written = 0;
  /// Checkpoints that were due but hit a disk error (ENOSPC, EIO) while
  /// being written. The run continues — losing one checkpoint costs
  /// recomputation, not correctness — and retries at the next trigger.
  std::size_t checkpoints_skipped = 0;
  double checkpoint_seconds = 0.0;
  std::vector<SuperstepStats> per_superstep;  ///< empty unless requested
};

/// The typed result of a checked run: either a RunResult (ok()) or a
/// structured RunError describing the failure. Engine::run_checked,
/// run_version_checked, and ft::supervise return this instead of throwing,
/// so call sites handle failure as data — the superstep loop's analogue of
/// the Pregel+ cluster result carrying its out_of_memory marker.
struct RunOutcome {
  /// Valid only when ok(); zero-initialised on failure (the failing run's
  /// partial statistics die with its abandoned superstep).
  RunResult result{};
  std::optional<RunError> error;

  [[nodiscard]] bool ok() const noexcept { return !error.has_value(); }
};

}  // namespace ipregel
