#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "core/aggregator_traits.hpp"
#include "core/config.hpp"
#include "core/frontier.hpp"
#include "core/mailbox.hpp"
#include "core/program_traits.hpp"
#include "graph/csr.hpp"
#include "runtime/memory_tracker.hpp"
#include "runtime/spin_lock.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"

namespace ipregel {
namespace detail {

/// Per-run aggregator state: per-thread partials (cache-line padded) folded
/// deterministically at the superstep barrier. Empty for programs without
/// aggregator support — no storage, no per-superstep work.
template <typename Program, bool = HasAggregator<Program>>
struct AggregatorState {
  using T = typename Program::aggregate_type;
  struct alignas(64) Slot {
    T value = Program::aggregate_identity();
  };

  std::vector<Slot> partials;
  T previous = Program::aggregate_identity();

  void init(std::size_t threads) {
    partials.assign(threads, Slot{});
    previous = Program::aggregate_identity();
  }
  void begin_superstep() {
    for (Slot& s : partials) {
      s.value = Program::aggregate_identity();
    }
  }
  void end_superstep() {
    T acc = Program::aggregate_identity();
    for (const Slot& s : partials) {
      Program::aggregate(acc, s.value);
    }
    previous = acc;
  }
  void contribute(std::size_t tid, const T& x) {
    Program::aggregate(partials[tid].value, x);
  }
};

template <typename Program>
struct AggregatorState<Program, false> {
  void init(std::size_t) {}
  void begin_superstep() {}
  void end_superstep() {}
};

}  // namespace detail

/// The iPregel execution engine: one fully-typed instantiation per
/// (program, combiner version, selection version) — the compile-time
/// multi-version design of the paper's section 3.1, with C++ template
/// parameters playing the role of the paper's compilation flags.
///
/// Template parameters:
///  - `Program`  — the user's vertex program (see program_traits.hpp)
///  - `Combiner` — which section-6 combiner version handles message
///                 delivery (mutex push / spinlock push / pull broadcast)
///  - `Bypass`   — whether the section-4 selection bypass replaces the
///                 scan-all selection phase
///
/// Addressing (section 5) needs no template parameter: the graph carries
/// its id->slot mapping (direct = offset 0; desolate = offset 0 with padded
/// slots), so a single subtraction covers all three modes by construction.
///
/// Invalid combinations are rejected at compile time: the pull combiner
/// requires a broadcast-only program, and the selection bypass requires a
/// program whose vertices all vote to halt every superstep (otherwise
/// "active" and "received a message" stop being equivalent — the paper's
/// note at the end of section 4).
///
/// The BSP superstep loop (Fig. 1): each superstep selects vertices, runs
/// `Program::compute` on them in parallel, delivers messages into the next
/// superstep's generation, and terminates once no vertex is active and no
/// message is in flight.
template <VertexProgram Program, CombinerKind Combiner, bool Bypass>
class Engine {
  static_assert(!Bypass || Program::always_halts,
                "selection bypass requires a program whose vertices vote to "
                "halt at the end of every superstep (paper section 4)");
  static_assert(Combiner != CombinerKind::kPull || Program::broadcast_only,
                "the pull combiner requires broadcast-only communication "
                "(paper section 6.2)");

 public:
  using Value = typename Program::value_type;
  using Msg = typename Program::message_type;

  static constexpr CombinerKind kCombiner = Combiner;
  static constexpr bool kBypass = Bypass;

  /// Per-vertex view handed to Program::compute — the paper's Fig. 3 API.
  class Context {
   public:
    /// Retrieves the (single, combined) pending message. Mirrors the
    /// paper's `IP_get_next_message` while-loop protocol: the first call
    /// returns the combined message, subsequent calls return false.
    bool get_next_message(Msg& out) noexcept {
      if (msg_ == nullptr) {
        return false;
      }
      out = *msg_;
      msg_ = nullptr;
      return true;
    }

    /// Sends `msg` to every out-neighbour (`IP_broadcast`).
    void broadcast(const Msg& msg) { engine_.do_broadcast(slot_, tid_, msg); }

    /// Sends `msg` to an arbitrary vertex (`IP_send_message`). Only the
    /// push combiners support targeted sends.
    void send_message(graph::vid_t dst, const Msg& msg) {
      static_assert(Combiner != CombinerKind::kPull,
                    "the pull combiner supports broadcast-only "
                    "communication; use a push combiner for targeted sends");
      engine_.do_send(dst, tid_, msg);
    }

    /// `IP_vote_to_halt`: this vertex becomes inactive until it receives a
    /// message.
    void vote_to_halt() noexcept { voted_ = true; }

    /// Contributes to this superstep's global aggregate (programs with
    /// aggregator support only — see core/aggregator_traits.hpp).
    template <typename P = Program>
      requires HasAggregator<P>
    void aggregate(const typename P::aggregate_type& x) {
      engine_.aggregator_.contribute(tid_, x);
    }

    /// The fully-reduced aggregate of the PREVIOUS superstep (the BSP
    /// visibility rule; the identity during superstep 0).
    template <typename P = Program>
      requires HasAggregator<P>
    [[nodiscard]] const typename P::aggregate_type& aggregated()
        const noexcept {
      return engine_.aggregator_.previous;
    }

    /// `IP_get_superstep` (0-based).
    [[nodiscard]] std::size_t superstep() const noexcept {
      return engine_.superstep_;
    }
    /// `IP_is_first_superstep`.
    [[nodiscard]] bool is_first_superstep() const noexcept {
      return engine_.superstep_ == 0;
    }
    /// `IP_get_vertices_count`.
    [[nodiscard]] std::size_t num_vertices() const noexcept {
      return engine_.graph_.num_vertices();
    }

    /// This vertex's external identifier.
    [[nodiscard]] graph::vid_t id() const noexcept {
      return engine_.graph_.id_of(slot_);
    }
    /// Mutable reference to this vertex's value (the paper's `me->val`).
    [[nodiscard]] Value& value() noexcept { return engine_.values_[slot_]; }
    [[nodiscard]] const Value& value() const noexcept {
      return engine_.values_[slot_];
    }

    [[nodiscard]] std::size_t out_degree() const noexcept {
      return engine_.graph_.out_degree(slot_);
    }
    [[nodiscard]] std::span<const graph::vid_t> out_neighbours()
        const noexcept {
      return engine_.graph_.out_neighbours(slot_);
    }
    /// Out-edge weights; only valid when the graph was built with weights.
    [[nodiscard]] std::span<const graph::weight_t> out_weights()
        const noexcept {
      return engine_.graph_.out_weights(slot_);
    }

   private:
    friend class Engine;
    Context(Engine& engine, std::size_t slot, std::size_t tid,
            const Msg* msg) noexcept
        : engine_(engine), slot_(slot), tid_(tid), msg_(msg) {}

    Engine& engine_;
    std::size_t slot_;
    std::size_t tid_;
    const Msg* msg_;
    bool voted_ = false;
  };

  /// Binds the engine to a graph. Allocates all per-vertex state up front
  /// (values, mailboxes, locks/outboxes, frontier) and registers it with
  /// the MemoryTracker. Throws std::invalid_argument when the pull
  /// combiner is selected but the graph has no in-neighbour lists.
  Engine(const graph::CsrGraph& graph, Program program = {},
         EngineOptions options = {}, runtime::ThreadPool* pool = nullptr)
      : graph_(graph),
        program_(std::move(program)),
        options_(options),
        external_pool_(pool) {
    if constexpr (Combiner == CombinerKind::kPull) {
      if (!graph.has_in_edges()) {
        throw std::invalid_argument(
            "the pull combiner gathers from in-neighbours: build the graph "
            "with build_in_edges = true");
      }
    }
    if (external_pool_ == nullptr) {
      owned_pool_ =
          std::make_unique<runtime::ThreadPool>(options_.threads);
    }
    const std::size_t slots = graph_.num_slots();
    values_.resize(slots);
    halted_.assign(slots, 0);
    values_mem_.rebind(runtime::MemCategory::kVertexValues,
                       slots * sizeof(Value));
    internals_mem_.rebind(runtime::MemCategory::kVertexInternals,
                          slots * sizeof(std::uint8_t));
    mail_.emplace(slots);
    if constexpr (Bypass) {
      frontier_.emplace(slots, this->pool().size(),
                        /*with_dedup_bitmap=*/Combiner == CombinerKind::kPull);
    }
    counters_.resize(this->pool().size());
    aggregator_.init(this->pool().size());
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes the program to completion (or to the superstep cap) and
  /// returns timing/volume statistics. Reentrant: each call starts from
  /// freshly initialised vertex values.
  RunResult run() {
    reset_state();
    RunResult result;
    if (graph_.num_slots() == 0) {
      return result;
    }
    runtime::ThreadPool& workers = pool();
    runtime::Timer total;
    for (;;) {
      runtime::Timer step_timer;
      const unsigned cur = static_cast<unsigned>(superstep_ & 1);
      const unsigned nxt = cur ^ 1u;
      cur_gen_ = cur;
      nxt_gen_ = nxt;
      for (auto& c : counters_) {
        c = ThreadCounters{};
      }
      aggregator_.begin_superstep();

      // --- selection + local computation + communication -----------------
      const bool use_frontier = Bypass && superstep_ > 0;
      if (use_frontier) {
        if constexpr (Bypass) {
          // The frontier *is* the selection: every entry received a
          // message, so threads run every vertex of their equal share.
          const auto& work = frontier_->current();
          for_indices(workers, work.size(),
                      [&](std::size_t tid, std::size_t i) {
                        process_vertex(work[i], tid, cur, nxt);
                      });
        }
      } else {
        const std::size_t first = graph_.first_slot();
        for_indices(workers, graph_.num_slots() - first,
                    [&](std::size_t tid, std::size_t i) {
                      process_vertex(first + i, tid, cur, nxt);
                    });
      }

      // --- superstep epilogue --------------------------------------------
      std::size_t sent = 0;
      std::size_t active = 0;
      std::size_t executed = 0;
      for (const auto& c : counters_) {
        sent += c.sent;
        active += c.active;
        executed += c.executed;
      }
      aggregator_.end_superstep();
      if constexpr (Combiner == CombinerKind::kPull) {
        // Wipe the consumed generation's armed flags so halted vertices
        // cannot leak a stale broadcast two supersteps later.
        const std::size_t first = graph_.first_slot();
        workers.parallel_for(graph_.num_slots() - first,
                             [&](std::size_t, runtime::Range r) {
                               mail_->clear_range(cur, first + r.begin,
                                                  first + r.end);
                             });
      }
      if constexpr (Bypass) {
        if (active != 0) {
          throw std::logic_error(
              "selection bypass engaged but " + std::to_string(active) +
              " vertices did not vote to halt in superstep " +
              std::to_string(superstep_) +
              "; this program is not bypass-compatible");
        }
        frontier_->flip();
      }

      result.total_messages += sent;
      result.total_executed_vertices += executed;
      if (options_.collect_superstep_stats) {
        result.per_superstep.push_back(SuperstepStats{
            executed, active, sent, step_timer.seconds()});
      }
      ++superstep_;
      result.supersteps = superstep_;
      if (sent == 0 && active == 0) {
        break;  // BSP termination: everyone halted, nothing in flight
      }
      if (superstep_ >= options_.max_supersteps) {
        result.reached_superstep_cap = true;
        break;
      }
    }
    result.seconds = total.seconds();
    return result;
  }

  /// Vertex values after run(); indexed by slot.
  [[nodiscard]] std::span<const Value> values() const noexcept {
    return values_;
  }
  /// Value of the vertex with external id `id`.
  [[nodiscard]] const Value& value_of(graph::vid_t id) const {
    return values_[graph_.slot_of(id)];
  }

  [[nodiscard]] const graph::CsrGraph& graph() const noexcept {
    return graph_;
  }
  [[nodiscard]] const Program& program() const noexcept { return program_; }

 private:
  using LockType =
      std::conditional_t<Combiner == CombinerKind::kMutexPush, std::mutex,
                         runtime::SpinLock>;
  using Mailboxes =
      std::conditional_t<Combiner == CombinerKind::kPull, PullOutboxes<Msg>,
                         PushMailboxes<Msg, LockType>>;

  struct alignas(64) ThreadCounters {
    std::size_t sent = 0;
    std::size_t active = 0;
    std::size_t executed = 0;
  };

  [[nodiscard]] runtime::ThreadPool& pool() noexcept {
    return external_pool_ != nullptr ? *external_pool_ : *owned_pool_;
  }

  /// Distributes [0, n) under the configured scheduling policy and calls
  /// `fn(tid, i)` for every index.
  template <typename Fn>
  void for_indices(runtime::ThreadPool& workers, std::size_t n, Fn&& fn) {
    const auto body = [&fn](std::size_t tid, runtime::Range r) {
      for (std::size_t i = r.begin; i < r.end; ++i) {
        fn(tid, i);
      }
    };
    if (options_.schedule == Schedule::kDynamic) {
      workers.parallel_for_dynamic(n, options_.dynamic_chunk, body);
    } else {
      workers.parallel_for(n, body);
    }
  }

  void reset_state() {
    superstep_ = 0;
    const std::size_t first = graph_.first_slot();
    pool().parallel_for(
        graph_.num_slots() - first, [&](std::size_t, runtime::Range r) {
          for (std::size_t s = first + r.begin; s < first + r.end; ++s) {
            values_[s] = program_.initial_value(graph_.id_of(s));
            halted_[s] = 0;
          }
        });
    mail_->reset();
    if constexpr (Bypass) {
      frontier_->reset();
    }
    aggregator_.init(pool().size());
  }

  /// Selection check + message consumption + compute for one vertex.
  void process_vertex(std::size_t slot, std::size_t tid, unsigned cur,
                      unsigned /*nxt*/) {
    Msg combined{};
    bool has = false;
    if constexpr (Combiner == CombinerKind::kPull) {
      // The gather phase of section 6.2: fetch every in-neighbour's armed
      // outbox and combine locally. Read-only across vertices, writes stay
      // intra-vertex: race-free by construction.
      if (superstep_ > 0) {
        for (const graph::vid_t u : graph_.in_neighbours(slot)) {
          Msg m{};
          if (mail_->fetch(cur, graph_.slot_of(u), m)) {
            if (has) {
              Program::combine(combined, m);
            } else {
              combined = m;
              has = true;
            }
          }
        }
      }
    } else {
      has = mail_->consume(cur, slot, combined);
    }
    // Scan-all selection: skip vertices that are halted with an empty
    // inbox — the "unfruitful checks" the bypass eliminates. (Under the
    // bypass every visited vertex has a message by construction.)
    if (!has && superstep_ > 0 && halted_[slot] != 0) {
      return;
    }
    Context ctx(*this, slot, tid, has ? &combined : nullptr);
    program_.compute(ctx);
    halted_[slot] = ctx.voted_ ? 1 : 0;
    ThreadCounters& c = counters_[tid];
    ++c.executed;
    if (!ctx.voted_) {
      ++c.active;
    }
  }

  void do_broadcast(std::size_t slot, std::size_t tid, const Msg& msg) {
    const auto neighbours = graph_.out_neighbours(slot);
    if constexpr (Combiner == CombinerKind::kPull) {
      if (!neighbours.empty()) {
        mail_->broadcast(nxt_gen_, slot, msg);
      }
      if constexpr (Bypass) {
        // Pull senders never touch recipient state, so recipients are
        // claimed through the frontier's dedup bitmap.
        for (const graph::vid_t dst : neighbours) {
          frontier_->add(graph_.slot_of(dst), tid);
        }
      }
    } else {
      for (const graph::vid_t dst : neighbours) {
        deliver_push(graph_.slot_of(dst), tid, msg);
      }
    }
    counters_[tid].sent += neighbours.size();
  }

  void do_send(graph::vid_t dst, std::size_t tid, const Msg& msg) {
    if constexpr (Combiner != CombinerKind::kPull) {
      deliver_push(graph_.slot_of(dst), tid, msg);
      ++counters_[tid].sent;
    }
  }

  /// Push-combiner delivery: combine under the recipient's lock; when the
  /// mailbox was empty this was the recipient's first message of the
  /// superstep, which is exactly the section-4 moment the sender appends
  /// the recipient to the next work list — no extra synchronisation.
  void deliver_push(std::size_t dst_slot, std::size_t tid, const Msg& msg) {
    const bool first =
        mail_->deliver(nxt_gen_, dst_slot, msg,
                       [](Msg& old, const Msg& incoming) {
                         Program::combine(old, incoming);
                       });
    if constexpr (Bypass) {
      if (first) {
        frontier_->add_claimed(dst_slot, tid);
      }
    } else {
      (void)first;
    }
  }

  const graph::CsrGraph& graph_;
  Program program_;
  EngineOptions options_;
  runtime::ThreadPool* external_pool_ = nullptr;
  std::unique_ptr<runtime::ThreadPool> owned_pool_;

  std::vector<Value> values_;
  std::vector<std::uint8_t> halted_;
  std::optional<Mailboxes> mail_;
  std::optional<Frontier> frontier_;
  std::vector<ThreadCounters> counters_;
  detail::AggregatorState<Program> aggregator_;

  std::size_t superstep_ = 0;
  unsigned cur_gen_ = 0;
  unsigned nxt_gen_ = 1;

  runtime::MemReservation values_mem_;
  runtime::MemReservation internals_mem_;
};

}  // namespace ipregel
