#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <concepts>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "core/aggregator_traits.hpp"
#include "core/config.hpp"
#include "core/frontier.hpp"
#include "core/mailbox.hpp"
#include "core/program_traits.hpp"
#include "ft/fingerprint.hpp"
#include "ft/snapshot.hpp"
#include "graph/csr.hpp"
#include "integrity/audit.hpp"
#include "integrity/checksum.hpp"
#include "integrity/fault.hpp"
#include "io/vfs.hpp"
#include "runtime/memory_tracker.hpp"
#include "runtime/spin_lock.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"

namespace ipregel {
namespace detail {

/// Per-run aggregator state: per-thread partials (cache-line padded) folded
/// deterministically at the superstep barrier. Empty for programs without
/// aggregator support — no storage, no per-superstep work.
template <typename Program, bool = HasAggregator<Program>>
struct AggregatorState {
  using T = typename Program::aggregate_type;
  struct alignas(64) Slot {
    T value = Program::aggregate_identity();
  };

  std::vector<Slot> partials;
  T previous = Program::aggregate_identity();

  void init(std::size_t threads) {
    partials.assign(threads, Slot{});
    previous = Program::aggregate_identity();
  }
  void begin_superstep() {
    for (Slot& s : partials) {
      s.value = Program::aggregate_identity();
    }
  }
  void end_superstep() {
    T acc = Program::aggregate_identity();
    for (const Slot& s : partials) {
      Program::aggregate(acc, s.value);
    }
    previous = acc;
  }
  void contribute(std::size_t tid, const T& x) {
    Program::aggregate(partials[tid].value, x);
  }
};

template <typename Program>
struct AggregatorState<Program, false> {
  void init(std::size_t) {}
  void begin_superstep() {}
  void end_superstep() {}
};

}  // namespace detail

/// The iPregel execution engine: one fully-typed instantiation per
/// (program, combiner version, selection version) — the compile-time
/// multi-version design of the paper's section 3.1, with C++ template
/// parameters playing the role of the paper's compilation flags.
///
/// Template parameters:
///  - `Program`  — the user's vertex program (see program_traits.hpp)
///  - `Combiner` — which section-6 combiner version handles message
///                 delivery (mutex push / spinlock push / pull broadcast)
///  - `Bypass`   — whether the section-4 selection bypass replaces the
///                 scan-all selection phase
///
/// Addressing (section 5) needs no template parameter: the graph carries
/// its id->slot mapping (direct = offset 0; desolate = offset 0 with padded
/// slots), so a single subtraction covers all three modes by construction.
///
/// Invalid combinations are rejected at compile time: the pull combiner
/// requires a broadcast-only program, and the selection bypass requires a
/// program whose vertices all vote to halt every superstep (otherwise
/// "active" and "received a message" stop being equivalent — the paper's
/// note at the end of section 4).
///
/// The BSP superstep loop (Fig. 1): each superstep selects vertices, runs
/// `Program::compute` on them in parallel, delivers messages into the next
/// superstep's generation, and terminates once no vertex is active and no
/// message is in flight.
template <VertexProgram Program, CombinerKind Combiner, bool Bypass>
class Engine {
  static_assert(!Bypass || Program::always_halts,
                "selection bypass requires a program whose vertices vote to "
                "halt at the end of every superstep (paper section 4)");
  static_assert(Combiner != CombinerKind::kPull || Program::broadcast_only,
                "the pull combiner requires broadcast-only communication "
                "(paper section 6.2)");

 public:
  using Value = typename Program::value_type;
  using Msg = typename Program::message_type;

  static constexpr CombinerKind kCombiner = Combiner;
  static constexpr bool kBypass = Bypass;

  /// Per-vertex view handed to Program::compute — the paper's Fig. 3 API.
  class Context {
   public:
    /// Retrieves the (single, combined) pending message. Mirrors the
    /// paper's `IP_get_next_message` while-loop protocol: the first call
    /// returns the combined message, subsequent calls return false.
    bool get_next_message(Msg& out) noexcept {
      if (msg_ == nullptr) {
        return false;
      }
      out = *msg_;
      msg_ = nullptr;
      return true;
    }

    /// Sends `msg` to every out-neighbour (`IP_broadcast`).
    void broadcast(const Msg& msg) { engine_.do_broadcast(slot_, tid_, msg); }

    /// Sends `msg` to an arbitrary vertex (`IP_send_message`). Only the
    /// push combiners support targeted sends.
    void send_message(graph::vid_t dst, const Msg& msg) {
      static_assert(Combiner != CombinerKind::kPull,
                    "the pull combiner supports broadcast-only "
                    "communication; use a push combiner for targeted sends");
      engine_.do_send(dst, tid_, msg);
    }

    /// `IP_vote_to_halt`: this vertex becomes inactive until it receives a
    /// message.
    void vote_to_halt() noexcept { voted_ = true; }

    /// Contributes to this superstep's global aggregate (programs with
    /// aggregator support only — see core/aggregator_traits.hpp).
    template <typename P = Program>
      requires HasAggregator<P>
    void aggregate(const typename P::aggregate_type& x) {
      engine_.aggregator_.contribute(tid_, x);
    }

    /// The fully-reduced aggregate of the PREVIOUS superstep (the BSP
    /// visibility rule; the identity during superstep 0).
    template <typename P = Program>
      requires HasAggregator<P>
    [[nodiscard]] const typename P::aggregate_type& aggregated()
        const noexcept {
      return engine_.aggregator_.previous;
    }

    /// `IP_get_superstep` (0-based).
    [[nodiscard]] std::size_t superstep() const noexcept {
      return engine_.superstep_;
    }
    /// `IP_is_first_superstep`.
    [[nodiscard]] bool is_first_superstep() const noexcept {
      return engine_.superstep_ == 0;
    }
    /// `IP_get_vertices_count`.
    [[nodiscard]] std::size_t num_vertices() const noexcept {
      return engine_.graph_.num_vertices();
    }

    /// This vertex's external identifier.
    [[nodiscard]] graph::vid_t id() const noexcept {
      return engine_.graph_.id_of(slot_);
    }
    /// Mutable reference to this vertex's value (the paper's `me->val`).
    [[nodiscard]] Value& value() noexcept { return engine_.values_[slot_]; }
    [[nodiscard]] const Value& value() const noexcept {
      return engine_.values_[slot_];
    }

    [[nodiscard]] std::size_t out_degree() const noexcept {
      return engine_.graph_.out_degree(slot_);
    }
    [[nodiscard]] std::span<const graph::vid_t> out_neighbours()
        const noexcept {
      return engine_.graph_.out_neighbours(slot_);
    }
    /// Out-edge weights; only valid when the graph was built with weights.
    [[nodiscard]] std::span<const graph::weight_t> out_weights()
        const noexcept {
      return engine_.graph_.out_weights(slot_);
    }

   private:
    friend class Engine;
    Context(Engine& engine, std::size_t slot, std::size_t tid,
            const Msg* msg) noexcept
        : engine_(engine), slot_(slot), tid_(tid), msg_(msg) {}

    Engine& engine_;
    std::size_t slot_;
    std::size_t tid_;
    const Msg* msg_;
    bool voted_ = false;
  };

  /// Binds the engine to a graph. Allocates all per-vertex state up front
  /// (values, mailboxes, locks/outboxes, frontier) and registers it with
  /// the MemoryTracker. Throws std::invalid_argument when the pull
  /// combiner is selected but the graph has no in-neighbour lists.
  Engine(const graph::CsrGraph& graph, Program program = {},
         EngineOptions options = {}, runtime::ThreadPool* pool = nullptr)
      : graph_(graph),
        program_(std::move(program)),
        options_(options),
        external_pool_(pool) {
    if constexpr (Combiner == CombinerKind::kPull) {
      if (!graph.has_in_edges()) {
        throw std::invalid_argument(
            "the pull combiner gathers from in-neighbours: build the graph "
            "with build_in_edges = true");
      }
    }
    if (external_pool_ == nullptr) {
      owned_pool_ =
          std::make_unique<runtime::ThreadPool>(options_.threads);
    }
    const std::size_t slots = graph_.num_slots();
    values_.resize(slots);
    halted_.assign(slots, 0);
    values_mem_.rebind(runtime::MemCategory::kVertexValues,
                       slots * sizeof(Value));
    internals_mem_.rebind(runtime::MemCategory::kVertexInternals,
                          slots * sizeof(std::uint8_t));
    mail_.emplace(slots);
    if constexpr (Bypass) {
      frontier_.emplace(slots, this->pool().size(),
                        /*with_dedup_bitmap=*/Combiner == CombinerKind::kPull);
    }
    counters_.resize(this->pool().size());
    aggregator_.init(this->pool().size());
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes the program to completion (or to the superstep cap) and
  /// returns timing/volume statistics. Reentrant: each call starts from
  /// freshly initialised vertex values.
  ///
  /// Failure domain: a compute()/resend() exception, watchdog trip, or
  /// memory-budget breach throws RunError with superstep/thread/vertex
  /// context (a FaultPlan trip still throws ft::InjectedFault). The
  /// exception never escapes a background thread — the pool captures it,
  /// cancels the team cooperatively, and rethrows on thread 0 once the
  /// team has quiesced. The failing superstep's state is torn (abandoned
  /// mid-flight, like a crash), but the engine object stays valid: a fresh
  /// run() fully reinitialises and run_from() restores a snapshot — the
  /// strong guarantee at superstep granularity.
  RunResult run() {
    reset_state();
    return superstep_loop();
  }

  /// run() with failures surfaced as data instead of exceptions: RunError
  /// and ft::InjectedFault become RunOutcome::error (configuration errors —
  /// snapshot mismatches, bypass violations — still throw).
  RunOutcome run_checked() {
    return to_outcome([&] { return run(); });
  }

  /// Resumes a crashed run from a snapshot: restores the captured state
  /// (validating it against this engine's graph and configuration — see
  /// restore_state) and re-enters the superstep loop at the snapshot's
  /// superstep. The returned RunResult covers only the resumed portion,
  /// except `supersteps`, which is the cumulative superstep count.
  RunResult run_from(const ft::EngineSnapshot& snapshot) {
    restore_state(snapshot);
    return superstep_loop();
  }

  /// run_from() with failures surfaced as data (see run_checked).
  RunOutcome run_from_checked(const ft::EngineSnapshot& snapshot) {
    return to_outcome([&] { return run_from(snapshot); });
  }

  /// True when Program provides the `resend(ctx)` hook that lightweight
  /// recovery uses to regenerate in-flight messages from vertex values.
  [[nodiscard]] static constexpr bool resend_capable() noexcept {
    return kResendCapable;
  }

 private:
  RunResult superstep_loop() {
    RunResult result;
    if (graph_.num_slots() == 0) {
      return result;
    }
    if (options_.integrity.checksums && !kTriviallyCheckpointable) {
      throw std::invalid_argument(
          "integrity checksums digest vertex values and messages as raw "
          "bytes; this program's types are not trivially copyable");
    }
    if (options_.integrity.shadow && !kShadowComparable) {
      throw std::invalid_argument(
          "shadow recompute needs to compare replayed values: the value "
          "type must be equality-comparable or trivially copyable");
    }
    runtime::ThreadPool& workers = pool();
    runtime::Timer total;
    guard_trip_.store(0, std::memory_order_relaxed);
    run_deadline_armed_ = options_.guards.run_seconds > 0.0;
    step_deadline_armed_ = options_.guards.superstep_seconds > 0.0;
    if (run_deadline_armed_) {
      run_deadline_ = GuardClock::now() + guard_duration(options_.guards.run_seconds);
    }
    for (;;) {
      runtime::Timer step_timer;
      // The barrier is the quiescent point: budget and deadlines are
      // enforced here (the first iteration doubles as the run-start
      // check), then re-checked cooperatively inside the phases.
      enforce_memory_budget();
      if (step_deadline_armed_) {
        step_deadline_ = GuardClock::now() +
                         guard_duration(options_.guards.superstep_seconds);
      }
      const unsigned cur = static_cast<unsigned>(superstep_ & 1);
      const unsigned nxt = cur ^ 1u;
      cur_gen_ = cur;
      nxt_gen_ = nxt;
      // Integrity hooks at the top of the superstep, in dependency order:
      // an at-rest flip lands first (simulating corruption during the
      // barrier gap), the checksum verification runs against it (the
      // detector must see what a real flip would leave behind), and the
      // shadow tier then records the pristine-or-detected inputs this
      // superstep is about to consume.
      apply_flip(integrity::FlipPhase::kAtRest);
      verify_checksums();
      shadow_capture();
      for (auto& c : counters_) {
        c = ThreadCounters{};
      }
      aggregator_.begin_superstep();
      fault_active_ = options_.fault.armed() &&
                      superstep_ == options_.fault.superstep;
      if (fault_active_) {
        fault_calls_.store(0, std::memory_order_relaxed);
        fault_tripped_.store(false, std::memory_order_relaxed);
      }

      // --- selection + local computation + communication -----------------
      const bool use_frontier = Bypass && superstep_ > 0;
      if (use_frontier) {
        if constexpr (Bypass) {
          // The frontier *is* the selection: every entry received a
          // message, so threads run every vertex of their equal share.
          const auto& work = frontier_->current();
          for_indices(workers, work.size(),
                      [&](std::size_t tid, std::size_t i) {
                        process_vertex(work[i], tid, cur, nxt);
                      });
        }
      } else {
        const std::size_t first = graph_.first_slot();
        for_indices(workers, graph_.num_slots() - first,
                    [&](std::size_t tid, std::size_t i) {
                      process_vertex(first + i, tid, cur, nxt);
                    });
      }

      // --- superstep epilogue --------------------------------------------
      if (fault_active_ && fault_tripped_.load(std::memory_order_relaxed)) {
        // The superstep was abandoned mid-flight: values partially
        // updated, messages half-delivered. This engine's state is torn,
        // exactly as a real crash would leave it — recovery means a fresh
        // engine restoring the last snapshot, never resuming this one.
        throw ft::InjectedFault(superstep_,
                                options_.fault.after_compute_calls);
      }
      // Thread 0's barrier-side watchdog check: catches deadlines (and a
      // raised cancel token) that the per-vertex ticks missed (e.g. a
      // near-empty frontier), then surfaces any trip as a typed error. The
      // tripped superstep was abandoned mid-flight — same torn state as a
      // crash.
      check_deadlines(workers);
      check_cancel_token(workers);
      throw_if_guard_tripped();
      // Post-compute integrity hooks: the flip lands on freshly produced
      // state, then the shadow tier replays its sampled vertices against
      // the recorded inputs. Both run before the aggregator folds (the
      // replay must observe the same previous-superstep aggregate the live
      // run did) and — crucially — before maybe_checkpoint, so corrupted
      // state is detected before it can be persisted.
      apply_flip(integrity::FlipPhase::kPostCompute);
      shadow_verify();
      std::size_t sent = 0;
      std::size_t active = 0;
      std::size_t executed = 0;
      for (const auto& c : counters_) {
        sent += c.sent;
        active += c.active;
        executed += c.executed;
      }
      aggregator_.end_superstep();
      if constexpr (Combiner == CombinerKind::kPull) {
        // Wipe the consumed generation's armed flags so halted vertices
        // cannot leak a stale broadcast two supersteps later.
        const std::size_t first = graph_.first_slot();
        workers.parallel_for(graph_.num_slots() - first,
                             [&](std::size_t, runtime::Range r) {
                               mail_->clear_range(cur, first + r.begin,
                                                  first + r.end);
                             });
      }
      if constexpr (Bypass) {
        if (active != 0) {
          throw std::logic_error(
              "selection bypass engaged but " + std::to_string(active) +
              " vertices did not vote to halt in superstep " +
              std::to_string(superstep_) +
              "; this program is not bypass-compatible");
        }
        frontier_->flip();
      }
      // Application-invariant audit (integrity tier 1): a parallel
      // reduction over the final barrier values, checked against the
      // program's declared conservation/monotonicity laws.
      audit_invariants();

      result.total_messages += sent;
      result.total_executed_vertices += executed;
      if (options_.collect_superstep_stats) {
        result.per_superstep.push_back(SuperstepStats{
            executed, active, sent, step_timer.seconds()});
      }
      ++superstep_;
      result.supersteps = superstep_;
      if (sent == 0 && active == 0) {
        break;  // BSP termination: everyone halted, nothing in flight
      }
      if (superstep_ >= options_.max_supersteps) {
        result.reached_superstep_cap = true;
        break;
      }
      // Checksum the barrier state the next superstep will consume
      // (integrity tier 2) BEFORE the checkpoint hook, so the digests
      // cover exactly the state a snapshot taken here would persist.
      store_checksums();
      // The barrier is the only point where engine state is quiescent and
      // consistent, so snapshots are taken here (a terminated run writes
      // none — there is nothing left to lose).
      maybe_checkpoint(result, step_timer.seconds());
    }
    result.seconds = total.seconds();
    return result;
  }

 public:
  /// Vertex values after run(); indexed by slot.
  [[nodiscard]] std::span<const Value> values() const noexcept {
    return values_;
  }
  /// Value of the vertex with external id `id`.
  [[nodiscard]] const Value& value_of(graph::vid_t id) const {
    return values_[graph_.slot_of(id)];
  }

  [[nodiscard]] const graph::CsrGraph& graph() const noexcept {
    return graph_;
  }
  [[nodiscard]] const Program& program() const noexcept { return program_; }

  /// Captures a snapshot of the engine's state. Only meaningful at a
  /// superstep barrier (which is where run() calls it; external callers
  /// must not invoke it while a superstep is in flight). The snapshot's
  /// `meta.superstep` is the superstep a resumed run executes first.
  ///
  /// Heavyweight captures values, halted flags, the pending combined
  /// mailbox generation, the bypass frontier, and aggregator state;
  /// lightweight captures values + halted flags only and therefore
  /// requires a resend-capable, aggregator-free program (rejected here,
  /// at capture time, not at the far end of a recovery).
  [[nodiscard]] ft::EngineSnapshot capture_state(
      ft::CheckpointMode mode) const {
    if constexpr (!kTriviallyCheckpointable) {
      (void)mode;
      throw std::logic_error(
          "checkpointing serialises vertex values and messages as raw "
          "bytes; this program's types are not trivially copyable");
    } else {
    if (mode == ft::CheckpointMode::kLightweight) {
      if constexpr (!kResendCapable) {
        throw std::invalid_argument(
            "lightweight checkpointing requires the program to provide "
            "resend(ctx) so recovery can regenerate in-flight messages");
      }
      if constexpr (HasAggregator<Program>) {
        throw std::invalid_argument(
            "lightweight checkpointing cannot capture aggregator state; "
            "use heavyweight mode for aggregator programs");
      }
    }
    const std::size_t slots = graph_.num_slots();
    ft::EngineSnapshot snap;
    ft::SnapshotMeta& m = snap.meta;
    m.mode = mode;
    m.combiner = static_cast<std::uint8_t>(Combiner);
    m.selection_bypass = Bypass;
    m.has_aggregator = HasAggregator<Program>;
    m.superstep = superstep_;
    m.num_slots = slots;
    m.first_slot = graph_.first_slot();
    m.num_vertices = graph_.num_vertices();
    m.num_edges = graph_.num_edges();
    m.graph_fingerprint = fingerprint();
    m.program_fingerprint = program_fingerprint<Program>();
    m.value_size = sizeof(Value);
    m.message_size = sizeof(Msg);
    snap.values.resize(slots * sizeof(Value));
    std::memcpy(snap.values.data(), values_.data(), snap.values.size());
    snap.halted = halted_;
    if (mode == ft::CheckpointMode::kHeavyweight) {
      // Generation (superstep_ & 1) holds the messages the next superstep
      // consumes — for push combiners the combined inboxes, for pull the
      // armed outboxes; both expose the same raw view.
      const unsigned gen = static_cast<unsigned>(superstep_ & 1);
      const auto messages = mail_->messages(gen);
      const auto flags = mail_->flags(gen);
      snap.inbox.resize(slots * sizeof(Msg));
      std::memcpy(snap.inbox.data(), messages.data(), snap.inbox.size());
      snap.inbox_flags.assign(flags.begin(), flags.end());
      if constexpr (Bypass) {
        const auto& work = frontier_->current();
        snap.frontier.assign(work.begin(), work.end());
      }
      if constexpr (HasAggregator<Program>) {
        using Agg = typename Program::aggregate_type;
        static_assert(std::is_trivially_copyable_v<Agg>,
                      "aggregator checkpointing requires a trivially "
                      "copyable aggregate type");
        m.aggregate_size = sizeof(Agg);
        snap.aggregate.resize(sizeof(Agg));
        std::memcpy(snap.aggregate.data(), &aggregator_.previous,
                    sizeof(Agg));
      }
    }
    return snap;
    }
  }

  /// Restores engine state from a snapshot, validating it first: graph
  /// fingerprint and shape, value/message sizes, and — for heavyweight
  /// snapshots — that this engine's version can consume the captured
  /// mailbox layout (same combiner family, same bypass setting). Rejects
  /// with ft::SnapshotMismatch before touching any engine state, so a bad
  /// snapshot never leaves the engine half-restored.
  ///
  /// Lightweight snapshots carry no mailbox state and therefore restore
  /// under ANY version of the program — a crashed spinlock-push run can
  /// resume under pull — at the cost of one message-regeneration pass via
  /// Program::resend.
  void restore_state(const ft::EngineSnapshot& snap) {
    if constexpr (!kTriviallyCheckpointable) {
      (void)snap;
      throw std::logic_error(
          "checkpoint recovery deserialises raw bytes; this program's "
          "types are not trivially copyable");
    } else {
    const ft::SnapshotMeta& m = snap.meta;
    const auto reject = [](const std::string& what) {
      throw ft::SnapshotMismatch("snapshot rejected: " + what);
    };
    if (m.num_slots != graph_.num_slots() ||
        m.first_slot != graph_.first_slot() ||
        m.num_vertices != graph_.num_vertices() ||
        m.num_edges != graph_.num_edges()) {
      reject("graph shape differs (|V|, |E|, or slot layout)");
    }
    if (m.graph_fingerprint != fingerprint()) {
      reject("graph fingerprint differs — this snapshot was taken on a "
             "different graph");
    }
    // Program-identity binding: a snapshot of application A must never be
    // reinterpreted as application B's state, even when the raw value
    // bytes happen to have the same width (Hashmin labels and SSSP
    // distances are both 4 bytes — and mean entirely different things).
    // Format-v1 snapshots carry no fingerprint (0) and skip this check.
    if (m.program_fingerprint != 0 &&
        m.program_fingerprint != program_fingerprint<Program>()) {
      reject("program fingerprint differs — this snapshot belongs to a "
             "different application (or an incompatible value/message "
             "layout of the same one)");
    }
    if (m.value_size != sizeof(Value)) {
      reject("vertex value size differs (snapshot " +
             std::to_string(m.value_size) + " bytes, program " +
             std::to_string(sizeof(Value)) + ")");
    }
    if (m.mode == ft::CheckpointMode::kHeavyweight) {
      if (m.message_size != sizeof(Msg)) {
        reject("message size differs (snapshot " +
               std::to_string(m.message_size) + " bytes, program " +
               std::to_string(sizeof(Msg)) + ")");
      }
      const bool snap_pull =
          static_cast<CombinerKind>(m.combiner) == CombinerKind::kPull;
      if (snap_pull != (Combiner == CombinerKind::kPull)) {
        reject("combiner family differs (push mailboxes and pull outboxes "
               "are not interchangeable); use a lightweight snapshot to "
               "resume across versions");
      }
      if (m.selection_bypass != Bypass) {
        reject("selection-bypass setting differs; use a lightweight "
               "snapshot to resume across versions");
      }
      if (m.has_aggregator != HasAggregator<Program>) {
        reject("aggregator support differs between snapshot and program");
      }
    } else {
      if constexpr (!kResendCapable) {
        reject("lightweight recovery requires the program to provide "
               "resend(ctx)");
      }
      if constexpr (HasAggregator<Program>) {
        reject("lightweight snapshots cannot restore aggregator state");
      }
    }

    superstep_ = m.superstep;
    std::memcpy(values_.data(), snap.values.data(), snap.values.size());
    halted_.assign(snap.halted.begin(), snap.halted.end());
    mail_->reset();
    if constexpr (Bypass) {
      frontier_->reset();
    }
    aggregator_.init(pool().size());
    reset_checkpoint_pacing();
    const unsigned gen = static_cast<unsigned>(superstep_ & 1);
    if (m.mode == ft::CheckpointMode::kHeavyweight) {
      mail_->restore(
          gen,
          std::span<const Msg>(
              reinterpret_cast<const Msg*>(snap.inbox.data()),
              snap.inbox.size() / sizeof(Msg)),
          std::span<const std::uint8_t>(snap.inbox_flags));
      if constexpr (Bypass) {
        std::vector<std::size_t> work(snap.frontier.begin(),
                                      snap.frontier.end());
        frontier_->restore(std::move(work));
      }
      if constexpr (HasAggregator<Program>) {
        std::memcpy(&aggregator_.previous, snap.aggregate.data(),
                    snap.aggregate.size());
      }
    } else {
      if constexpr (kResendCapable) {
        regenerate_messages();
      }
    }
    // Re-baseline the integrity detectors against the restored (and, for
    // lightweight snapshots, regenerated) state, so the resumed superstep
    // is audited exactly as it would have been in an uninterrupted run.
    integrity_after_restore();
    }
  }

 private:
  using LockType =
      std::conditional_t<Combiner == CombinerKind::kMutexPush, std::mutex,
                         runtime::SpinLock>;
  using Mailboxes =
      std::conditional_t<Combiner == CombinerKind::kPull, PullOutboxes<Msg>,
                         PushMailboxes<Msg, LockType>>;

  struct alignas(64) ThreadCounters {
    std::size_t sent = 0;
    std::size_t active = 0;
    std::size_t executed = 0;
  };

  /// Detected from Program: lightweight recovery needs `resend(ctx)`.
  static constexpr bool kResendCapable =
      requires(const Program& p, Context& c) { p.resend(c); };
  /// Snapshots memcpy values and messages; non-trivially-copyable types
  /// cannot be checkpointed (rejected at runtime, not compile time, so
  /// such programs still run with checkpointing off).
  static constexpr bool kTriviallyCheckpointable =
      std::is_trivially_copyable_v<Value> &&
      std::is_trivially_copyable_v<Msg>;
  /// The shadow-recompute tier compares a replayed value against the
  /// stored one: via operator== when the type provides it (padded structs
  /// must not be memcmp'd), via memcmp otherwise.
  static constexpr bool kShadowComparable =
      std::equality_comparable<Value> || std::is_trivially_copyable_v<Value>;

  [[nodiscard]] runtime::ThreadPool& pool() noexcept {
    return external_pool_ != nullptr ? *external_pool_ : *owned_pool_;
  }

  [[nodiscard]] runtime::ThreadPool& pool() const noexcept {
    return external_pool_ != nullptr ? *external_pool_ : *owned_pool_;
  }

  /// Cached ft::graph_fingerprint of the bound graph (O(E) on first use).
  [[nodiscard]] std::uint64_t fingerprint() const {
    if (fingerprint_ == 0) {
      fingerprint_ = ft::graph_fingerprint(graph_);
    }
    return fingerprint_;
  }

  void reset_checkpoint_pacing() noexcept {
    since_checkpoint_seconds_ = 0.0;
    checkpoint_cost_seconds_ = 0.0;
  }

  /// Superstep-barrier checkpoint hook. kEveryK snapshots on multiples of
  /// `every`; kAdaptive follows Young's rule with measured costs: snapshot
  /// once early to learn the cost C, then every time accumulated superstep
  /// time since the last snapshot reaches C / overhead_budget, which keeps
  /// the checkpointing tax near the configured fraction regardless of how
  /// expensive supersteps are.
  void maybe_checkpoint(RunResult& result, double step_seconds) {
    const ft::CheckpointPolicy& cp = options_.checkpoint;
    if (!cp.enabled()) {
      return;
    }
    bool due = false;
    if (cp.trigger == ft::CheckpointTrigger::kEveryK) {
      due = cp.every != 0 && superstep_ % cp.every == 0;
    } else {
      since_checkpoint_seconds_ += step_seconds;
      if (checkpoint_cost_seconds_ == 0.0) {
        due = true;  // first snapshot measures the cost
      } else {
        const double budget =
            cp.overhead_budget > 0.0 ? cp.overhead_budget : 0.05;
        due = since_checkpoint_seconds_ >=
              checkpoint_cost_seconds_ / budget;
      }
    }
    if (!due) {
      return;
    }
    runtime::Timer cp_timer;
    try {
      {
        const ft::EngineSnapshot snap = capture_state(cp.mode);
        checkpoint_mem_.rebind(runtime::MemCategory::kCheckpoint,
                               snap.payload_bytes());
        ft::write_snapshot(
            ft::snapshot_path(cp.directory, cp.basename, superstep_), snap,
            cp.vfs);
      }
      checkpoint_mem_.rebind(runtime::MemCategory::kCheckpoint, 0);
      ft::prune_snapshots(cp.directory, cp.basename, cp.keep, cp.vfs);
    } catch (const io::PowerLoss&) {
      // Simulation only: the machine this models is dead; the run is too.
      checkpoint_mem_.rebind(runtime::MemCategory::kCheckpoint, 0);
      throw;
    } catch (const io::IoError& e) {
      // A full or flaky disk costs one checkpoint, not the run: the
      // previous snapshot is still intact (publish is atomic), so skip,
      // warn, and retry at the next trigger. Pacing state is left alone —
      // a skipped snapshot paid no cost worth amortising.
      checkpoint_mem_.rebind(runtime::MemCategory::kCheckpoint, 0);
      ++result.checkpoints_skipped;
      std::fprintf(stderr,
                   "ipregel: checkpoint at superstep %zu skipped: %s\n",
                   superstep_, e.what());
      return;
    }
    checkpoint_cost_seconds_ = cp_timer.seconds();
    since_checkpoint_seconds_ = 0.0;
    ++result.checkpoints_written;
    result.checkpoint_seconds += checkpoint_cost_seconds_;
  }

  /// Lightweight recovery: re-runs the *sending side* of the superstep
  /// preceding the snapshot from the restored vertex values, via
  /// Program::resend. Deliveries land in the generation the resumed
  /// superstep consumes, and the bypass frontier is rebuilt through the
  /// normal claim paths — after this, the engine is indistinguishable
  /// from one whose messages survived (up to resend sending a superset of
  /// the original messages, which resend contracts must make harmless).
  void regenerate_messages() {
    if (superstep_ == 0) {
      return;  // superstep 0 consumes no messages
    }
    const std::size_t resume = superstep_;
    superstep_ = resume - 1;  // resend contexts observe the sender's superstep
    nxt_gen_ = static_cast<unsigned>(resume & 1);
    cur_gen_ = nxt_gen_ ^ 1u;
    for (auto& c : counters_) {
      c = ThreadCounters{};
    }
    const std::size_t first = graph_.first_slot();
    for_indices(pool(), graph_.num_slots() - first,
                [&](std::size_t tid, std::size_t i) {
                  Context ctx(*this, first + i, tid, nullptr);
                  try {
                    program_.resend(ctx);
                  } catch (const std::exception& e) {
                    throw RunError(RunErrorKind::kUserException, superstep_,
                                   tid, graph_.id_of(first + i), e.what());
                  } catch (...) {
                    throw RunError(RunErrorKind::kUserException, superstep_,
                                   tid, graph_.id_of(first + i),
                                   "resend() threw a non-std::exception");
                  }
                });
    if constexpr (Bypass) {
      frontier_->flip();
    }
    superstep_ = resume;
  }

  // --- failure-domain guards ------------------------------------------
  using GuardClock = std::chrono::steady_clock;

  [[nodiscard]] static GuardClock::duration guard_duration(
      double seconds) noexcept {
    return std::chrono::duration_cast<GuardClock::duration>(
        std::chrono::duration<double>(seconds));
  }

  /// Records the first watchdog trip and cancels the team. Callable from
  /// any team thread; first trip wins.
  void trip_guard(runtime::ThreadPool& workers,
                  std::uint8_t which) noexcept {
    std::uint8_t expected = 0;
    guard_trip_.compare_exchange_strong(expected, which,
                                        std::memory_order_relaxed);
    workers.request_cancel();
  }

  /// Compares the wall clock against the armed superstep/run deadlines.
  /// Called from every team thread at vertex-boundary ticks and from
  /// thread 0 at the barrier, so a straggling member trips its own
  /// deadline even while thread 0 waits for it.
  void check_deadlines(runtime::ThreadPool& workers) noexcept {
    if (!step_deadline_armed_ && !run_deadline_armed_) {
      return;
    }
    const GuardClock::time_point now = GuardClock::now();
    if (step_deadline_armed_ && now >= step_deadline_) {
      trip_guard(workers, kTripSuperstep);
    } else if (run_deadline_armed_ && now >= run_deadline_) {
      trip_guard(workers, kTripRun);
    }
  }

  /// Observes the caller's cooperative cancel token (guards.cancel_token).
  /// Same cadence as the deadlines: every team thread at vertex-boundary
  /// ticks, thread 0 at the barrier.
  void check_cancel_token(runtime::ThreadPool& workers) noexcept {
    const std::atomic<bool>* token = options_.guards.cancel_token;
    if (token != nullptr && token->load(std::memory_order_relaxed)) {
      trip_guard(workers, kTripCancelled);
    }
  }

  /// Cooperative cancellation poll for parallel-region bodies: true means
  /// "unwind now" (a teammate failed, a watchdog tripped, an external
  /// request_cancel arrived, or the caller raised the cancel token).
  [[nodiscard]] bool guard_tick(runtime::ThreadPool& workers) noexcept {
    if (workers.cancel_requested()) {
      return true;
    }
    check_deadlines(workers);
    check_cancel_token(workers);
    return workers.cancel_requested();
  }

  /// Translates a recorded watchdog trip into its typed error (thread 0,
  /// at the barrier, once the team has quiesced).
  void throw_if_guard_tripped() {
    const std::uint8_t trip = guard_trip_.load(std::memory_order_relaxed);
    if (trip == 0) {
      return;
    }
    if (trip == kTripSuperstep) {
      throw RunError(RunErrorKind::kSuperstepTimeout, superstep_, 0,
                     RunError::kNoVertex,
                     "superstep exceeded the watchdog limit of " +
                         std::to_string(options_.guards.superstep_seconds) +
                         " s");
    }
    if (trip == kTripCancelled) {
      throw RunError(RunErrorKind::kCancelled, superstep_, 0,
                     RunError::kNoVertex,
                     "run cancelled via guards.cancel_token");
    }
    throw RunError(RunErrorKind::kRunTimeout, superstep_, 0,
                   RunError::kNoVertex,
                   "run exceeded the watchdog limit of " +
                       std::to_string(options_.guards.run_seconds) + " s");
  }

  /// Enforces guards.memory_budget_bytes — the shared-memory mirror of the
  /// Pregel+ cluster's out_of_memory marker, raised at the barrier instead
  /// of mid-flight. When the calling thread has an active MemoryScope the
  /// budget covers *this job's* attributed bytes only, so concurrent jobs
  /// cannot trip each other; otherwise the process-wide total is used.
  void enforce_memory_budget() {
    const std::size_t budget = options_.guards.memory_budget_bytes;
    if (budget == 0) {
      return;
    }
    const runtime::MemoryScope* scope = runtime::current_memory_scope();
    const std::size_t used = scope != nullptr
                                 ? scope->total()
                                 : runtime::MemoryTracker::instance().total();
    if (used > budget) {
      throw RunError(RunErrorKind::kMemoryBudget, superstep_, 0,
                     RunError::kNoVertex,
                     std::string("tracked framework memory (") +
                         (scope != nullptr ? "job scope, " : "process, ") +
                         std::to_string(used) +
                         " bytes) exceeds the configured budget (" +
                         std::to_string(budget) + " bytes)");
    }
  }

  // --- integrity: silent-data-corruption detectors ---------------------
  //
  // Three independent tiers (options_.integrity), all evaluated at the
  // superstep barrier where state is quiescent:
  //   1. audit_invariants  — application-declared conservation laws
  //   2. store/verify_checksums — sectioned digests of the barrier state
  //   3. shadow_capture/verify  — sampled replay of compute()
  // plus apply_flip (options_.flip), the deterministic single-bit
  // corruption injector the detectors are tested against.

  /// Sandboxed replay context for the shadow-recompute tier: value writes
  /// land in a local copy, sends/broadcasts/aggregate contributions are
  /// swallowed, and reads (superstep, topology, previous aggregate) come
  /// from the live engine — so compute() replays against exactly the
  /// inputs the real execution consumed, with zero engine side effects.
  class ShadowContext {
   public:
    bool get_next_message(Msg& out) noexcept {
      if (msg_ == nullptr) {
        return false;
      }
      out = *msg_;
      msg_ = nullptr;
      return true;
    }
    void broadcast(const Msg&) noexcept {}
    void send_message(graph::vid_t, const Msg&) noexcept {}
    void vote_to_halt() noexcept { voted_ = true; }
    template <typename P = Program>
      requires HasAggregator<P>
    void aggregate(const typename P::aggregate_type&) noexcept {}
    template <typename P = Program>
      requires HasAggregator<P>
    [[nodiscard]] const typename P::aggregate_type& aggregated()
        const noexcept {
      return engine_.aggregator_.previous;
    }
    [[nodiscard]] std::size_t superstep() const noexcept {
      return engine_.superstep_;
    }
    [[nodiscard]] bool is_first_superstep() const noexcept {
      return engine_.superstep_ == 0;
    }
    [[nodiscard]] std::size_t num_vertices() const noexcept {
      return engine_.graph_.num_vertices();
    }
    [[nodiscard]] graph::vid_t id() const noexcept {
      return engine_.graph_.id_of(slot_);
    }
    [[nodiscard]] Value& value() noexcept { return value_; }
    [[nodiscard]] const Value& value() const noexcept { return value_; }
    [[nodiscard]] std::size_t out_degree() const noexcept {
      return engine_.graph_.out_degree(slot_);
    }
    [[nodiscard]] std::span<const graph::vid_t> out_neighbours()
        const noexcept {
      return engine_.graph_.out_neighbours(slot_);
    }
    [[nodiscard]] std::span<const graph::weight_t> out_weights()
        const noexcept {
      return engine_.graph_.out_weights(slot_);
    }

   private:
    friend class Engine;
    ShadowContext(Engine& engine, std::size_t slot, Value& value,
                  const Msg* msg) noexcept
        : engine_(engine), slot_(slot), value_(value), msg_(msg) {}

    Engine& engine_;
    std::size_t slot_;
    Value& value_;
    const Msg* msg_;
    bool voted_ = false;
  };

  struct ShadowSample {
    std::size_t slot = 0;
    Value before{};
    Msg msg{};
    bool has_msg = false;
    bool was_halted = false;
  };

  [[nodiscard]] static bool value_equal(const Value& a, const Value& b) {
    if constexpr (std::equality_comparable<Value>) {
      return a == b;
    } else {
      return std::memcmp(&a, &b, sizeof(Value)) == 0;
    }
  }

  /// Applies the armed FlipPlan when its (superstep, phase) matches —
  /// deterministic single-bit corruption at a barrier point, the SDC
  /// analogue of ft::FaultPlan's crash injection. kAtRest flips hit the
  /// generation this superstep consumes; kPostCompute flips hit freshly
  /// produced state (the generation the NEXT superstep consumes).
  /// Frontier flips are only meaningful at kAtRest (the epilogue's
  /// current list is already consumed).
  void apply_flip(integrity::FlipPhase phase) {
    const integrity::FlipPlan& plan = options_.flip;
    if (!plan.armed() || plan.superstep != superstep_ ||
        plan.phase != phase) {
      return;
    }
    const std::size_t first = graph_.first_slot();
    const std::size_t n = graph_.num_slots() - first;
    if (n == 0) {
      return;
    }
    const auto flip_byte = [&](std::uint8_t* base, std::size_t object_bytes,
                               std::size_t object_index, std::uint32_t bit) {
      const std::uint32_t b =
          bit % static_cast<std::uint32_t>(object_bytes * 8);
      std::uint8_t* byte = base + object_index * object_bytes + b / 8;
      const std::uint8_t mask = static_cast<std::uint8_t>(1u << (b % 8));
      switch (plan.op) {
        case integrity::FlipOp::kXor:
          *byte ^= mask;
          break;
        case integrity::FlipOp::kSet:
          *byte |= mask;
          break;
        case integrity::FlipOp::kClear:
          *byte &= static_cast<std::uint8_t>(~mask);
          break;
      }
    };
    const std::size_t slot = first + plan.index % n;
    const unsigned gen = static_cast<unsigned>(
        (phase == integrity::FlipPhase::kAtRest ? superstep_
                                                : superstep_ + 1) &
        1);
    switch (plan.target) {
      case integrity::FlipTarget::kValues:
        if constexpr (std::is_trivially_copyable_v<Value>) {
          flip_byte(reinterpret_cast<std::uint8_t*>(values_.data()),
                    sizeof(Value), slot, plan.bit);
        }
        break;
      case integrity::FlipTarget::kHalted:
        flip_byte(halted_.data(), 1, slot, plan.bit);
        break;
      case integrity::FlipTarget::kMessages:
        if constexpr (std::is_trivially_copyable_v<Msg>) {
          flip_byte(reinterpret_cast<std::uint8_t*>(
                        mail_->corrupt_messages(gen).data()),
                    sizeof(Msg), slot, plan.bit);
        }
        break;
      case integrity::FlipTarget::kMessageFlags:
        flip_byte(mail_->corrupt_flags(gen).data(), 1, slot, plan.bit);
        break;
      case integrity::FlipTarget::kFrontier:
        if constexpr (Bypass) {
          std::vector<std::size_t>& work = frontier_->corrupt_current();
          if (!work.empty()) {
            flip_byte(reinterpret_cast<std::uint8_t*>(work.data()),
                      sizeof(std::size_t), plan.index % work.size(),
                      plan.bit);
          }
        }
        break;
    }
  }

  /// Digests the barrier state into `out`: values, halted flags, the
  /// message generation superstep_ consumes, and the bypass frontier —
  /// one digest per kSectionSlots-slot partition, computed in parallel.
  /// Message digests fold the flag byte always but the message bytes only
  /// when the flag is set: a flip in a dead mailbox slot is masked by
  /// construction (the engine never reads those bytes).
  void collect_checksums(integrity::SectionChecksums& out) {
    if constexpr (kTriviallyCheckpointable) {
      const std::size_t first = graph_.first_slot();
      const std::size_t n = graph_.num_slots() - first;
      const std::size_t parts = integrity::section_count(n);
      out.values.assign(parts, 0);
      out.halted.assign(parts, 0);
      out.messages.assign(parts, 0);
      const unsigned gen = static_cast<unsigned>(superstep_ & 1);
      const auto msgs =
          static_cast<const Mailboxes&>(*mail_).messages(gen);
      const auto flags = static_cast<const Mailboxes&>(*mail_).flags(gen);
      pool().parallel_for(parts, [&](std::size_t, runtime::Range r) {
        for (std::size_t p = r.begin; p < r.end; ++p) {
          const std::size_t begin = first + p * integrity::kSectionSlots;
          const std::size_t end =
              std::min(begin + integrity::kSectionSlots, first + n);
          out.values[p] = integrity::hash_bytes(
              values_.data() + begin, (end - begin) * sizeof(Value));
          out.halted[p] =
              integrity::hash_bytes(halted_.data() + begin, end - begin);
          // Flag bytes in bulk, then live payloads over four rotating
          // lanes: the flag digest pins WHICH slots were live, the lanes
          // pin the live payload bytes, and neither is a serial per-slot
          // mix chain (which made this section the tier's bottleneck).
          // Dead-slot payload bytes are still never read, preserving the
          // masked-by-construction contract the detector tests pin.
          std::uint64_t h =
              integrity::hash_bytes(flags.data() + begin, end - begin);
          if (std::memchr(flags.data() + begin, 0, end - begin) == nullptr) {
            // Every slot live (PageRank-style full generations): one bulk
            // pass over the contiguous payload range — no masking to
            // honour, so no per-slot gating needed.
            h = integrity::hash_bytes(&msgs[begin],
                                      (end - begin) * sizeof(Msg), h);
          } else {
            std::uint64_t lane[4] = {
                runtime::mix64(h ^ 0x243f6a8885a308d3ULL),
                runtime::mix64(h ^ 0x13198a2e03707344ULL),
                runtime::mix64(h ^ 0xa4093822299f31d0ULL),
                runtime::mix64(h ^ 0x082efa98ec4e6c89ULL)};
            for (std::size_t s = begin; s < end; ++s) {
              if (flags[s] != 0) {
                lane[s & 3] = integrity::hash_bytes(&msgs[s], sizeof(Msg),
                                                    lane[s & 3]);
              }
            }
            h = runtime::mix64(h ^ lane[0]);
            h = runtime::mix64(h ^ lane[1]);
            h = runtime::mix64(h ^ lane[2]);
            h = runtime::mix64(h ^ lane[3]);
          }
          out.messages[p] = h;
        }
      });
      out.frontier.clear();
      out.frontier_size = 0;
      if constexpr (Bypass) {
        const std::vector<std::size_t>& work = frontier_->current();
        out.frontier_size = work.size();
        const std::size_t fparts = integrity::section_count(work.size());
        out.frontier.assign(fparts, 0);
        pool().parallel_for(fparts, [&](std::size_t, runtime::Range r) {
          for (std::size_t p = r.begin; p < r.end; ++p) {
            const std::size_t b = p * integrity::kSectionSlots;
            const std::size_t e =
                std::min(b + integrity::kSectionSlots, work.size());
            out.frontier[p] = integrity::hash_bytes(
                work.data() + b, (e - b) * sizeof(std::size_t));
          }
        });
      }
    } else {
      (void)out;  // unreachable: gated at run start
    }
  }

  /// Arms the tier-2 digests for the superstep about to run (called after
  /// ++superstep_, respecting the checksum_every cadence).
  void store_checksums() {
    const integrity::IntegrityOptions& iopt = options_.integrity;
    if (!iopt.checksums) {
      return;
    }
    const std::size_t every = iopt.checksum_every == 0 ? 1 : iopt.checksum_every;
    if (superstep_ % every != 0) {
      return;
    }
    collect_checksums(checks_);
    checks_.superstep = superstep_;
    checks_.armed = true;
  }

  /// Verifies the armed tier-2 digests at the top of their superstep:
  /// recompute and compare section by section, localising any mismatch to
  /// a state section and a slot range. One-shot — re-armed at the next
  /// store cadence.
  void verify_checksums() {
    if (!options_.integrity.checksums || !checks_.armed ||
        checks_.superstep != superstep_) {
      return;
    }
    checks_.armed = false;
    integrity::SectionChecksums now;
    collect_checksums(now);
    const std::size_t first = graph_.first_slot();
    const auto fail = [&](integrity::Section sec, std::size_t part,
                          std::size_t base) {
      const std::size_t lo = base + part * integrity::kSectionSlots;
      const std::size_t hi = lo + integrity::kSectionSlots;
      throw RunError(
          RunErrorKind::kIntegrityViolation, superstep_, 0,
          RunError::kNoVertex,
          "sectioned checksum mismatch: section '" +
              std::string(integrity::to_string(sec)) + "', slots [" +
              std::to_string(lo) + ", " + std::to_string(hi) +
              ") changed at rest since the barrier before superstep " +
              std::to_string(superstep_) +
              " — memory corrupted outside the engine's write paths");
    };
    for (std::size_t p = 0; p < checks_.values.size(); ++p) {
      if (now.values[p] != checks_.values[p]) {
        fail(integrity::Section::kValues, p, first);
      }
    }
    for (std::size_t p = 0; p < checks_.halted.size(); ++p) {
      if (now.halted[p] != checks_.halted[p]) {
        fail(integrity::Section::kHalted, p, first);
      }
    }
    for (std::size_t p = 0; p < checks_.messages.size(); ++p) {
      if (now.messages[p] != checks_.messages[p]) {
        fail(integrity::Section::kMessages, p, first);
      }
    }
    if constexpr (Bypass) {
      if (now.frontier_size != checks_.frontier_size) {
        throw RunError(RunErrorKind::kIntegrityViolation, superstep_, 0,
                       RunError::kNoVertex,
                       "sectioned checksum mismatch: frontier size changed "
                       "at rest (" +
                           std::to_string(checks_.frontier_size) + " -> " +
                           std::to_string(now.frontier_size) +
                           ") before superstep " +
                           std::to_string(superstep_));
      }
      for (std::size_t p = 0; p < checks_.frontier.size(); ++p) {
        if (now.frontier[p] != checks_.frontier[p]) {
          fail(integrity::Section::kFrontier, p, 0);
        }
      }
    }
  }

  /// Records the tier-3 sample at the top of the superstep: which slots a
  /// seeded draw selected, their pre-compute values/halted state, and the
  /// combined message each is about to consume.
  void shadow_capture() {
    shadow_captured_ = false;
    if (!options_.integrity.shadow) {
      return;
    }
    if constexpr (kShadowComparable) {
      const std::size_t first = graph_.first_slot();
      const std::size_t n = graph_.num_slots() - first;
      const std::vector<std::size_t> slots = integrity::shadow_sample(
          options_.integrity.shadow_seed, superstep_, first, n,
          options_.integrity.shadow_samples);
      shadow_.clear();
      shadow_.reserve(slots.size());
      for (const std::size_t slot : slots) {
        ShadowSample s;
        s.slot = slot;
        s.before = values_[slot];
        s.was_halted = halted_[slot] != 0;
        if constexpr (Combiner == CombinerKind::kPull) {
          if (superstep_ > 0) {
            for (const graph::vid_t u : graph_.in_neighbours(slot)) {
              Msg m{};
              if (mail_->fetch(cur_gen_, graph_.slot_of(u), m)) {
                if (s.has_msg) {
                  Program::combine(s.msg, m);
                } else {
                  s.msg = m;
                  s.has_msg = true;
                }
              }
            }
          }
        } else {
          if (mail_->has_message(cur_gen_, slot)) {
            s.has_msg = true;
            s.msg = mail_->messages(cur_gen_)[slot];
          }
        }
        shadow_.push_back(s);
      }
      shadow_captured_ = true;
    }
  }

  /// Replays compute() for every sampled slot in the epilogue and compares
  /// the replayed (value, voted) against what the live superstep stored —
  /// catching corruption of the compute path itself, not just state at
  /// rest. Mirrors the live selection exactly: a sampled slot that was
  /// skipped (halted, no message) must be byte-for-byte untouched.
  void shadow_verify() {
    if (!shadow_captured_) {
      return;
    }
    if constexpr (kShadowComparable) {
      for (const ShadowSample& s : shadow_) {
        bool executed = true;
        if (superstep_ > 0) {
          if constexpr (Bypass) {
            executed = s.has_msg;
          } else {
            executed = s.has_msg || !s.was_halted;
          }
        }
        Value expect = s.before;
        bool voted = s.was_halted;
        if (executed) {
          Msg m = s.msg;
          ShadowContext ctx(*this, s.slot, expect,
                            s.has_msg ? &m : nullptr);
          try {
            program_.compute(ctx);
          } catch (...) {
            throw RunError(
                RunErrorKind::kIntegrityViolation, superstep_, 0,
                graph_.id_of(s.slot),
                "shadow recompute: compute() threw on replay with "
                "identical inputs (nondeterministic program or corrupted "
                "inputs)");
          }
          voted = ctx.voted_;
        }
        const bool halted_now = halted_[s.slot] != 0;
        if (!value_equal(expect, values_[s.slot]) || voted != halted_now) {
          throw RunError(
              RunErrorKind::kIntegrityViolation, superstep_, 0,
              graph_.id_of(s.slot),
              "shadow recompute mismatch at slot " + std::to_string(s.slot) +
                  ": the stored result of compute() does not match a "
                  "replay against the same inbox — state corrupted during "
                  "superstep " + std::to_string(superstep_));
        }
      }
    }
  }

  /// Tier-1 barrier audit: accumulate the program's audit reduction over
  /// all vertex values (per kSectionSlots partition, in parallel), check
  /// each value against the program's per-vertex validity predicate, then
  /// check the reduced accumulators against the previous barrier's.
  void audit_invariants() {
    if (!options_.integrity.invariants) {
      return;
    }
    if constexpr (!HasInvariantAudit<Program> && !HasValueAudit<Program>) {
      return;  // the program declares no auditors; the tier is a no-op
    } else {
      const std::size_t first = graph_.first_slot();
      const std::size_t n = graph_.num_slots() - first;
      const std::size_t parts = integrity::section_count(n);
      struct Failure {
        std::size_t slot = 0;
        const char* why = nullptr;
      };
      std::vector<Failure> failures(parts);
      if constexpr (HasInvariantAudit<Program>) {
        audit_.cur.assign(parts, program_.audit_identity());
      }
      pool().parallel_for(parts, [&](std::size_t, runtime::Range r) {
        for (std::size_t p = r.begin; p < r.end; ++p) {
          const std::size_t begin = first + p * integrity::kSectionSlots;
          const std::size_t end =
              std::min(begin + integrity::kSectionSlots, first + n);
          for (std::size_t slot = begin; slot < end; ++slot) {
            if constexpr (HasInvariantAudit<Program>) {
              program_.audit_accumulate(audit_.cur[p], values_[slot]);
            }
            if constexpr (HasValueAudit<Program>) {
              if (failures[p].why == nullptr) {
                const char* why = program_.audit_value(
                    graph_.id_of(slot), values_[slot],
                    graph_.num_vertices());
                if (why != nullptr) {
                  failures[p] = Failure{slot, why};
                }
              }
            }
          }
        }
      });
      if constexpr (HasValueAudit<Program>) {
        for (const Failure& f : failures) {
          if (f.why != nullptr) {
            throw RunError(
                RunErrorKind::kIntegrityViolation, superstep_, 0,
                graph_.id_of(f.slot),
                std::string("invariant audit: ") + f.why +
                    " (per-vertex value audit, slot " +
                    std::to_string(f.slot) + ", superstep " +
                    std::to_string(superstep_) + ")");
          }
        }
      }
      if constexpr (HasInvariantAudit<Program>) {
        using Acc = typename Program::audit_type;
        const auto check = [&](const Acc* prev, const Acc& cur,
                               std::size_t part, bool global) {
          const char* why = program_.audit_check(prev, cur, superstep_);
          if (why != nullptr) {
            const std::string where =
                global ? std::string("all slots")
                       : "slots [" +
                             std::to_string(first +
                                            part * integrity::kSectionSlots) +
                             ", " +
                             std::to_string(first +
                                            (part + 1) *
                                                integrity::kSectionSlots) +
                             ")";
            throw RunError(RunErrorKind::kIntegrityViolation, superstep_, 0,
                           RunError::kNoVertex,
                           std::string("invariant audit: ") + why +
                               " (reduction audit, " + where +
                               ", superstep " + std::to_string(superstep_) +
                               ")");
          }
        };
        if constexpr (Program::audit_per_partition) {
          for (std::size_t p = 0; p < parts; ++p) {
            check(audit_.has_prev ? &audit_.prev[p] : nullptr,
                  audit_.cur[p], p, false);
          }
        } else {
          Acc merged = program_.audit_identity();
          for (const Acc& a : audit_.cur) {
            Program::audit_merge(merged, a);
          }
          Acc prev_merged = program_.audit_identity();
          if (audit_.has_prev) {
            for (const Acc& a : audit_.prev) {
              Program::audit_merge(prev_merged, a);
            }
          }
          check(audit_.has_prev ? &prev_merged : nullptr, merged, 0, true);
        }
        audit_.prev.swap(audit_.cur);
        audit_.has_prev = true;
      }
    }
  }

  /// Clears all detector state (fresh run).
  void integrity_reset() {
    checks_.disarm();
    audit_.reset();
    shadow_.clear();
    shadow_captured_ = false;
  }

  /// Re-baselines the detectors after a snapshot restore: the reduction
  /// audit's previous-barrier accumulators are rebuilt from the restored
  /// values (so the first audited barrier compares against exactly what an
  /// uninterrupted run would have), and the tier-2 digests are re-armed
  /// over the restored state (so at-rest corruption between restore and
  /// the resumed superstep is still caught).
  void integrity_after_restore() {
    integrity_reset();
    if constexpr (HasInvariantAudit<Program>) {
      if (options_.integrity.invariants) {
        const std::size_t first = graph_.first_slot();
        const std::size_t n = graph_.num_slots() - first;
        const std::size_t parts = integrity::section_count(n);
        audit_.prev.assign(parts, program_.audit_identity());
        pool().parallel_for(parts, [&](std::size_t, runtime::Range r) {
          for (std::size_t p = r.begin; p < r.end; ++p) {
            const std::size_t begin = first + p * integrity::kSectionSlots;
            const std::size_t end =
                std::min(begin + integrity::kSectionSlots, first + n);
            for (std::size_t slot = begin; slot < end; ++slot) {
              program_.audit_accumulate(audit_.prev[p], values_[slot]);
            }
          }
        });
        audit_.has_prev = superstep_ > 0;
      }
    }
    if (options_.integrity.checksums && kTriviallyCheckpointable) {
      collect_checksums(checks_);
      checks_.superstep = superstep_;
      checks_.armed = true;
    }
  }

  /// Shared body of the *_checked entry points: typed failures become
  /// outcome data, configuration errors keep throwing.
  template <typename F>
  [[nodiscard]] RunOutcome to_outcome(F&& f) {
    RunOutcome out;
    try {
      out.result = f();
    } catch (const RunError& e) {
      out.error = e;
    } catch (const ft::InjectedFault& e) {
      out.error = RunError(RunErrorKind::kInjectedFault, e.superstep(), 0,
                           RunError::kNoVertex, e.what());
    }
    return out;
  }

  /// Distributes [0, n) under the configured scheduling policy and calls
  /// `fn(tid, i)` for every index. Every 64 indices each thread polls the
  /// cancellation flag and the watchdog deadlines, so a failing teammate
  /// or an expired deadline unwinds the whole team at vertex granularity.
  template <typename Fn>
  void for_indices(runtime::ThreadPool& workers, std::size_t n, Fn&& fn) {
    const auto body = [this, &fn, &workers](std::size_t tid,
                                            runtime::Range r) {
      std::size_t tick = 0;
      for (std::size_t i = r.begin; i < r.end; ++i) {
        if ((tick++ & 63u) == 0u && guard_tick(workers)) {
          return;
        }
        fn(tid, i);
      }
    };
    if (options_.schedule == Schedule::kDynamic) {
      workers.parallel_for_dynamic(n, options_.dynamic_chunk, body);
    } else {
      workers.parallel_for(n, body);
    }
  }

  void reset_state() {
    superstep_ = 0;
    const std::size_t first = graph_.first_slot();
    pool().parallel_for(
        graph_.num_slots() - first, [&](std::size_t, runtime::Range r) {
          for (std::size_t s = first + r.begin; s < first + r.end; ++s) {
            values_[s] = program_.initial_value(graph_.id_of(s));
            halted_[s] = 0;
          }
        });
    mail_->reset();
    if constexpr (Bypass) {
      frontier_->reset();
    }
    aggregator_.init(pool().size());
    reset_checkpoint_pacing();
    integrity_reset();
  }

  /// Selection check + message consumption + compute for one vertex.
  void process_vertex(std::size_t slot, std::size_t tid, unsigned cur,
                      unsigned /*nxt*/) {
    if (fault_active_) {
      // Deterministic crash injection: after the configured number of
      // compute calls this superstep, every worker bails at its next
      // vertex boundary and the barrier throws ft::InjectedFault. No
      // signals, no exceptions off worker threads — but the abandoned
      // superstep leaves values half-updated and messages half-delivered,
      // which is the torn state a real crash produces.
      if (fault_tripped_.load(std::memory_order_relaxed)) {
        return;
      }
      if (fault_calls_.fetch_add(1, std::memory_order_relaxed) >=
          options_.fault.after_compute_calls) {
        fault_tripped_.store(true, std::memory_order_relaxed);
        return;
      }
    }
    Msg combined{};
    bool has = false;
    if constexpr (Combiner == CombinerKind::kPull) {
      // The gather phase of section 6.2: fetch every in-neighbour's armed
      // outbox and combine locally. Read-only across vertices, writes stay
      // intra-vertex: race-free by construction.
      if (superstep_ > 0) {
        for (const graph::vid_t u : graph_.in_neighbours(slot)) {
          Msg m{};
          if (mail_->fetch(cur, graph_.slot_of(u), m)) {
            if (has) {
              Program::combine(combined, m);
            } else {
              combined = m;
              has = true;
            }
          }
        }
      }
    } else {
      has = mail_->consume(cur, slot, combined);
    }
    // Scan-all selection: skip vertices that are halted with an empty
    // inbox — the "unfruitful checks" the bypass eliminates. (Under the
    // bypass every visited vertex has a message by construction.)
    if (!has && superstep_ > 0 && halted_[slot] != 0) {
      return;
    }
    Context ctx(*this, slot, tid, has ? &combined : nullptr);
    try {
      program_.compute(ctx);
    } catch (const RunError&) {
      throw;  // already carries its context
    } catch (const std::exception& e) {
      throw RunError(RunErrorKind::kUserException, superstep_, tid,
                     graph_.id_of(slot), e.what());
    } catch (...) {
      throw RunError(RunErrorKind::kUserException, superstep_, tid,
                     graph_.id_of(slot),
                     "compute() threw a non-std::exception");
    }
    halted_[slot] = ctx.voted_ ? 1 : 0;
    ThreadCounters& c = counters_[tid];
    ++c.executed;
    if (!ctx.voted_) {
      ++c.active;
    }
  }

  void do_broadcast(std::size_t slot, std::size_t tid, const Msg& msg) {
    const auto neighbours = graph_.out_neighbours(slot);
    if constexpr (Combiner == CombinerKind::kPull) {
      if (!neighbours.empty()) {
        mail_->broadcast(nxt_gen_, slot, msg);
      }
      if constexpr (Bypass) {
        // Pull senders never touch recipient state, so recipients are
        // claimed through the frontier's dedup bitmap.
        for (const graph::vid_t dst : neighbours) {
          frontier_->add(graph_.slot_of(dst), tid);
        }
      }
    } else {
      for (const graph::vid_t dst : neighbours) {
        deliver_push(graph_.slot_of(dst), tid, msg);
      }
    }
    counters_[tid].sent += neighbours.size();
  }

  void do_send(graph::vid_t dst, std::size_t tid, const Msg& msg) {
    if constexpr (Combiner != CombinerKind::kPull) {
      deliver_push(graph_.slot_of(dst), tid, msg);
      ++counters_[tid].sent;
    }
  }

  /// Push-combiner delivery: combine under the recipient's lock; when the
  /// mailbox was empty this was the recipient's first message of the
  /// superstep, which is exactly the section-4 moment the sender appends
  /// the recipient to the next work list — no extra synchronisation.
  void deliver_push(std::size_t dst_slot, std::size_t tid, const Msg& msg) {
    const bool first =
        mail_->deliver(nxt_gen_, dst_slot, msg,
                       [](Msg& old, const Msg& incoming) {
                         Program::combine(old, incoming);
                       });
    if constexpr (Bypass) {
      if (first) {
        frontier_->add_claimed(dst_slot, tid);
      }
    } else {
      (void)first;
    }
  }

  const graph::CsrGraph& graph_;
  Program program_;
  EngineOptions options_;
  runtime::ThreadPool* external_pool_ = nullptr;
  std::unique_ptr<runtime::ThreadPool> owned_pool_;

  std::vector<Value> values_;
  std::vector<std::uint8_t> halted_;
  std::optional<Mailboxes> mail_;
  std::optional<Frontier> frontier_;
  std::vector<ThreadCounters> counters_;
  detail::AggregatorState<Program> aggregator_;

  std::size_t superstep_ = 0;
  unsigned cur_gen_ = 0;
  unsigned nxt_gen_ = 1;

  // Fault injection (options_.fault): armed per-superstep, tripped once.
  bool fault_active_ = false;
  std::atomic<std::size_t> fault_calls_{0};
  std::atomic<bool> fault_tripped_{false};

  // Integrity-detector state (options_.integrity): tier-2 digests, tier-1
  // audit accumulators (empty struct for programs without auditors), and
  // the tier-3 sample of the superstep in flight.
  integrity::SectionChecksums checks_;
  integrity::AuditState<Program> audit_;
  std::vector<ShadowSample> shadow_;
  bool shadow_captured_ = false;

  // Watchdog state (options_.guards): deadlines armed per run/superstep by
  // thread 0, compared by every team member at guard ticks; the first trip
  // is recorded here and translated to a RunError at the barrier.
  static constexpr std::uint8_t kTripSuperstep = 1;
  static constexpr std::uint8_t kTripRun = 2;
  static constexpr std::uint8_t kTripCancelled = 3;
  GuardClock::time_point step_deadline_{};
  GuardClock::time_point run_deadline_{};
  bool step_deadline_armed_ = false;
  bool run_deadline_armed_ = false;
  std::atomic<std::uint8_t> guard_trip_{0};

  // Checkpoint pacing (adaptive trigger) + staging-buffer accounting.
  double since_checkpoint_seconds_ = 0.0;
  double checkpoint_cost_seconds_ = 0.0;
  runtime::MemReservation checkpoint_mem_;
  mutable std::uint64_t fingerprint_ = 0;

  runtime::MemReservation values_mem_;
  runtime::MemReservation internals_mem_;
};

}  // namespace ipregel
