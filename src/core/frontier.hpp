#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/memory_tracker.hpp"
#include "runtime/partition.hpp"

namespace ipregel {

/// The selection-bypass work list (paper section 4).
///
/// In applications where every vertex votes to halt each superstep, a vertex
/// is active in superstep S+1 iff it received a message in superstep S. So
/// instead of scanning all vertices and checking their state ("unfruitful
/// checks"), the *sender* of a message appends the recipient to the next
/// superstep's list. At the next superstep the list *is* the selection.
///
/// Implementation: an atomic claim bitmap deduplicates recipients (many
/// senders may message the same vertex; it must be executed once), and
/// per-thread append vectors avoid contention on a shared list. Between
/// supersteps the per-thread lists are concatenated into a dense vector
/// that is then block-partitioned across threads — this is the paper's
/// load-balancing argument: every thread receives an equal share of
/// vertices that are all known to be active.
class Frontier {
 public:
  /// `with_dedup_bitmap` allocates the atomic claim bitmap. The push
  /// combiners do not need it: their per-mailbox lock already reveals
  /// whether a delivery was the first of the superstep ("if its recipient
  /// inbox is empty then the message is added" — and then, only then, the
  /// recipient joins the list). The pull combiner broadcasts to
  /// out-neighbours without touching their state, so it deduplicates
  /// through the bitmap instead.
  Frontier(std::size_t num_slots, std::size_t num_threads,
           bool with_dedup_bitmap)
      : claimed_(with_dedup_bitmap ? (num_slots + 63) / 64 : 0),
        pending_(num_threads),
        bitmap_mem_(runtime::MemCategory::kFrontier,
                    claimed_.size() * sizeof(std::atomic<std::uint64_t>)) {}

  /// Registers `slot` for the next superstep when the *caller* already
  /// knows this is the slot's first message of the superstep (push
  /// combiners, under the mailbox lock's exactly-once guarantee).
  void add_claimed(std::size_t slot, std::size_t tid) {
    pending_[tid].slots.push_back(slot);
  }

  /// Registers `slot` for the next superstep. Thread-safe; deduplicated
  /// through the claim bitmap. Returns true if this call claimed the slot
  /// (first sender).
  bool add(std::size_t slot, std::size_t tid) {
    std::atomic<std::uint64_t>& word = claimed_[slot / 64];
    const std::uint64_t bit = std::uint64_t{1} << (slot % 64);
    // Cheap read first: under heavy fan-in most senders observe the bit
    // already set and skip the RMW.
    if ((word.load(std::memory_order_relaxed) & bit) != 0) {
      return false;
    }
    if ((word.fetch_or(bit, std::memory_order_relaxed) & bit) != 0) {
      return false;
    }
    pending_[tid].slots.push_back(slot);
    return true;
  }

  /// Concatenates the per-thread pending lists into the current list and
  /// resets claim bits (only the bits of the gathered slots — O(frontier),
  /// not O(V)). Call between supersteps, single-threaded.
  void flip() {
    current_.clear();
    std::size_t total = 0;
    for (const auto& p : pending_) {
      total += p.slots.size();
    }
    current_.reserve(total);
    for (auto& p : pending_) {
      current_.insert(current_.end(), p.slots.begin(), p.slots.end());
      p.slots.clear();
    }
    if (!claimed_.empty()) {
      for (const std::size_t slot : current_) {
        claimed_[slot / 64].fetch_and(~(std::uint64_t{1} << (slot % 64)),
                                      std::memory_order_relaxed);
      }
    }
    lists_mem_.rebind(runtime::MemCategory::kFrontier, list_bytes());
  }

  /// The slots to execute this superstep (valid after flip()).
  [[nodiscard]] const std::vector<std::size_t>& current() const noexcept {
    return current_;
  }

  /// Mutable view of the current work list — integrity::FlipPlan fault
  /// injection ONLY (the engine corrupts an entry at a superstep barrier,
  /// before any thread partitions the list).
  [[nodiscard]] std::vector<std::size_t>& corrupt_current() noexcept {
    return current_;
  }

  [[nodiscard]] bool empty() const noexcept { return current_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return current_.size(); }

  /// Replaces the current work list wholesale — checkpoint recovery only.
  /// At a superstep barrier the pending lists are empty and every claim
  /// bit is clear (flip() cleared the gathered ones), so restoring the
  /// dense list is the complete frontier state.
  void restore(std::vector<std::size_t> slots) {
    reset();
    current_ = std::move(slots);
    lists_mem_.rebind(runtime::MemCategory::kFrontier, list_bytes());
  }

  /// Clears all state (between independent runs of an engine).
  void reset() {
    for (auto& word : claimed_) {
      word.store(0, std::memory_order_relaxed);
    }
    for (auto& p : pending_) {
      p.slots.clear();
    }
    current_.clear();
  }

  /// Bytes currently held by the work lists (bitmap excluded; that is a
  /// separate fixed reservation).
  [[nodiscard]] std::size_t list_bytes() const noexcept {
    std::size_t b = current_.capacity() * sizeof(std::size_t);
    for (const auto& p : pending_) {
      b += p.slots.capacity() * sizeof(std::size_t);
    }
    return b;
  }

 private:
  struct alignas(64) PerThread {
    std::vector<std::size_t> slots;
  };

  std::vector<std::atomic<std::uint64_t>> claimed_;
  std::vector<PerThread> pending_;
  std::vector<std::size_t> current_;
  runtime::MemReservation bitmap_mem_;
  runtime::MemReservation lists_mem_;
};

}  // namespace ipregel
