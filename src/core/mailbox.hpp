#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <span>
#include <vector>

#include "runtime/memory_tracker.hpp"
#include "runtime/spin_lock.hpp"

namespace ipregel {

/// Single-message mailboxes for the push-based combiners (paper sections
/// 6.1 and 6.3).
///
/// With a combiner, a mailbox is either empty or holds exactly one combined
/// message, so the whole inbox layer is two flat arrays (message + flag) —
/// no dynamically resizable queues, which is the heart of the paper's
/// memory-footprint argument. Mailboxes are double-buffered by superstep
/// parity: messages sent during superstep S are delivered into generation
/// (S+1)&1 while generation S&1 is being consumed, which is the BSP
/// message-visibility rule.
///
/// Delivery is the data race the paper discusses: multiple senders may
/// target the same recipient concurrently, so each vertex's next-generation
/// slot is guarded by one lock. `Lock` is std::mutex for the block-waiting
/// version (40 bytes on this toolchain) or runtime::SpinLock for the
/// busy-waiting version (4 bytes) — the 90% data-race-protection memory
/// reduction of section 6.1. Consumption needs no lock: generation S&1 is
/// only touched by the owning vertex's thread during superstep S.
template <typename Msg, typename Lock>
class PushMailboxes {
 public:
  explicit PushMailboxes(std::size_t num_slots)
      : inbox_{std::vector<Msg>(num_slots), std::vector<Msg>(num_slots)},
        has_{std::vector<std::uint8_t>(num_slots, 0),
             std::vector<std::uint8_t>(num_slots, 0)},
        locks_(num_slots),
        mailbox_mem_(runtime::MemCategory::kMailboxes,
                     2 * num_slots * (sizeof(Msg) + sizeof(std::uint8_t))),
        lock_mem_(runtime::MemCategory::kLocks, num_slots * sizeof(Lock)) {}

  /// Delivers `msg` into `slot`'s generation-`gen` mailbox, combining with
  /// an existing message via `combine(Msg& old, const Msg& incoming)`.
  /// Returns true when the mailbox was empty (first message this
  /// generation) — the selection bypass uses this to claim the recipient.
  template <typename Combine>
  bool deliver(unsigned gen, std::size_t slot, const Msg& msg,
               Combine&& combine) {
    std::lock_guard<Lock> guard(locks_[slot]);
    if (has_[gen][slot] != 0) {
      combine(inbox_[gen][slot], msg);
      return false;
    }
    inbox_[gen][slot] = msg;
    has_[gen][slot] = 1;
    return true;
  }

  /// Takes the combined message of generation `gen` for `slot`, clearing
  /// the flag. Owner-thread only; lock-free by the BSP argument above.
  bool consume(unsigned gen, std::size_t slot, Msg& out) noexcept {
    if (has_[gen][slot] == 0) {
      return false;
    }
    has_[gen][slot] = 0;
    out = inbox_[gen][slot];
    return true;
  }

  /// True when `slot` has an undelivered message in generation `gen`
  /// (scan-all selection checks this without consuming).
  [[nodiscard]] bool has_message(unsigned gen,
                                 std::size_t slot) const noexcept {
    return has_[gen][slot] != 0;
  }

  [[nodiscard]] static constexpr std::size_t lock_bytes_per_vertex() noexcept {
    return sizeof(Lock);
  }

  /// Empties both generations (between independent runs of an engine).
  void reset() noexcept {
    std::memset(has_[0].data(), 0, has_[0].size());
    std::memset(has_[1].data(), 0, has_[1].size());
  }

  /// Raw views of one generation, for checkpoint capture at the superstep
  /// barrier (no delivery is concurrent with the barrier, so these are
  /// stable to read).
  [[nodiscard]] std::span<const Msg> messages(unsigned gen) const noexcept {
    return inbox_[gen];
  }
  [[nodiscard]] std::span<const std::uint8_t> flags(
      unsigned gen) const noexcept {
    return has_[gen];
  }

  /// Restores one generation from a snapshot (the other is cleared);
  /// checkpoint recovery only.
  void restore(unsigned gen, std::span<const Msg> messages,
               std::span<const std::uint8_t> flags) noexcept {
    reset();
    std::copy(messages.begin(), messages.end(), inbox_[gen].begin());
    std::copy(flags.begin(), flags.end(), has_[gen].begin());
  }

  /// Mutable raw views — integrity::FlipPlan fault injection ONLY (the
  /// engine corrupts a quiescent generation at a superstep barrier).
  [[nodiscard]] std::span<Msg> corrupt_messages(unsigned gen) noexcept {
    return inbox_[gen];
  }
  [[nodiscard]] std::span<std::uint8_t> corrupt_flags(unsigned gen) noexcept {
    return has_[gen];
  }

 private:
  std::vector<Msg> inbox_[2];
  std::vector<std::uint8_t> has_[2];
  std::vector<Lock> locks_;
  runtime::MemReservation mailbox_mem_;
  runtime::MemReservation lock_mem_;
};

/// Outboxes for the pull-based ("broadcast") combiner (paper section 6.2).
///
/// A sender buffers the value it wants to broadcast in its own outbox; at
/// the next superstep each running vertex fetches from its in-neighbours'
/// outboxes and combines locally. All cross-vertex interaction is read-only
/// and all writes are owner-only, so no locks exist at all — the race-free
/// design whose data-race-protection footprint is zero.
///
/// Outboxes are double-buffered like push mailboxes. The consumed
/// generation's flags must be wiped between supersteps (a halted vertex
/// would otherwise leave a stale broadcast visible two supersteps later);
/// `clear_range` lets the engine do that wipe in parallel.
template <typename Msg>
class PullOutboxes {
 public:
  explicit PullOutboxes(std::size_t num_slots)
      : outbox_{std::vector<Msg>(num_slots), std::vector<Msg>(num_slots)},
        has_{std::vector<std::uint8_t>(num_slots, 0),
             std::vector<std::uint8_t>(num_slots, 0)},
        mem_(runtime::MemCategory::kOutboxes,
             2 * num_slots * (sizeof(Msg) + sizeof(std::uint8_t))) {}

  /// Arms `slot`'s generation-`gen` outbox. Owner-thread only.
  void broadcast(unsigned gen, std::size_t slot, const Msg& msg) noexcept {
    outbox_[gen][slot] = msg;
    has_[gen][slot] = 1;
  }

  /// Reads `slot`'s generation-`gen` outbox if armed.
  bool fetch(unsigned gen, std::size_t slot, Msg& out) const noexcept {
    if (has_[gen][slot] == 0) {
      return false;
    }
    out = outbox_[gen][slot];
    return true;
  }

  [[nodiscard]] bool armed(unsigned gen, std::size_t slot) const noexcept {
    return has_[gen][slot] != 0;
  }

  /// Wipes the armed flags of generation `gen` for slots [begin, end).
  void clear_range(unsigned gen, std::size_t begin, std::size_t end) noexcept {
    std::memset(has_[gen].data() + begin, 0, end - begin);
  }

  /// Empties both generations (between independent runs of an engine).
  void reset() noexcept {
    std::memset(has_[0].data(), 0, has_[0].size());
    std::memset(has_[1].data(), 0, has_[1].size());
  }

  /// Raw views / restore of one generation — checkpoint capture and
  /// recovery, same contract as PushMailboxes.
  [[nodiscard]] std::span<const Msg> messages(unsigned gen) const noexcept {
    return outbox_[gen];
  }
  [[nodiscard]] std::span<const std::uint8_t> flags(
      unsigned gen) const noexcept {
    return has_[gen];
  }
  void restore(unsigned gen, std::span<const Msg> messages,
               std::span<const std::uint8_t> flags) noexcept {
    reset();
    std::copy(messages.begin(), messages.end(), outbox_[gen].begin());
    std::copy(flags.begin(), flags.end(), has_[gen].begin());
  }

  /// Mutable raw views — integrity::FlipPlan fault injection ONLY.
  [[nodiscard]] std::span<Msg> corrupt_messages(unsigned gen) noexcept {
    return outbox_[gen];
  }
  [[nodiscard]] std::span<std::uint8_t> corrupt_flags(unsigned gen) noexcept {
    return has_[gen];
  }

 private:
  std::vector<Msg> outbox_[2];
  std::vector<std::uint8_t> has_[2];
  runtime::MemReservation mem_;
};

}  // namespace ipregel
