#pragma once

#include <concepts>
#include <type_traits>

#include "graph/types.hpp"

namespace ipregel {

/// The user-defined side of the framework (paper Fig. 4).
///
/// A vertex program supplies:
///
///  - `value_type`      — the per-vertex state (the paper's user members of
///                        `struct IP_vertex_t`)
///  - `message_type`    — what vertices exchange
///  - `broadcast_only`  — true when the program communicates exclusively by
///                        out-neighbour broadcast; this is the compile-flag
///                        of section 3.1.1 that unlocks the pull combiner
///  - `always_halts`    — true when every vertex votes to halt at the end of
///                        every superstep; unlocks the selection bypass
///                        (section 4's "it is observed that in many
///                        vertex-centric applications...")
///  - `initial_value(id)` — per-vertex state before superstep 0
///  - `compute(ctx)`    — the paper's IP_compute, run on every selected
///                        vertex each superstep; must be callable
///                        concurrently (const, no mutable program state)
///  - `combine(old, incoming)` — the paper's IP_combine; must be
///                        commutative and associative for deterministic
///                        results under any delivery order
///
/// `compute` is a template over the engine's vertex context, so the same
/// program source runs unmodified under every module version — the paper's
/// "write their code once, and see it adapted to any module version".
template <typename P>
concept VertexProgram = requires(const P p, typename P::message_type& old,
                                 const typename P::message_type& incoming,
                                 graph::vid_t id) {
  typename P::value_type;
  typename P::message_type;
  { P::broadcast_only } -> std::convertible_to<bool>;
  { P::always_halts } -> std::convertible_to<bool>;
  { p.initial_value(id) } -> std::convertible_to<typename P::value_type>;
  { P::combine(old, incoming) } -> std::same_as<void>;
};

}  // namespace ipregel
