#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <typeinfo>

#include "graph/types.hpp"
#include "runtime/rng.hpp"

namespace ipregel {

/// The user-defined side of the framework (paper Fig. 4).
///
/// A vertex program supplies:
///
///  - `value_type`      — the per-vertex state (the paper's user members of
///                        `struct IP_vertex_t`)
///  - `message_type`    — what vertices exchange
///  - `broadcast_only`  — true when the program communicates exclusively by
///                        out-neighbour broadcast; this is the compile-flag
///                        of section 3.1.1 that unlocks the pull combiner
///  - `always_halts`    — true when every vertex votes to halt at the end of
///                        every superstep; unlocks the selection bypass
///                        (section 4's "it is observed that in many
///                        vertex-centric applications...")
///  - `initial_value(id)` — per-vertex state before superstep 0
///  - `compute(ctx)`    — the paper's IP_compute, run on every selected
///                        vertex each superstep; must be callable
///                        concurrently (const, no mutable program state)
///  - `combine(old, incoming)` — the paper's IP_combine; must be
///                        commutative and associative for deterministic
///                        results under any delivery order
///
/// `compute` is a template over the engine's vertex context, so the same
/// program source runs unmodified under every module version — the paper's
/// "write their code once, and see it adapted to any module version".
template <typename P>
concept VertexProgram = requires(const P p, typename P::message_type& old,
                                 const typename P::message_type& incoming,
                                 graph::vid_t id) {
  typename P::value_type;
  typename P::message_type;
  { P::broadcast_only } -> std::convertible_to<bool>;
  { P::always_halts } -> std::convertible_to<bool>;
  { p.initial_value(id) } -> std::convertible_to<typename P::value_type>;
  { P::combine(old, incoming) } -> std::same_as<void>;
};

// --- integrity-audit hooks (all optional; see src/integrity/) -----------
//
// A program may additionally declare application-level invariants the
// engine's integrity layer (EngineOptions::integrity.invariants) evaluates
// with a parallel reduction at every superstep barrier. Two independent
// hooks, detected by concept:
//
//  * A reduction audit — a small trivially-copyable `audit_type`
//    accumulator folded over all vertex values and checked against the
//    previous barrier's accumulator (mass conservation, monotone sums,
//    reached-count growth bounds, ...):
//
//      using audit_type = ...;
//      static constexpr bool audit_per_partition = ...;
//      audit_type audit_identity() const;
//      void audit_accumulate(audit_type& acc, const value_type& v) const;
//      static void audit_merge(audit_type& acc, const audit_type& other);
//      const char* audit_check(const audit_type* prev,
//                              const audit_type& cur,
//                              std::size_t superstep) const;
//
//    `audit_check` returns nullptr when the invariant holds and a static
//    description string when it does not; `prev` is null at the first
//    audited barrier. `audit_per_partition` chooses whether the check runs
//    on each fixed slot partition separately (monotone invariants — tighter
//    localisation AND strictly stronger detection, since a raise in one
//    partition cannot hide behind a drop in another) or on the globally
//    merged accumulator only (conservation laws like PageRank's rank mass,
//    which only hold in aggregate).
//
//  * A per-vertex value audit — a pure range/sanity predicate on a single
//    value (rank within [0, 1], finite distance < |V|, label <= own id):
//
//      const char* audit_value(graph::vid_t id, const value_type& v,
//                              std::size_t num_vertices) const;
//
//    Also returns nullptr-or-reason. Used by the barrier audit pass and by
//    ft::supervise to re-validate snapshot *content* (not just CRC) before
//    resuming from it.

template <typename P>
concept HasInvariantAudit =
    requires(const P p, typename P::audit_type& acc,
             const typename P::audit_type& cur,
             const typename P::value_type& v, std::size_t superstep) {
      requires std::is_trivially_copyable_v<typename P::audit_type>;
      { P::audit_per_partition } -> std::convertible_to<bool>;
      { p.audit_identity() } -> std::convertible_to<typename P::audit_type>;
      { p.audit_accumulate(acc, v) } -> std::same_as<void>;
      { P::audit_merge(acc, cur) } -> std::same_as<void>;
      { p.audit_check(&cur, cur, superstep) } ->
          std::convertible_to<const char*>;
    };

template <typename P>
concept HasValueAudit =
    requires(const P p, const typename P::value_type& v, graph::vid_t id,
             std::size_t num_vertices) {
      { p.audit_value(id, v, num_vertices) } ->
          std::convertible_to<const char*>;
    };

// --- multi-source lane programs (src/query batching) --------------------
//
// A *lane program* runs K independent instances of a vertex computation in
// one engine pass: its value and message types are std::array<T, K>, its
// combine folds lane-wise, and `kLanes` declares K. One graph scan then
// amortises across K point queries — the batching economics the resident
// query service (src/query) is built on. Lane programs are ordinary
// VertexPrograms to the engine; the concept exists so the query broker can
// verify, at compile time, that the program it coalesces queries into
// really carries one lane per query.

template <typename P>
concept LaneProgram =
    VertexProgram<P> &&
    requires {
      { P::kLanes } -> std::convertible_to<std::size_t>;
      requires std::tuple_size_v<typename P::value_type> ==
                   static_cast<std::size_t>(P::kLanes);
      requires std::tuple_size_v<typename P::message_type> ==
                   static_cast<std::size_t>(P::kLanes);
    };

/// Lanes carried by a program: K for lane programs, 1 for plain ones —
/// lets generic serving code charge per-lane work uniformly.
template <typename P>
inline constexpr std::size_t lane_count = 1;

template <LaneProgram P>
inline constexpr std::size_t lane_count<P> =
    static_cast<std::size_t>(P::kLanes);

/// A program may carry a stable identity name for snapshot binding:
/// `static constexpr std::string_view kProgramName`. Without one the
/// mangled type name is used — stable within a binary, good enough to stop
/// a snapshot from one application resuming into another.
template <typename P>
concept HasProgramName = requires {
  { P::kProgramName } -> std::convertible_to<std::string_view>;
};

/// 64-bit identity of a vertex program for snapshot/program binding: a
/// hash of the program's name mixed with its value and message sizes.
/// Written into every snapshot (format v2) and checked at resume, so a
/// snapshot captured by one application can never be silently
/// reinterpreted as another's vertex values — even when the byte sizes
/// happen to line up. Never zero (zero is the "unknown" sentinel of v1
/// snapshots, which predate the field).
template <typename P>
[[nodiscard]] inline std::uint64_t program_fingerprint() {
  std::string_view name;
  if constexpr (HasProgramName<P>) {
    name = P::kProgramName;
  } else {
    name = typeid(P).name();
  }
  std::uint64_t h = 0x243F6A8885A308D3ULL;  // pi, for want of a better nothing
  for (const char c : name) {
    h = runtime::mix64(h ^ static_cast<std::uint8_t>(c));
  }
  h = runtime::mix64(h ^ (std::uint64_t{sizeof(typename P::value_type)} << 32 |
                          sizeof(typename P::message_type)));
  return h == 0 ? 1 : h;
}

}  // namespace ipregel
