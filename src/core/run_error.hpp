#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ipregel {

// Forward-declared here so RunOutcome can embed the statistics struct that
// config.hpp (which includes this header) defines.
struct RunResult;

/// Why a run failed — the failure taxonomy of the engine's failure-domain
/// layer. Every abnormal termination of the superstep loop maps to exactly
/// one of these, so callers can branch on the *kind* of failure instead of
/// string-matching exception messages.
enum class RunErrorKind : std::uint8_t {
  /// Program::compute (or resend) threw. Deterministic for a deterministic
  /// program, so not retryable by default.
  kUserException,
  /// A ft::FaultPlan tripped — a simulated crash. Transient by
  /// construction (the plan is per-attempt), so retryable.
  kInjectedFault,
  /// One superstep exceeded EngineOptions::guards.superstep_seconds.
  kSuperstepTimeout,
  /// The whole run exceeded EngineOptions::guards.run_seconds.
  kRunTimeout,
  /// Tracked framework memory exceeded
  /// EngineOptions::guards.memory_budget_bytes — the shared-memory analogue
  /// of the Pregel+ cluster's out_of_memory marker (Fig. 8).
  kMemoryBudget,
  /// The caller raised EngineOptions::guards.cancel_token — a cooperative
  /// external kill switch (the serving layer routes job cancellation and
  /// shutdown through it). Observed at vertex-boundary guard ticks and at
  /// the superstep barrier, like the watchdogs.
  kCancelled,
  /// An integrity detector (EngineOptions::integrity — invariant audit,
  /// sectioned checksum, or shadow recompute) caught silently corrupted
  /// state at a superstep barrier. The message localises the violation to
  /// a superstep, a state section, and a vertex/slot range. Memory
  /// corruption is transient by nature, so this is retryable: the
  /// supervisor restores the newest snapshot that passes re-validation.
  kIntegrityViolation,
  /// A resume was asked to restore a snapshot that does not belong to this
  /// (graph, program, version) binding — wrong application fingerprint,
  /// wrong value/message layout, wrong graph, or an incompatible mailbox
  /// shape. The bytes were never reinterpreted; nothing was restored.
  /// Deterministic (the same snapshot will mismatch again), so never
  /// retryable.
  kSnapshotMismatch,
  /// A sharded multi-process run (src/shard) lost a worker beyond what the
  /// shard::Supervisor could repair: the respawn budget ran out, or a
  /// respawned shard resumed too far behind the barrier for the survivors'
  /// retained message logs to replay it forward. The coordinator killed
  /// the remaining workers and aborted the job. Not retryable at this
  /// level — per-shard retries already happened inside the run.
  kShardFailure,
  /// The beyond-RAM paged store (src/store) could not serve an edge page:
  /// the page failed its CRC seal or read after the bounded retry budget,
  /// the store file's superblock was invalid, or the backing filesystem
  /// lost power mid-read. The streaming runner unwinds the superstep and
  /// surfaces the store::PageError detail. Retryable when the underlying
  /// page fault was transient (the retry-then-quarantine ladder already
  /// distinguishes that; what reaches this level recurs), so not
  /// retryable by default.
  kPageError,
  /// A sharded run's coordinator incarnation discovered it is STALE: a
  /// newer incarnation holds the fencing epoch, and a worker rejected its
  /// HELLO/adoption attempt with the newer epoch. The stale incarnation
  /// stepped down without committing a barrier or killing any worker —
  /// split-brain is structurally impossible, and this error is how the
  /// loser reports it. Never retryable: the run is owned by someone newer.
  kCoordinatorFenced,
};

[[nodiscard]] constexpr std::string_view to_string(RunErrorKind k) noexcept {
  switch (k) {
    case RunErrorKind::kUserException:
      return "user-exception";
    case RunErrorKind::kInjectedFault:
      return "injected-fault";
    case RunErrorKind::kSuperstepTimeout:
      return "superstep-timeout";
    case RunErrorKind::kRunTimeout:
      return "run-timeout";
    case RunErrorKind::kMemoryBudget:
      return "memory-budget";
    case RunErrorKind::kCancelled:
      return "cancelled";
    case RunErrorKind::kIntegrityViolation:
      return "integrity-violation";
    case RunErrorKind::kSnapshotMismatch:
      return "snapshot-mismatch";
    case RunErrorKind::kShardFailure:
      return "shard-failure";
    case RunErrorKind::kPageError:
      return "page-error";
    case RunErrorKind::kCoordinatorFenced:
      return "coordinator-fenced";
  }
  return "invalid";
}

/// A structured run failure: what went wrong (kind), where (superstep,
/// thread, and — for compute failures — the vertex whose compute threw),
/// and the underlying detail message.
///
/// Thrown by Engine::run / run_from and translated into a RunOutcome by the
/// *_checked entry points. After a RunError the engine object is still
/// valid: vertex values may be torn (the failing superstep was abandoned
/// mid-flight, like a crash), but a fresh run() fully reinitialises state
/// and run_from() restores a snapshot — the strong guarantee holds at
/// superstep granularity, not mid-superstep.
class RunError : public std::runtime_error {
 public:
  /// Sentinel for failures with no single responsible vertex (watchdog,
  /// budget, injected fault).
  static constexpr std::uint64_t kNoVertex =
      static_cast<std::uint64_t>(-1);

  RunError(RunErrorKind kind, std::size_t superstep, std::size_t thread,
           std::uint64_t vertex, const std::string& detail)
      : std::runtime_error(format(kind, superstep, thread, vertex, detail)),
        kind_(kind),
        superstep_(superstep),
        thread_(thread),
        vertex_(vertex) {}

  [[nodiscard]] RunErrorKind kind() const noexcept { return kind_; }
  /// Superstep in flight (or about to start) when the failure surfaced.
  [[nodiscard]] std::size_t superstep() const noexcept { return superstep_; }
  /// Team thread id that raised the failure (0 for barrier-side checks).
  [[nodiscard]] std::size_t thread() const noexcept { return thread_; }
  [[nodiscard]] bool has_vertex() const noexcept {
    return vertex_ != kNoVertex;
  }
  /// External id of the vertex whose compute threw (kUserException only).
  [[nodiscard]] std::uint64_t vertex() const noexcept { return vertex_; }

  /// Whether retrying the run (from the latest checkpoint) can plausibly
  /// succeed without any change of configuration: true for simulated
  /// crashes and for detected memory corruption (both transient by
  /// nature). Deterministic failures (user exceptions, budget breaches,
  /// snapshot mismatches) would recur; ft::RetryPolicy can widen this
  /// per-kind.
  [[nodiscard]] bool retryable() const noexcept {
    return kind_ == RunErrorKind::kInjectedFault ||
           kind_ == RunErrorKind::kIntegrityViolation;
  }

 private:
  [[nodiscard]] static std::string format(RunErrorKind kind,
                                          std::size_t superstep,
                                          std::size_t thread,
                                          std::uint64_t vertex,
                                          const std::string& detail) {
    std::string out = "[";
    out += to_string(kind);
    out += "] superstep " + std::to_string(superstep) + ", thread " +
           std::to_string(thread);
    if (vertex != kNoVertex) {
      out += ", vertex " + std::to_string(vertex);
    }
    out += ": " + detail;
    return out;
  }

  RunErrorKind kind_;
  std::size_t superstep_;
  std::size_t thread_;
  std::uint64_t vertex_;
};

/// Watchdog and budget limits for a run; all disabled (0) by default, so
/// the guards cost one branch per check site when unused.
struct RunGuards {
  /// Wall-clock ceiling for a single superstep. Checked cooperatively at
  /// vertex boundaries (every thread, every 64 vertices) and at the
  /// superstep barrier from thread 0 — a superstep that retires vertices
  /// is interrupted promptly; one stuck inside a single compute call is
  /// only detected once that call returns.
  double superstep_seconds = 0.0;
  /// Wall-clock ceiling for the whole run (all supersteps).
  double run_seconds = 0.0;
  /// Ceiling on tracked framework bytes, enforced at run start and at
  /// every superstep barrier. Compared against the calling thread's active
  /// runtime::MemoryScope when one is installed (per-job accounting —
  /// concurrent jobs cannot trip each other's budget), otherwise against
  /// the process-wide MemoryTracker total.
  std::size_t memory_budget_bytes = 0;
  /// Cooperative cancel token (not owned; may be null). When the pointee
  /// becomes true the run unwinds at the next guard tick or barrier and
  /// fails with RunErrorKind::kCancelled. The serving layer points this at
  /// the job's cancel flag so external cancellation and shutdown ride the
  /// same machinery as the watchdogs.
  const std::atomic<bool>* cancel_token = nullptr;

  [[nodiscard]] bool any() const noexcept {
    return superstep_seconds > 0.0 || run_seconds > 0.0 ||
           memory_budget_bytes != 0 || cancel_token != nullptr;
  }
};

}  // namespace ipregel
