#pragma once

#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "ft/fingerprint.hpp"
#include "ft/snapshot.hpp"

namespace ipregel {

/// Runs `program` on `graph` under the framework version selected at
/// *runtime* by `version`, returning the run statistics and (optionally)
/// the final vertex values.
///
/// The engine itself selects its version at compile time (the paper's
/// compile-flag multi-version design); this helper instantiates all
/// versions that are valid for `Program` and dispatches among them, which
/// is what the benchmark harness and the examples need to sweep the Fig. 7
/// version matrix from one binary. Requesting a version the program cannot
/// support (pull without broadcast-only, bypass without always-halts)
/// throws std::invalid_argument — the runtime analogue of the engine's
/// static_asserts.
///
/// When `resume_from` names a snapshot file, the run resumes from it
/// instead of starting at superstep 0. The snapshot is validated *before*
/// any engine is constructed: its graph fingerprint must match `graph`,
/// and a heavyweight snapshot must have been captured under a version
/// with the same mailbox layout (same combiner family — the two push
/// combiners are interchangeable — and the same bypass setting) as the
/// requested one. Lightweight snapshots resume under any valid version.
/// Validation failures throw ft::SnapshotMismatch; corrupted or
/// version-incompatible files throw ft::FormatError from the reader.
template <VertexProgram Program>
RunResult run_version(
    const graph::CsrGraph& graph, Program program, VersionId version,
    EngineOptions options = {}, runtime::ThreadPool* pool = nullptr,
    std::vector<typename Program::value_type>* out_values = nullptr,
    const std::filesystem::path& resume_from = {}) {
  std::optional<ft::EngineSnapshot> snapshot;
  if (!resume_from.empty()) {
    snapshot = ft::read_snapshot(resume_from, options.checkpoint.vfs);
    const ft::SnapshotMeta& m = snapshot->meta;
    if (m.graph_fingerprint != ft::graph_fingerprint(graph)) {
      throw ft::SnapshotMismatch(
          resume_from.string() +
          ": snapshot rejected: graph fingerprint differs — it was taken "
          "on a different graph");
    }
    // Program-identity binding (v2 snapshots; v1 files decode 0 = skip):
    // rejecting here, before any engine exists, means a PageRank snapshot
    // handed to an SSSP resume never gets its bytes reinterpreted.
    if (m.program_fingerprint != 0 &&
        m.program_fingerprint != program_fingerprint<Program>()) {
      throw ft::SnapshotMismatch(
          resume_from.string() +
          ": snapshot rejected: program fingerprint differs — it belongs "
          "to a different application (or an incompatible value/message "
          "layout of the same one)");
    }
    if (m.mode == ft::CheckpointMode::kHeavyweight) {
      const bool snap_pull =
          static_cast<CombinerKind>(m.combiner) == CombinerKind::kPull;
      const VersionId snap_version{static_cast<CombinerKind>(m.combiner),
                                   m.selection_bypass};
      if (snap_pull != (version.combiner == CombinerKind::kPull) ||
          m.selection_bypass != version.selection_bypass) {
        throw ft::SnapshotMismatch(
            resume_from.string() +
            ": snapshot rejected: heavyweight snapshot captured under '" +
            std::string(version_name(snap_version)) +
            "' cannot resume under '" +
            std::string(version_name(version)) +
            "' (mailbox layouts differ); use lightweight snapshots to "
            "resume across versions");
      }
    }
  }

  const auto execute = [&](auto& engine) {
    // One engine.values() materialisation, shared by both paths; reserve
    // before inserting so a caller-reused vector never over-allocates
    // through assign's growth policy.
    RunResult result = snapshot ? engine.run_from(*snapshot) : engine.run();
    if (out_values != nullptr) {
      const auto values = engine.values();
      out_values->clear();
      out_values->reserve(values.size());
      out_values->insert(out_values->end(), values.begin(), values.end());
    }
    return result;
  };

  const auto run_with = [&]<CombinerKind K, bool B>() {
    Engine<Program, K, B> engine(graph, std::move(program), options, pool);
    return execute(engine);
  };

  switch (version.combiner) {
    case CombinerKind::kMutexPush:
      if (version.selection_bypass) {
        if constexpr (Program::always_halts) {
          return run_with
              .template operator()<CombinerKind::kMutexPush, true>();
        }
        break;
      }
      return run_with.template operator()<CombinerKind::kMutexPush, false>();
    case CombinerKind::kSpinlockPush:
      if (version.selection_bypass) {
        if constexpr (Program::always_halts) {
          return run_with
              .template operator()<CombinerKind::kSpinlockPush, true>();
        }
        break;
      }
      return run_with
          .template operator()<CombinerKind::kSpinlockPush, false>();
    case CombinerKind::kPull:
      if constexpr (Program::broadcast_only) {
        if (version.selection_bypass) {
          if constexpr (Program::always_halts) {
            return run_with.template operator()<CombinerKind::kPull, true>();
          }
          break;
        }
        return run_with.template operator()<CombinerKind::kPull, false>();
      }
      break;
  }
  throw std::invalid_argument(
      std::string("version '") + std::string(version_name(version)) +
      "' is not applicable to this program (broadcast_only=" +
      (Program::broadcast_only ? "true" : "false") +
      ", always_halts=" + (Program::always_halts ? "true" : "false") + ")");
}

/// run_version with failures surfaced as data: a compute() exception,
/// watchdog trip, memory-budget breach, injected fault, or snapshot/
/// program mismatch returns a RunOutcome whose error carries the
/// failure's kind and superstep/thread/vertex context, instead of
/// throwing. A mismatched snapshot maps to the non-retryable
/// kSnapshotMismatch: the serving layer must report it as a permanent
/// failure, not shed-and-retry it. Other configuration errors
/// (inapplicable version, corrupted snapshot file) still throw — they are
/// caller bugs, not run failures, and retrying them cannot help.
///
/// Because each call constructs a fresh engine, a failed run leaves no
/// torn state behind for the caller: the next call starts clean (or from a
/// snapshot via resume_from) — the entry point ft::supervise builds its
/// retry loop on.
template <VertexProgram Program>
RunOutcome run_version_checked(
    const graph::CsrGraph& graph, Program program, VersionId version,
    EngineOptions options = {}, runtime::ThreadPool* pool = nullptr,
    std::vector<typename Program::value_type>* out_values = nullptr,
    const std::filesystem::path& resume_from = {}) {
  RunOutcome out;
  try {
    out.result = run_version(graph, std::move(program), version, options,
                             pool, out_values, resume_from);
  } catch (const RunError& e) {
    out.error = e;
  } catch (const ft::InjectedFault& e) {
    out.error = RunError(RunErrorKind::kInjectedFault, e.superstep(), 0,
                         RunError::kNoVertex, e.what());
  } catch (const ft::SnapshotMismatch& e) {
    out.error = RunError(RunErrorKind::kSnapshotMismatch, 0, 0,
                         RunError::kNoVertex, e.what());
  }
  return out;
}

/// The subset of kAllVersions a program supports.
template <VertexProgram Program>
[[nodiscard]] std::vector<VersionId> applicable_versions() {
  std::vector<VersionId> out;
  for (const VersionId v : kAllVersions) {
    if (v.selection_bypass && !Program::always_halts) {
      continue;
    }
    if (v.combiner == CombinerKind::kPull && !Program::broadcast_only) {
      continue;
    }
    out.push_back(v);
  }
  return out;
}

}  // namespace ipregel
