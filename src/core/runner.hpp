#pragma once

#include <stdexcept>
#include <vector>

#include "core/engine.hpp"

namespace ipregel {

/// Runs `program` on `graph` under the framework version selected at
/// *runtime* by `version`, returning the run statistics and (optionally)
/// the final vertex values.
///
/// The engine itself selects its version at compile time (the paper's
/// compile-flag multi-version design); this helper instantiates all
/// versions that are valid for `Program` and dispatches among them, which
/// is what the benchmark harness and the examples need to sweep the Fig. 7
/// version matrix from one binary. Requesting a version the program cannot
/// support (pull without broadcast-only, bypass without always-halts)
/// throws std::invalid_argument — the runtime analogue of the engine's
/// static_asserts.
template <VertexProgram Program>
RunResult run_version(
    const graph::CsrGraph& graph, Program program, VersionId version,
    EngineOptions options = {}, runtime::ThreadPool* pool = nullptr,
    std::vector<typename Program::value_type>* out_values = nullptr) {
  const auto execute = [&](auto& engine) {
    RunResult result = engine.run();
    if (out_values != nullptr) {
      const auto values = engine.values();
      out_values->assign(values.begin(), values.end());
    }
    return result;
  };

  const auto run_with = [&]<CombinerKind K, bool B>() {
    Engine<Program, K, B> engine(graph, std::move(program), options, pool);
    return execute(engine);
  };

  switch (version.combiner) {
    case CombinerKind::kMutexPush:
      if (version.selection_bypass) {
        if constexpr (Program::always_halts) {
          return run_with
              .template operator()<CombinerKind::kMutexPush, true>();
        }
        break;
      }
      return run_with.template operator()<CombinerKind::kMutexPush, false>();
    case CombinerKind::kSpinlockPush:
      if (version.selection_bypass) {
        if constexpr (Program::always_halts) {
          return run_with
              .template operator()<CombinerKind::kSpinlockPush, true>();
        }
        break;
      }
      return run_with
          .template operator()<CombinerKind::kSpinlockPush, false>();
    case CombinerKind::kPull:
      if constexpr (Program::broadcast_only) {
        if (version.selection_bypass) {
          if constexpr (Program::always_halts) {
            return run_with.template operator()<CombinerKind::kPull, true>();
          }
          break;
        }
        return run_with.template operator()<CombinerKind::kPull, false>();
      }
      break;
  }
  throw std::invalid_argument(
      std::string("version '") + std::string(version_name(version)) +
      "' is not applicable to this program (broadcast_only=" +
      (Program::broadcast_only ? "true" : "false") +
      ", always_halts=" + (Program::always_halts ? "true" : "false") + ")");
}

/// The subset of kAllVersions a program supports.
template <VertexProgram Program>
[[nodiscard]] std::vector<VersionId> applicable_versions() {
  std::vector<VersionId> out;
  for (const VersionId v : kAllVersions) {
    if (v.selection_bypass && !Program::always_halts) {
      continue;
    }
    if (v.combiner == CombinerKind::kPull && !Program::broadcast_only) {
      continue;
    }
    out.push_back(v);
  }
  return out;
}

}  // namespace ipregel
