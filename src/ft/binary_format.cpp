#include "ft/binary_format.hpp"

#include <array>
#include <cstring>
#include <istream>
#include <ostream>

namespace ipregel::ft {
namespace {

template <typename T>
void write_raw(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
bool read_raw(std::istream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  return static_cast<bool>(in);
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw FormatError(path + ": " + what);
}

}  // namespace

BinaryWriter::BinaryWriter(std::ostream& out, std::uint64_t magic,
                           std::uint32_t version)
    : out_(out) {
  write_raw(out_, magic);
  write_raw(out_, version);
  std::uint8_t head[sizeof magic + sizeof version];
  std::memcpy(head, &magic, sizeof magic);
  std::memcpy(head + sizeof magic, &version, sizeof version);
  write_raw(out_, crc32(head, sizeof head));
}

void BinaryWriter::section(std::uint32_t tag, const void* data,
                           std::size_t bytes) {
  if (finished_) {
    throw std::logic_error("BinaryWriter: section() after finish()");
  }
  write_raw(out_, tag);
  write_raw(out_, static_cast<std::uint64_t>(bytes));
  if (bytes != 0) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(bytes));
  }
  write_raw(out_, crc32(data, bytes));
}

void BinaryWriter::finish() {
  section(kEndTag, nullptr, 0);
  finished_ = true;
  out_.flush();
}

BinaryReader::BinaryReader(std::istream& in, const std::string& path,
                           std::uint64_t magic, std::uint32_t min_version,
                           std::uint32_t max_version)
    : in_(in), path_(path) {
  std::uint64_t got_magic = 0;
  std::uint32_t got_version = 0;
  std::uint32_t got_crc = 0;
  if (!read_raw(in_, got_magic) || !read_raw(in_, got_version) ||
      !read_raw(in_, got_crc)) {
    fail(path_, "file too short for a header");
  }
  if (got_magic != magic) {
    fail(path_, "wrong magic number (not this file format, or corrupted)");
  }
  std::uint8_t head[sizeof got_magic + sizeof got_version];
  std::memcpy(head, &got_magic, sizeof got_magic);
  std::memcpy(head + sizeof got_magic, &got_version, sizeof got_version);
  if (crc32(head, sizeof head) != got_crc) {
    fail(path_, "header CRC mismatch (corrupted file)");
  }
  if (got_version < min_version || got_version > max_version) {
    fail(path_, "unsupported format version " + std::to_string(got_version) +
                    " (this build reads versions " +
                    std::to_string(min_version) + ".." +
                    std::to_string(max_version) + ")");
  }
  version_ = got_version;
}

bool BinaryReader::next_section(std::uint32_t& tag,
                                std::vector<std::uint8_t>& payload) {
  std::uint32_t got_tag = 0;
  std::uint64_t bytes = 0;
  if (!read_raw(in_, got_tag) || !read_raw(in_, bytes)) {
    fail(path_, "truncated file (end of data before the end-of-file marker)");
  }
  payload.resize(bytes);
  if (bytes != 0) {
    in_.read(reinterpret_cast<char*>(payload.data()),
             static_cast<std::streamsize>(bytes));
    if (!in_) {
      fail(path_, "truncated section (declared " + std::to_string(bytes) +
                      " bytes, file ends early)");
    }
  }
  std::uint32_t got_crc = 0;
  if (!read_raw(in_, got_crc)) {
    fail(path_, "truncated section checksum");
  }
  if (crc32(payload.data(), payload.size()) != got_crc) {
    fail(path_, "section CRC mismatch (corrupted file)");
  }
  tag = got_tag;
  return got_tag != kEndTag;
}

std::vector<std::uint8_t> BinaryReader::expect_section(std::uint32_t tag) {
  std::uint32_t got = 0;
  std::vector<std::uint8_t> payload;
  if (!next_section(got, payload)) {
    fail(path_, "missing section " + std::to_string(tag) +
                    " (file ends early)");
  }
  if (got != tag) {
    fail(path_, "expected section " + std::to_string(tag) + ", found " +
                    std::to_string(got));
  }
  return payload;
}

void FieldWriter::u32(std::uint32_t v) {
  const auto old = bytes_.size();
  bytes_.resize(old + sizeof v);
  std::memcpy(bytes_.data() + old, &v, sizeof v);
}

void FieldWriter::u64(std::uint64_t v) {
  const auto old = bytes_.size();
  bytes_.resize(old + sizeof v);
  std::memcpy(bytes_.data() + old, &v, sizeof v);
}

void FieldReader::need(std::size_t n) const {
  if (pos_ + n > bytes_.size()) {
    throw FormatError(context_ + ": metadata payload too short");
  }
}

std::uint8_t FieldReader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint32_t FieldReader::u32() {
  need(4);
  std::uint32_t v = 0;
  std::memcpy(&v, bytes_.data() + pos_, sizeof v);
  pos_ += sizeof v;
  return v;
}

std::uint64_t FieldReader::u64() {
  need(8);
  std::uint64_t v = 0;
  std::memcpy(&v, bytes_.data() + pos_, sizeof v);
  pos_ += sizeof v;
  return v;
}

void FieldReader::done() const {
  if (pos_ != bytes_.size()) {
    throw FormatError(context_ + ": metadata payload has trailing bytes");
  }
}

}  // namespace ipregel::ft
