#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "integrity/crc32.hpp"

namespace ipregel::ft {

/// Shared framing for every binary file this framework writes.
///
/// The fault-tolerance subsystem persists engine state to disk, and a
/// snapshot that loads *partially* is worse than no snapshot at all: a
/// recovery that silently resumes from torn state defeats the whole
/// mechanism. So every on-disk artefact — engine snapshots and the graph
/// binary cache alike — uses one framing:
///
///   header:   u64 magic | u32 format version | u32 CRC32(magic, version)
///   sections: u32 tag | u64 payload bytes | payload | u32 CRC32(payload)
///   trailer:  the reserved end-of-file section (tag kEndTag, empty)
///
/// The trailer makes truncation at a section boundary detectable (a short
/// read inside a section already fails), and the per-section CRC catches
/// bit rot and mid-write crashes. All integers are little-endian native:
/// these files are caches and restart points for a single-node in-memory
/// framework, not an interchange format.
///
/// Readers throw FormatError — never return partially-populated data.

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). The
/// implementation moved to integrity/crc32.hpp (the corruption-defense
/// subsystem is its natural home, and the paged store seals pages with it
/// without depending on ft); this alias keeps the historical spelling the
/// ft/net/shard call sites use.
using integrity::crc32;

/// Malformed, corrupted, truncated, or version-mismatched binary file.
class FormatError : public std::runtime_error {
 public:
  explicit FormatError(const std::string& what) : std::runtime_error(what) {}
};

/// Section tag reserved for the end-of-file trailer.
inline constexpr std::uint32_t kEndTag = 0xFFFFFFFFu;

/// Writes the header, then sections, then the trailer. The caller owns the
/// stream; `finish()` must be the last call before closing it.
class BinaryWriter {
 public:
  BinaryWriter(std::ostream& out, std::uint64_t magic, std::uint32_t version);

  /// Appends one CRC-protected section. `tag` must not be kEndTag.
  void section(std::uint32_t tag, const void* data, std::size_t bytes);

  /// Writes the end-of-file trailer. No section may follow.
  void finish();

 private:
  std::ostream& out_;
  bool finished_ = false;
};

/// Validates the header on construction, then yields sections in file
/// order. Throws FormatError on any structural or CRC violation.
class BinaryReader {
 public:
  /// `path` labels error messages only. Accepts format versions in
  /// [min_version, max_version]; read the accepted version from
  /// `version()`.
  BinaryReader(std::istream& in, const std::string& path, std::uint64_t magic,
               std::uint32_t min_version, std::uint32_t max_version);

  [[nodiscard]] std::uint32_t version() const noexcept { return version_; }

  /// Reads the next section. Returns false at the end-of-file trailer.
  /// Throws FormatError on truncation (EOF before the trailer) or CRC
  /// mismatch.
  bool next_section(std::uint32_t& tag, std::vector<std::uint8_t>& payload);

  /// Reads the next section and checks its tag. A missing or reordered
  /// section is a structural error.
  [[nodiscard]] std::vector<std::uint8_t> expect_section(std::uint32_t tag);

 private:
  std::istream& in_;
  std::string path_;
  std::uint32_t version_ = 0;
};

/// Little helper for fixed-layout metadata payloads: append/consume
/// integers without struct-padding surprises.
class FieldWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

class FieldReader {
 public:
  FieldReader(const std::vector<std::uint8_t>& bytes, std::string context)
      : bytes_(bytes), context_(std::move(context)) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  /// All fields must be consumed: trailing bytes mean a layout mismatch.
  void done() const;

 private:
  void need(std::size_t n) const;

  const std::vector<std::uint8_t>& bytes_;
  std::string context_;
  std::size_t pos_ = 0;
};

}  // namespace ipregel::ft
