#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace ipregel::io {
class Vfs;
}  // namespace ipregel::io

namespace ipregel::ft {

/// What a snapshot contains — the FTPregel lightweight-vs-heavyweight
/// trade-off, adapted to shared memory.
enum class CheckpointMode {
  /// Full engine state: vertex values, halted flags, the pending combined
  /// mailbox generation, the selection-bypass frontier, and aggregator
  /// state. Recovery resumes *exactly* where the run stopped, under the
  /// same combiner family, with zero recomputation.
  kHeavyweight,
  /// Vertex values + halted flags only — the cheap checkpoint FTPregel
  /// writes in ~1/30th of the heavyweight time. In-flight messages are NOT
  /// saved; recovery regenerates them from the restored values via the
  /// program's `resend(ctx)` hook, then recomputes the frontier. Works
  /// across combiner versions (a spinlock-push snapshot can resume under
  /// pull), but requires the program to be resend-capable and is not
  /// available to aggregator programs (the folded aggregate cannot be
  /// regenerated from vertex state).
  kLightweight,
};

[[nodiscard]] constexpr std::string_view to_string(CheckpointMode m) noexcept {
  return m == CheckpointMode::kHeavyweight ? "heavyweight" : "lightweight";
}

/// When the engine writes snapshots.
enum class CheckpointTrigger {
  kOff,             ///< never checkpoint (the default; zero overhead)
  kEveryK,          ///< at every k-th superstep barrier
  kAdaptive,        ///< when accumulated superstep cost since the last
                    ///< snapshot exceeds (last snapshot cost) / budget —
                    ///< Young's rule with the measured costs from the
                    ///< engine's per-superstep timers
};

/// Checkpointing configuration, carried inside EngineOptions.
struct CheckpointPolicy {
  CheckpointTrigger trigger = CheckpointTrigger::kOff;
  CheckpointMode mode = CheckpointMode::kHeavyweight;

  /// kEveryK: snapshot when superstep % every == 0 (after supersteps
  /// every, 2*every, ...).
  std::size_t every = 10;

  /// kAdaptive: target fraction of run time spent checkpointing. The
  /// engine snapshots once early to measure the cost, then spaces
  /// subsequent snapshots so overhead stays near this fraction.
  double overhead_budget = 0.05;

  /// Where snapshot files go. Empty disables checkpointing even when the
  /// trigger says otherwise (there is nowhere to write).
  std::string directory;

  /// Snapshot files are named "<basename>.<superstep>.ipsnap"; a partially
  /// written file carries a ".tmp" suffix until its atomic rename.
  std::string basename = "snapshot";

  /// Retain only the newest `keep` snapshots (0 = keep all).
  std::size_t keep = 2;

  /// Filesystem the snapshots go through. nullptr = the real filesystem;
  /// tests inject an io::FaultyVfs here to exercise power loss and disk
  /// errors deterministically. Not owned.
  io::Vfs* vfs = nullptr;

  [[nodiscard]] bool enabled() const noexcept {
    return trigger != CheckpointTrigger::kOff && !directory.empty();
  }
};

}  // namespace ipregel::ft
