#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "runtime/rng.hpp"

namespace ipregel::ft {

/// Thrown by the engine when a FaultPlan trips. The engine's in-memory
/// state is torn at that point (the superstep was abandoned mid-flight,
/// messages half-delivered) — exactly like a crash, minus the process
/// exit. Recovery means building a fresh engine and restoring a snapshot;
/// the throwing engine must not be resumed.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(std::size_t superstep, std::size_t compute_calls)
      : std::runtime_error("injected fault: crashed in superstep " +
                           std::to_string(superstep) + " after " +
                           std::to_string(compute_calls) + " compute calls"),
        superstep_(superstep),
        compute_calls_(compute_calls) {}

  [[nodiscard]] std::size_t superstep() const noexcept { return superstep_; }
  [[nodiscard]] std::size_t compute_calls() const noexcept {
    return compute_calls_;
  }

 private:
  std::size_t superstep_;
  std::size_t compute_calls_;
};

/// Deterministic in-process crash injection.
///
/// Signals and process kills make tests flaky and un-debuggable; instead
/// the engine itself counts compute calls and, at the configured point,
/// abandons the superstep mid-flight and throws InjectedFault. The crash
/// point is exact and reproducible: superstep `superstep`, after
/// `after_compute_calls` vertices have entered compute in that superstep
/// (0 = before any vertex runs; remaining workers stop at the next vertex
/// boundary, leaving the generation half-delivered — a genuinely torn
/// state).
struct FaultPlan {
  static constexpr std::size_t kNever = static_cast<std::size_t>(-1);

  /// Superstep in which to crash; kNever disables the plan.
  std::size_t superstep = kNever;
  /// Compute calls (across all threads, within that superstep) to allow
  /// before tripping.
  std::size_t after_compute_calls = 0;

  [[nodiscard]] bool armed() const noexcept { return superstep != kNever; }

  /// Derives a reproducible crash point from an rng seed: superstep in
  /// [min_superstep, max_superstep], compute-call offset in
  /// [0, max_compute_calls). Same seed, same crash — the property tests
  /// and benches sweep seeds instead of hand-picking crash sites.
  [[nodiscard]] static FaultPlan from_seed(std::uint64_t seed,
                                           std::size_t min_superstep,
                                           std::size_t max_superstep,
                                           std::size_t max_compute_calls) {
    runtime::SplitMix64 rng(seed);
    const std::size_t span = max_superstep - min_superstep + 1;
    FaultPlan plan;
    plan.superstep = min_superstep + rng.next() % span;
    plan.after_compute_calls =
        max_compute_calls == 0 ? 0 : rng.next() % max_compute_calls;
    return plan;
  }
};

}  // namespace ipregel::ft
