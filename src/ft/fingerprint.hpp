#pragma once

#include <cstdint>

#include "ft/binary_format.hpp"
#include "graph/csr.hpp"
#include "runtime/rng.hpp"

namespace ipregel::ft {

/// Content fingerprint of a CSR graph: counts, addressing layout, full
/// out-adjacency, and edge weights when present.
///
/// A snapshot is only meaningful relative to the exact graph the crashed
/// run was bound to — slot indices, frontier entries, and mailbox
/// positions all bake in the topology. Restoring onto a different graph
/// must be rejected up front, so every snapshot records this fingerprint
/// and every resume recomputes and compares it (O(E), once per resume;
/// the engine also caches it across checkpoints of one run).
///
/// In-neighbour lists are deliberately excluded: they are derived data,
/// and whether they were materialised is a property of the resuming
/// configuration (the pull combiner needs them, push does not), not of
/// the graph identity.
[[nodiscard]] inline std::uint64_t graph_fingerprint(
    const graph::CsrGraph& g) {
  std::uint64_t h = 0x6950726567656C21ULL;  // arbitrary non-zero basis
  const auto fold = [&h](std::uint64_t v) { h = runtime::mix64(h ^ v); };
  fold(g.num_vertices());
  fold(g.num_slots());
  fold(g.first_slot());
  fold(static_cast<std::uint64_t>(g.id_offset()));
  fold(g.num_edges());
  fold(g.has_weights() ? 1 : 0);
  std::uint32_t topo_crc = 0;
  std::uint32_t weight_crc = 0;
  for (std::size_t slot = g.first_slot(); slot < g.num_slots(); ++slot) {
    const auto neighbours = g.out_neighbours(slot);
    fold(neighbours.size());
    topo_crc = crc32(neighbours.data(),
                     neighbours.size_bytes(), topo_crc);
    if (g.has_weights()) {
      const auto weights = g.out_weights(slot);
      weight_crc = crc32(weights.data(), weights.size_bytes(), weight_crc);
    }
  }
  fold((static_cast<std::uint64_t>(topo_crc) << 32) | weight_crc);
  return h;
}

}  // namespace ipregel::ft
