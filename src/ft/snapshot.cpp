#include "ft/snapshot.hpp"

#include <algorithm>
#include <charconv>

#include "ft/binary_format.hpp"
#include "io/stream.hpp"
#include "io/vfs.hpp"

namespace ipregel::ft {
namespace {

// Section tags, in file order.
constexpr std::uint32_t kMetaTag = 1;
constexpr std::uint32_t kValuesTag = 2;
constexpr std::uint32_t kHaltedTag = 3;
constexpr std::uint32_t kInboxTag = 4;
constexpr std::uint32_t kInboxFlagsTag = 5;
constexpr std::uint32_t kFrontierTag = 6;
constexpr std::uint32_t kAggregateTag = 7;

std::vector<std::uint8_t> encode_meta(const SnapshotMeta& m) {
  FieldWriter w;
  w.u8(static_cast<std::uint8_t>(m.mode));
  w.u8(m.combiner);
  w.u8(m.selection_bypass ? 1 : 0);
  w.u8(m.has_aggregator ? 1 : 0);
  w.u64(m.superstep);
  w.u64(m.num_slots);
  w.u64(m.first_slot);
  w.u64(m.num_vertices);
  w.u64(m.num_edges);
  w.u64(m.graph_fingerprint);
  w.u32(m.value_size);
  w.u32(m.message_size);
  w.u32(m.aggregate_size);
  w.u64(m.program_fingerprint);  // v2: appended so v1 layouts are a prefix
  return w.bytes();
}

SnapshotMeta decode_meta(const std::vector<std::uint8_t>& bytes,
                         const std::string& path, std::uint32_t version) {
  FieldReader r(bytes, path + " (snapshot metadata)");
  SnapshotMeta m;
  m.format_version = version;
  m.mode = static_cast<CheckpointMode>(r.u8());
  m.combiner = r.u8();
  m.selection_bypass = r.u8() != 0;
  m.has_aggregator = r.u8() != 0;
  m.superstep = r.u64();
  m.num_slots = r.u64();
  m.first_slot = r.u64();
  m.num_vertices = r.u64();
  m.num_edges = r.u64();
  m.graph_fingerprint = r.u64();
  m.value_size = r.u32();
  m.message_size = r.u32();
  m.aggregate_size = r.u32();
  if (version >= 2) {
    m.program_fingerprint = r.u64();
  }
  r.done();
  if (m.mode != CheckpointMode::kHeavyweight &&
      m.mode != CheckpointMode::kLightweight) {
    throw FormatError(path + ": unknown checkpoint mode in metadata");
  }
  return m;
}

void check_sizes(const EngineSnapshot& s, const std::string& path) {
  const auto& m = s.meta;
  const auto expect = [&path](const char* what, std::size_t got,
                              std::size_t want) {
    if (got != want) {
      throw FormatError(path + ": " + what + " section holds " +
                        std::to_string(got) + " bytes, metadata implies " +
                        std::to_string(want));
    }
  };
  expect("values", s.values.size(), m.num_slots * m.value_size);
  expect("halted", s.halted.size(), m.num_slots);
  if (m.mode == CheckpointMode::kHeavyweight) {
    expect("inbox", s.inbox.size(), m.num_slots * m.message_size);
    expect("inbox flags", s.inbox_flags.size(), m.num_slots);
    if (m.has_aggregator) {
      expect("aggregate", s.aggregate.size(), m.aggregate_size);
    }
    for (const std::uint64_t slot : s.frontier) {
      if (slot >= m.num_slots) {
        throw FormatError(path + ": frontier entry " + std::to_string(slot) +
                          " out of range (num_slots = " +
                          std::to_string(m.num_slots) + ")");
      }
    }
  } else {
    // A lightweight snapshot must not smuggle heavyweight sections.
    expect("inbox", s.inbox.size(), 0);
    expect("inbox flags", s.inbox_flags.size(), 0);
    expect("aggregate", s.aggregate.size(), 0);
  }
}

}  // namespace

void write_snapshot(const std::string& path, const EngineSnapshot& snap,
                    io::Vfs* vfs) {
  // Crash-consistent publish: bytes to "<path>.tmp", flush + fsync(tmp),
  // rename into place, fsync the parent directory. The previous good
  // snapshot survives a power loss at any point before the rename is
  // durable; after it, the new one is.
  io::AtomicFile out(io::vfs_or_real(vfs), path);
  BinaryWriter w(out.stream(), kSnapshotMagic, kSnapshotFormatVersion);
  const std::vector<std::uint8_t> meta = encode_meta(snap.meta);
  w.section(kMetaTag, meta.data(), meta.size());
  w.section(kValuesTag, snap.values.data(), snap.values.size());
  w.section(kHaltedTag, snap.halted.data(), snap.halted.size());
  if (snap.meta.mode == CheckpointMode::kHeavyweight) {
    w.section(kInboxTag, snap.inbox.data(), snap.inbox.size());
    w.section(kInboxFlagsTag, snap.inbox_flags.data(),
              snap.inbox_flags.size());
    if (snap.meta.selection_bypass) {
      w.section(kFrontierTag, snap.frontier.data(),
                snap.frontier.size() * sizeof(std::uint64_t));
    }
    if (snap.meta.has_aggregator) {
      w.section(kAggregateTag, snap.aggregate.data(),
                snap.aggregate.size());
    }
  }
  w.finish();
  out.commit();  // throws the typed IoError for any buffered failure too
}

EngineSnapshot read_snapshot(const std::string& path, io::Vfs* vfs) {
  io::VfsIStream in(io::vfs_or_real(vfs), path);
  try {
    BinaryReader r(in.stream(), path, kSnapshotMagic, kSnapshotMinFormatVersion,
                   kSnapshotFormatVersion);
    EngineSnapshot snap;
    snap.meta =
        decode_meta(r.expect_section(kMetaTag), path, r.version());
    std::uint32_t tag = 0;
    std::vector<std::uint8_t> payload;
    while (r.next_section(tag, payload)) {
      switch (tag) {
        case kValuesTag:
          snap.values = std::move(payload);
          break;
        case kHaltedTag:
          snap.halted = std::move(payload);
          break;
        case kInboxTag:
          snap.inbox = std::move(payload);
          break;
        case kInboxFlagsTag:
          snap.inbox_flags = std::move(payload);
          break;
        case kFrontierTag: {
          if (payload.size() % sizeof(std::uint64_t) != 0) {
            throw FormatError(path + ": frontier section size is not a "
                                     "multiple of 8");
          }
          snap.frontier.resize(payload.size() / sizeof(std::uint64_t));
          std::copy_n(payload.data(), payload.size(),
                      reinterpret_cast<std::uint8_t*>(snap.frontier.data()));
          break;
        }
        case kAggregateTag:
          snap.aggregate = std::move(payload);
          break;
        default:
          // Unknown section within a known format version: corruption, not
          // forward compatibility.
          throw FormatError(path + ": unknown section tag " +
                            std::to_string(tag));
      }
      payload.clear();
    }
    check_sizes(snap, path);
    return snap;
  } catch (const FormatError&) {
    // A failed read surfaces to the parser as truncation; report the real
    // I/O failure (EIO, power loss, ...) rather than "corrupt file".
    in.rethrow_io_error();
    throw;
  }
}

SnapshotMeta read_snapshot_meta(const std::string& path, io::Vfs* vfs) {
  io::VfsIStream in(io::vfs_or_real(vfs), path);
  try {
    BinaryReader r(in.stream(), path, kSnapshotMagic, kSnapshotMinFormatVersion,
                   kSnapshotFormatVersion);
    return decode_meta(r.expect_section(kMetaTag), path, r.version());
  } catch (const FormatError&) {
    in.rethrow_io_error();
    throw;
  }
}

std::string snapshot_path(const std::string& dir, const std::string& basename,
                          std::uint64_t superstep) {
  return dir + "/" + basename + "." + std::to_string(superstep) +
         kSnapshotSuffix;
}

std::optional<std::uint64_t> parse_snapshot_filename(
    const std::string& filename, const std::string& basename) {
  const std::string prefix = basename + ".";
  const std::string suffix = kSnapshotSuffix;
  if (filename.size() <= prefix.size() + suffix.size() ||
      filename.compare(0, prefix.size(), prefix) != 0 ||
      filename.compare(filename.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
    return std::nullopt;
  }
  const char* first = filename.data() + prefix.size();
  const char* last = filename.data() + filename.size() - suffix.size();
  std::uint64_t n = 0;
  const auto [ptr, ec] = std::from_chars(first, last, n);
  if (ec != std::errc{} || ptr != last) {
    return std::nullopt;
  }
  return n;
}

std::vector<std::pair<std::uint64_t, std::string>> list_snapshots(
    const std::string& dir, const std::string& basename, io::Vfs* vfs) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::vector<std::string> names;
  try {
    names = io::vfs_or_real(vfs).list(dir);
  } catch (const io::PowerLoss&) {
    throw;
  } catch (const io::IoError&) {
    return found;  // a checkpoint directory that never existed is empty
  }
  for (const std::string& name : names) {
    if (const auto step = parse_snapshot_filename(name, basename)) {
      found.emplace_back(*step, dir + "/" + name);
    }
  }
  std::sort(found.begin(), found.end());
  return found;
}

std::optional<std::string> latest_snapshot(const std::string& dir,
                                           const std::string& basename,
                                           io::Vfs* vfs) {
  const auto found = list_snapshots(dir, basename, vfs);
  if (found.empty()) {
    return std::nullopt;
  }
  return found.back().second;
}

void prune_snapshots(const std::string& dir, const std::string& basename,
                     std::size_t keep, io::Vfs* vfs) {
  if (keep == 0) {
    return;
  }
  io::Vfs& fs = io::vfs_or_real(vfs);
  const auto found = list_snapshots(dir, basename, vfs);
  if (found.size() <= keep) {
    return;
  }
  for (std::size_t i = 0; i < found.size() - keep; ++i) {
    try {
      fs.unlink(found[i].second);
    } catch (const io::PowerLoss&) {
      throw;
    } catch (const io::IoError&) {
      // Best-effort GC: an undeletable stale snapshot is not an error.
    }
  }
}

}  // namespace ipregel::ft
