#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ft/checkpoint.hpp"

namespace ipregel::io {
class Vfs;
}  // namespace ipregel::io

namespace ipregel::ft {

/// Current snapshot format version. Bump on any layout change; readers
/// reject files whose version they do not understand instead of
/// misinterpreting them.
///
/// History:
///   v1 — initial layout.
///   v2 — metadata gained `program_fingerprint` (snapshot/program identity
///        binding). v1 files are still readable; their fingerprint decodes
///        as 0, which engines treat as "unknown — skip the identity check".
inline constexpr std::uint32_t kSnapshotFormatVersion = 2;

/// Oldest format version readers still accept.
inline constexpr std::uint32_t kSnapshotMinFormatVersion = 1;

/// Snapshot file magic ("IPSNAPv1" as little-endian bytes).
inline constexpr std::uint64_t kSnapshotMagic = 0x31764150414E5350ULL;

/// Filename suffix of finished snapshots.
inline constexpr const char* kSnapshotSuffix = ".ipsnap";

/// A snapshot that structurally parsed but cannot be used for the
/// requested resume: wrong graph (fingerprint), wrong engine shape
/// (combiner family, bypass, value/message sizes), or a mode the program
/// cannot recover from.
class SnapshotMismatch : public std::runtime_error {
 public:
  explicit SnapshotMismatch(const std::string& what)
      : std::runtime_error(what) {}
};

/// Everything needed to decide whether a snapshot fits an engine, written
/// as the file's first section.
struct SnapshotMeta {
  std::uint32_t format_version = kSnapshotFormatVersion;
  CheckpointMode mode = CheckpointMode::kHeavyweight;
  /// static_cast of the engine's CombinerKind (core interprets it; the ft
  /// layer only stores it).
  std::uint8_t combiner = 0;
  bool selection_bypass = false;
  bool has_aggregator = false;
  /// The superstep the resumed run executes first (state is captured at
  /// the barrier *after* superstep-1 completed).
  std::uint64_t superstep = 0;
  std::uint64_t num_slots = 0;
  std::uint64_t first_slot = 0;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  /// ft::graph_fingerprint of the graph the run was bound to. A snapshot
  /// restored onto a different graph is garbage; this is checked before
  /// any byte of state is applied.
  std::uint64_t graph_fingerprint = 0;
  /// core program_fingerprint<P>() of the application the run executed
  /// (name + value/message layout). Never 0 when written by a v2+ engine;
  /// 0 means "written before the field existed" and disables the check.
  /// Restoring a PageRank snapshot into an SSSP engine must fail with a
  /// typed mismatch, not silently reinterpret bytes.
  std::uint64_t program_fingerprint = 0;
  std::uint32_t value_size = 0;
  std::uint32_t message_size = 0;
  std::uint32_t aggregate_size = 0;
};

/// Engine state captured at a superstep barrier, as raw bytes — the
/// in-memory staging form of a snapshot. The engine fills/consumes it
/// (it knows the types); this layer persists it.
struct EngineSnapshot {
  SnapshotMeta meta;
  std::vector<std::uint8_t> values;       ///< num_slots * value_size
  std::vector<std::uint8_t> halted;       ///< num_slots
  std::vector<std::uint8_t> inbox;        ///< HW: num_slots * message_size
  std::vector<std::uint8_t> inbox_flags;  ///< HW: num_slots
  std::vector<std::uint64_t> frontier;    ///< HW + bypass: next work list
  std::vector<std::uint8_t> aggregate;    ///< HW + aggregator: folded value

  /// Staging-buffer footprint (what the MemoryTracker accounts while the
  /// snapshot is alive).
  [[nodiscard]] std::size_t payload_bytes() const noexcept {
    return values.size() + halted.size() + inbox.size() +
           inbox_flags.size() + frontier.size() * sizeof(std::uint64_t) +
           aggregate.size();
  }
};

/// Writes `snap` to `path` crash-consistently through `vfs` (nullptr =
/// the real filesystem): the bytes go to "<path>.tmp", are flushed and
/// fsync'd, the file is renamed into place, and the parent directory is
/// fsync'd — so a power loss at ANY point leaves either the previous good
/// snapshot or the new one under `path`, never a torn file. Throws
/// io::IoError on I/O failure.
void write_snapshot(const std::string& path, const EngineSnapshot& snap,
                    io::Vfs* vfs = nullptr);

/// Reads and fully validates a snapshot (magic, format version, per-
/// section CRC, internal size consistency). Throws FormatError on
/// structural damage and io::IoError when the damage is really an I/O
/// failure — never returns partially-loaded state.
[[nodiscard]] EngineSnapshot read_snapshot(const std::string& path,
                                           io::Vfs* vfs = nullptr);

/// Reads only the metadata section (cheap peek for resume dispatch).
[[nodiscard]] SnapshotMeta read_snapshot_meta(const std::string& path,
                                              io::Vfs* vfs = nullptr);

/// "<dir>/<basename>.<superstep><kSnapshotSuffix>".
[[nodiscard]] std::string snapshot_path(const std::string& dir,
                                        const std::string& basename,
                                        std::uint64_t superstep);

/// Parses "<basename>.<N><kSnapshotSuffix>"; returns the superstep N or
/// nullopt when `filename` is not a finished snapshot of `basename`.
[[nodiscard]] std::optional<std::uint64_t> parse_snapshot_filename(
    const std::string& filename, const std::string& basename);

/// All finished snapshots matching basename in dir as (superstep, path),
/// sorted ascending by superstep. A missing or unreadable directory yields
/// an empty list (a simulated power cut still propagates).
[[nodiscard]] std::vector<std::pair<std::uint64_t, std::string>>
list_snapshots(const std::string& dir, const std::string& basename,
               io::Vfs* vfs = nullptr);

/// Path of the newest (highest-superstep) finished snapshot matching
/// basename in dir, or nullopt when none exists. Purely name-based — see
/// SnapshotDirectory (ft/snapshot_dir.hpp) for the content-validating
/// variant recovery should use.
[[nodiscard]] std::optional<std::string> latest_snapshot(
    const std::string& dir, const std::string& basename,
    io::Vfs* vfs = nullptr);

/// Deletes all but the newest `keep` snapshots matching basename (no-op
/// when keep == 0). Best-effort: deletion failures are ignored (a
/// simulated power cut still propagates).
void prune_snapshots(const std::string& dir, const std::string& basename,
                     std::size_t keep, io::Vfs* vfs = nullptr);

}  // namespace ipregel::ft
