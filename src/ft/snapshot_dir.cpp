#include "ft/snapshot_dir.hpp"

#include <cstdio>
#include <utility>

#include "ft/snapshot.hpp"
#include "io/vfs.hpp"

namespace ipregel::ft {

SnapshotDirectory::SnapshotDirectory(std::string dir, std::string basename,
                                     io::Vfs* vfs, std::size_t keep)
    : dir_(std::move(dir)),
      basename_(std::move(basename)),
      vfs_(vfs),
      keep_(keep) {}

std::vector<SnapshotDirectory::Entry> SnapshotDirectory::list() const {
  std::vector<Entry> entries;
  for (const auto& found : list_snapshots(dir_, basename_, vfs_)) {
    entries.push_back(Entry{found.first, found.second});
  }
  return entries;
}

bool SnapshotDirectory::validate_or_quarantine(const Entry& entry,
                                               const Validator& validate) {
  const char* semantic_reason = nullptr;
  try {
    const EngineSnapshot snap = read_snapshot(entry.path, vfs_);
    if (validate == nullptr ||
        (semantic_reason = validate(snap)) == nullptr) {
      return true;
    }
  } catch (const io::PowerLoss&) {
    throw;  // the simulated machine died mid-recovery; no fallback
  } catch (const std::exception& e) {
    // Torn, corrupt, or unreadable: take it out of the candidate set so
    // it stops shadowing older good snapshots, but keep the bytes for
    // post-mortem.
    std::fprintf(stderr, "ipregel: quarantining snapshot %s: %s\n",
                 entry.path.c_str(), e.what());
    quarantine(entry.path);
    return false;
  }
  // Structurally sound but semantically rejected: the corruption happened
  // before the CRC was computed (e.g. a bit flip in memory that was then
  // faithfully checkpointed), and only the caller's validator can see it.
  std::fprintf(stderr, "ipregel: quarantining snapshot %s: %s\n",
               entry.path.c_str(), semantic_reason);
  quarantine(entry.path);
  return false;
}

void SnapshotDirectory::quarantine(const std::string& path) {
  try {
    io::vfs_or_real(vfs_).rename(path, path + ".quarantined");
    ++quarantined_;
  } catch (const io::PowerLoss&) {
    throw;
  } catch (const io::IoError&) {
    // Cannot even rename it — leave it in place and keep walking; the
    // next recovery will stumble over it again, which is annoying but
    // safe.
  }
}

std::optional<SnapshotDirectory::Entry> SnapshotDirectory::newest_valid(
    const Validator& validate) {
  const std::vector<Entry> entries = list();
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    if (validate_or_quarantine(*it, validate)) {
      return *it;
    }
  }
  return std::nullopt;
}

void SnapshotDirectory::prune(const Validator& validate) {
  if (keep_ == 0) {
    return;
  }
  // Retention counts *validated* snapshots, newest first. A corrupt newest
  // snapshot is quarantined here rather than counted — otherwise keep == 1
  // would delete every older good snapshot and then recovery would
  // quarantine the survivor, leaving nothing to resume from.
  const std::vector<Entry> entries = list();
  io::Vfs& fs = io::vfs_or_real(vfs_);
  std::size_t kept = 0;
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    if (kept < keep_) {
      if (validate_or_quarantine(*it, validate)) {
        ++kept;
      }
      continue;
    }
    try {
      fs.unlink(it->path);
    } catch (const io::PowerLoss&) {
      throw;
    } catch (const io::IoError&) {
      // Best-effort GC: an undeletable stale snapshot is not an error.
    }
  }
}

}  // namespace ipregel::ft
