#include "ft/snapshot_dir.hpp"

#include <cstdio>
#include <utility>

#include "ft/snapshot.hpp"
#include "io/vfs.hpp"

namespace ipregel::ft {

SnapshotDirectory::SnapshotDirectory(std::string dir, std::string basename,
                                     io::Vfs* vfs, std::size_t keep)
    : dir_(std::move(dir)),
      basename_(std::move(basename)),
      vfs_(vfs),
      keep_(keep) {}

std::vector<SnapshotDirectory::Entry> SnapshotDirectory::list() const {
  std::vector<Entry> entries;
  for (const auto& found : list_snapshots(dir_, basename_, vfs_)) {
    entries.push_back(Entry{found.first, found.second});
  }
  return entries;
}

std::optional<SnapshotDirectory::Entry> SnapshotDirectory::newest_valid() {
  const std::vector<Entry> entries = list();
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    try {
      (void)read_snapshot(it->path, vfs_);  // full validation, result unused
      return *it;
    } catch (const io::PowerLoss&) {
      throw;  // the simulated machine died mid-recovery; no fallback
    } catch (const std::exception& e) {
      // Torn, corrupt, or unreadable: take it out of the candidate set so
      // it stops shadowing older good snapshots, but keep the bytes for
      // post-mortem.
      std::fprintf(stderr,
                   "ipregel: quarantining snapshot %s: %s\n",
                   it->path.c_str(), e.what());
      try {
        io::vfs_or_real(vfs_).rename(it->path, it->path + ".quarantined");
        ++quarantined_;
      } catch (const io::PowerLoss&) {
        throw;
      } catch (const io::IoError&) {
        // Cannot even rename it — leave it in place and keep walking; the
        // next recovery will stumble over it again, which is annoying but
        // safe.
      }
    }
  }
  return std::nullopt;
}

void SnapshotDirectory::prune() {
  prune_snapshots(dir_, basename_, keep_, vfs_);
}

}  // namespace ipregel::ft
