#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace ipregel::io {
class Vfs;
}  // namespace ipregel::io

namespace ipregel::ft {

struct EngineSnapshot;

/// Recovery-side manager of a checkpoint directory.
///
/// The write side (engine + ft::write_snapshot) guarantees each snapshot
/// file is published atomically; this class is the matching read-side
/// discipline. `latest_snapshot` picks the newest snapshot *by name* —
/// fine when the disk is honest, but a recovery path must assume it is
/// not. `newest_valid()` walks candidates newest-first, fully validates
/// each (magic, format version, every section CRC, internal size
/// consistency), and returns the first that passes. A candidate that
/// fails is quarantined: renamed to "<path>.quarantined" with the reason
/// logged, so it stops shadowing older good snapshots on the next walk
/// but remains on disk for post-mortem. The net effect is a fallback
/// ladder — a torn newest snapshot degrades recovery to the previous one
/// instead of failing it.
class SnapshotDirectory {
 public:
  /// A finished snapshot file, identified by the superstep a resumed run
  /// executes first.
  struct Entry {
    std::uint64_t superstep = 0;
    std::string path;
  };

  /// `vfs` nullptr = the real filesystem; not owned. `keep` bounds
  /// retention for prune().
  explicit SnapshotDirectory(std::string dir,
                             std::string basename = "snapshot",
                             io::Vfs* vfs = nullptr, std::size_t keep = 2);

  /// All finished snapshots, ascending by superstep, validity unknown.
  /// A missing directory yields an empty list.
  [[nodiscard]] std::vector<Entry> list() const;

  /// Semantic validator a caller can layer on top of structural
  /// validation: given a fully parsed snapshot, return nullptr when it is
  /// acceptable or a static reason string when it is not (e.g. a value-
  /// range audit that catches a flipped bit the CRC was computed over —
  /// corruption that happened BEFORE the snapshot was written). Must not
  /// throw.
  using Validator =
      std::function<const char*(const EngineSnapshot&)>;

  /// The newest snapshot whose content fully validates, or nullopt when
  /// none does. Corrupt or unreadable candidates encountered on the way
  /// are quarantined (best-effort; a file that cannot even be renamed is
  /// left in place and skipped). A simulated power cut propagates.
  /// When `validate` is provided, a snapshot must pass it in addition to
  /// the structural checks — a verified recovery, not just a parseable
  /// one.
  [[nodiscard]] std::optional<Entry> newest_valid(
      const Validator& validate = nullptr);

  /// Deletes all but the newest `keep` *validated* snapshots (no-op when
  /// keep == 0). Retention counts only snapshots that fully validate —
  /// and quarantines invalid ones it examines on the way — so pruning can
  /// never delete the newest valid snapshot just because a newer, corrupt
  /// one is squatting on the retention window. (With keep == 1 and a torn
  /// newest snapshot, a name-based prune would delete every older good
  /// snapshot and leave recovery with nothing.)
  void prune(const Validator& validate = nullptr);

  /// Snapshots this instance quarantined so far.
  [[nodiscard]] std::size_t quarantined() const noexcept {
    return quarantined_;
  }

 private:
  /// Fully validates one entry (structural + optional semantic validator);
  /// quarantines and returns false when it fails. PowerLoss propagates.
  bool validate_or_quarantine(const Entry& entry, const Validator& validate);
  /// Best-effort rename to "<path>.quarantined".
  void quarantine(const std::string& path);

  std::string dir_;
  std::string basename_;
  io::Vfs* vfs_;
  std::size_t keep_;
  std::size_t quarantined_ = 0;
};

}  // namespace ipregel::ft
