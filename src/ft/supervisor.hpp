#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <filesystem>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "core/runner.hpp"
#include "ft/fault.hpp"
#include "ft/snapshot.hpp"
#include "ft/snapshot_dir.hpp"
#include "integrity/fault.hpp"

namespace ipregel::ft {

/// Semantic snapshot validation for verified recovery: replays the
/// program's per-vertex value audit (program_traits' HasValueAudit hook)
/// over a structurally-valid snapshot's value section. This catches
/// corruption that predates the checkpoint — a bit flipped in memory and
/// then faithfully CRC'd onto disk — which no amount of file-level
/// checking can see. Returns nullptr when the snapshot passes (or the
/// program declares no value audit); a static reason string otherwise.
/// Shape mismatches are NOT judged here: the engine's restore_state turns
/// those into typed SnapshotMismatch rejections.
template <VertexProgram Program>
[[nodiscard]] const char* audit_snapshot_values(
    const Program& program, const graph::CsrGraph& graph,
    const EngineSnapshot& snap) {
  using Value = typename Program::value_type;
  if constexpr (!HasValueAudit<Program> ||
                !std::is_trivially_copyable_v<Value>) {
    (void)program;
    (void)graph;
    (void)snap;
    return nullptr;
  } else {
    if (snap.meta.value_size != sizeof(Value) ||
        snap.meta.num_slots != graph.num_slots() ||
        snap.values.size() != graph.num_slots() * sizeof(Value)) {
      return nullptr;  // leave shape rejection to the engine's typed path
    }
    for (std::size_t slot = graph.first_slot(); slot < graph.num_slots();
         ++slot) {
      Value v;
      std::memcpy(&v, snap.values.data() + slot * sizeof(Value),
                  sizeof(Value));
      const char* why =
          program.audit_value(graph.id_of(slot), v, graph.num_vertices());
      if (why != nullptr) {
        return why;
      }
    }
    return nullptr;
  }
}

/// When and how often ft::supervise retries a failed run.
struct RetryPolicy {
  /// Total attempts, including the first (>= 1). Exhausting the budget
  /// returns the last failure instead of retrying forever.
  std::size_t max_attempts = 3;

  /// Exponential backoff between attempts: sleep `backoff_initial_seconds`
  /// before the first retry, multiply by `backoff_multiplier` after each,
  /// cap at `backoff_max_seconds`. Zero initial backoff disables sleeping
  /// (what deterministic tests use).
  double backoff_initial_seconds = 0.0;
  double backoff_multiplier = 2.0;
  double backoff_max_seconds = 5.0;

  /// Widen the retryable set beyond injected faults. Deterministic
  /// failures recur on retry, so both default to off; timeouts are worth
  /// retrying when the cause may be transient (a noisy co-tenant, a cold
  /// page cache), user exceptions almost never are.
  bool retry_timeouts = false;
  bool retry_user_exceptions = false;

  /// Per-attempt injected faults for deterministic supervisor tests and
  /// benches: attempt k runs under fault_schedule[k] (disarmed once the
  /// schedule is exhausted). When empty, the caller's options.fault is
  /// honoured on the FIRST attempt only — a fixed armed plan would
  /// otherwise re-trip on every retry and the supervisor could never win.
  std::vector<FaultPlan> fault_schedule;

  /// Per-attempt bit-flip plans, the SDC mirror of fault_schedule: attempt
  /// k runs under flip_schedule[k] (disarmed once exhausted). When empty,
  /// the caller's options.flip is honoured on the FIRST attempt only —
  /// same livelock argument as above, since a detected flip would re-trip
  /// the detectors on every retry.
  std::vector<integrity::FlipPlan> flip_schedule;

  [[nodiscard]] bool should_retry(const RunError& e) const noexcept {
    switch (e.kind()) {
      case RunErrorKind::kInjectedFault:
        return true;
      case RunErrorKind::kUserException:
        return retry_user_exceptions;
      case RunErrorKind::kSuperstepTimeout:
      case RunErrorKind::kRunTimeout:
        return retry_timeouts;
      case RunErrorKind::kMemoryBudget:
        return false;  // the budget does not grow back by itself
      case RunErrorKind::kCancelled:
        return false;  // the caller asked the run to stop; honour it
      case RunErrorKind::kIntegrityViolation:
        return true;  // memory corruption is transient; restore and retry
      case RunErrorKind::kSnapshotMismatch:
        return false;  // the same snapshot will mismatch again
      case RunErrorKind::kShardFailure:
        // The shard coordinator already ran its own respawn ladder
        // (shard::ShardSupervisor); a failure that reaches here exhausted
        // it, and this in-process supervisor cannot do better.
        return false;
      case RunErrorKind::kPageError:
        // The page cache already spent its bounded retries (and a CRC
        // failure its quarantine-and-refetch) before surfacing this; a
        // whole-run retry against the same damaged store would spin.
        return false;
      case RunErrorKind::kCoordinatorFenced:
        // The run is owned by a newer coordinator incarnation; retrying
        // the loser would just be fenced again.
        return false;
    }
    return false;
  }
};

/// What a supervised run did on top of its RunOutcome: how many attempts
/// it took, how many of them resumed from a snapshot instead of starting
/// at superstep 0, and how long it slept backing off.
struct SupervisedOutcome {
  /// Statistics of the final successful attempt (see RunResult's note on
  /// run_from: `supersteps` is cumulative). Zero-initialised on failure.
  RunResult result{};
  /// Set when every attempt failed; the LAST failure (earlier ones were
  /// retried away by definition).
  std::optional<RunError> error;
  std::size_t attempts = 0;
  /// Attempts that restored a checkpoint (including attempt 0 picking up a
  /// snapshot a previous process left behind — crash-restart).
  std::size_t resumed_from_snapshot = 0;
  /// Snapshots that failed content validation during recovery and were
  /// quarantined (recovery then fell back to the next older candidate).
  std::size_t snapshots_quarantined = 0;
  /// Attempts that failed with a detected integrity violation (an SDC
  /// caught by a detector tier) before recovery or final failure.
  std::size_t integrity_violations = 0;
  double backoff_seconds = 0.0;

  [[nodiscard]] bool ok() const noexcept { return !error.has_value(); }
};

/// Supervised execution: run under `version`, and on a retryable failure
/// restore the newest checkpoint and try again, up to the policy's attempt
/// budget with exponential backoff.
///
/// This is the recovery loop that PR 1's snapshot subsystem was built for:
/// options.checkpoint paces the snapshots, the supervisor consumes them.
/// Every attempt constructs a fresh engine (a failed attempt's torn state
/// dies with it) and resumes from `latest_snapshot` of the checkpoint
/// directory when one exists — so work is lost only back to the last
/// barrier snapshot, not to superstep 0, and a run that faults N times
/// finishes with values identical to an uninterrupted run (deterministic
/// programs; see tests/test_ft_supervisor.cpp for the exactness fine
/// print). Without a checkpoint directory the supervisor still retries,
/// just from scratch.
template <VertexProgram Program>
SupervisedOutcome supervise(
    const graph::CsrGraph& graph, Program program, VersionId version,
    EngineOptions options, RetryPolicy policy = {},
    runtime::ThreadPool* pool = nullptr,
    std::vector<typename Program::value_type>* out_values = nullptr) {
  SupervisedOutcome out;
  const std::size_t attempts = std::max<std::size_t>(1, policy.max_attempts);
  double backoff = policy.backoff_initial_seconds;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    EngineOptions attempt_options = options;
    if (!policy.fault_schedule.empty()) {
      attempt_options.fault = attempt < policy.fault_schedule.size()
                                  ? policy.fault_schedule[attempt]
                                  : FaultPlan{};
    } else if (attempt > 0) {
      attempt_options.fault = FaultPlan{};  // never re-trip a fixed plan
    }
    if (!policy.flip_schedule.empty()) {
      attempt_options.flip = attempt < policy.flip_schedule.size()
                                 ? policy.flip_schedule[attempt]
                                 : integrity::FlipPlan{};
    } else if (attempt > 0) {
      // Same livelock argument as faults: a fixed armed flip would be
      // re-injected (and re-detected) on every retry.
      attempt_options.flip = integrity::FlipPlan{};
    }

    std::filesystem::path resume;
    if (options.checkpoint.enabled()) {
      // Content-validating pick: a torn or corrupt newest snapshot is
      // quarantined and recovery degrades to the previous good one instead
      // of dying on a FormatError at resume time. When the integrity
      // invariant tier is on and the program declares a per-vertex value
      // audit, recovery additionally demands the snapshot's values pass it
      // — a *verified* recovery that refuses to resume from checkpointed
      // corruption.
      SnapshotDirectory snapshots(options.checkpoint.directory,
                                  options.checkpoint.basename,
                                  options.checkpoint.vfs,
                                  options.checkpoint.keep);
      SnapshotDirectory::Validator validator;
      if constexpr (HasValueAudit<Program>) {
        if (options.integrity.invariants) {
          validator = [&program, &graph](const EngineSnapshot& snap) {
            return audit_snapshot_values(program, graph, snap);
          };
        }
      }
      if (const auto newest = snapshots.newest_valid(validator)) {
        resume = newest->path;
      }
      out.snapshots_quarantined += snapshots.quarantined();
    }
    ++out.attempts;
    if (!resume.empty()) {
      ++out.resumed_from_snapshot;
    }

    RunOutcome attempt_outcome = run_version_checked(
        graph, program, version, attempt_options, pool, out_values, resume);
    if (attempt_outcome.ok()) {
      out.result = std::move(attempt_outcome.result);
      out.error.reset();
      return out;
    }
    out.error = std::move(attempt_outcome.error);
    if (out.error->kind() == RunErrorKind::kIntegrityViolation) {
      ++out.integrity_violations;
    }
    if (attempt + 1 >= attempts || !policy.should_retry(*out.error)) {
      return out;
    }
    if (backoff > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      out.backoff_seconds += backoff;
      backoff = std::min(backoff * policy.backoff_multiplier,
                         policy.backoff_max_seconds);
    }
  }
  return out;
}

}  // namespace ipregel::ft
