#include "graph/csr.hpp"

#include <stdexcept>

namespace ipregel::graph {

CsrGraph CsrGraph::build(const EdgeList& list, const CsrBuildOptions& options) {
  CsrGraph g;
  if (list.empty()) {
    g.out_offsets_.assign(1, 0);
    if (options.build_in_edges) {
      g.in_offsets_.assign(1, 0);
    }
    return g;
  }

  const auto [min_id, max_id] = list.id_range();
  if (options.addressing == AddressingMode::kDirect && min_id != 0) {
    throw std::invalid_argument(
        "direct mapping requires vertex ids starting at 0 (got min id " +
        std::to_string(min_id) + "); use offset or desolate mapping");
  }

  g.num_vertices_ = static_cast<std::size_t>(max_id) - min_id + 1;
  switch (options.addressing) {
    case AddressingMode::kDirect:
      g.id_offset_ = 0;
      g.first_slot_ = 0;
      g.num_slots_ = g.num_vertices_;
      break;
    case AddressingMode::kOffset:
      g.id_offset_ = min_id;
      g.first_slot_ = 0;
      g.num_slots_ = g.num_vertices_;
      break;
    case AddressingMode::kDesolate:
      // Keep slot == id and waste the first min_id slots.
      g.id_offset_ = 0;
      g.first_slot_ = min_id;
      g.num_slots_ = static_cast<std::size_t>(max_id) + 1;
      break;
  }
  g.num_edges_ = list.size();

  const auto& edges = list.edges();
  const bool weighted = options.keep_weights && list.weighted();

  // Counting sort of edges by source into CSR form.
  g.out_offsets_.assign(g.num_slots_ + 1, 0);
  for (const Edge& e : edges) {
    ++g.out_offsets_[g.slot_of(e.src) + 1];
  }
  for (std::size_t s = 0; s < g.num_slots_; ++s) {
    g.out_offsets_[s + 1] += g.out_offsets_[s];
  }
  g.out_targets_.resize(edges.size());
  if (weighted) {
    g.out_weights_.resize(edges.size());
  }
  {
    std::vector<eid_t> cursor(g.out_offsets_.begin(),
                              g.out_offsets_.end() - 1);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const Edge& e = edges[i];
      const eid_t at = cursor[g.slot_of(e.src)]++;
      g.out_targets_[at] = e.dst;
      if (weighted) {
        g.out_weights_[at] = list.weights()[i];
      }
    }
  }

  if (options.build_in_edges) {
    g.in_offsets_.assign(g.num_slots_ + 1, 0);
    for (const Edge& e : edges) {
      ++g.in_offsets_[g.slot_of(e.dst) + 1];
    }
    for (std::size_t s = 0; s < g.num_slots_; ++s) {
      g.in_offsets_[s + 1] += g.in_offsets_[s];
    }
    g.in_targets_.resize(edges.size());
    std::vector<eid_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    for (const Edge& e : edges) {
      g.in_targets_[cursor[g.slot_of(e.dst)]++] = e.src;
    }
  }

  g.topology_mem_.rebind(runtime::MemCategory::kGraphTopology,
                         g.topology_bytes());
  if (weighted) {
    g.weight_mem_.rebind(runtime::MemCategory::kEdgeWeights,
                         g.out_weights_.size() * sizeof(weight_t));
  }
  return g;
}

std::size_t CsrGraph::topology_bytes() const noexcept {
  return out_offsets_.size() * sizeof(eid_t) +
         out_targets_.size() * sizeof(vid_t) +
         in_offsets_.size() * sizeof(eid_t) +
         in_targets_.size() * sizeof(vid_t);
}

}  // namespace ipregel::graph
