#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"
#include "runtime/memory_tracker.hpp"

namespace ipregel::graph {

/// Immutable Compressed Sparse Row graph — the storage the whole framework
/// runs on.
///
/// In-memory shared-memory solutions "typically store all vertices in a
/// single array, so the location of a vertex is its index in that array"
/// (paper section 5). A CsrGraph owns that array layout plus the paper's
/// three id->slot addressing modes:
///
///  - kDirect:   slot == id              (ids must start at 0)
///  - kOffset:   slot == id - min_id     (one subtraction per lookup)
///  - kDesolate: slot == id              (ids may start above 0; the first
///                min_id slots are deliberately wasted so that lookups are
///                subtraction-free — "desolate memory")
///
/// Out-edges are always built. In-edges are built only on request: the pull
/// combiner needs them, every other configuration does not, and the paper's
/// section 6.2 makes the point that carrying unused neighbour arrays wastes
/// hundreds of megabytes at the 20M-vertex scale. The same applies to edge
/// weights. All topology bytes are registered with the MemoryTracker.
class CsrGraph;

/// Options controlling CSR construction.
struct CsrBuildOptions {
  AddressingMode addressing = AddressingMode::kOffset;
  bool build_in_edges = false;
  /// Keep the edge list's weights (ignored for unweighted input).
  bool keep_weights = true;
};

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds a CSR from an edge list. Throws std::invalid_argument if
  /// kDirect is requested but ids do not start at 0.
  [[nodiscard]] static CsrGraph build(const EdgeList& list,
                                      const CsrBuildOptions& options = {});

  /// Number of vertices in the graph's (dense, consecutive) id space.
  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return num_vertices_;
  }
  /// Length of the vertex arrays; > num_vertices() under desolate mapping.
  [[nodiscard]] std::size_t num_slots() const noexcept { return num_slots_; }
  /// First populated slot; > 0 only under desolate mapping.
  [[nodiscard]] std::size_t first_slot() const noexcept { return first_slot_; }
  /// Value subtracted from an id to obtain its slot (offset mapping).
  [[nodiscard]] vid_t id_offset() const noexcept { return id_offset_; }

  [[nodiscard]] eid_t num_edges() const noexcept { return num_edges_; }
  [[nodiscard]] bool has_in_edges() const noexcept {
    return !in_offsets_.empty();
  }
  [[nodiscard]] bool has_weights() const noexcept {
    return !out_weights_.empty();
  }

  [[nodiscard]] std::size_t slot_of(vid_t id) const noexcept {
    return static_cast<std::size_t>(id - id_offset_);
  }
  [[nodiscard]] vid_t id_of(std::size_t slot) const noexcept {
    return static_cast<vid_t>(slot) + id_offset_;
  }

  [[nodiscard]] std::span<const vid_t> out_neighbours(
      std::size_t slot) const noexcept {
    return {out_targets_.data() + out_offsets_[slot],
            out_targets_.data() + out_offsets_[slot + 1]};
  }
  [[nodiscard]] std::span<const weight_t> out_weights(
      std::size_t slot) const noexcept {
    return {out_weights_.data() + out_offsets_[slot],
            out_weights_.data() + out_offsets_[slot + 1]};
  }
  [[nodiscard]] std::span<const vid_t> in_neighbours(
      std::size_t slot) const noexcept {
    return {in_targets_.data() + in_offsets_[slot],
            in_targets_.data() + in_offsets_[slot + 1]};
  }

  [[nodiscard]] std::size_t out_degree(std::size_t slot) const noexcept {
    return out_offsets_[slot + 1] - out_offsets_[slot];
  }
  [[nodiscard]] std::size_t in_degree(std::size_t slot) const noexcept {
    return in_offsets_[slot + 1] - in_offsets_[slot];
  }

  /// Average out-degree |E| / |V| — "graph density" in the paper's
  /// discussion of pull-combiner and message-propagation behaviour.
  [[nodiscard]] double average_degree() const noexcept {
    return num_vertices_ == 0 ? 0.0
                              : static_cast<double>(num_edges_) /
                                    static_cast<double>(num_vertices_);
  }

  /// Bytes of topology (offsets + targets, in and out) owned by this graph.
  [[nodiscard]] std::size_t topology_bytes() const noexcept;

 private:
  std::size_t num_vertices_ = 0;
  std::size_t num_slots_ = 0;
  std::size_t first_slot_ = 0;
  vid_t id_offset_ = 0;
  eid_t num_edges_ = 0;

  std::vector<eid_t> out_offsets_;  // num_slots_ + 1
  std::vector<vid_t> out_targets_;  // num_edges_
  std::vector<weight_t> out_weights_;
  std::vector<eid_t> in_offsets_;
  std::vector<vid_t> in_targets_;

  runtime::MemReservation topology_mem_;
  runtime::MemReservation weight_mem_;
};

}  // namespace ipregel::graph
