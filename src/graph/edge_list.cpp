#include "graph/edge_list.hpp"

#include <algorithm>

namespace ipregel::graph {

void EdgeList::symmetrize() {
  const std::size_t n = edges_.size();
  edges_.reserve(2 * n);
  if (!weights_.empty()) {
    weights_.reserve(2 * n);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Edge e = edges_[i];
    edges_.push_back(Edge{e.dst, e.src});
    if (!weights_.empty()) {
      weights_.push_back(weights_[i]);
    }
  }
}

EdgeList::IdRange EdgeList::id_range() const noexcept {
  IdRange r;
  if (edges_.empty()) {
    return r;
  }
  r.min_id = std::min(edges_[0].src, edges_[0].dst);
  r.max_id = std::max(edges_[0].src, edges_[0].dst);
  for (const Edge& e : edges_) {
    r.min_id = std::min({r.min_id, e.src, e.dst});
    r.max_id = std::max({r.max_id, e.src, e.dst});
  }
  return r;
}

}  // namespace ipregel::graph
