#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.hpp"

namespace ipregel::graph {

/// An in-memory list of directed edges with optional per-edge weights —
/// the interchange format between loaders/generators and the CSR builder.
///
/// Weights are stored in a parallel array that is either empty (unweighted
/// graph) or exactly edge-count long; this keeps the common unweighted case
/// at 8 bytes per edge.
class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(std::vector<Edge> edges) : edges_(std::move(edges)) {}
  EdgeList(std::vector<Edge> edges, std::vector<weight_t> weights)
      : edges_(std::move(edges)), weights_(std::move(weights)) {}

  void reserve(std::size_t n) {
    edges_.reserve(n);
    if (!weights_.empty()) {
      weights_.reserve(n);
    }
  }

  void add(vid_t src, vid_t dst) { edges_.push_back(Edge{src, dst}); }

  void add(vid_t src, vid_t dst, weight_t w) {
    // Backfill unit weights if the list was unweighted until now.
    if (weights_.empty() && !edges_.empty()) {
      weights_.assign(edges_.size(), weight_t{1});
    }
    edges_.push_back(Edge{src, dst});
    weights_.push_back(w);
  }

  [[nodiscard]] std::size_t size() const noexcept { return edges_.size(); }
  [[nodiscard]] bool empty() const noexcept { return edges_.empty(); }
  [[nodiscard]] bool weighted() const noexcept { return !weights_.empty(); }

  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] const std::vector<weight_t>& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] std::vector<Edge>& edges() noexcept { return edges_; }
  [[nodiscard]] std::vector<weight_t>& weights() noexcept { return weights_; }

  /// Appends the reverse of every edge (same weight), making the graph
  /// symmetric. Connected-components style applications assume an
  /// undirected graph; loaders of directed data call this when asked.
  void symmetrize();

  /// Smallest and largest vertex id referenced by any edge. Returns
  /// {0, 0} for an empty list.
  struct IdRange {
    vid_t min_id = 0;
    vid_t max_id = 0;
  };
  [[nodiscard]] IdRange id_range() const noexcept;

 private:
  std::vector<Edge> edges_;
  std::vector<weight_t> weights_;
};

}  // namespace ipregel::graph
