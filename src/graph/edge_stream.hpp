#pragma once

#include <cstddef>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace ipregel::graph {

/// A restartable stream of directed edges — the interchange format for
/// consumers that must not materialise the edge list (the paged-store
/// builder makes several passes over its input and keeps only a bounded
/// buffer resident).
///
/// The contract is determinism: after restart(), the stream yields the
/// IDENTICAL edge sequence it yielded on every previous pass. Generators
/// satisfy it by snapshotting their RNG state; file loaders by seeking to
/// their start offset.
class EdgeSource {
 public:
  EdgeSource() = default;
  EdgeSource(const EdgeSource&) = delete;
  EdgeSource& operator=(const EdgeSource&) = delete;
  virtual ~EdgeSource() = default;

  /// Rewinds to the first edge.
  virtual void restart() = 0;
  /// Produces the next edge; returns false at end of stream.
  virtual bool next(Edge& e) = 0;
  /// Total edges the stream yields per pass (known up front).
  [[nodiscard]] virtual eid_t num_edges() const = 0;
};

/// Adapts an in-memory EdgeList to the stream interface (weights are
/// dropped; the streaming consumers are unweighted). The list must
/// outlive the stream. Used by tests to prove a streaming build matches
/// the in-RAM build on the same edges.
class EdgeListSource final : public EdgeSource {
 public:
  explicit EdgeListSource(const EdgeList& list) : list_(list) {}

  void restart() override { at_ = 0; }
  bool next(Edge& e) override {
    if (at_ >= list_.size()) {
      return false;
    }
    e = list_.edges()[at_++];
    return true;
  }
  [[nodiscard]] eid_t num_edges() const override { return list_.size(); }

 private:
  const EdgeList& list_;
  std::size_t at_ = 0;
};

}  // namespace ipregel::graph
