#include "graph/generators.hpp"

#include <cassert>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "runtime/rng.hpp"

namespace ipregel::graph {

using runtime::Xoshiro256;

RmatStream::RmatStream(unsigned scale, unsigned edge_factor,
                       const RmatOptions& options)
    : options_(options), scale_(scale), rng_(options.seed),
      edges_start_(options.seed) {
  if (scale >= 32) {
    throw std::invalid_argument("rmat scale must be < 32 for 32-bit ids");
  }
  const vid_t n = vid_t{1} << scale;
  m_ = static_cast<eid_t>(edge_factor) * n;

  // Optional id scrambling: a random permutation of [0, n), drawn from
  // the same generator stream ahead of the edges (historical rmat()
  // behaviour, preserved bit for bit).
  if (options_.scramble_ids) {
    perm_.resize(n);
    std::iota(perm_.begin(), perm_.end(), vid_t{0});
    for (vid_t i = n; i > 1; --i) {
      const auto j = static_cast<vid_t>(rng_.next_below(i));
      std::swap(perm_[i - 1], perm_[j]);
    }
  }
  // Snapshot the post-permutation state: restart() is a copy, not a
  // replay of the permutation draw.
  edges_start_ = rng_;
}

void RmatStream::restart() {
  rng_ = edges_start_;
  produced_ = 0;
}

bool RmatStream::next(Edge& e) {
  if (produced_ >= m_) {
    return false;
  }
  const double ab = options_.a + options_.b;
  const double abc = ab + options_.c;
  vid_t row = 0;
  vid_t col = 0;
  for (unsigned bit = 0; bit < scale_; ++bit) {
    const double r = rng_.next_double();
    row <<= 1;
    col <<= 1;
    if (r < options_.a) {
      // top-left quadrant: neither bit set
    } else if (r < ab) {
      col |= 1;  // top-right
    } else if (r < abc) {
      row |= 1;  // bottom-left
    } else {
      row |= 1;  // bottom-right
      col |= 1;
    }
  }
  if (options_.scramble_ids) {
    row = perm_[row];
    col = perm_[col];
  }
  e = Edge{row, col};
  ++produced_;
  return true;
}

EdgeList rmat(unsigned scale, unsigned edge_factor,
              const RmatOptions& options) {
  RmatStream stream(scale, edge_factor, options);
  std::vector<Edge> edges;
  edges.reserve(stream.num_edges());
  Edge e;
  while (stream.next(e)) {
    edges.push_back(e);
  }
  return EdgeList(std::move(edges));
}

EdgeList uniform_random(vid_t num_vertices, eid_t num_edges,
                        std::uint64_t seed) {
  if (num_vertices < 2 && num_edges > 0) {
    throw std::invalid_argument(
        "uniform_random needs >= 2 vertices to avoid self-loops");
  }
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  for (eid_t e = 0; e < num_edges; ++e) {
    const auto src = static_cast<vid_t>(rng.next_below(num_vertices));
    auto dst = static_cast<vid_t>(rng.next_below(num_vertices - 1));
    if (dst >= src) {
      ++dst;  // skip the diagonal: uniform over all non-loop endpoints
    }
    edges.push_back(Edge{src, dst});
  }
  return EdgeList(std::move(edges));
}

EdgeList grid_2d(vid_t rows, vid_t cols, const GridOptions& options) {
  if (rows == 0 || cols == 0) {
    return {};
  }
  Xoshiro256 rng(options.seed);
  EdgeList list;
  const auto add_link = [&](vid_t u, vid_t v) {
    if (options.removal_fraction > 0.0 &&
        rng.next_double() < options.removal_fraction) {
      return;
    }
    if (options.max_weight > 0) {
      const auto w = static_cast<weight_t>(
          1 + rng.next_below(options.max_weight));
      list.add(u, v, w);
      list.add(v, u, w);
    } else {
      list.add(u, v);
      list.add(v, u);
    }
  };
  for (vid_t r = 0; r < rows; ++r) {
    for (vid_t c = 0; c < cols; ++c) {
      const vid_t u = r * cols + c;
      if (c + 1 < cols) {
        add_link(u, u + 1);
      }
      if (r + 1 < rows) {
        add_link(u, u + cols);
      }
    }
  }
  return list;
}

EdgeList path_graph(vid_t n) {
  EdgeList list;
  for (vid_t i = 0; i + 1 < n; ++i) {
    list.add(i, i + 1);
  }
  return list;
}

EdgeList cycle_graph(vid_t n) {
  EdgeList list;
  if (n == 0) {
    return list;
  }
  for (vid_t i = 0; i < n; ++i) {
    list.add(i, (i + 1) % n);
  }
  return list;
}

EdgeList star_graph(vid_t n, bool bidirectional) {
  EdgeList list;
  for (vid_t i = 1; i < n; ++i) {
    list.add(0, i);
    if (bidirectional) {
      list.add(i, 0);
    }
  }
  return list;
}

EdgeList complete_graph(vid_t n) {
  EdgeList list;
  for (vid_t i = 0; i < n; ++i) {
    for (vid_t j = 0; j < n; ++j) {
      if (i != j) {
        list.add(i, j);
      }
    }
  }
  return list;
}

EdgeList binary_tree(unsigned levels, bool bidirectional) {
  EdgeList list;
  if (levels == 0) {
    return list;
  }
  const vid_t n = (vid_t{1} << levels) - 1;
  for (vid_t child = 1; child < n; ++child) {
    const vid_t parent = (child - 1) / 2;
    list.add(parent, child);
    if (bidirectional) {
      list.add(child, parent);
    }
  }
  return list;
}

void shift_ids(EdgeList& list, vid_t base) {
  for (Edge& e : list.edges()) {
    e.src += base;
    e.dst += base;
  }
}

}  // namespace ipregel::graph
