#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/edge_stream.hpp"
#include "runtime/rng.hpp"

namespace ipregel::graph {

/// Deterministic synthetic graph generators.
///
/// The paper evaluates on Wikipedia/dbpedia-link (scale-free, dense) and
/// the USA road network (near-constant low degree, huge diameter), and in
/// section 7.4.2 builds proportionally scaled synthetic clones of Twitter.
/// The generators here produce stand-ins with the same structural drivers;
/// all take an explicit seed and are bit-reproducible.

/// Options for the R-MAT generator.
struct RmatOptions {
  double a = 0.57;  ///< Graph500 defaults
  double b = 0.19;
  double c = 0.19;
  std::uint64_t seed = 1;
  /// Randomly permute vertex ids so the recursive structure does not leave
  /// the high-degree vertices clustered at low ids.
  bool scramble_ids = true;
};

/// R-MAT / Kronecker power-law generator (Graph500 kernel): 2^scale
/// vertices, edge_factor * 2^scale directed edges. The stand-in for the
/// paper's Wikipedia graph.
[[nodiscard]] EdgeList rmat(unsigned scale, unsigned edge_factor,
                            const RmatOptions& options = {});

/// Restartable R-MAT edge stream: yields EXACTLY the edges rmat() with
/// the same parameters returns, in the same order, generating each edge
/// on demand instead of materialising the list — the beyond-RAM input
/// path (a scale-24 edge-factor-16 graph is 2 GB as an edge list and a
/// few hundred resident bytes as this stream).
///
/// Only the O(V) id-scrambling permutation stays resident; restart() is
/// O(1) — the generator RNG state is snapshotted after the permutation is
/// drawn, so every pass replays the identical edge sequence. rmat() is
/// implemented on top of this stream, which is what keeps the two
/// bit-identical by construction.
class RmatStream final : public EdgeSource {
 public:
  /// Throws std::invalid_argument for scale >= 32 (ids are 32-bit).
  RmatStream(unsigned scale, unsigned edge_factor,
             const RmatOptions& options = {});

  void restart() override;
  bool next(Edge& e) override;
  [[nodiscard]] eid_t num_edges() const override { return m_; }

 private:
  RmatOptions options_;
  unsigned scale_;
  eid_t m_ = 0;
  eid_t produced_ = 0;
  std::vector<vid_t> perm_;
  runtime::Xoshiro256 rng_;          ///< current position in the stream
  runtime::Xoshiro256 edges_start_;  ///< state right after the permutation
};

/// Uniform random directed multigraph: exactly `num_edges` edges with
/// endpoints uniform over [0, num_vertices). Self-loops are excluded;
/// duplicate edges are allowed (they are legitimate multi-edges for the
/// memory experiments, exactly as in the paper's scaled-Twitter clones
/// whose degree distribution "has no impact on ... the memory footprint").
[[nodiscard]] EdgeList uniform_random(vid_t num_vertices, eid_t num_edges,
                                      std::uint64_t seed);

/// Options for the 2-D road-network generator.
struct GridOptions {
  /// Fraction of lattice links removed at random, mimicking the
  /// irregularity of a real road network (0 keeps the full lattice).
  double removal_fraction = 0.0;
  /// If > 0, attach a uniform weight in [1, max_weight] to every edge.
  weight_t max_weight = 0;
  std::uint64_t seed = 1;
};

/// rows x cols 4-neighbour lattice with both edge directions — the stand-in
/// for the USA road network: average degree < 4 and diameter rows + cols,
/// which drives the thousands-of-supersteps regime where selection bypass
/// dominates. Removal keeps the graph's id space dense (isolated vertices
/// may appear) but never removes both directions of a link independently —
/// links are dropped as undirected pairs so the graph stays symmetric.
[[nodiscard]] EdgeList grid_2d(vid_t rows, vid_t cols,
                               const GridOptions& options = {});

/// Directed path 0 -> 1 -> ... -> n-1. Worst-case diameter; used by tests
/// and the selection ablation.
[[nodiscard]] EdgeList path_graph(vid_t n);

/// Directed cycle 0 -> 1 -> ... -> n-1 -> 0.
[[nodiscard]] EdgeList cycle_graph(vid_t n);

/// Star: centre 0 with edges 0 -> i for i in [1, n). With `bidirectional`,
/// also i -> 0.
[[nodiscard]] EdgeList star_graph(vid_t n, bool bidirectional = false);

/// Complete directed graph on n vertices (no self-loops). Small n only.
[[nodiscard]] EdgeList complete_graph(vid_t n);

/// Complete binary tree with `levels` levels, edges parent -> child (and
/// child -> parent when `bidirectional`).
[[nodiscard]] EdgeList binary_tree(unsigned levels, bool bidirectional = true);

/// Shifts every vertex id by `base`, producing a graph whose ids start at
/// `base` — used to exercise offset and desolate addressing.
void shift_ids(EdgeList& list, vid_t base);

}  // namespace ipregel::graph
