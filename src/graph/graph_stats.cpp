#include "graph/graph_stats.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <unordered_set>

namespace ipregel::graph {

GraphStats compute_stats(const CsrGraph& g) {
  GraphStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  s.average_out_degree = g.average_degree();
  for (std::size_t slot = g.first_slot(); slot < g.num_slots(); ++slot) {
    const std::size_t d = g.out_degree(slot);
    s.max_out_degree = std::max(s.max_out_degree, d);
    if (g.has_in_edges()) {
      s.max_in_degree = std::max(s.max_in_degree, g.in_degree(slot));
    }
    const bool isolated =
        d == 0 && (!g.has_in_edges() || g.in_degree(slot) == 0);
    if (isolated) {
      ++s.isolated_vertices;
    } else if (d > 0) {
      const auto bucket = static_cast<std::size_t>(
          std::bit_width(static_cast<std::size_t>(d)) - 1);
      if (s.out_degree_histogram.size() <= bucket) {
        s.out_degree_histogram.resize(bucket + 1, 0);
      }
      ++s.out_degree_histogram[bucket];
    }
  }
  return s;
}

bool is_symmetric(const CsrGraph& g) {
  // Hash every edge, then verify every reverse edge is present.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(g.num_edges()) * 2);
  for (std::size_t slot = g.first_slot(); slot < g.num_slots(); ++slot) {
    const vid_t u = g.id_of(slot);
    for (vid_t v : g.out_neighbours(slot)) {
      seen.insert((static_cast<std::uint64_t>(u) << 32) | v);
    }
  }
  for (std::size_t slot = g.first_slot(); slot < g.num_slots(); ++slot) {
    const vid_t u = g.id_of(slot);
    for (vid_t v : g.out_neighbours(slot)) {
      if (!seen.contains((static_cast<std::uint64_t>(v) << 32) | u)) {
        return false;
      }
    }
  }
  return true;
}

std::string GraphStats::to_string(const std::string& name) const {
  std::ostringstream out;
  out << name << ": |V| = " << num_vertices << ", |E| = " << num_edges
      << ", avg out-degree = " << average_out_degree
      << ", max out-degree = " << max_out_degree;
  if (max_in_degree > 0) {
    out << ", max in-degree = " << max_in_degree;
  }
  out << ", isolated = " << isolated_vertices;
  return out.str();
}

}  // namespace ipregel::graph
