#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace ipregel::graph {

/// Structural summary of a graph — what the paper's Tables 1 and 2 report,
/// plus the quantities its analysis keeps returning to: average out-degree
/// ("graph density" in the paper's terminology drives pull-combiner cost
/// and message-propagation speed).
struct GraphStats {
  std::size_t num_vertices = 0;
  eid_t num_edges = 0;
  double average_out_degree = 0.0;
  std::size_t max_out_degree = 0;
  std::size_t max_in_degree = 0;   ///< 0 when in-edges were not built
  std::size_t isolated_vertices = 0;  ///< no out-edges (and no in-edges if built)
  /// log2-bucketed out-degree histogram: bucket i counts vertices with
  /// out-degree in [2^i, 2^(i+1)), bucket 0 counts degree 0 and 1 split as
  /// [0] = degree 0 handled via isolated_vertices; histogram[i] covers
  /// degrees [2^i, 2^(i+1)) for i >= 0 with degree 0 excluded.
  std::vector<std::size_t> out_degree_histogram;

  [[nodiscard]] std::string to_string(const std::string& name) const;
};

/// Computes stats over the populated slots of `g`.
[[nodiscard]] GraphStats compute_stats(const CsrGraph& g);

/// True when for every edge (u, v) the reverse edge (v, u) exists —
/// precondition for connected-components semantics of Hashmin. O(E) space.
[[nodiscard]] bool is_symmetric(const CsrGraph& g);

}  // namespace ipregel::graph
