#include "graph/io.hpp"

#include <charconv>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string_view>

#include "ft/binary_format.hpp"
#include "io/stream.hpp"
#include "io/vfs.hpp"

namespace ipregel::graph {
namespace {

[[noreturn]] void fail(const std::string& path, std::size_t line_no,
                       const std::string& what) {
  throw std::runtime_error(path + ":" + std::to_string(line_no) + ": " + what);
}

/// Parses the next unsigned integer in `sv` starting at `pos`; advances
/// `pos` past it. Returns false when only whitespace remains. Overflow is
/// rejected explicitly: a vertex id or weight wider than T must fail the
/// load, not wrap into a valid-looking small value.
template <typename T>
bool next_uint(std::string_view sv, std::size_t& pos, T& out) {
  while (pos < sv.size() && (sv[pos] == ' ' || sv[pos] == '\t' ||
                             sv[pos] == '\r')) {
    ++pos;
  }
  if (pos >= sv.size()) {
    return false;
  }
  const auto [ptr, ec] =
      std::from_chars(sv.data() + pos, sv.data() + sv.size(), out);
  if (ec == std::errc::result_out_of_range) {
    throw std::out_of_range("value exceeds the " +
                            std::to_string(sizeof(T) * 8) +
                            "-bit range of this field");
  }
  if (ec != std::errc{}) {
    throw std::invalid_argument("not an unsigned integer");
  }
  pos = static_cast<std::size_t>(ptr - sv.data());
  return true;
}

std::ifstream open_or_throw(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open graph file: " + path);
  }
  return in;
}

}  // namespace

EdgeList load_edge_list_text(const std::string& path,
                             const TextLoadOptions& options) {
  std::ifstream in = open_or_throw(path);
  EdgeList list;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() ||
        options.comment_prefixes.find(line[0]) != std::string::npos) {
      continue;
    }
    std::size_t pos = 0;
    vid_t src = 0;
    vid_t dst = 0;
    try {
      if (!next_uint(line, pos, src)) {
        continue;  // whitespace-only line
      }
      if (!next_uint(line, pos, dst)) {
        fail(path, line_no, "edge line with a single endpoint");
      }
      weight_t w = 0;
      if (options.read_weights && next_uint(line, pos, w)) {
        list.add(src, dst, w);
      } else {
        list.add(src, dst);
      }
    } catch (const std::out_of_range& e) {
      fail(path, line_no,
           std::string(e.what()) + ": '" + line + "'");
    } catch (const std::invalid_argument&) {
      fail(path, line_no, "malformed edge line: '" + line + "'");
    }
  }
  return list;
}

EdgeList load_dimacs_gr(const std::string& path) {
  std::ifstream in = open_or_throw(path);
  EdgeList list;
  std::string line;
  std::size_t line_no = 0;
  eid_t declared_edges = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == 'c') {
      continue;
    }
    if (line[0] == 'p') {
      // "p sp <num_vertices> <num_edges>"
      std::size_t pos = 1;
      while (pos < line.size() && line[pos] != ' ') {
        ++pos;  // skip problem designator token boundary
      }
      // skip the "sp" token
      while (pos < line.size() && line[pos] == ' ') {
        ++pos;
      }
      while (pos < line.size() && line[pos] != ' ') {
        ++pos;
      }
      std::uint64_t n = 0;
      std::uint64_t m = 0;
      try {
        if (!next_uint(line, pos, n) || !next_uint(line, pos, m)) {
          fail(path, line_no, "malformed DIMACS problem line");
        }
      } catch (const std::out_of_range& e) {
        fail(path, line_no,
             std::string("DIMACS problem line: ") + e.what());
      } catch (const std::invalid_argument&) {
        fail(path, line_no, "malformed DIMACS problem line");
      }
      if (n > std::numeric_limits<vid_t>::max()) {
        fail(path, line_no,
             "header declares " + std::to_string(n) +
                 " vertices, which exceeds the 32-bit vertex-id space");
      }
      declared_edges = m;
      list.reserve(m);
      saw_header = true;
      continue;
    }
    if (line[0] == 'a') {
      std::size_t pos = 1;
      vid_t src = 0;
      vid_t dst = 0;
      weight_t w = 0;
      try {
        if (!next_uint(line, pos, src) || !next_uint(line, pos, dst) ||
            !next_uint(line, pos, w)) {
          fail(path, line_no, "malformed DIMACS arc line");
        }
      } catch (const std::out_of_range& e) {
        fail(path, line_no,
             std::string("DIMACS arc line: ") + e.what() + ": '" + line +
                 "'");
      } catch (const std::invalid_argument&) {
        fail(path, line_no, "malformed DIMACS arc line");
      }
      list.add(src, dst, w);
      continue;
    }
    fail(path, line_no, "unknown DIMACS record type");
  }
  if (!saw_header) {
    throw std::runtime_error(path + ": missing DIMACS problem line");
  }
  if (declared_edges != list.size()) {
    throw std::runtime_error(
        path + ": header declares " + std::to_string(declared_edges) +
        " arcs but file contains " + std::to_string(list.size()));
  }
  return list;
}

void save_edge_list_text(const EdgeList& list, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write graph file: " + path);
  }
  const bool weighted = list.weighted();
  for (std::size_t i = 0; i < list.size(); ++i) {
    const Edge& e = list.edges()[i];
    out << e.src << ' ' << e.dst;
    if (weighted) {
      out << ' ' << list.weights()[i];
    }
    out << '\n';
  }
}

namespace {

// "IPREGEL2": version 2 of the cache switched to the shared CRC-protected
// section framing of ft/binary_format.hpp. Version-1 files ("IPREGEL1",
// raw arrays, no checksums) are detected and rejected with a regeneration
// hint rather than a generic bad-magic error.
constexpr std::uint64_t kEdgeListMagic = 0x4950524547454C32ULL;
constexpr std::uint64_t kLegacyEdgeListMagic = 0x4950524547454C31ULL;
constexpr std::uint32_t kEdgeListFormatVersion = 1;

constexpr std::uint32_t kEdgeMetaTag = 1;   // u64 count | u8 weighted
constexpr std::uint32_t kEdgesTag = 2;      // count * Edge
constexpr std::uint32_t kWeightsTag = 3;    // count * weight_t (if weighted)

}  // namespace

void save_edge_list_binary(const EdgeList& list, const std::string& path,
                           io::Vfs* vfs) {
  // Atomic publish: a crash mid-save leaves the previous cache (or
  // nothing), never a torn file under the final name.
  io::AtomicFile out(io::vfs_or_real(vfs), path);
  ft::BinaryWriter writer(out.stream(), kEdgeListMagic,
                          kEdgeListFormatVersion);
  ft::FieldWriter meta;
  meta.u64(list.size());
  meta.u8(list.weighted() ? 1 : 0);
  writer.section(kEdgeMetaTag, meta.bytes().data(), meta.bytes().size());
  writer.section(kEdgesTag, list.edges().data(),
                 list.size() * sizeof(Edge));
  if (list.weighted()) {
    writer.section(kWeightsTag, list.weights().data(),
                   list.size() * sizeof(weight_t));
  }
  writer.finish();
  out.commit();
}

namespace {

EdgeList load_edge_list_binary_from(std::istream& in,
                                    const std::string& path) {
  // Peek at the magic first so a stale version-1 cache gets an actionable
  // message instead of "wrong magic number".
  {
    std::uint64_t magic = 0;
    in.read(reinterpret_cast<char*>(&magic), sizeof magic);
    if (in && magic == kLegacyEdgeListMagic) {
      throw ft::FormatError(
          path +
          ": legacy (unchecksummed) binary edge-list cache; delete it and "
          "regenerate with save_edge_list_binary");
    }
    in.clear();
    in.seekg(0);
  }
  ft::BinaryReader reader(in, path, kEdgeListMagic, kEdgeListFormatVersion,
                          kEdgeListFormatVersion);

  const std::vector<std::uint8_t> meta_bytes =
      reader.expect_section(kEdgeMetaTag);
  ft::FieldReader meta(meta_bytes, path + ": edge-list metadata");
  const std::uint64_t count = meta.u64();
  const bool weighted = meta.u8() != 0;
  meta.done();

  const std::vector<std::uint8_t> edge_bytes =
      reader.expect_section(kEdgesTag);
  if (edge_bytes.size() != count * sizeof(Edge)) {
    throw ft::FormatError(path + ": edge section size mismatch (header "
                          "declares " + std::to_string(count) + " edges)");
  }
  std::vector<Edge> edges(count);
  if (count != 0) {
    std::memcpy(edges.data(), edge_bytes.data(), edge_bytes.size());
  }

  std::vector<weight_t> weights;
  if (weighted) {
    const std::vector<std::uint8_t> weight_bytes =
        reader.expect_section(kWeightsTag);
    if (weight_bytes.size() != count * sizeof(weight_t)) {
      throw ft::FormatError(path + ": weight section size mismatch");
    }
    weights.resize(count);
    if (count != 0) {
      std::memcpy(weights.data(), weight_bytes.data(), weight_bytes.size());
    }
  }

  std::uint32_t tag = 0;
  std::vector<std::uint8_t> extra;
  if (reader.next_section(tag, extra)) {
    throw ft::FormatError(path + ": unexpected trailing section (tag " +
                          std::to_string(tag) + ")");
  }
  return weighted ? EdgeList(std::move(edges), std::move(weights))
                  : EdgeList(std::move(edges));
}

}  // namespace

EdgeList load_edge_list_binary(const std::string& path, io::Vfs* vfs) {
  io::VfsIStream in(io::vfs_or_real(vfs), path);
  try {
    return load_edge_list_binary_from(in.stream(), path);
  } catch (const ft::FormatError&) {
    // A failed read surfaces to the parser as truncation; report the real
    // I/O failure (EIO, power loss, ...) rather than "corrupt file".
    in.rethrow_io_error();
    throw;
  }
}

}  // namespace ipregel::graph
