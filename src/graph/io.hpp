#pragma once

#include <string>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"

namespace ipregel::graph {

/// Graph file I/O.
///
/// The paper's graphs come from KONECT (whitespace edge lists with '%'
/// comment lines) and DIMACS challenge 9 ('.gr' files with 'c'/'p'/'a'
/// records). Both loaders below are strict about structure but tolerant of
/// comments and blank lines, and throw std::runtime_error with the offending
/// line number on malformed input. A binary cache format round-trips an
/// EdgeList so the benchmark harness does not re-parse text on every run.

struct TextLoadOptions {
  /// Lines starting with any of these characters are skipped.
  std::string comment_prefixes = "#%c";
  /// Read a third column as the edge weight when present.
  bool read_weights = true;
};

/// Loads a whitespace-separated "src dst [weight]" edge list (KONECT, SNAP,
/// and most published edge-list formats).
[[nodiscard]] EdgeList load_edge_list_text(const std::string& path,
                                           const TextLoadOptions& options = {});

/// Loads a DIMACS shortest-path '.gr' file ("p sp <n> <m>" header, "a <src>
/// <dst> <weight>" arcs) — the format of the paper's USA road network.
[[nodiscard]] EdgeList load_dimacs_gr(const std::string& path);

/// Writes an edge list as "src dst [weight]" text.
void save_edge_list_text(const EdgeList& list, const std::string& path);

/// Binary cache, framed with ft/binary_format.hpp: magic + format version
/// + CRC-protected sections (metadata, edges, weights). The loader throws
/// ft::FormatError (a std::runtime_error) on corruption, truncation, or a
/// stale legacy-format cache — it never returns partially-read data.
void save_edge_list_binary(const EdgeList& list, const std::string& path);
[[nodiscard]] EdgeList load_edge_list_binary(const std::string& path);

}  // namespace ipregel::graph
