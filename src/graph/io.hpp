#pragma once

#include <string>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"

namespace ipregel::io {
class Vfs;
}  // namespace ipregel::io

namespace ipregel::graph {

/// Graph file I/O.
///
/// The paper's graphs come from KONECT (whitespace edge lists with '%'
/// comment lines) and DIMACS challenge 9 ('.gr' files with 'c'/'p'/'a'
/// records). Both loaders below are strict about structure but tolerant of
/// comments and blank lines, and throw std::runtime_error with the offending
/// line number on malformed input. A binary cache format round-trips an
/// EdgeList so the benchmark harness does not re-parse text on every run.

struct TextLoadOptions {
  /// Lines starting with any of these characters are skipped.
  std::string comment_prefixes = "#%c";
  /// Read a third column as the edge weight when present.
  bool read_weights = true;
};

/// Loads a whitespace-separated "src dst [weight]" edge list (KONECT, SNAP,
/// and most published edge-list formats).
[[nodiscard]] EdgeList load_edge_list_text(const std::string& path,
                                           const TextLoadOptions& options = {});

/// Loads a DIMACS shortest-path '.gr' file ("p sp <n> <m>" header, "a <src>
/// <dst> <weight>" arcs) — the format of the paper's USA road network.
[[nodiscard]] EdgeList load_dimacs_gr(const std::string& path);

/// Writes an edge list as "src dst [weight]" text.
void save_edge_list_text(const EdgeList& list, const std::string& path);

/// Binary cache, framed with ft/binary_format.hpp: magic + format version
/// + CRC-protected sections (metadata, edges, weights). The loader throws
/// ft::FormatError (a std::runtime_error) on corruption, truncation, or a
/// stale legacy-format cache — it never returns partially-read data.
///
/// The writer publishes crash-consistently through `vfs` (nullptr = the
/// real filesystem): bytes go to "<path>.tmp", are fsync'd, renamed into
/// place, and the parent directory is fsync'd — a power loss mid-save
/// leaves the previous cache (or nothing) under `path`, never a torn
/// file the next run would have to quarantine. I/O failures throw
/// io::IoError.
void save_edge_list_binary(const EdgeList& list, const std::string& path,
                           io::Vfs* vfs = nullptr);
[[nodiscard]] EdgeList load_edge_list_binary(const std::string& path,
                                             io::Vfs* vfs = nullptr);

}  // namespace ipregel::graph
