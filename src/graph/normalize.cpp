#include "graph/normalize.hpp"

namespace ipregel::graph {

IdMapping normalize_ids(EdgeList& list) {
  IdMapping mapping;
  mapping.to_dense.reserve(list.size());
  const auto dense_of = [&mapping](vid_t original) {
    const auto [it, inserted] = mapping.to_dense.try_emplace(
        original, static_cast<vid_t>(mapping.to_original.size()));
    if (inserted) {
      mapping.to_original.push_back(original);
    }
    return it->second;
  };
  for (Edge& e : list.edges()) {
    e.src = dense_of(e.src);
    e.dst = dense_of(e.dst);
  }
  return mapping;
}

}  // namespace ipregel::graph
