#pragma once

#include <unordered_map>
#include <vector>

#include "graph/edge_list.hpp"

namespace ipregel::graph {

/// Remapping produced by normalize_ids: dense 0-based ids plus both
/// direction tables so applications can translate results back to the
/// original id space.
struct IdMapping {
  /// original id of each new id (new ids are 0..size-1, assigned in first-
  /// appearance order over the edge list).
  std::vector<vid_t> to_original;
  /// original -> new.
  std::unordered_map<vid_t, vid_t> to_dense;

  [[nodiscard]] std::size_t size() const noexcept {
    return to_original.size();
  }
};

/// Rewrites `list` in place so vertex ids are consecutive starting at 0,
/// and returns the mapping.
///
/// The paper's framework "requires vertex identifiers to be consecutive"
/// (section 3.3) — a property most published graphs have but arbitrary
/// data does not. This utility closes that gap: any edge list becomes
/// eligible for direct mapping, at the cost of one hash lookup per
/// endpoint during the (one-off, preprocessing-time) rewrite. Note that
/// graphs that are merely *shifted* (ids start above 0) do not need this;
/// offset or desolate addressing handles them with no preprocessing.
IdMapping normalize_ids(EdgeList& list);

}  // namespace ipregel::graph
