#pragma once

#include <cstdint>

namespace ipregel::graph {

/// Vertex identifier. The paper (section 3.3) requires vertex identifiers to
/// be integral and consecutive, and its memory accounting (section 7.4.2)
/// assumes 4-byte identifiers; we use the same width.
using vid_t = std::uint32_t;

/// Edge index / edge count type. Graphs with billions of edges (Table 2)
/// overflow 32 bits, so edge offsets are 64-bit.
using eid_t = std::uint64_t;

/// Edge weight. The paper's SSSP assumes unit weights (footnote 1), but the
/// DIMACS road graphs it loads carry integral weights, which we support.
using weight_t = std::uint32_t;

/// A directed, unweighted edge.
struct Edge {
  vid_t src = 0;
  vid_t dst = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
};

/// A directed, weighted edge.
struct WeightedEdge {
  vid_t src = 0;
  vid_t dst = 0;
  weight_t weight = 1;
  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

/// How external vertex identifiers map to slots in the framework's flat
/// vertex arrays (paper section 5, "Efficient Vertex Addressing").
enum class AddressingMode {
  /// Identifier == array index. Requires ids to start at 0.
  kDirect,
  /// slot = id - min_id: one subtraction per lookup, no wasted slots.
  kOffset,
  /// Force direct mapping for graphs whose ids start above 0 by leaving the
  /// first min_id slots unused ("a reasonable memory sacrifice to benefit
  /// from direct mapping" when ids start at 1).
  kDesolate,
};

}  // namespace ipregel::graph
