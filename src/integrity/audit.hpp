#pragma once

#include <cstddef>
#include <vector>

#include "core/program_traits.hpp"
#include "integrity/checksum.hpp"

namespace ipregel::integrity {

/// Engine-side storage for the invariant-audit tier: the previous
/// barrier's per-partition accumulators (the baseline cross-superstep
/// checks compare against) and scratch for the current barrier's. Sized to
/// the fixed kSectionSlots partitioning so localisation matches the
/// checksum tier's.
template <typename A>
struct AuditAccumulators {
  std::vector<A> prev;
  std::vector<A> cur;
  bool has_prev = false;

  void reset() noexcept {
    has_prev = false;
    prev.clear();
    cur.clear();
  }
};

/// Empty stand-in for programs without a reduction audit — no storage, and
/// every use is behind `if constexpr (HasInvariantAudit<...>)`.
struct NoAuditAccumulators {
  void reset() noexcept {}
};

namespace detail {
template <typename Program, bool = HasInvariantAudit<Program>>
struct AuditStateSelector {
  using type = AuditAccumulators<typename Program::audit_type>;
};
template <typename Program>
struct AuditStateSelector<Program, false> {
  using type = NoAuditAccumulators;
};
}  // namespace detail

/// The audit storage an engine embeds for `Program`: real accumulators
/// when the program declares a reduction audit, an empty struct otherwise.
template <typename Program>
using AuditState = typename detail::AuditStateSelector<Program>::type;

}  // namespace ipregel::integrity
