#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "runtime/rng.hpp"

namespace ipregel::integrity {

/// Slots per checksum section. Fixed (not derived from the thread count)
/// so the localisation a mismatch reports is stable across runs and the
/// per-partition work divides evenly under any team size. 4096 slots keeps
/// the section table negligible (16 bytes per 4096 vertices) while still
/// pinning a flip to a few pages of state.
inline constexpr std::size_t kSectionSlots = 4096;

/// Number of sections covering `n` slots (at least 1 when n > 0).
[[nodiscard]] constexpr std::size_t section_count(std::size_t n) noexcept {
  return n == 0 ? 0 : (n + kSectionSlots - 1) / kSectionSlots;
}

/// Chained mix64 over a byte range. Not cryptographic — the adversary is a
/// cosmic ray, not an attacker — but any single-bit change anywhere in the
/// range changes the digest with overwhelming probability, which is the
/// whole contract.
[[nodiscard]] inline std::uint64_t hash_bytes(
    const void* data, std::size_t n,
    std::uint64_t h = 0x9e3779b97f4a7c15ULL) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  // A single mix64 chain is latency-bound (~3 dependent multiplies per 8
  // bytes). Large ranges instead run four multiply-accumulate lanes —
  // lane = (lane + word) * M with odd M — one multiply per word and four
  // independent dependency chains, then fold through mix64. Single-bit
  // sensitivity holds: the add injects the flip, and multiplication by an
  // odd constant is a bijection, so a changed lane value can never
  // collapse back; position sensitivity holds because each word belongs
  // to exactly one lane at one chain depth.
  if (n >= 64) {
    constexpr std::uint64_t kMul = 0x9e3779b97f4a7c15ULL;  // odd
    std::uint64_t l0 = h ^ 0x243f6a8885a308d3ULL;
    std::uint64_t l1 = h ^ 0x13198a2e03707344ULL;
    std::uint64_t l2 = h ^ 0xa4093822299f31d0ULL;
    std::uint64_t l3 = h ^ 0x082efa98ec4e6c89ULL;
    while (n >= 32) {
      std::uint64_t w0 = 0;
      std::uint64_t w1 = 0;
      std::uint64_t w2 = 0;
      std::uint64_t w3 = 0;
      std::memcpy(&w0, p, 8);
      std::memcpy(&w1, p + 8, 8);
      std::memcpy(&w2, p + 16, 8);
      std::memcpy(&w3, p + 24, 8);
      l0 = (l0 + w0) * kMul;
      l1 = (l1 + w1) * kMul;
      l2 = (l2 + w2) * kMul;
      l3 = (l3 + w3) * kMul;
      p += 32;
      n -= 32;
    }
    h = runtime::mix64(h ^ l0);
    h = runtime::mix64(h ^ l1);
    h = runtime::mix64(h ^ l2);
    h = runtime::mix64(h ^ l3);
  }
  while (n >= 8) {
    std::uint64_t w = 0;
    std::memcpy(&w, p, 8);
    h = runtime::mix64(h ^ w);
    p += 8;
    n -= 8;
  }
  if (n != 0) {
    std::uint64_t w = 0;
    std::memcpy(&w, p, n);
    h = runtime::mix64(h ^ w ^ (std::uint64_t{n} << 56));
  }
  return h;
}

/// Which checksummed state family a mismatch was localised to.
enum class Section : std::uint8_t { kValues, kHalted, kMessages, kFrontier };

[[nodiscard]] constexpr std::string_view to_string(Section s) noexcept {
  switch (s) {
    case Section::kValues:
      return "values";
    case Section::kHalted:
      return "halted";
    case Section::kMessages:
      return "messages";
    case Section::kFrontier:
      return "frontier";
  }
  return "invalid";
}

/// The per-section digests stored at a barrier and verified at the top of
/// the next superstep. `superstep` records which superstep the digests
/// guard (the one about to consume this state), so a mismatch names the
/// exact at-rest window the corruption happened in.
struct SectionChecksums {
  std::vector<std::uint64_t> values;
  std::vector<std::uint64_t> halted;
  std::vector<std::uint64_t> messages;
  std::vector<std::uint64_t> frontier;
  std::size_t frontier_size = 0;
  std::size_t superstep = 0;
  bool armed = false;

  void disarm() noexcept {
    armed = false;
    values.clear();
    halted.clear();
    messages.clear();
    frontier.clear();
    frontier_size = 0;
  }
};

}  // namespace ipregel::integrity
