#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace ipregel::integrity {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
///
/// This is the framework's one CRC: the ft binary framing, the shard/net
/// wire headers, and the paged store's page seals all chain through it, so
/// a corruption test proven against one layer transfers to the others.
/// It lives in the integrity subsystem (home of the corruption-defense
/// machinery) and is re-exported as ft::crc32 for the original call
/// sites.
///
/// `seed` chains incremental computations: crc32(b, crc32(a)) ==
/// crc32(ab).

namespace detail {

inline constexpr std::array<std::uint32_t, 256> kCrcTable = [] {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}();

}  // namespace detail

[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t bytes,
                                         std::uint32_t seed = 0) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < bytes; ++i) {
    c = detail::kCrcTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace ipregel::integrity
