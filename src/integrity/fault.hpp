#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "runtime/rng.hpp"

namespace ipregel::integrity {

/// Which engine array a planned bit flip lands in.
enum class FlipTarget : std::uint8_t {
  kValues,        ///< a vertex value word
  kHalted,        ///< a halted flag byte
  kMessages,      ///< a mailbox (push inbox / pull outbox) message word
  kMessageFlags,  ///< a mailbox has-message flag byte
  kFrontier,      ///< a bypass work-list entry (bypass versions only)
};

[[nodiscard]] constexpr std::string_view to_string(FlipTarget t) noexcept {
  switch (t) {
    case FlipTarget::kValues:
      return "values";
    case FlipTarget::kHalted:
      return "halted";
    case FlipTarget::kMessages:
      return "messages";
    case FlipTarget::kMessageFlags:
      return "message-flags";
    case FlipTarget::kFrontier:
      return "frontier";
  }
  return "invalid";
}

/// When within the target superstep the flip is applied. Both are barrier
/// points — the only moments engine state is quiescent, so the injector
/// never races the compute phase it is trying to corrupt.
enum class FlipPhase : std::uint8_t {
  /// At the top of the superstep, before the checksum verify pass: models
  /// corruption of *at-rest* state in the window since the previous
  /// barrier. This is the window the checksum tier covers.
  kAtRest,
  /// In the barrier epilogue, after compute finished but before the
  /// detectors run: models corruption *during* the superstep (a flipped
  /// store). Invariant audits and shadow recompute cover this window.
  kPostCompute,
};

[[nodiscard]] constexpr std::string_view to_string(FlipPhase p) noexcept {
  switch (p) {
    case FlipPhase::kAtRest:
      return "at-rest";
    case FlipPhase::kPostCompute:
      return "post-compute";
  }
  return "invalid";
}

/// How the targeted bit is altered. XOR is the classic SDC model; SET and
/// CLEAR give tests a deterministic direction (e.g. force a double's
/// exponent bit high so the corruption is guaranteed either detectable or
/// a provable no-op, never a sub-tolerance nudge).
enum class FlipOp : std::uint8_t { kXor, kSet, kClear };

/// Deterministic single-bit corruption of engine state — the SDC
/// counterpart of ft::FaultPlan's crash injection, and the fault side of
/// the integrity subsystem (the "BitFlipInjector"). The engine applies the
/// flip itself at the configured barrier of the configured superstep:
/// exact, reproducible, and race-free, where poking another thread's
/// memory mid-superstep would be neither.
///
/// `index` addresses a slot (or, for kFrontier, a work-list position) and
/// is reduced modulo the live array size at apply time, so seeded plans
/// need no knowledge of the graph. `bit` is reduced modulo the addressed
/// object's width the same way. A plan whose superstep never executes
/// (run terminated earlier) simply never fires — a masked flip by
/// definition of "nothing left to corrupt".
struct FlipPlan {
  static constexpr std::size_t kNever = static_cast<std::size_t>(-1);

  /// Superstep in which to corrupt; kNever disables the plan.
  std::size_t superstep = kNever;
  FlipTarget target = FlipTarget::kValues;
  FlipPhase phase = FlipPhase::kAtRest;
  FlipOp op = FlipOp::kXor;
  /// Slot offset (relative to the graph's first slot) or frontier
  /// position; wrapped modulo the array size at apply time.
  std::size_t index = 0;
  /// Bit within the addressed object; wrapped modulo its width in bits.
  std::uint32_t bit = 0;

  [[nodiscard]] bool armed() const noexcept { return superstep != kNever; }

  /// Derives a reproducible at-rest XOR flip from an rng seed: superstep
  /// in [min_superstep, max_superstep], a random target (kFrontier only
  /// when `allow_frontier` — non-bypass versions have no frontier), and a
  /// random index/bit. Same seed, same flip — the matrix tests sweep seeds
  /// instead of hand-picking corruption sites, and any failure reproduces
  /// from the seed in the log.
  [[nodiscard]] static FlipPlan from_seed(std::uint64_t seed,
                                          std::size_t min_superstep,
                                          std::size_t max_superstep,
                                          bool allow_frontier = false) {
    runtime::SplitMix64 rng(seed);
    const std::size_t span = max_superstep - min_superstep + 1;
    FlipPlan plan;
    plan.superstep = min_superstep + rng.next() % span;
    const std::size_t num_targets = allow_frontier ? 5 : 4;
    plan.target = static_cast<FlipTarget>(rng.next() % num_targets);
    plan.phase = FlipPhase::kAtRest;
    plan.op = FlipOp::kXor;
    plan.index = rng.next();
    plan.bit = static_cast<std::uint32_t>(rng.next());
    return plan;
  }
};

/// The deterministic vertex sample the shadow-recompute tier audits in a
/// given superstep: `count` slot indices in [first_slot, first_slot +
/// num_slots), drawn without replacement from a stream keyed on (seed,
/// superstep). Exposed so tests can aim a FlipPlan at a slot that is
/// guaranteed to be sampled.
[[nodiscard]] inline std::vector<std::size_t> shadow_sample(
    std::uint64_t seed, std::size_t superstep, std::size_t first_slot,
    std::size_t num_slots, std::size_t count) {
  std::vector<std::size_t> slots;
  if (num_slots == 0 || count == 0) {
    return slots;
  }
  count = count < num_slots ? count : num_slots;
  slots.reserve(count);
  runtime::SplitMix64 rng(runtime::mix64(seed) ^
                          runtime::mix64(superstep + 1));
  // Rejection on duplicates: count is tiny relative to num_slots in every
  // sane configuration, and the loop is bounded even when it is not.
  std::size_t attempts = 0;
  while (slots.size() < count && attempts < count * 16 + 64) {
    ++attempts;
    const std::size_t slot = first_slot + rng.next() % num_slots;
    bool seen = false;
    for (const std::size_t s : slots) {
      if (s == slot) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      slots.push_back(slot);
    }
  }
  return slots;
}

}  // namespace ipregel::integrity
