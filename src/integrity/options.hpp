#pragma once

#include <cstddef>
#include <cstdint>

namespace ipregel::integrity {

/// Which silent-data-corruption detectors the engine runs at its superstep
/// barriers, and how hard. All off by default — the integrity layer costs
/// nothing unless asked for. The three tiers are independent and
/// composable; they trade coverage against overhead:
///
///  - `invariants` (tier 1): application-level invariant auditors the
///    program declares through program_traits (rank-mass conservation,
///    distance monotonicity, label bounds, ...). One parallel reduction
///    over the vertex values per barrier — the cheapest tier, and the only
///    one that understands *semantics* (it catches corruption that is
///    structurally plausible but algorithmically impossible).
///  - `checksums` (tier 2): sectioned checksums over vertex values, halted
///    flags, the pending mailbox generation, and the bypass frontier,
///    stored at each barrier and verified at the top of the next superstep.
///    Covers the at-rest window between barriers and localises a flip to a
///    (superstep, section, slot-range) triple. Application-agnostic.
///  - `shadow` (tier 3): sampled shadow recompute — re-run compute() for a
///    deterministic pseudo-random sample of vertices against the inputs
///    the superstep actually consumed and compare outputs. Catches
///    corruption *during* the superstep (a flipped result, a torn store)
///    that the at-rest checksums cannot see. Cost scales with
///    `shadow_samples`, not |V|.
struct IntegrityOptions {
  bool invariants = false;
  bool checksums = false;
  bool shadow = false;

  /// Verify/store cadence for the checksum tier: checksums are stored at
  /// barriers whose *next* superstep index is a multiple of this, and
  /// verified at the top of that superstep. 1 = every superstep (full
  /// at-rest coverage); k > 1 covers only every k-th barrier's at-rest
  /// window — flips between covered barriers are NOT caught later, so
  /// this trades coverage (not latency) for overhead on workloads with
  /// very short supersteps (road-graph SSSP wavefronts). The default is
  /// full coverage; production runs that care about throughput should use
  /// 8 — the two digest passes re-read the whole resident state, which on
  /// a memory-bound core is a fixed double-digit fraction of a lean
  /// superstep's own traffic, and every-8 amortises it to a few percent
  /// (see bench/ablation_integrity).
  std::size_t checksum_every = 1;

  /// Vertices shadow-recomputed per superstep (tier 3).
  std::size_t shadow_samples = 16;
  /// Seed of the deterministic per-superstep sample (tier 3). Tests derive
  /// it from their top-level seed so a failure reproduces from the log.
  std::uint64_t shadow_seed = 1;

  [[nodiscard]] bool any() const noexcept {
    return invariants || checksums || shadow;
  }
};

}  // namespace ipregel::integrity
