#pragma once

#include <cerrno>
#include <memory>
#include <string>
#include <utility>

#include "io/vfs.hpp"

namespace ipregel::io {

/// A pass-through Vfs that injects EIO into the first `fail_reads` read()
/// calls on files whose path contains `path_filter` (empty = every file),
/// then behaves like the wrapped filesystem.
///
/// FaultyVfs is an in-memory disk, which makes it the right tool for
/// single-process crash matrices but useless across a process boundary:
/// its platter dies with the process that owns it. The sharded runtime's
/// restore-chaos tests need the opposite shape — snapshots that live on
/// the REAL filesystem (so a respawned worker process can find them) with
/// deterministic read faults layered on top. This wrapper provides that:
/// a respawned shard reading its newest snapshot through it sees EIO,
/// SnapshotDirectory quarantines the "unreadable" file, and recovery
/// falls back to the previous generation — the exact fallback ladder the
/// in-memory matrix proves, now exercised end-to-end across fork().
///
/// Only read() faults are injected; writes, renames, and directory ops
/// pass straight through (quarantine must be able to rename the file it
/// just failed to read).
class ReadFaultVfs final : public Vfs {
 public:
  /// `base` must outlive this wrapper. Not owned.
  ReadFaultVfs(Vfs& base, std::size_t fail_reads,
               std::string path_filter = {})
      : base_(base),
        remaining_(fail_reads),
        path_filter_(std::move(path_filter)) {}

  /// Read faults not yet injected.
  [[nodiscard]] std::size_t remaining() const noexcept { return remaining_; }

  std::unique_ptr<File> open(const std::string& path,
                             OpenMode mode) override {
    auto file = base_.open(path, mode);
    const bool eligible =
        mode == OpenMode::kRead &&
        (path_filter_.empty() || path.find(path_filter_) != std::string::npos);
    return std::make_unique<WrappedFile>(std::move(file), path,
                                         eligible ? this : nullptr);
  }

  void rename(const std::string& from, const std::string& to) override {
    base_.rename(from, to);
  }
  void unlink(const std::string& path) override { base_.unlink(path); }
  bool exists(const std::string& path) override { return base_.exists(path); }
  std::vector<std::string> list(const std::string& dir) override {
    return base_.list(dir);
  }
  void fsync_dir(const std::string& dir) override { base_.fsync_dir(dir); }
  void mkdir(const std::string& dir) override { base_.mkdir(dir); }

 private:
  class WrappedFile final : public File {
   public:
    WrappedFile(std::unique_ptr<File> inner, std::string path,
                ReadFaultVfs* injector)
        : inner_(std::move(inner)),
          path_(std::move(path)),
          injector_(injector) {}

    std::size_t read(void* buf, std::size_t n) override {
      if (injector_ != nullptr && injector_->remaining_ > 0) {
        --injector_->remaining_;
        throw IoError(IoOp::kRead, path_, EIO, "injected read fault");
      }
      return inner_->read(buf, n);
    }
    std::size_t read_at(void* buf, std::size_t n,
                        std::uint64_t offset) override {
      if (injector_ != nullptr && injector_->remaining_ > 0) {
        --injector_->remaining_;
        throw IoError(IoOp::kRead, path_, EIO, "injected read fault");
      }
      return inner_->read_at(buf, n, offset);
    }
    void write(const void* buf, std::size_t n) override {
      inner_->write(buf, n);
    }
    void seek(std::uint64_t pos) override { inner_->seek(pos); }
    void fsync() override { inner_->fsync(); }
    void close() override { inner_->close(); }

   private:
    std::unique_ptr<File> inner_;
    std::string path_;
    ReadFaultVfs* injector_;
  };

  Vfs& base_;
  std::size_t remaining_;
  std::string path_filter_;
};

/// A pass-through Vfs that POWER-CUTS at counted mutating syscall `at`:
/// every mutating operation (write, fsync, close-of-write-handle, rename,
/// unlink, fsync_dir, mkdir, open-for-write) on a matching path increments
/// a counter, and the operation whose index equals `at` throws PowerLoss
/// WITHOUT being performed. Reads are never counted or failed.
///
/// The write-side sibling of ReadFaultVfs, for the same reason: FaultyVfs's
/// in-memory platter dies with the process, but a coordinator-crash test
/// needs the torn bytes to SURVIVE on the real filesystem so the next
/// coordinator incarnation can walk the manifest directory and fall back
/// past them. Everything performed before the cut is real and durable;
/// everything after never happened — exactly a machine losing power
/// mid-publish.
class WriteCutVfs final : public Vfs {
 public:
  /// `base` must outlive this wrapper. Not owned. `at` counts from 0; an
  /// `at` beyond the plan's total op count simply never trips.
  WriteCutVfs(Vfs& base, std::uint64_t at, std::string path_filter = {})
      : base_(base), at_(at), path_filter_(std::move(path_filter)) {}

  /// Mutating ops performed so far (the sweep bound for a matrix that
  /// cuts at every syscall).
  [[nodiscard]] std::uint64_t ops() const noexcept { return count_; }
  [[nodiscard]] bool tripped() const noexcept { return tripped_; }

  std::unique_ptr<File> open(const std::string& path,
                             OpenMode mode) override {
    if (mode != OpenMode::kRead) {
      tick(IoOp::kOpen, path);
    }
    auto file = base_.open(path, mode);
    return std::make_unique<WrappedFile>(std::move(file), path,
                                         mode != OpenMode::kRead ? this
                                                                 : nullptr);
  }

  void rename(const std::string& from, const std::string& to) override {
    tick(IoOp::kRename, to);
    base_.rename(from, to);
  }
  void unlink(const std::string& path) override {
    tick(IoOp::kUnlink, path);
    base_.unlink(path);
  }
  bool exists(const std::string& path) override { return base_.exists(path); }
  std::vector<std::string> list(const std::string& dir) override {
    return base_.list(dir);
  }
  void fsync_dir(const std::string& dir) override {
    tick(IoOp::kFsync, dir);
    base_.fsync_dir(dir);
  }
  void mkdir(const std::string& dir) override {
    tick(IoOp::kMkdir, dir);
    base_.mkdir(dir);
  }

 private:
  void tick(IoOp op, const std::string& path) {
    if (!path_filter_.empty() &&
        path.find(path_filter_) == std::string::npos) {
      return;
    }
    if (count_++ == at_) {
      tripped_ = true;
      throw PowerLoss(op, path);
    }
  }

  class WrappedFile final : public File {
   public:
    WrappedFile(std::unique_ptr<File> inner, std::string path,
                WriteCutVfs* injector)
        : inner_(std::move(inner)),
          path_(std::move(path)),
          injector_(injector) {}

    std::size_t read(void* buf, std::size_t n) override {
      return inner_->read(buf, n);
    }
    std::size_t read_at(void* buf, std::size_t n,
                        std::uint64_t offset) override {
      return inner_->read_at(buf, n, offset);
    }
    void write(const void* buf, std::size_t n) override {
      if (injector_ != nullptr) {
        injector_->tick(IoOp::kWrite, path_);
      }
      inner_->write(buf, n);
    }
    void seek(std::uint64_t pos) override { inner_->seek(pos); }
    void fsync() override {
      if (injector_ != nullptr) {
        injector_->tick(IoOp::kFsync, path_);
      }
      inner_->fsync();
    }
    void close() override {
      if (injector_ != nullptr) {
        injector_->tick(IoOp::kClose, path_);
      }
      inner_->close();
    }

   private:
    std::unique_ptr<File> inner_;
    std::string path_;
    WriteCutVfs* injector_;
  };

  Vfs& base_;
  std::uint64_t at_;
  std::uint64_t count_ = 0;
  bool tripped_ = false;
  std::string path_filter_;
};

}  // namespace ipregel::io
