#include "io/faulty_vfs.hpp"

#include <cerrno>
#include <cstring>

namespace ipregel::io {

/// File handle over an in-memory inode. Content mutations run under the
/// disk-wide mutex and through the fault plan.
class FaultyVfs::MemFile final : public Vfs::File {
 public:
  MemFile(FaultyVfs& vfs, std::shared_ptr<Inode> inode, std::string path,
          bool writable)
      : vfs_(vfs),
        inode_(std::move(inode)),
        path_(std::move(path)),
        writable_(writable) {}

  std::size_t read(void* buf, std::size_t n) override {
    std::lock_guard<std::mutex> lock(vfs_.mu_);
    const std::size_t got = read_from(buf, n, pos_);
    pos_ += got;
    return got;
  }

  std::size_t read_at(void* buf, std::size_t n,
                      std::uint64_t offset) override {
    std::lock_guard<std::mutex> lock(vfs_.mu_);
    return read_from(buf, n, static_cast<std::size_t>(offset));
  }

  void write(const void* buf, std::size_t n) override {
    std::lock_guard<std::mutex> lock(vfs_.mu_);
    if (vfs_.frozen_) {
      vfs_.throw_power_cut(IoOp::kWrite, path_);
    }
    if (!writable_) {
      throw IoError(IoOp::kWrite, path_, EBADF, "opened read-only");
    }
    ++vfs_.ops_;
    const auto* p = static_cast<const std::uint8_t*>(buf);
    Plan& plan = vfs_.plan_;
    if (plan.kind == FaultKind::kNone || plan.at_op == 0 ||
        vfs_.ops_ != plan.at_op) {
      inode_->live.insert(inode_->live.end(), p, p + n);
      return;
    }
    switch (plan.kind) {
      case FaultKind::kEio:
        plan = Plan{};
        throw IoError(IoOp::kWrite, path_, EIO, "injected I/O error");
      case FaultKind::kEnospc:
        plan = Plan{};
        throw IoError(IoOp::kWrite, path_, ENOSPC, "injected disk-full");
      case FaultKind::kShortWrite:
        plan = Plan{};
        inode_->live.insert(inode_->live.end(), p, p + n / 2);
        throw IoError(IoOp::kWrite, path_, EIO, "injected short write");
      case FaultKind::kTornWrite:
        // Half the payload reaches the platter out of order — both the
        // bytes and the (never directory-synced) entry become durable —
        // and then the power dies.
        inode_->live.insert(inode_->live.end(), p, p + n / 2);
        inode_->synced = inode_->live;
        vfs_.synced_[path_] = inode_;
        vfs_.frozen_ = true;
        vfs_.throw_power_cut(IoOp::kWrite, path_);
      case FaultKind::kPowerCut:
        vfs_.frozen_ = true;
        vfs_.throw_power_cut(IoOp::kWrite, path_);
      case FaultKind::kNone:
        break;
    }
  }

  void seek(std::uint64_t pos) override {
    std::lock_guard<std::mutex> lock(vfs_.mu_);
    if (vfs_.frozen_) {
      vfs_.throw_power_cut(IoOp::kRead, path_);
    }
    pos_ = static_cast<std::size_t>(pos);
  }

  void fsync() override {
    std::lock_guard<std::mutex> lock(vfs_.mu_);
    vfs_.begin_mutation(IoOp::kFsync, path_);
    inode_->synced = inode_->live;
  }

  void close() override {}  // nothing buffered at this layer

 private:
  /// Shared body of read/read_at: applies the armed read plan, then copies
  /// from the live content at `from`. Caller holds vfs_.mu_.
  std::size_t read_from(void* buf, std::size_t n, std::size_t from) {
    if (vfs_.frozen_) {
      vfs_.throw_power_cut(IoOp::kRead, path_);
    }
    const ReadFaultKind fault = vfs_.begin_read(path_);
    const std::vector<std::uint8_t>& data = inode_->live;
    if (from >= data.size()) {
      return 0;
    }
    std::size_t want = std::min(n, data.size() - from);
    if (fault == ReadFaultKind::kReadShort) {
      want /= 2;  // the rest of the buffer is never written
    }
    std::memcpy(buf, data.data() + from, want);
    if (fault == ReadFaultKind::kTornPage) {
      // Deterministic silent corruption of the second half of what came
      // back — the shape of a torn sector or at-rest rot that only a
      // content check (per-page CRC) can catch.
      auto* p = static_cast<std::uint8_t*>(buf);
      for (std::size_t i = want / 2; i < want; ++i) {
        p[i] ^= 0xA5;
      }
    }
    return want;
  }

  FaultyVfs& vfs_;
  std::shared_ptr<Inode> inode_;
  std::string path_;
  bool writable_;
  std::size_t pos_ = 0;
};

void FaultyVfs::throw_power_cut(IoOp op, const std::string& path) {
  throw PowerLoss(op, path);
}

void FaultyVfs::begin_mutation(IoOp op, const std::string& path) {
  if (frozen_) {
    throw_power_cut(op, path);
  }
  ++ops_;
  if (plan_.kind == FaultKind::kNone || plan_.at_op == 0 ||
      ops_ != plan_.at_op) {
    return;
  }
  switch (plan_.kind) {
    case FaultKind::kEio:
    case FaultKind::kShortWrite:  // degrades to plain EIO off the write path
      plan_ = Plan{};
      throw IoError(op, path, EIO, "injected I/O error");
    case FaultKind::kEnospc:
      plan_ = Plan{};
      throw IoError(op, path, ENOSPC, "injected disk-full");
    case FaultKind::kTornWrite:  // degrades to a power cut off the write path
    case FaultKind::kPowerCut:
      frozen_ = true;
      throw_power_cut(op, path);
    case FaultKind::kNone:
      break;
  }
}

FaultyVfs::ReadFaultKind FaultyVfs::begin_read(const std::string& path) {
  ++read_ops_;
  if (read_plan_.kind == ReadFaultKind::kNone || read_plan_.at_op == 0 ||
      read_ops_ != read_plan_.at_op) {
    return ReadFaultKind::kNone;
  }
  const ReadFaultKind kind = read_plan_.kind;
  read_plan_ = ReadPlan{};  // every read fault is one-shot
  switch (kind) {
    case ReadFaultKind::kReadEio:
      throw IoError(IoOp::kRead, path, EIO, "injected read error");
    case ReadFaultKind::kReadPowerCut:
      frozen_ = true;
      throw_power_cut(IoOp::kRead, path);
    case ReadFaultKind::kReadShort:
    case ReadFaultKind::kTornPage:
    case ReadFaultKind::kNone:
      break;
  }
  return kind;
}

void FaultyVfs::set_plan(Plan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  ops_ = 0;
}

void FaultyVfs::set_read_plan(ReadPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  read_plan_ = plan;
  read_ops_ = 0;
}

std::uint64_t FaultyVfs::read_ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return read_ops_;
}

void FaultyVfs::reboot() {
  std::lock_guard<std::mutex> lock(mu_);
  frozen_ = false;
  plan_ = Plan{};
  read_plan_ = ReadPlan{};
  ops_ = 0;
  read_ops_ = 0;
  live_ = synced_;
  for (auto& entry : live_) {
    entry.second->live = entry.second->synced;
  }
}

void FaultyVfs::sync_all() {
  std::lock_guard<std::mutex> lock(mu_);
  synced_ = live_;
  for (auto& entry : synced_) {
    entry.second->synced = entry.second->live;
  }
}

std::uint64_t FaultyVfs::mutating_ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

bool FaultyVfs::power_is_cut() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frozen_;
}

std::unique_ptr<Vfs::File> FaultyVfs::open(const std::string& path,
                                           OpenMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  if (mode == OpenMode::kRead) {
    if (frozen_) {
      throw_power_cut(IoOp::kOpen, path);
    }
    const auto it = live_.find(path);
    if (it == live_.end()) {
      throw IoError(IoOp::kOpen, path, ENOENT);
    }
    return std::make_unique<MemFile>(*this, it->second, path,
                                     /*writable=*/false);
  }
  begin_mutation(IoOp::kOpen, path);
  std::shared_ptr<Inode>& node = live_[path];
  if (node == nullptr) {
    node = std::make_shared<Inode>();
  }
  if (mode == OpenMode::kTruncate) {
    node->live.clear();
  }
  return std::make_unique<MemFile>(*this, node, path, /*writable=*/true);
}

void FaultyVfs::rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  begin_mutation(IoOp::kRename, from);
  const auto it = live_.find(from);
  if (it == live_.end()) {
    throw IoError(IoOp::kRename, from, ENOENT, "renaming to " + to);
  }
  live_[to] = it->second;
  live_.erase(from);
}

void FaultyVfs::unlink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  begin_mutation(IoOp::kUnlink, path);
  if (live_.erase(path) == 0) {
    throw IoError(IoOp::kUnlink, path, ENOENT);
  }
}

bool FaultyVfs::exists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (frozen_) {
    throw_power_cut(IoOp::kList, path);
  }
  return live_.count(path) != 0;
}

std::vector<std::string> FaultyVfs::list(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (frozen_) {
    throw_power_cut(IoOp::kList, dir);
  }
  std::vector<std::string> names;
  for (const auto& entry : live_) {
    const std::string& path = entry.first;
    if (parent_dir(path) == dir) {
      names.push_back(path.substr(path.find_last_of('/') + 1));
    }
  }
  return names;
}

void FaultyVfs::fsync_dir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  begin_mutation(IoOp::kFsync, dir);
  // Creations and renames under `dir` become durable...
  for (const auto& entry : live_) {
    if (parent_dir(entry.first) == dir) {
      synced_[entry.first] = entry.second;
    }
  }
  // ...and so do unlinks.
  for (auto it = synced_.begin(); it != synced_.end();) {
    if (parent_dir(it->first) == dir && live_.count(it->first) == 0) {
      it = synced_.erase(it);
    } else {
      ++it;
    }
  }
}

void FaultyVfs::mkdir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  begin_mutation(IoOp::kMkdir, dir);
  // The namespace is flat; directories spring into being with their files.
}

}  // namespace ipregel::io
