#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/vfs.hpp"

namespace ipregel::io {

/// An in-memory disk with deterministic fault injection — the test double
/// that makes crash consistency a provable property instead of a hope.
///
/// ## Durability model (strict POSIX)
///
/// The disk keeps two views of every file and of the namespace:
///
///  - the *live* view: what a running process observes (page cache);
///  - the *synced* view: what survives a power loss (the platter).
///
/// `write` changes only the live content. `File::fsync` copies the file's
/// live content to its synced content. Namespace changes (create, rename,
/// unlink) are live immediately but reach the synced namespace only via
/// `fsync_dir` on the parent — the strictest reading of POSIX, which is
/// exactly what a publish discipline must be correct against. `reboot()`
/// discards every live-only byte and entry, models power coming back, and
/// re-arms nothing.
///
/// ## Fault plans
///
/// Mutating operations (open-for-write, write, fsync, rename, unlink,
/// fsync_dir, mkdir) are counted; `Plan{kind, at_op}` makes the
/// `at_op`-th counted operation fail:
///
///  - kEio / kEnospc: the operation fails with that errno and no effect;
///    one-shot (the plan disarms), so later operations succeed — the
///    shape of a transient disk error or a full disk that gets cleaned.
///  - kShortWrite: half the payload is applied, then EIO; one-shot.
///  - kTornWrite: half the payload is applied AND made durable (content
///    reordered onto the platter), then the power is cut.
///  - kPowerCut: the operation does not execute and the disk freezes —
///    every subsequent operation throws PowerLoss until `reboot()`.
///
/// A probe run against an unarmed FaultyVfs yields `mutating_ops()`, the
/// loop bound a crash matrix iterates `at_op` over.
///
/// ## Read plans
///
/// Read operations (`File::read` / `File::read_at`) have their own counter
/// and their own plan — injection parity with the mutating side, so a
/// paging matrix can sweep "fault at the k-th page read" exactly like the
/// crash matrix sweeps mutating syscalls:
///
///  - kReadEio: the read fails with EIO and returns nothing; one-shot.
///  - kReadShort: half the requested bytes come back (the rest of the
///    buffer untouched), no error — a short read the caller must notice.
///  - kTornPage: the full count comes back but the second half of the
///    buffer is deterministically corrupted — the at-rest rot / torn
///    sector a per-page CRC exists to catch. One-shot, silent.
///  - kReadPowerCut: the disk freezes mid-read; this and every subsequent
///    operation throws PowerLoss until `reboot()`.
class FaultyVfs final : public Vfs {
 public:
  enum class FaultKind : std::uint8_t {
    kNone,
    kEio,
    kEnospc,
    kShortWrite,
    kTornWrite,
    kPowerCut,
  };

  struct Plan {
    FaultKind kind = FaultKind::kNone;
    /// 1-based index of the counted mutating operation that faults
    /// (0 = disarmed).
    std::uint64_t at_op = 0;
  };

  enum class ReadFaultKind : std::uint8_t {
    kNone,
    kReadEio,
    kReadShort,
    kTornPage,
    kReadPowerCut,
  };

  struct ReadPlan {
    ReadFaultKind kind = ReadFaultKind::kNone;
    /// 1-based index of the counted read operation that faults
    /// (0 = disarmed).
    std::uint64_t at_op = 0;
  };

  FaultyVfs() = default;

  /// Arms a fault plan and resets the operation counter.
  void set_plan(Plan plan);
  /// Arms a read-fault plan and resets the read-operation counter.
  void set_read_plan(ReadPlan plan);
  /// Counted read operations so far (the paging-matrix loop bound).
  [[nodiscard]] std::uint64_t read_ops() const;
  /// Power restored: the live state reverts to the synced state, the plan
  /// disarms, and the operation counter resets.
  void reboot();
  /// Test scaffolding: makes all current live state durable at once.
  void sync_all();
  /// Counted mutating operations so far (the crash-matrix loop bound).
  [[nodiscard]] std::uint64_t mutating_ops() const;
  [[nodiscard]] bool power_is_cut() const;

  // Vfs
  std::unique_ptr<File> open(const std::string& path, OpenMode mode) override;
  void rename(const std::string& from, const std::string& to) override;
  void unlink(const std::string& path) override;
  bool exists(const std::string& path) override;
  std::vector<std::string> list(const std::string& dir) override;
  void fsync_dir(const std::string& dir) override;
  void mkdir(const std::string& dir) override;

 private:
  struct Inode {
    std::vector<std::uint8_t> live;
    std::vector<std::uint8_t> synced;
  };
  class MemFile;
  friend class MemFile;

  /// Counts one mutating operation and applies the armed plan. For write
  /// operations the short/torn variants are handled by the caller; on
  /// non-write operations they degrade to EIO / power cut respectively.
  /// Caller must hold mu_.
  void begin_mutation(IoOp op, const std::string& path);
  /// Plan decision for one write: how many of `n` bytes to apply before
  /// failing. Returns n (and no exception follows) in the common case.
  /// Caller must hold mu_; throws after the caller applies the prefix via
  /// the returned FaultAction.
  [[noreturn]] void throw_power_cut(IoOp op, const std::string& path);

  /// Counts one read operation and applies the armed read plan. Returns
  /// the fault to apply to this read (kNone in the common case); the
  /// caller (read/read_at) implements the short/torn byte handling.
  /// Caller must hold mu_; throws for kReadEio / kReadPowerCut.
  ReadFaultKind begin_read(const std::string& path);

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Inode>> live_;
  std::map<std::string, std::shared_ptr<Inode>> synced_;
  Plan plan_;
  ReadPlan read_plan_;
  std::uint64_t ops_ = 0;
  std::uint64_t read_ops_ = 0;
  bool frozen_ = false;
};

[[nodiscard]] constexpr std::string_view to_string(
    FaultyVfs::FaultKind k) noexcept {
  switch (k) {
    case FaultyVfs::FaultKind::kNone:
      return "none";
    case FaultyVfs::FaultKind::kEio:
      return "eio";
    case FaultyVfs::FaultKind::kEnospc:
      return "enospc";
    case FaultyVfs::FaultKind::kShortWrite:
      return "short-write";
    case FaultyVfs::FaultKind::kTornWrite:
      return "torn-write";
    case FaultyVfs::FaultKind::kPowerCut:
      return "power-cut";
  }
  return "invalid";
}

[[nodiscard]] constexpr std::string_view to_string(
    FaultyVfs::ReadFaultKind k) noexcept {
  switch (k) {
    case FaultyVfs::ReadFaultKind::kNone:
      return "none";
    case FaultyVfs::ReadFaultKind::kReadEio:
      return "read-eio";
    case FaultyVfs::ReadFaultKind::kReadShort:
      return "short-read";
    case FaultyVfs::ReadFaultKind::kTornPage:
      return "torn-page";
    case FaultyVfs::ReadFaultKind::kReadPowerCut:
      return "read-power-cut";
  }
  return "invalid";
}

}  // namespace ipregel::io
