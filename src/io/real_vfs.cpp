// The POSIX implementation behind io::real_vfs(). Durability rules it
// relies on (and that FaultyVfs models strictly):
//  - write() reaches the page cache only; fsync() flushes the file's bytes
//    to stable storage.
//  - rename() is atomic in the namespace but the *entry* is durable only
//    after the parent directory is fsync'd.
// AtomicFile (stream.hpp) sequences these into the publish discipline.

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "io/vfs.hpp"

namespace ipregel::io {
namespace {

// Every blocking syscall below retries EINTR. The sharded runtime
// (src/shard) supervises child processes, so SIGCHLD (and the test
// suite's deliberate signal storms) can interrupt any wrapper installed
// without SA_RESTART; an unretried EINTR would surface as a spurious
// IoError mid-checkpoint. close() is the one exception: on Linux the
// descriptor is released even when close() reports EINTR, so retrying
// could close an unrelated descriptor that reused the slot — EINTR on
// close is treated as success instead.

int open_retry(const char* path, int flags, mode_t mode) {
  for (;;) {
    const int fd = ::open(path, flags, mode);
    if (fd >= 0 || errno != EINTR) {
      return fd;
    }
  }
}

int fsync_retry(int fd) {
  for (;;) {
    if (::fsync(fd) == 0) {
      return 0;
    }
    if (errno != EINTR) {
      return -1;
    }
  }
}

// EINTR from close() means the descriptor is gone on Linux; only report
// real failures (EIO from a deferred writeback, EBADF from a logic bug).
int close_eintr_ok(int fd) {
  if (::close(fd) == 0 || errno == EINTR) {
    return 0;
  }
  return -1;
}

class RealFile final : public Vfs::File {
 public:
  RealFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  ~RealFile() override {
    if (fd_ >= 0) {
      ::close(fd_);  // best effort; an explicit close() reports errors
    }
  }

  std::size_t read(void* buf, std::size_t n) override {
    for (;;) {
      const ssize_t got = ::read(fd_, buf, n);
      if (got >= 0) {
        return static_cast<std::size_t>(got);
      }
      if (errno != EINTR) {
        throw IoError(IoOp::kRead, path_, errno);
      }
    }
  }

  void write(const void* buf, std::size_t n) override {
    const char* p = static_cast<const char*>(buf);
    while (n != 0) {
      const ssize_t put = ::write(fd_, p, n);
      if (put < 0) {
        if (errno == EINTR) {
          continue;
        }
        throw IoError(IoOp::kWrite, path_, errno);
      }
      p += put;
      n -= static_cast<std::size_t>(put);
    }
  }

  std::size_t read_at(void* buf, std::size_t n,
                      std::uint64_t offset) override {
    char* p = static_cast<char*>(buf);
    std::size_t got = 0;
    while (got < n) {
      const ssize_t r = ::pread(fd_, p + got, n - got,
                                static_cast<off_t>(offset + got));
      if (r > 0) {
        got += static_cast<std::size_t>(r);
        continue;
      }
      if (r == 0) {
        break;  // end of file
      }
      if (errno != EINTR) {
        throw IoError(IoOp::kRead, path_, errno, "pread failed");
      }
    }
    return got;
  }

  void seek(std::uint64_t pos) override {
    if (::lseek(fd_, static_cast<off_t>(pos), SEEK_SET) < 0) {
      throw IoError(IoOp::kRead, path_, errno, "seek failed");
    }
  }

  void fsync() override {
    if (fsync_retry(fd_) != 0) {
      throw IoError(IoOp::kFsync, path_, errno);
    }
  }

  void close() override {
    if (fd_ < 0) {
      return;  // idempotent
    }
    const int fd = fd_;
    fd_ = -1;
    if (close_eintr_ok(fd) != 0) {
      throw IoError(IoOp::kClose, path_, errno);
    }
  }

 private:
  int fd_;
  std::string path_;
};

class RealVfs final : public Vfs {
 public:
  std::unique_ptr<File> open(const std::string& path, OpenMode mode) override {
    int flags = 0;
    switch (mode) {
      case OpenMode::kRead:
        flags = O_RDONLY;
        break;
      case OpenMode::kTruncate:
        flags = O_WRONLY | O_CREAT | O_TRUNC;
        break;
      case OpenMode::kAppend:
        flags = O_WRONLY | O_CREAT | O_APPEND;
        break;
    }
    const int fd = open_retry(path.c_str(), flags, 0644);
    if (fd < 0) {
      throw IoError(IoOp::kOpen, path, errno);
    }
    return std::make_unique<RealFile>(fd, path);
  }

  void rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      throw IoError(IoOp::kRename, from, errno, "renaming to " + to);
    }
  }

  void unlink(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      throw IoError(IoOp::kUnlink, path, errno);
    }
  }

  bool exists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  std::vector<std::string> list(const std::string& dir) override {
    DIR* d = nullptr;
    for (;;) {
      d = ::opendir(dir.c_str());
      if (d != nullptr || errno != EINTR) {
        break;
      }
    }
    if (d == nullptr) {
      throw IoError(IoOp::kList, dir, errno);
    }
    std::vector<std::string> names;
    for (;;) {
      errno = 0;
      const dirent* entry = ::readdir(d);
      if (entry == nullptr) {
        const int err = errno;
        ::closedir(d);
        if (err != 0) {
          throw IoError(IoOp::kList, dir, err);
        }
        return names;
      }
      const std::string name = entry->d_name;
      if (name != "." && name != "..") {
        names.push_back(name);
      }
    }
  }

  void fsync_dir(const std::string& dir) override {
    const int fd = open_retry(dir.c_str(), O_RDONLY | O_DIRECTORY, 0);
    if (fd < 0) {
      throw IoError(IoOp::kFsync, dir, errno, "cannot open directory");
    }
    if (fsync_retry(fd) != 0) {
      const int err = errno;
      close_eintr_ok(fd);
      throw IoError(IoOp::kFsync, dir, err);
    }
    if (close_eintr_ok(fd) != 0) {
      throw IoError(IoOp::kClose, dir, errno);
    }
  }

  void mkdir(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      throw IoError(IoOp::kMkdir, dir, errno);
    }
  }
};

}  // namespace

Vfs& real_vfs() {
  static RealVfs vfs;
  return vfs;
}

}  // namespace ipregel::io
