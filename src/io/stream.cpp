#include "io/stream.hpp"

#include <cstring>

namespace ipregel::io {

namespace {
constexpr std::size_t kBufBytes = 1u << 16;
}  // namespace

FileStreambuf::FileStreambuf(Vfs::File& file, Mode mode)
    : file_(file), mode_(mode), buf_(kBufBytes) {
  if (mode_ == Mode::kWrite) {
    setp(buf_.data(), buf_.data() + buf_.size());
  } else {
    setg(buf_.data(), buf_.data(), buf_.data());
  }
}

FileStreambuf::~FileStreambuf() {
  if (mode_ == Mode::kWrite) {
    flush_put_area();  // best effort; commit paths flush explicitly
  }
}

void FileStreambuf::flush_now() {
  if (!flush_put_area()) {
    rethrow_io_error();
  }
}

void FileStreambuf::rethrow_io_error() const {
  if (error_ != nullptr) {
    std::rethrow_exception(error_);
  }
}

bool FileStreambuf::write_through(const char* s, std::size_t n) noexcept {
  if (error_ != nullptr) {
    return false;
  }
  try {
    file_.write(s, n);
    return true;
  } catch (...) {
    error_ = std::current_exception();
    return false;
  }
}

bool FileStreambuf::flush_put_area() noexcept {
  const std::size_t pending = static_cast<std::size_t>(pptr() - pbase());
  setp(buf_.data(), buf_.data() + buf_.size());
  if (pending == 0) {
    return error_ == nullptr;
  }
  return write_through(buf_.data(), pending);
}

FileStreambuf::int_type FileStreambuf::overflow(int_type ch) {
  if (!flush_put_area()) {
    return traits_type::eof();
  }
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

std::streamsize FileStreambuf::xsputn(const char* s, std::streamsize n) {
  if (n <= 0 || error_ != nullptr) {
    return error_ == nullptr ? n : 0;
  }
  const std::size_t count = static_cast<std::size_t>(n);
  if (count >= buf_.size()) {
    // Large payloads bypass the buffer (one write instead of many).
    if (!flush_put_area() || !write_through(s, count)) {
      return 0;
    }
    return n;
  }
  if (static_cast<std::size_t>(epptr() - pptr()) < count &&
      !flush_put_area()) {
    return 0;
  }
  std::memcpy(pptr(), s, count);
  pbump(static_cast<int>(count));
  return n;
}

int FileStreambuf::sync() { return flush_put_area() ? 0 : -1; }

FileStreambuf::int_type FileStreambuf::underflow() {
  if (mode_ != Mode::kRead || error_ != nullptr) {
    return traits_type::eof();
  }
  std::size_t got = 0;
  try {
    got = file_.read(buf_.data(), buf_.size());
  } catch (...) {
    error_ = std::current_exception();
    return traits_type::eof();
  }
  if (got == 0) {
    return traits_type::eof();
  }
  setg(buf_.data(), buf_.data(), buf_.data() + got);
  return traits_type::to_int_type(buf_[0]);
}

FileStreambuf::pos_type FileStreambuf::seekoff(
    off_type off, std::ios_base::seekdir dir, std::ios_base::openmode which) {
  // Only "rewind to the start of an input file" is supported — enough for
  // readers that peek at a magic number before parsing in earnest.
  if (mode_ != Mode::kRead || off != 0 || dir != std::ios_base::beg ||
      (which & std::ios_base::in) == 0) {
    return pos_type(off_type(-1));
  }
  try {
    file_.seek(0);
  } catch (...) {
    error_ = std::current_exception();
    return pos_type(off_type(-1));
  }
  setg(buf_.data(), buf_.data(), buf_.data());
  return pos_type(0);
}

FileStreambuf::pos_type FileStreambuf::seekpos(pos_type pos,
                                               std::ios_base::openmode which) {
  return seekoff(off_type(pos), std::ios_base::beg, which);
}

VfsIStream::VfsIStream(Vfs& vfs, const std::string& path)
    : file_(vfs.open(path, Vfs::OpenMode::kRead)),
      buf_(*file_, FileStreambuf::Mode::kRead),
      in_(&buf_) {}

AtomicFile::AtomicFile(Vfs& vfs, std::string final_path)
    : vfs_(vfs),
      final_(std::move(final_path)),
      tmp_(final_ + ".tmp"),
      file_(vfs_.open(tmp_, Vfs::OpenMode::kTruncate)),
      buf_(*file_, FileStreambuf::Mode::kWrite),
      out_(&buf_) {}

AtomicFile::~AtomicFile() {
  if (committed_) {
    return;
  }
  try {
    file_->close();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
  try {
    vfs_.unlink(tmp_);
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

void AtomicFile::commit() {
  buf_.flush_now();
  file_->fsync();
  file_->close();
  vfs_.rename(tmp_, final_);
  vfs_.fsync_dir(parent_dir(final_));
  committed_ = true;
}

}  // namespace ipregel::io
