#pragma once

#include <istream>
#include <memory>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "io/vfs.hpp"

namespace ipregel::io {

/// std::streambuf over a Vfs::File, so the binary framing layer
/// (ft/binary_format.hpp) can keep its iostream interface while every byte
/// goes through the injectable filesystem.
///
/// iostreams cannot carry a typed error through their state bits, so the
/// buffer captures the first IoError (as an exception_ptr, preserving the
/// dynamic type — PowerLoss stays PowerLoss), reports failure to the
/// stream the normal way (eof/short counts, which set badbit/failbit), and
/// lets the owner rethrow the real error via rethrow_io_error().
class FileStreambuf final : public std::streambuf {
 public:
  enum class Mode : std::uint8_t { kRead, kWrite };

  FileStreambuf(Vfs::File& file, Mode mode);
  ~FileStreambuf() override;

  /// Flushes the put area to the file; throws the stored (or a fresh)
  /// IoError on failure. Write mode only.
  void flush_now();

  [[nodiscard]] bool failed() const noexcept { return error_ != nullptr; }
  /// Rethrows the captured IoError, if any; otherwise returns.
  void rethrow_io_error() const;

 protected:
  int_type overflow(int_type ch) override;
  std::streamsize xsputn(const char* s, std::streamsize n) override;
  int sync() override;
  int_type underflow() override;
  pos_type seekoff(off_type off, std::ios_base::seekdir dir,
                   std::ios_base::openmode which) override;
  pos_type seekpos(pos_type pos, std::ios_base::openmode which) override;

 private:
  /// Writes through to the file, capturing the first failure. Returns
  /// false (and discards the payload) once failed.
  bool write_through(const char* s, std::size_t n) noexcept;
  bool flush_put_area() noexcept;

  Vfs::File& file_;
  Mode mode_;
  std::vector<char> buf_;
  std::exception_ptr error_;
};

/// An input stream over a Vfs file. The constructor throws IoError when
/// the file cannot be opened.
class VfsIStream {
 public:
  VfsIStream(Vfs& vfs, const std::string& path);

  [[nodiscard]] std::istream& stream() noexcept { return in_; }
  /// Rethrows the underlying read error, if any — call when a parse
  /// failure may really be an I/O failure in disguise.
  void rethrow_io_error() const { buf_.rethrow_io_error(); }

 private:
  std::unique_ptr<Vfs::File> file_;
  FileStreambuf buf_;
  std::istream in_;
};

/// Crash-consistent file publication:
///
///   AtomicFile file(vfs, "dir/data.bin");
///   file.stream() << ...;            // bytes go to "dir/data.bin.tmp"
///   file.commit();                   // flush, fsync(tmp), rename,
///                                    // fsync(dir) — now durable
///
/// Until commit() returns, "dir/data.bin" is untouched: a crash at ANY
/// point leaves either the previous version (or nothing) under the final
/// name, never a torn file. An AtomicFile destroyed without commit()
/// unlinks its temporary. commit() throws a typed IoError (including any
/// failure captured during buffered writes) and leaves the final name
/// unchanged.
class AtomicFile {
 public:
  AtomicFile(Vfs& vfs, std::string final_path);
  ~AtomicFile();
  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  [[nodiscard]] std::ostream& stream() noexcept { return out_; }
  void commit();

 private:
  Vfs& vfs_;
  std::string final_;
  std::string tmp_;
  std::unique_ptr<Vfs::File> file_;
  FileStreambuf buf_;
  std::ostream out_;
  bool committed_ = false;
};

}  // namespace ipregel::io
