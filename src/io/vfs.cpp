#include "io/vfs.hpp"

#include <cstring>

namespace ipregel::io {
namespace {

std::string format_io_error(IoOp op, const std::string& path, int errno_value,
                            const std::string& detail) {
  std::string out(to_string(op));
  out += ' ';
  out += path;
  out += ": ";
  out += std::strerror(errno_value);
  if (!detail.empty()) {
    out += " (";
    out += detail;
    out += ')';
  }
  return out;
}

}  // namespace

IoError::IoError(IoOp op, std::string path, int errno_value,
                 const std::string& detail)
    : std::runtime_error(format_io_error(op, path, errno_value, detail)),
      op_(op),
      path_(std::move(path)),
      errno_(errno_value) {}

std::vector<std::uint8_t> Vfs::read_all(const std::string& path) {
  const std::unique_ptr<File> file = open(path, OpenMode::kRead);
  std::vector<std::uint8_t> out;
  std::uint8_t chunk[1u << 16];
  for (;;) {
    const std::size_t got = file->read(chunk, sizeof chunk);
    if (got == 0) {
      break;
    }
    out.insert(out.end(), chunk, chunk + got);
  }
  file->close();
  return out;
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

}  // namespace ipregel::io
