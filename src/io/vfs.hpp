#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ipregel::io {

/// The durable-storage layer every persistent artefact goes through.
///
/// Until this layer existed, snapshots, the binary edge-list cache, and
/// bench CSVs each reached disk through a raw std::ofstream: no fsync, no
/// error taxonomy, and no way to test what a power loss at a given syscall
/// boundary does to the bytes the recovery path depends on. `Vfs` is the
/// seam that fixes all three at once:
///
///  - `RealVfs` (see real_vfs()) is POSIX-backed and implements the full
///    publish discipline: write to "<path>.tmp", flush, fsync the file,
///    rename into place, fsync the parent directory — after which the file
///    is durable even across power loss (see stream.hpp's AtomicFile).
///  - `FaultyVfs` (faulty_vfs.hpp) is an in-memory disk with deterministic
///    fault injection — EIO, ENOSPC, short and torn writes, and "power cut
///    at syscall N", which freezes the simulated platter so a test can
///    reboot and assert what recovery actually finds.
///
/// Failures carry a typed IoError (operation + path + errno) instead of a
/// stringly std::runtime_error, so callers can branch on *what* failed —
/// the checkpoint path treats ENOSPC as "skip this snapshot", not "abort
/// the run".

/// The operation an IoError happened in.
enum class IoOp : std::uint8_t {
  kOpen,
  kRead,
  kWrite,
  kFsync,
  kClose,
  kRename,
  kUnlink,
  kList,
  kMkdir,
};

[[nodiscard]] constexpr std::string_view to_string(IoOp op) noexcept {
  switch (op) {
    case IoOp::kOpen:
      return "open";
    case IoOp::kRead:
      return "read";
    case IoOp::kWrite:
      return "write";
    case IoOp::kFsync:
      return "fsync";
    case IoOp::kClose:
      return "close";
    case IoOp::kRename:
      return "rename";
    case IoOp::kUnlink:
      return "unlink";
    case IoOp::kList:
      return "list";
    case IoOp::kMkdir:
      return "mkdir";
  }
  return "invalid";
}

/// A filesystem operation failed. Carries the operation, the path it was
/// applied to, and the errno value, so callers can branch on the failure
/// (ENOSPC vs EIO vs ENOENT) instead of string-matching what().
class IoError : public std::runtime_error {
 public:
  IoError(IoOp op, std::string path, int errno_value,
          const std::string& detail = {});

  [[nodiscard]] IoOp op() const noexcept { return op_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// The errno value at failure (EIO, ENOSPC, ENOENT, ...).
  [[nodiscard]] int errno_value() const noexcept { return errno_; }

 private:
  IoOp op_;
  std::string path_;
  int errno_;
};

/// The simulated disk lost power (FaultyVfs only — a real power loss kills
/// the process, so no production code path throws this). Deliberately NOT
/// absorbed by the checkpoint-skip logic: a run that loses its disk is
/// over, exactly like the machine it models.
class PowerLoss final : public IoError {
 public:
  PowerLoss(IoOp op, std::string path)
      : IoError(op, std::move(path), /*errno_value=*/5 /* EIO */,
                "simulated power loss") {}
};

/// Minimal virtual filesystem: exactly the operations the persistence
/// paths need, each throwing a typed IoError on failure.
class Vfs {
 public:
  enum class OpenMode : std::uint8_t {
    kRead,      ///< existing file, read-only
    kTruncate,  ///< create or truncate, write-only
    kAppend,    ///< create or append, write-only
  };

  /// An open file handle. All methods throw IoError on failure; close()
  /// is idempotent and the destructor closes without throwing.
  class File {
   public:
    File() = default;
    File(const File&) = delete;
    File& operator=(const File&) = delete;
    virtual ~File() = default;

    /// Reads up to `n` bytes; returns the number read (0 = end of file).
    virtual std::size_t read(void* buf, std::size_t n) = 0;
    /// Positional read: up to `n` bytes starting at absolute `offset`,
    /// without touching the handle's sequential cursor (POSIX pread).
    /// Returns the number read (0 = end of file, short = hit end of file).
    /// The pager depends on this: two cache lanes reading the same handle
    /// through seek()+read() would race on the shared cursor and hand each
    /// other's pages back — pread has no cursor to race on.
    virtual std::size_t read_at(void* buf, std::size_t n,
                                std::uint64_t offset) = 0;
    /// Writes all `n` bytes or throws (a short write is a failure).
    virtual void write(const void* buf, std::size_t n) = 0;
    /// Repositions the read cursor (kRead handles only).
    virtual void seek(std::uint64_t pos) = 0;
    /// Flushes file content to stable storage.
    virtual void fsync() = 0;
    virtual void close() = 0;
  };

  Vfs() = default;
  Vfs(const Vfs&) = delete;
  Vfs& operator=(const Vfs&) = delete;
  virtual ~Vfs() = default;

  [[nodiscard]] virtual std::unique_ptr<File> open(const std::string& path,
                                                   OpenMode mode) = 0;
  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual void rename(const std::string& from, const std::string& to) = 0;
  virtual void unlink(const std::string& path) = 0;
  [[nodiscard]] virtual bool exists(const std::string& path) = 0;
  /// Filenames (not full paths) of the entries in `dir`, unsorted.
  [[nodiscard]] virtual std::vector<std::string> list(
      const std::string& dir) = 0;
  /// Makes `dir`'s entries (creations, renames, unlinks) durable. The
  /// second half of an atomic publish: rename alone is atomic in the
  /// namespace but not durable until the directory is synced.
  virtual void fsync_dir(const std::string& dir) = 0;
  /// Creates `dir` (single level); an already-existing directory is not an
  /// error.
  virtual void mkdir(const std::string& dir) = 0;

  /// Convenience: the whole file as bytes.
  [[nodiscard]] std::vector<std::uint8_t> read_all(const std::string& path);
};

/// The process-wide POSIX-backed Vfs. Every persistence entry point takes
/// an optional Vfs* and falls back to this when given nullptr.
[[nodiscard]] Vfs& real_vfs();

[[nodiscard]] inline Vfs& vfs_or_real(Vfs* vfs) noexcept {
  return vfs != nullptr ? *vfs : real_vfs();
}

/// Directory part of `path` ("." when it has none). Pure string math — no
/// filesystem access.
[[nodiscard]] std::string parent_dir(const std::string& path);

}  // namespace ipregel::io
