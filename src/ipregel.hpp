#pragma once

/// iPregel — umbrella header for the public API.
///
/// A combiner-based in-memory shared-memory vertex-centric framework,
/// reproducing Capelli, Hu & Zakian, ICPP 2018.
///
/// Typical use:
///
///   #include "ipregel.hpp"
///
///   auto edges = ipregel::graph::load_edge_list_text("graph.txt");
///   auto g = ipregel::graph::CsrGraph::build(
///       edges, {.addressing = ipregel::graph::AddressingMode::kOffset,
///               .build_in_edges = true});
///   ipregel::Engine<ipregel::apps::PageRank, ipregel::CombinerKind::kPull,
///                   /*Bypass=*/false>
///       engine(g, ipregel::apps::PageRank{.rounds = 30});
///   auto result = engine.run();
///   double rank_of_7 = engine.value_of(7);

#include "core/config.hpp"
#include "core/engine.hpp"
#include "core/frontier.hpp"
#include "core/mailbox.hpp"
#include "core/program_traits.hpp"
#include "core/run_error.hpp"
#include "core/runner.hpp"
#include "ft/binary_format.hpp"
#include "ft/checkpoint.hpp"
#include "ft/fault.hpp"
#include "ft/fingerprint.hpp"
#include "ft/snapshot.hpp"
#include "ft/supervisor.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "graph/edge_stream.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "graph/io.hpp"
#include "graph/types.hpp"
#include "query/broker.hpp"
#include "query/epoch.hpp"
#include "query/point_query.hpp"
#include "query/result_cache.hpp"
#include "query/service.hpp"
#include "runtime/memory_tracker.hpp"
#include "service/degradation.hpp"
#include "store/page_cache.hpp"
#include "store/page_error.hpp"
#include "store/page_format.hpp"
#include "store/paged_graph.hpp"
#include "store/paged_store.hpp"
#include "store/store_writer.hpp"
#include "store/streaming_runner.hpp"
#include "service/job.hpp"
#include "service/job_manager.hpp"
#include "service/shed.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"
