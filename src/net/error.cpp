#include "net/error.hpp"

#include <cstring>

namespace ipregel::net {

namespace {
std::string build_what(NetOp op, const std::string& endpoint, int errno_value,
                       const std::string& detail) {
  std::string what = "net ";
  what += to_string(op);
  what += " failed";
  if (!endpoint.empty()) {
    what += " on ";
    what += endpoint;
  }
  if (errno_value != 0) {
    what += ": ";
    what += std::strerror(errno_value);
  }
  if (!detail.empty()) {
    what += " (";
    what += detail;
    what += ")";
  }
  return what;
}
}  // namespace

NetError::NetError(NetOp op, std::string endpoint, int errno_value,
                   const std::string& detail)
    : std::runtime_error(build_what(op, endpoint, errno_value, detail)),
      op_(op),
      endpoint_(std::move(endpoint)),
      errno_(errno_value) {}

}  // namespace ipregel::net
