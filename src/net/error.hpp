#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ipregel::net {

/// The socket operation a NetError happened in — the network analogue of
/// io::IoOp. One enum value per syscall family the transport layer uses,
/// so callers can branch on *what* failed instead of string-matching
/// what().
enum class NetOp : std::uint8_t {
  kSocket,
  kBind,
  kListen,
  kAccept,
  kConnect,
  kSend,
  kRecv,
  kPoll,
  kSockopt,
  kName,
};

[[nodiscard]] constexpr std::string_view to_string(NetOp op) noexcept {
  switch (op) {
    case NetOp::kSocket:
      return "socket";
    case NetOp::kBind:
      return "bind";
    case NetOp::kListen:
      return "listen";
    case NetOp::kAccept:
      return "accept";
    case NetOp::kConnect:
      return "connect";
    case NetOp::kSend:
      return "send";
    case NetOp::kRecv:
      return "recv";
    case NetOp::kPoll:
      return "poll";
    case NetOp::kSockopt:
      return "sockopt";
    case NetOp::kName:
      return "name";
  }
  return "invalid";
}

/// A network operation failed. Mirrors io::IoError's shape — operation,
/// endpoint it was applied to, errno — so the transport layer's failures
/// carry the same diagnosable context as the storage layer's. errno 0
/// marks protocol-level failures (malformed datagram, handshake refused)
/// that have no syscall errno.
class NetError : public std::runtime_error {
 public:
  NetError(NetOp op, std::string endpoint, int errno_value,
           const std::string& detail = {});

  [[nodiscard]] NetOp op() const noexcept { return op_; }
  [[nodiscard]] const std::string& endpoint() const noexcept {
    return endpoint_;
  }
  /// The errno value at failure (ECONNREFUSED, ETIMEDOUT, ...); 0 for
  /// protocol-level failures.
  [[nodiscard]] int errno_value() const noexcept { return errno_; }

 private:
  NetOp op_;
  std::string endpoint_;
  int errno_;
};

}  // namespace ipregel::net
