#include "net/faulty_socket.hpp"

#include <algorithm>

namespace ipregel::net {

void FaultySocket::arm(const SocketFault& fault) {
  switch (fault.kind) {
    case SocketFault::Kind::kNone:
      break;
    case SocketFault::Kind::kShortWrite:
      short_write_cap_ = fault.arg == 0 ? 1 : fault.arg;
      break;
    case SocketFault::Kind::kShortRead:
      short_read_cap_ = fault.arg == 0 ? 1 : fault.arg;
      break;
    case SocketFault::Kind::kResetMidWrite:
      reset_mid_write_ = true;
      reset_after_bytes_ = fault.arg;
      break;
    case SocketFault::Kind::kCloseBeforeWrite:
      sock_.close();
      break;
    case SocketFault::Kind::kMute:
      muted_ = true;
      break;
  }
}

void FaultySocket::trip_at(std::uint64_t op) {
  for (const SocketFault& fault : plan_.faults) {
    if (fault.at_op == op) {
      arm(fault);
    }
  }
}

void FaultySocket::begin_send_op() {
  trip_at(send_ops_);
  ++send_ops_;
}

void FaultySocket::begin_recv_op() {
  trip_at(recv_ops_);
  ++recv_ops_;
}

void FaultySocket::inject(SocketFault::Kind kind, std::uint64_t arg) {
  SocketFault fault;
  fault.kind = kind;
  fault.arg = arg;
  arm(fault);
}

IoStatus FaultySocket::send_some(const void* buf, std::size_t n,
                                 std::size_t& done) {
  done = 0;
  if (muted_) {
    return IoStatus::kWouldBlock;
  }
  if (reset_mid_write_) {
    // Write a prefix of the frame so the peer parses a torn frame, then
    // slam the connection with an RST.
    const std::size_t prefix =
        std::min<std::size_t>(n, reset_after_bytes_ == 0
                                     ? (n > 1 ? n / 2 : 0)
                                     : reset_after_bytes_);
    if (prefix > 0) {
      std::size_t wrote = 0;
      (void)sock_.send_some(buf, prefix, wrote);
    }
    reset_mid_write_ = false;
    sock_.hard_reset();
    return IoStatus::kClosed;
  }
  std::size_t cap = n;
  if (short_write_cap_ != 0) {
    cap = std::min<std::size_t>(cap, short_write_cap_);
  }
  const IoStatus status = sock_.send_some(buf, cap, done);
  if (status == IoStatus::kOk && short_write_cap_ != 0) {
    short_write_cap_ = 0;
  }
  return status;
}

IoStatus FaultySocket::recv_some(void* buf, std::size_t n, std::size_t& done) {
  done = 0;
  if (muted_) {
    return IoStatus::kWouldBlock;
  }
  std::size_t cap = n;
  if (short_read_cap_ != 0) {
    cap = std::min<std::size_t>(cap, short_read_cap_);
  }
  const IoStatus status = sock_.recv_some(buf, cap, done);
  if (status == IoStatus::kOk && short_read_cap_ != 0) {
    short_read_cap_ = 0;
  }
  return status;
}

}  // namespace ipregel::net
