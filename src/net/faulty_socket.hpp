#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/socket.hpp"

namespace ipregel::net {

/// A scripted socket fault in the FaultyVfs mold: deterministic,
/// triggered by a counted frame operation rather than a timer, so a
/// seeded plan replays identically run after run. Ops are counted by the
/// framing layer — begin_send_op() fires when a frame's first byte is
/// about to be written, begin_recv_op() when a frame's header starts to
/// be read — which makes "RST in the middle of the 3rd frame" a
/// well-defined, repeatable event.
struct SocketFault {
  enum class Kind : std::uint8_t {
    kNone,
    /// The next send is capped to `arg` bytes (frame written in pieces —
    /// exercises partial-write resume).
    kShortWrite,
    /// The next recv is capped to `arg` bytes (header/payload arrive in
    /// pieces — exercises partial-read resume).
    kShortRead,
    /// `arg` bytes of the frame are written, then the socket is closed
    /// with SO_LINGER{0}: the peer sees ECONNRESET mid-frame.
    kResetMidWrite,
    /// The connection is dropped (orderly close) before the frame is
    /// written at all.
    kCloseBeforeWrite,
    /// All I/O reports kWouldBlock until lifted (a stall / mute window).
    /// Armed by a counted op or imperatively; lifted by unmute().
    kMute,
  };

  Kind kind = Kind::kNone;
  /// Frame-op index the fault trips at (0 = the first frame after the
  /// plan is armed). Send-side kinds count send ops, kShortRead counts
  /// recv ops, kMute counts whichever op direction fires first at/after
  /// at_op.
  std::uint64_t at_op = 0;
  /// Byte cap for short/reset kinds (0 = half the requested length).
  std::uint64_t arg = 0;
};

/// Deterministic fault plan for one connection.
struct SocketFaultPlan {
  std::vector<SocketFault> faults;
};

/// A Socket wrapper that executes a SocketFaultPlan and imperative fault
/// directives from the transport layer. Wraps every connection the TCP
/// transport makes; with an empty plan it is a pass-through.
class FaultySocket {
 public:
  FaultySocket() = default;
  explicit FaultySocket(Socket sock, SocketFaultPlan plan = {})
      : sock_(std::move(sock)), plan_(std::move(plan)) {}

  FaultySocket(FaultySocket&&) = default;
  FaultySocket& operator=(FaultySocket&&) = default;

  [[nodiscard]] bool valid() const noexcept { return sock_.valid(); }
  [[nodiscard]] int fd() const noexcept { return sock_.fd(); }
  void close() noexcept { sock_.close(); }
  void hard_reset() noexcept { sock_.hard_reset(); }

  /// Frame-op boundaries, called by FrameStream. Trip matching planned
  /// faults.
  void begin_send_op();
  void begin_recv_op();

  [[nodiscard]] std::uint64_t send_ops() const noexcept { return send_ops_; }
  [[nodiscard]] std::uint64_t recv_ops() const noexcept { return recv_ops_; }

  /// Imperative injection (used by the transport when a shard-level
  /// NetFault trips): arms the same states a planned fault would.
  void inject(SocketFault::Kind kind, std::uint64_t arg = 0);
  /// Lifts a kMute window.
  void unmute() noexcept { muted_ = false; }
  [[nodiscard]] bool muted() const noexcept { return muted_; }

  IoStatus send_some(const void* buf, std::size_t n, std::size_t& done);
  IoStatus recv_some(void* buf, std::size_t n, std::size_t& done);

 private:
  void arm(const SocketFault& fault);
  void trip_at(std::uint64_t op);

  Socket sock_;
  SocketFaultPlan plan_;
  std::uint64_t send_ops_ = 0;
  std::uint64_t recv_ops_ = 0;

  // Armed one-shot states.
  std::uint64_t short_write_cap_ = 0;  // 0 = not armed
  std::uint64_t short_read_cap_ = 0;
  bool reset_mid_write_ = false;
  std::uint64_t reset_after_bytes_ = 0;
  bool muted_ = false;
};

}  // namespace ipregel::net
