#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/error.hpp"

namespace ipregel::net {

namespace {

[[nodiscard]] bool closed_errno(int err) noexcept {
  return err == EPIPE || err == ECONNRESET || err == ECONNABORTED ||
         err == ENOTCONN || err == ETIMEDOUT;
}

void enable_nodelay(int fd) {
  int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    throw NetError(NetOp::kSockopt, "tcp", errno, "TCP_NODELAY");
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::tcp() {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw NetError(NetOp::kSocket, "tcp", errno);
  }
  return Socket(fd);
}

int Socket::release() noexcept {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

IoStatus Socket::send_some(const void* buf, std::size_t n, std::size_t& done) {
  done = 0;
  if (fd_ < 0) {
    return IoStatus::kClosed;
  }
  for (;;) {
    const ssize_t rc = ::send(fd_, buf, n, MSG_NOSIGNAL);
    if (rc >= 0) {
      done = static_cast<std::size_t>(rc);
      return IoStatus::kOk;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoStatus::kWouldBlock;
    }
    if (closed_errno(errno)) {
      return IoStatus::kClosed;
    }
    throw NetError(NetOp::kSend, "tcp fd " + std::to_string(fd_), errno);
  }
}

IoStatus Socket::recv_some(void* buf, std::size_t n, std::size_t& done) {
  done = 0;
  if (fd_ < 0) {
    return IoStatus::kClosed;
  }
  for (;;) {
    const ssize_t rc = ::recv(fd_, buf, n, 0);
    if (rc > 0) {
      done = static_cast<std::size_t>(rc);
      return IoStatus::kOk;
    }
    if (rc == 0) {
      return IoStatus::kClosed;  // orderly EOF
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return IoStatus::kWouldBlock;
    }
    if (closed_errno(errno)) {
      return IoStatus::kClosed;
    }
    throw NetError(NetOp::kRecv, "tcp fd " + std::to_string(fd_), errno);
  }
}

void Socket::set_nodelay() { enable_nodelay(fd_); }

void Socket::hard_reset() noexcept {
  if (fd_ < 0) {
    return;
  }
  struct linger lg {};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  // Best-effort: if setsockopt fails we still close, degrading to FIN.
  (void)::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd_);
  fd_ = -1;
}

Listener Listener::loopback() {
  Socket sock = Socket::tcp();

  int one = 1;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    throw NetError(NetOp::kSockopt, "listener", errno, "SO_REUSEADDR");
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw NetError(NetOp::kBind, "127.0.0.1:0", errno);
  }
  if (::listen(sock.fd(), SOMAXCONN) != 0) {
    throw NetError(NetOp::kListen, "127.0.0.1", errno);
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    throw NetError(NetOp::kName, "listener", errno);
  }

  Listener listener;
  listener.sock_ = std::move(sock);
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

std::optional<Socket> Listener::accept() {
  if (!sock_.valid()) {
    return std::nullopt;
  }
  for (;;) {
    const int fd =
        ::accept4(sock_.fd(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) {
      Socket conn(fd);
      conn.set_nodelay();
      return conn;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return std::nullopt;
    }
    // A connection that died while queued surfaces as ECONNABORTED —
    // treat it like an empty backlog, the peer will retry.
    if (errno == ECONNABORTED) {
      return std::nullopt;
    }
    throw NetError(NetOp::kAccept, "127.0.0.1:" + std::to_string(port_),
                   errno);
  }
}

Socket connect_loopback(std::uint16_t port) {
  Socket sock = Socket::tcp();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (;;) {
    const int rc = ::connect(
        sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    if (rc == 0 || errno == EINPROGRESS) {
      return sock;
    }
    if (errno == EINTR) {
      // POSIX: the connect continues asynchronously after EINTR.
      return sock;
    }
    if (errno == ECONNREFUSED || errno == EAGAIN || errno == ENETUNREACH ||
        errno == EADDRNOTAVAIL || errno == ETIMEDOUT) {
      // Expected refusals (peer not up yet, partition window). Return an
      // invalid socket; the caller's connect_probe path counts it as a
      // failed attempt and backs off.
      sock.close();
      return sock;
    }
    throw NetError(NetOp::kConnect, "127.0.0.1:" + std::to_string(port),
                   errno);
  }
}

ConnectState connect_probe(Socket& sock) {
  if (!sock.valid()) {
    return ConnectState::kFailed;
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    throw NetError(NetOp::kSockopt, "connect probe", errno, "SO_ERROR");
  }
  if (err == 0) {
    sock.set_nodelay();
    return ConnectState::kUp;
  }
  if (err == EINPROGRESS || err == EALREADY) {
    return ConnectState::kPending;
  }
  sock.close();
  return ConnectState::kFailed;
}

}  // namespace ipregel::net
