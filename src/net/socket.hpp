#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace ipregel::net {

/// Outcome of one nonblocking I/O attempt. The transport layer never
/// blocks inside a socket call — kWouldBlock sends it back to poll(),
/// kClosed marks the connection dead (EOF, RST, EPIPE) and triggers
/// reconnect, and only genuinely unexpected errnos become NetError.
enum class IoStatus : std::uint8_t {
  kOk,
  kWouldBlock,
  kClosed,
};

/// RAII wrapper over a nonblocking TCP socket fd. Move-only; closes on
/// destruction. All I/O retries EINTR internally and reports EPIPE /
/// ECONNRESET / EOF as kClosed instead of throwing — connection death is
/// an expected event on a network path, not an exception.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// A fresh nonblocking close-on-exec TCP socket.
  [[nodiscard]] static Socket tcp();

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  /// Releases ownership of the fd without closing it.
  [[nodiscard]] int release() noexcept;
  void close() noexcept;

  /// Sends up to `n` bytes; `done` gets the count actually written.
  IoStatus send_some(const void* buf, std::size_t n, std::size_t& done);
  /// Receives up to `n` bytes; `done` gets the count actually read.
  /// A clean EOF (done == 0 on kOk from recv) reports kClosed.
  IoStatus recv_some(void* buf, std::size_t n, std::size_t& done);

  /// Disables Nagle — frames are latency-sensitive barrier traffic.
  void set_nodelay();

  /// Closes with SO_LINGER{on, 0}: the kernel sends RST instead of FIN,
  /// and the peer sees ECONNRESET possibly mid-frame. This is how the
  /// fault injector simulates an abrupt peer death.
  void hard_reset() noexcept;

 private:
  int fd_ = -1;
};

/// A loopback TCP listener on an ephemeral port, nonblocking + cloexec.
/// The sharded runtime binds all listeners before fork() so every worker
/// knows every peer's port with no discovery protocol; the parent keeps
/// the fds open so a respawned worker inherits the SAME port and peers
/// reconnect without re-rendezvous.
class Listener {
 public:
  Listener() = default;

  /// Binds 127.0.0.1:0 and listens.
  [[nodiscard]] static Listener loopback();

  [[nodiscard]] bool valid() const noexcept { return sock_.valid(); }
  [[nodiscard]] int fd() const noexcept { return sock_.fd(); }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  void close() noexcept { sock_.close(); }

  /// Accepts one pending connection, nonblocking; nullopt when the
  /// backlog is empty. The returned socket is nonblocking + NODELAY.
  [[nodiscard]] std::optional<Socket> accept();

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Starts a nonblocking connect to 127.0.0.1:port. Returns the in-flight
/// socket; completion is observed by polling it writable and calling
/// connect_probe. An immediately-refused connect still returns a socket —
/// the probe reports the failure — so callers have one code path.
[[nodiscard]] Socket connect_loopback(std::uint16_t port);

/// Where an in-flight connect stands after poll() said writable (or
/// before, in which case kPending).
enum class ConnectState : std::uint8_t {
  kPending,
  kUp,
  kFailed,
};

/// Checks SO_ERROR on an in-flight connect. kUp: established (NODELAY is
/// set). kFailed: refused/timed out; the socket is closed.
[[nodiscard]] ConnectState connect_probe(Socket& sock);

}  // namespace ipregel::net
