#include "net/stream.hpp"

#include <cstring>

namespace ipregel::net {

void FrameStream::queue(std::vector<std::uint8_t> encoded_frame) {
  queued_bytes_ += encoded_frame.size();
  queue_.push_back(std::move(encoded_frame));
}

bool FrameStream::pump_writes() {
  if (dead()) {
    return false;
  }
  while (!queue_.empty()) {
    const std::vector<std::uint8_t>& front = queue_.front();
    if (front_offset_ == 0) {
      sock_.begin_send_op();
      if (!sock_.valid()) {  // kCloseBeforeWrite fault
        dead_ = true;
        return false;
      }
    }
    std::size_t done = 0;
    const IoStatus status = sock_.send_some(
        front.data() + front_offset_, front.size() - front_offset_, done);
    front_offset_ += done;
    queued_bytes_ -= done;
    if (front_offset_ == front.size()) {
      queue_.pop_front();
      front_offset_ = 0;
      continue;
    }
    if (status == IoStatus::kWouldBlock) {
      return true;
    }
    if (status == IoStatus::kClosed) {
      dead_ = true;
      return false;
    }
  }
  return true;
}

std::optional<Frame> FrameStream::poll_frame() {
  if (dead()) {
    return std::nullopt;
  }
  if (!header_done_) {
    if (header_have_ == 0) {
      sock_.begin_recv_op();
    }
    std::size_t done = 0;
    const IoStatus status = sock_.recv_some(
        header_buf_ + header_have_, sizeof(WireHeader) - header_have_, done);
    header_have_ += done;
    if (header_have_ < sizeof(WireHeader)) {
      if (status == IoStatus::kClosed) {
        dead_ = true;
      }
      return std::nullopt;
    }
    std::memcpy(&header_, header_buf_, sizeof(WireHeader));
    // Validate before allocating the payload buffer: a corrupt
    // payload_len must not drive an allocation.
    try {
      check_header(header_, max_payload_);
    } catch (const WireError&) {
      dead_ = true;
      throw;
    }
    header_done_ = true;
    payload_.assign(header_.payload_len, 0);
    payload_have_ = 0;
  }

  if (payload_have_ < payload_.size()) {
    std::size_t done = 0;
    const IoStatus status = sock_.recv_some(
        payload_.data() + payload_have_, payload_.size() - payload_have_, done);
    payload_have_ += done;
    if (payload_have_ < payload_.size()) {
      if (status == IoStatus::kClosed) {
        dead_ = true;
      }
      return std::nullopt;
    }
  }

  try {
    check_frame(header_, payload_, max_payload_);
  } catch (const WireError&) {
    dead_ = true;
    throw;
  }

  Frame frame;
  frame.header = header_;
  frame.payload = std::move(payload_);
  payload_.clear();
  payload_have_ = 0;
  header_have_ = 0;
  header_done_ = false;
  return frame;
}

}  // namespace ipregel::net
