#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "net/faulty_socket.hpp"
#include "net/wire.hpp"

namespace ipregel::net {

/// A nonblocking, length-prefixed frame stream over one TCP connection.
/// Owns the write queue (whole encoded frames) and the incremental read
/// state machine (header, then payload, then CRC check), so callers deal
/// only in complete validated frames. Never blocks: pump_writes() and
/// poll_frame() each do as much work as the socket allows and return.
///
/// Death is a state, not an exception: EOF/RST flips dead(); a frame
/// that fails wire validation ALSO poisons the stream (dead() set before
/// the WireError propagates) because a desynchronized byte stream cannot
/// be re-synchronized — the connection must be rebuilt and resynced at
/// the frame-protocol level.
class FrameStream {
 public:
  FrameStream() = default;
  FrameStream(FaultySocket sock, std::size_t max_payload)
      : sock_(std::move(sock)), max_payload_(max_payload) {}

  FrameStream(FrameStream&&) = default;
  FrameStream& operator=(FrameStream&&) = default;

  [[nodiscard]] bool valid() const noexcept { return sock_.valid(); }
  [[nodiscard]] bool dead() const noexcept { return dead_ || !sock_.valid(); }
  [[nodiscard]] int fd() const noexcept { return sock_.fd(); }
  [[nodiscard]] FaultySocket& socket() noexcept { return sock_; }

  /// Queues one fully-encoded frame (from encode_frame / encode_hello).
  void queue(std::vector<std::uint8_t> encoded_frame);
  [[nodiscard]] std::size_t queued_bytes() const noexcept {
    return queued_bytes_;
  }
  [[nodiscard]] bool write_idle() const noexcept { return queue_.empty(); }

  /// Writes as much queued data as the socket accepts. Returns false when
  /// the connection died.
  bool pump_writes();

  /// Reads as much as available and returns the next complete frame, or
  /// nullopt if none is complete yet (or the stream is dead). Throws
  /// WireError on a corrupt frame (stream is marked dead first).
  [[nodiscard]] std::optional<Frame> poll_frame();

  /// Tears the connection down with an RST (fault injection / stale-
  /// incarnation rejection).
  void hard_reset() noexcept {
    sock_.hard_reset();
    dead_ = true;
  }
  void close() noexcept {
    sock_.close();
    dead_ = true;
  }

 private:
  FaultySocket sock_;
  std::size_t max_payload_ = 0;
  bool dead_ = false;

  // Write side: whole frames, front one possibly partially sent.
  std::deque<std::vector<std::uint8_t>> queue_;
  std::size_t front_offset_ = 0;
  std::size_t queued_bytes_ = 0;

  // Read side state machine.
  std::uint8_t header_buf_[sizeof(WireHeader)] = {};
  std::size_t header_have_ = 0;
  bool header_done_ = false;
  WireHeader header_{};
  std::vector<std::uint8_t> payload_;
  std::size_t payload_have_ = 0;
};

}  // namespace ipregel::net
