#include "net/wire.hpp"

#include <cstring>
#include <string>

#include "ft/binary_format.hpp"

namespace ipregel::net {

WireError::WireError(WireErrorKind kind, const std::string& detail)
    : std::runtime_error("wire frame rejected: " + std::string(to_string(kind)) +
                         (detail.empty() ? "" : " (" + detail + ")")),
      kind_(kind) {}

std::uint32_t frame_crc(const WireHeader& header,
                        std::span<const std::uint8_t> payload) noexcept {
  WireHeader scratch = header;
  scratch.crc = 0;
  std::uint32_t crc = ft::crc32(&scratch, sizeof(scratch));
  return ft::crc32(payload.data(), payload.size(), crc);
}

void seal_header(WireHeader& header,
                 std::span<const std::uint8_t> payload) noexcept {
  header.payload_len = static_cast<std::uint32_t>(payload.size());
  header.crc = frame_crc(header, payload);
}

void check_header(const WireHeader& header, std::size_t max_payload) {
  if (!frame_kind_valid(header.kind)) {
    throw WireError(WireErrorKind::kBadKind,
                    "kind " + std::to_string(header.kind));
  }
  if (header.payload_len > max_payload) {
    throw WireError(WireErrorKind::kOversizedPayload,
                    std::to_string(header.payload_len) + " > limit " +
                        std::to_string(max_payload));
  }
}

void check_frame(const WireHeader& header,
                 std::span<const std::uint8_t> payload,
                 std::size_t max_payload) {
  check_header(header, max_payload);
  if (payload.size() != header.payload_len) {
    throw WireError(WireErrorKind::kTruncatedPayload,
                    std::to_string(payload.size()) + " of " +
                        std::to_string(header.payload_len) + " bytes");
  }
  if (frame_crc(header, payload) != header.crc) {
    throw WireError(WireErrorKind::kBadCrc);
  }
}

std::vector<std::uint8_t> encode_frame(FrameKind kind, std::uint16_t src,
                                       std::uint64_t superstep,
                                       std::span<const std::uint8_t> payload) {
  WireHeader header{};
  header.kind = static_cast<std::uint16_t>(kind);
  header.src = src;
  header.superstep = superstep;
  seal_header(header, payload);

  std::vector<std::uint8_t> bytes(sizeof(WireHeader) + payload.size());
  std::memcpy(bytes.data(), &header, sizeof(header));
  if (!payload.empty()) {
    std::memcpy(bytes.data() + sizeof(header), payload.data(), payload.size());
  }
  return bytes;
}

Frame decode_frame(std::span<const std::uint8_t> bytes,
                   std::size_t max_payload) {
  if (bytes.size() < sizeof(WireHeader)) {
    throw WireError(WireErrorKind::kTruncatedHeader,
                    std::to_string(bytes.size()) + " of " +
                        std::to_string(sizeof(WireHeader)) + " bytes");
  }
  WireHeader header{};
  std::memcpy(&header, bytes.data(), sizeof(header));
  check_header(header, max_payload);
  const std::span<const std::uint8_t> payload =
      bytes.subspan(sizeof(WireHeader));
  if (payload.size() < header.payload_len) {
    throw WireError(WireErrorKind::kTruncatedPayload,
                    std::to_string(payload.size()) + " of " +
                        std::to_string(header.payload_len) + " bytes");
  }
  Frame frame;
  frame.header = header;
  frame.payload.assign(payload.begin(), payload.begin() + header.payload_len);
  check_frame(frame.header, frame.payload, max_payload);
  return frame;
}

std::vector<std::uint8_t> encode_hello(HelloRole role, std::uint16_t shard,
                                       std::uint64_t generation,
                                       std::uint64_t epoch,
                                       std::uint64_t pid) {
  WireHello hello{};
  hello.role = static_cast<std::uint16_t>(role);
  hello.shard = shard;
  hello.generation = generation;
  hello.epoch = epoch;
  hello.pid = pid;
  std::vector<std::uint8_t> payload(sizeof(hello));
  std::memcpy(payload.data(), &hello, sizeof(hello));
  return encode_frame(FrameKind::kHello, shard, generation, payload);
}

WireHello decode_hello(std::span<const std::uint8_t> payload) {
  // The version field sits in the fixed v1 prefix, so it can be examined
  // before deciding how many bytes the full hello must have.
  if (payload.size() < kWireHelloV1Bytes) {
    throw WireError(WireErrorKind::kTruncatedPayload,
                    "hello of " + std::to_string(payload.size()) + " bytes");
  }
  // Stage through a zeroed full-size buffer so a v1 prefix decodes with
  // the v2 fields at their wire-neutral zero values.
  std::uint8_t raw[sizeof(WireHello)] = {};
  std::memcpy(raw, payload.data(), kWireHelloV1Bytes);
  WireHello hello{};
  std::memcpy(&hello, raw, sizeof(hello));
  if (hello.magic != kHelloMagic) {
    throw WireError(WireErrorKind::kBadMagic);
  }
  if (hello.version < kWireVersionMinAccepted ||
      hello.version > kWireVersion) {
    throw WireError(WireErrorKind::kBadVersion,
                    "peer speaks v" + std::to_string(hello.version) +
                        ", this build speaks v" + std::to_string(kWireVersion));
  }
  if (hello.version >= 2) {
    if (payload.size() < sizeof(WireHello)) {
      throw WireError(WireErrorKind::kTruncatedPayload,
                      "v2 hello of " + std::to_string(payload.size()) +
                          " bytes");
    }
    std::memcpy(&hello, payload.data(), sizeof(hello));
  }
  return hello;
}

}  // namespace ipregel::net
