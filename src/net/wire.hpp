#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace ipregel::net {

/// Wire protocol version. Bumped on any layout change to WireHeader or
/// WireHello; a peer speaking an unknown version is rejected at the
/// handshake with a typed WireError, never silently misparsed. v2 extended
/// the hello with the coordinator fencing epoch and the sender's pid; v1
/// hellos are still decoded (epoch/pid read as 0) so the version bump
/// itself cannot strand a mid-upgrade pair.
inline constexpr std::uint32_t kWireVersion = 2;

/// The last wire version this build still accepts at the handshake.
inline constexpr std::uint32_t kWireVersionMinAccepted = 1;

/// Magic prefix of a hello payload ("IPGH" little-endian). Connecting a
/// non-ipregel client (or a stale build) trips kBadMagic instead of
/// letting garbage reach the frame parser.
inline constexpr std::uint32_t kHelloMagic = 0x48475049u;

/// What a frame carries. Shared between the shm rings (kData only) and
/// the TCP streams (all kinds).
enum class FrameKind : std::uint16_t {
  /// A superstep's combined message batch from one shard to another.
  kData = 1,
  /// An encoded shard::CtrlMsg (control plane over TCP).
  kCtrl = 2,
  /// Connection handshake; payload is a WireHello.
  kHello = 3,
  /// Final vertex values returned to the coordinator at halt (TCP only);
  /// payload is a sequence of [u64 board_offset][u32 len][len bytes]
  /// records.
  kValues = 4,
};

[[nodiscard]] constexpr bool frame_kind_valid(std::uint16_t kind) noexcept {
  return kind >= 1 && kind <= 4;
}

/// The frame header shared by the shm rings and the TCP streams: a
/// length-prefixed envelope with the sender, the superstep the payload
/// belongs to, and a CRC32 sealing header+payload. Like the ft binary
/// formats this is a native-layout structure, not an interchange format —
/// both ends of a link are the same build on the same host (shm) or an
/// explicitly version-handshaked peer (TCP).
struct WireHeader {
  std::uint32_t payload_len = 0;
  std::uint16_t kind = static_cast<std::uint16_t>(FrameKind::kData);
  std::uint16_t src = 0;
  std::uint64_t superstep = 0;
  /// CRC32 over payload bytes, seeded with a CRC of the header fields
  /// themselves (crc field zeroed). Sealed by seal(); checked on every
  /// pop/decode.
  std::uint32_t crc = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(WireHeader) == 24, "wire header layout is load-bearing");

/// One received frame: validated header plus owned payload bytes.
struct Frame {
  WireHeader header{};
  std::vector<std::uint8_t> payload;
};

/// Why a frame (or hello) was rejected. Every corruption mode the tests
/// sweep maps to exactly one kind — typed rejection, never a crash or a
/// silent accept.
enum class WireErrorKind : std::uint8_t {
  kTruncatedHeader,
  kTruncatedPayload,
  kBadCrc,
  kOversizedPayload,
  kBadKind,
  kBadMagic,
  kBadVersion,
};

[[nodiscard]] constexpr std::string_view to_string(WireErrorKind k) noexcept {
  switch (k) {
    case WireErrorKind::kTruncatedHeader:
      return "truncated-header";
    case WireErrorKind::kTruncatedPayload:
      return "truncated-payload";
    case WireErrorKind::kBadCrc:
      return "bad-crc";
    case WireErrorKind::kOversizedPayload:
      return "oversized-payload";
    case WireErrorKind::kBadKind:
      return "bad-kind";
    case WireErrorKind::kBadMagic:
      return "bad-magic";
    case WireErrorKind::kBadVersion:
      return "bad-version";
  }
  return "invalid";
}

/// A frame failed validation. The connection (or ring) that produced it
/// is poisoned — callers tear it down and rely on reconnect/resync, they
/// never retry the parse.
class WireError : public std::runtime_error {
 public:
  explicit WireError(WireErrorKind kind, const std::string& detail = {});
  [[nodiscard]] WireErrorKind kind() const noexcept { return kind_; }

 private:
  WireErrorKind kind_;
};

/// CRC32 of header fields (crc zeroed) chained over the payload.
[[nodiscard]] std::uint32_t frame_crc(
    const WireHeader& header, std::span<const std::uint8_t> payload) noexcept;

/// Stamps payload_len and crc. The header is ready to hit the wire (or
/// the ring) afterwards.
void seal_header(WireHeader& header,
                 std::span<const std::uint8_t> payload) noexcept;

/// Validates the fixed fields of a just-parsed header BEFORE its payload
/// is read: kind must be known, payload_len must fit max_payload. Throws
/// WireError; the CRC is checked later, once the payload is in.
void check_header(const WireHeader& header, std::size_t max_payload);

/// Validates a complete frame: check_header + payload length + CRC.
void check_frame(const WireHeader& header,
                 std::span<const std::uint8_t> payload, std::size_t max_payload);

/// Serializes header+payload into one contiguous buffer (header sealed).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    FrameKind kind, std::uint16_t src, std::uint64_t superstep,
    std::span<const std::uint8_t> payload);

/// Parses and fully validates one frame from `bytes`. Throws WireError on
/// any corruption (truncation, oversize vs max_payload, CRC, kind).
[[nodiscard]] Frame decode_frame(std::span<const std::uint8_t> bytes,
                                 std::size_t max_payload);

/// The role a hello announces: which plane the connection carries.
enum class HelloRole : std::uint16_t {
  kData = 1,
  kCtrl = 2,
};

/// Handshake payload of a kHello frame. First bytes on every new
/// connection, both directions; carries the protocol magic/version and
/// the sender's identity so a stale incarnation (or a foreign client) is
/// rejected before any data frame is parsed.
struct WireHello {
  std::uint32_t magic = kHelloMagic;
  std::uint32_t version = kWireVersion;
  std::uint16_t role = static_cast<std::uint16_t>(HelloRole::kData);
  std::uint16_t shard = 0;
  std::uint32_t reserved = 0;
  std::uint64_t generation = 0;
  // --- v2 fields (decoded as 0 from a v1 peer) ---------------------------
  /// Coordinator fencing epoch: on a coordinator's ctrl hello/ack, the
  /// epoch it claims to own the run with (a worker that has obeyed a newer
  /// epoch rejects the connection — the fenced HELLO); on a worker's
  /// hello, the newest epoch it has obeyed. 0 in non-resilient runs.
  std::uint64_t epoch = 0;
  /// Sender's pid on worker hellos, so a takeover coordinator that did not
  /// fork the worker can still supervise and kill it. 0 from coordinators.
  std::uint64_t pid = 0;
};
static_assert(sizeof(WireHello) == 40, "hello layout is load-bearing");

/// Byte size of a v1 hello payload (fields through `generation`).
inline constexpr std::size_t kWireHelloV1Bytes = 24;

[[nodiscard]] std::vector<std::uint8_t> encode_hello(HelloRole role,
                                                     std::uint16_t shard,
                                                     std::uint64_t generation,
                                                     std::uint64_t epoch = 0,
                                                     std::uint64_t pid = 0);

/// Parses a hello payload; throws WireError kBadMagic/kBadVersion (or
/// kTruncatedPayload on a short buffer). Accepts versions in
/// [kWireVersionMinAccepted, kWireVersion]; a v1 payload yields
/// epoch == 0 and pid == 0.
[[nodiscard]] WireHello decode_hello(std::span<const std::uint8_t> payload);

}  // namespace ipregel::net
