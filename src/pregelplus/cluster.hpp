#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#include "graph/csr.hpp"
#include "pregelplus/config.hpp"
#include "pregelplus/worker.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"

namespace pregelplus {

/// The simulated Pregel+ cluster: the paper's baseline (section 7.3).
///
/// Real multi-node hardware is the one resource this reproduction does not
/// have, so the cluster is simulated with a hybrid approach:
///
///  - **Computation is real.** Every worker executes its partition's
///    compute phase, sender-side combining, wrapped-message serialisation,
///    and hashmap-addressed delivery — the architectural overheads the
///    paper's comparison hinges on all actually run and are measured with
///    a wall clock, worker by worker.
///  - **Concurrency and the wire are modelled.** BSP makespan per superstep
///    = max over workers of measured compute time, + max serialisation, +
///    modelled network time (cross-node wrapped-message bytes at the
///    configured per-node bandwidth, full duplex, plus a per-superstep
///    latency), + max delivery time. Intra-node traffic between the two
///    processes of one node is not charged to the network.
///  - **Memory is audited per node.** Partition stores (including the
///    addressing hashmaps), send maps, wire buffers and the per-process
///    redundant environment are summed per node each superstep; exceeding
///    the configured node capacity aborts the run with out_of_memory, the
///    paper's "Pregel+ memory failure" marker in Fig. 8.
template <ipregel::VertexProgram Program>
class Cluster {
 public:
  using Value = typename Program::value_type;
  using WorkerT = Worker<Program>;
  using vid_t = ipregel::graph::vid_t;

  Cluster(const ipregel::graph::CsrGraph& graph, Program program,
          ClusterConfig config, ipregel::runtime::ThreadPool* pool = nullptr)
      : graph_(graph),
        program_(std::move(program)),
        config_(config),
        external_pool_(pool) {
    if (external_pool_ == nullptr) {
      owned_pool_ = std::make_unique<ipregel::runtime::ThreadPool>();
    }
    const std::size_t w = config_.num_workers();
    workers_.reserve(w);
    for (std::size_t i = 0; i < w; ++i) {
      workers_.emplace_back(i, w, program_, graph_);
    }
  }

  /// Runs to completion (or OOM / superstep cap) and returns the simulated
  /// cluster timings.
  SimResult run(std::size_t max_supersteps = static_cast<std::size_t>(-1),
                bool collect_per_superstep = false) {
    SimResult result;
    const std::size_t w = config_.num_workers();
    ipregel::runtime::ThreadPool& pool_ref = pool();
    std::vector<double> compute_s(w);
    std::vector<double> serialize_s(w);
    std::vector<double> deliver_s(w);
    std::vector<typename WorkerT::ComputePhaseStats> stats(w);
    // buffers[src][dst]: wrapped messages in flight this superstep.
    std::vector<std::vector<std::vector<std::byte>>> buffers(
        w, std::vector<std::vector<std::byte>>(w));

    for (std::size_t superstep = 0;; ++superstep) {
      // --- local computation (real, timed per worker) -------------------
      pool_ref.parallel_for_each(w, [&](std::size_t, std::size_t i) {
        ipregel::runtime::Timer t;
        stats[i] = workers_[i].compute_phase(superstep);
        compute_s[i] = t.seconds();
      });

      // Send-map footprint peaks now, before serialisation drains it.
      std::vector<std::size_t> send_map_bytes(w);
      for (std::size_t i = 0; i < w; ++i) {
        send_map_bytes[i] = workers_[i].send_map_bytes(memory_model_);
      }

      // --- serialisation (real, timed per sender) -----------------------
      pool_ref.parallel_for_each(w, [&](std::size_t, std::size_t src) {
        ipregel::runtime::Timer t;
        for (std::size_t dst = 0; dst < w; ++dst) {
          buffers[src][dst] = workers_[src].serialize_for(dst);
        }
        serialize_s[src] = t.seconds();
      });

      // --- network model -------------------------------------------------
      std::vector<std::size_t> node_out(config_.num_nodes, 0);
      std::vector<std::size_t> node_in(config_.num_nodes, 0);
      std::size_t cross_bytes = 0;
      for (std::size_t src = 0; src < w; ++src) {
        for (std::size_t dst = 0; dst < w; ++dst) {
          const std::size_t bytes = buffers[src][dst].size();
          const std::size_t src_node = src / config_.procs_per_node;
          const std::size_t dst_node = dst / config_.procs_per_node;
          if (src_node != dst_node) {
            node_out[src_node] += bytes;
            node_in[dst_node] += bytes;
            cross_bytes += bytes;
          }
        }
      }
      double network_s = 0.0;
      for (std::size_t n = 0; n < config_.num_nodes; ++n) {
        const auto bottleneck =
            static_cast<double>(std::max(node_out[n], node_in[n]));
        network_s = std::max(
            network_s, bottleneck * 8.0 / (config_.bandwidth_mbps * 1e6));
      }
      if (config_.num_nodes > 1) {
        network_s += config_.superstep_latency_s;
      }
      result.cross_node_bytes += cross_bytes;

      // --- delivery (real, timed per receiver) ---------------------------
      pool_ref.parallel_for_each(w, [&](std::size_t, std::size_t dst) {
        ipregel::runtime::Timer t;
        for (std::size_t src = 0; src < w; ++src) {
          workers_[dst].deliver(buffers[src][dst]);
        }
        deliver_s[dst] = t.seconds();
      });

      // --- per-node memory audit -----------------------------------------
      std::vector<std::size_t> node_mem(
          config_.num_nodes,
          config_.process_env_bytes * config_.procs_per_node);
      for (std::size_t i = 0; i < w; ++i) {
        node_mem[i / config_.procs_per_node] +=
            workers_[i].store_bytes(memory_model_) + send_map_bytes[i];
      }
      // Wire buffers live on the sender and the receiver during exchange;
      // the sender-side combining maps peaked before serialisation.
      for (std::size_t src = 0; src < w; ++src) {
        for (std::size_t dst = 0; dst < w; ++dst) {
          const std::size_t bytes = buffers[src][dst].size();
          node_mem[src / config_.procs_per_node] += bytes;
          node_mem[dst / config_.procs_per_node] += bytes;
          buffers[src][dst].clear();
          buffers[src][dst].shrink_to_fit();
        }
      }
      for (std::size_t n = 0; n < config_.num_nodes; ++n) {
        result.peak_node_memory_bytes =
            std::max(result.peak_node_memory_bytes, node_mem[n]);
      }

      // --- simulated BSP makespan for this superstep ----------------------
      const double step_compute =
          *std::max_element(compute_s.begin(), compute_s.end()) +
          *std::max_element(serialize_s.begin(), serialize_s.end()) +
          *std::max_element(deliver_s.begin(), deliver_s.end());
      result.compute_seconds += step_compute;
      result.comm_seconds += network_s;
      const double step_total = step_compute + network_s;
      result.simulated_seconds += step_total;
      if (collect_per_superstep) {
        result.per_superstep_seconds.push_back(step_total);
      }

      std::size_t sent = 0;
      std::size_t active = 0;
      for (const auto& s : stats) {
        sent += s.sent;
        active += s.active;
      }
      result.total_messages += sent;
      result.supersteps = superstep + 1;

      if (config_.node_memory_bytes != 0 &&
          result.peak_node_memory_bytes > config_.node_memory_bytes) {
        result.out_of_memory = true;
        result.oom_superstep = superstep;
        break;
      }
      if (sent == 0 && active == 0) {
        break;
      }
      if (superstep + 1 >= max_supersteps) {
        break;
      }
    }
    return result;
  }

  /// Gathers vertex values from all workers, indexed by graph slot — for
  /// cross-validation against iPregel and the serial references.
  [[nodiscard]] std::vector<Value> collect_values() const {
    std::vector<Value> out(graph_.num_slots());
    for (const auto& worker : workers_) {
      const auto& ids = worker.local_ids();
      for (std::size_t i = 0; i < ids.size(); ++i) {
        out[graph_.slot_of(ids[i])] = worker.local_value(i);
      }
    }
    return out;
  }

  [[nodiscard]] const ClusterConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] ipregel::runtime::ThreadPool& pool() noexcept {
    return external_pool_ != nullptr ? *external_pool_ : *owned_pool_;
  }

  const ipregel::graph::CsrGraph& graph_;
  Program program_;
  ClusterConfig config_;
  MemoryModel memory_model_;
  ipregel::runtime::ThreadPool* external_pool_ = nullptr;
  std::unique_ptr<ipregel::runtime::ThreadPool> owned_pool_;
  std::vector<WorkerT> workers_;
};

}  // namespace pregelplus
