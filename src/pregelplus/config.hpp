#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pregelplus {

/// Describes the simulated cluster the baseline runs on.
///
/// The paper evaluates Pregel+ on 1..16 Amazon EC2 m4.large nodes: 2 cores
/// (hence "two MPI processes are created per node"), 8 GB of memory and a
/// maximum bandwidth of 450 Mb/s each. Those three constants are exactly
/// what this struct parameterises; the benchmark harness scales the memory
/// cap together with the scaled-down graphs.
struct ClusterConfig {
  std::size_t num_nodes = 1;
  std::size_t procs_per_node = 2;  ///< the paper's 2 MPI processes per node
  /// Per-node network bandwidth, paper: 450 Mb/s.
  double bandwidth_mbps = 450.0;
  /// Per-superstep synchronisation/startup latency in seconds (MPI barrier
  /// plus message startup). Charged once per superstep that moves data.
  double superstep_latency_s = 2e-3;
  /// Memory available on each node, paper: 8 GB. 0 disables the OOM check.
  std::size_t node_memory_bytes = 0;
  /// Modelled footprint of one MPI process's redundant environment (the
  /// paper's "multiple instances of both the application and the
  /// distributed software environment ... in the memory of every node").
  std::size_t process_env_bytes = 0;

  [[nodiscard]] std::size_t num_workers() const noexcept {
    return num_nodes * procs_per_node;
  }
};

/// Modelled cost constants for the baseline's data structures, used by the
/// per-node memory accounting. Container payload bytes are measured from
/// the real containers; only allocator/bucket overheads are modelled.
struct MemoryModel {
  /// Bytes per entry of the id -> local-index hashmap (node + bucket
  /// overhead of a chained unordered_map on a 64-bit system).
  std::size_t hashmap_bytes_per_entry = 48;
};

/// Result of a simulated cluster run.
///
/// `simulated_seconds` is the BSP makespan: per superstep, the slowest
/// worker's *measured* compute time, plus modelled network time for the
/// bytes actually exchanged across node boundaries, plus the per-superstep
/// latency. Workers execute for real (message wrapping, serialisation,
/// hashmap addressing and combining all happen), only their concurrency and
/// the wire are modelled.
struct SimResult {
  std::size_t supersteps = 0;
  double simulated_seconds = 0.0;
  double compute_seconds = 0.0;  ///< sum over supersteps of max worker time
  double comm_seconds = 0.0;     ///< modelled network + latency time
  std::uint64_t total_messages = 0;
  std::uint64_t cross_node_bytes = 0;  ///< wrapped-message bytes on the wire
  std::size_t peak_node_memory_bytes = 0;
  bool out_of_memory = false;
  std::size_t oom_superstep = 0;  ///< first superstep exceeding the cap
  std::vector<double> per_superstep_seconds;  ///< filled on request
};

}  // namespace pregelplus
