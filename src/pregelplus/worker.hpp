#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/program_traits.hpp"
#include "graph/csr.hpp"
#include "pregelplus/config.hpp"

namespace pregelplus {

/// One simulated MPI process of the Pregel+ baseline.
///
/// This class re-implements, for real, every architectural trait the paper
/// attributes to in-memory *distributed*-memory frameworks and measures
/// iPregel against (sections 4, 5, 7.4.4):
///
///  - **hash partitioning**: the worker owns the vertices with
///    id % num_workers == worker_id;
///  - **hashmap vertex addressing**: incoming messages resolve their
///    recipient through an id -> local-index unordered_map — the
///    "intermediate layer" with extra memory accesses and bad locality
///    that iPregel's direct/offset mapping eliminates;
///  - **wrapped messages**: remote messages are serialised as
///    (recipient id, payload) pairs — "heavier messages, hence a memory
///    overhead";
///  - **sender-side combining** into per-destination-worker maps (the
///    Pregel+ combiner), then single-slot receiver inboxes;
///  - **scan-all selection**: every superstep iterates all local vertices
///    and checks their state — the "unfruitful checks" of section 4.
///
/// The worker's compute and deliver phases run real code and are timed by
/// the enclosing Cluster; only inter-node transport is modelled.
template <ipregel::VertexProgram Program>
class Worker {
 public:
  using Value = typename Program::value_type;
  using Msg = typename Program::message_type;
  using vid_t = ipregel::graph::vid_t;
  using weight_t = ipregel::graph::weight_t;

  /// Bytes of one wrapped message on the wire.
  static constexpr std::size_t kWireBytesPerMessage =
      sizeof(vid_t) + sizeof(Msg);

  Worker(std::size_t worker_id, std::size_t num_workers,
         const Program& program, const ipregel::graph::CsrGraph& graph)
      : worker_id_(worker_id),
        num_workers_(num_workers),
        program_(&program),
        total_vertices_(graph.num_vertices()) {
    // Build the local partition: copy this worker's share of the topology
    // (each MPI process stores its own partition).
    for (std::size_t slot = graph.first_slot(); slot < graph.num_slots();
         ++slot) {
      const vid_t id = graph.id_of(slot);
      if (id % num_workers_ != worker_id_) {
        continue;
      }
      const auto neighbours = graph.out_neighbours(slot);
      vids_.push_back(id);
      offsets_.push_back(targets_.size());
      targets_.insert(targets_.end(), neighbours.begin(), neighbours.end());
      if (graph.has_weights()) {
        const auto w = graph.out_weights(slot);
        weights_.insert(weights_.end(), w.begin(), w.end());
      }
    }
    offsets_.push_back(targets_.size());
    const std::size_t n = vids_.size();
    index_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      index_.emplace(vids_[i], static_cast<std::uint32_t>(i));
    }
    values_.resize(n);
    halted_.assign(n, 0);
    inbox_.resize(n);
    has_inbox_.assign(n, 0);
    out_maps_.resize(num_workers_);
    for (std::size_t i = 0; i < n; ++i) {
      values_[i] = program.initial_value(vids_[i]);
    }
  }

  /// The vertex view handed to Program::compute — duck-type compatible
  /// with ipregel::Engine::Context, so the same program sources run on
  /// both frameworks.
  class Context {
   public:
    bool get_next_message(Msg& out) noexcept {
      if (!has_msg_) {
        return false;
      }
      out = msg_;
      has_msg_ = false;
      return true;
    }

    void send_message(vid_t dst, const Msg& msg) {
      worker_.send(dst, msg);
      ++worker_.sent_this_step_;
    }

    void broadcast(const Msg& msg) {
      for (const vid_t dst : worker_.neighbours_of(local_)) {
        worker_.send(dst, msg);
      }
      worker_.sent_this_step_ += worker_.neighbours_of(local_).size();
    }

    void vote_to_halt() noexcept { voted_ = true; }

    [[nodiscard]] std::size_t superstep() const noexcept {
      return worker_.superstep_;
    }
    [[nodiscard]] bool is_first_superstep() const noexcept {
      return worker_.superstep_ == 0;
    }
    [[nodiscard]] std::size_t num_vertices() const noexcept {
      return worker_.total_vertices_;
    }
    [[nodiscard]] vid_t id() const noexcept { return worker_.vids_[local_]; }
    [[nodiscard]] Value& value() noexcept { return worker_.values_[local_]; }
    [[nodiscard]] std::size_t out_degree() const noexcept {
      return worker_.neighbours_of(local_).size();
    }
    [[nodiscard]] std::span<const vid_t> out_neighbours() const noexcept {
      return worker_.neighbours_of(local_);
    }
    [[nodiscard]] std::span<const weight_t> out_weights() const noexcept {
      return worker_.weights_of(local_);
    }

   private:
    friend class Worker;
    Context(Worker& worker, std::size_t local, bool has_msg,
            const Msg& msg) noexcept
        : worker_(worker), local_(local), msg_(msg), has_msg_(has_msg) {}

    Worker& worker_;
    std::size_t local_;
    Msg msg_;
    bool has_msg_;
    bool voted_ = false;
  };

  struct ComputePhaseStats {
    std::size_t executed = 0;
    std::size_t active = 0;
    std::size_t sent = 0;
  };

  /// Runs one superstep's local computation: scan-all selection over the
  /// partition, compute on selected vertices, sends combined into the
  /// per-destination maps.
  ComputePhaseStats compute_phase(std::size_t superstep) {
    superstep_ = superstep;
    sent_this_step_ = 0;
    ComputePhaseStats stats;
    const std::size_t n = vids_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const bool has = has_inbox_[i] != 0;
      if (!has && superstep > 0 && halted_[i] != 0) {
        continue;  // the unfruitful check iPregel's bypass removes
      }
      has_inbox_[i] = 0;
      Context ctx(*this, i, has, inbox_[i]);
      program_->compute(ctx);
      halted_[i] = ctx.voted_ ? 1 : 0;
      ++stats.executed;
      if (!ctx.voted_) {
        ++stats.active;
      }
    }
    stats.sent = sent_this_step_;
    return stats;
  }

  /// Serialises the combined outgoing messages for worker `dst` into a
  /// wrapped-message byte buffer and clears the map. Every entry costs
  /// kWireBytesPerMessage — the recipient id travels with the payload.
  [[nodiscard]] std::vector<std::byte> serialize_for(std::size_t dst) {
    auto& map = out_maps_[dst];
    std::vector<std::byte> buffer(map.size() * kWireBytesPerMessage);
    std::size_t at = 0;
    for (const auto& [vid, msg] : map) {
      std::memcpy(buffer.data() + at, &vid, sizeof(vid_t));
      std::memcpy(buffer.data() + at + sizeof(vid_t), &msg, sizeof(Msg));
      at += kWireBytesPerMessage;
    }
    map.clear();
    return buffer;
  }

  /// Ingests a wrapped-message buffer: per message, one hashmap lookup to
  /// locate the recipient (the conventional addressing layer), then a
  /// combine into its single-slot inbox.
  void deliver(std::span<const std::byte> buffer) {
    for (std::size_t at = 0; at + kWireBytesPerMessage <= buffer.size();
         at += kWireBytesPerMessage) {
      vid_t vid;
      Msg msg;
      std::memcpy(&vid, buffer.data() + at, sizeof(vid_t));
      std::memcpy(&msg, buffer.data() + at + sizeof(vid_t), sizeof(Msg));
      const std::uint32_t i = index_.at(vid);
      if (has_inbox_[i] != 0) {
        Program::combine(inbox_[i], msg);
      } else {
        inbox_[i] = msg;
        has_inbox_[i] = 1;
      }
    }
  }

  [[nodiscard]] std::size_t num_local_vertices() const noexcept {
    return vids_.size();
  }
  [[nodiscard]] const std::vector<vid_t>& local_ids() const noexcept {
    return vids_;
  }
  [[nodiscard]] const Value& local_value(std::size_t i) const noexcept {
    return values_[i];
  }

  /// Bytes of the resident vertex store: partition topology + values +
  /// framework state + the addressing hashmap (modelled per-entry cost).
  [[nodiscard]] std::size_t store_bytes(const MemoryModel& model)
      const noexcept {
    return vids_.size() * sizeof(vid_t) +
           offsets_.size() * sizeof(std::size_t) +
           targets_.size() * sizeof(vid_t) +
           weights_.size() * sizeof(weight_t) +
           values_.size() * sizeof(Value) +
           halted_.size() +
           inbox_.size() * sizeof(Msg) + has_inbox_.size() +
           index_.size() * model.hashmap_bytes_per_entry;
  }

  /// Bytes currently held by the sender-side combining maps (modelled
  /// hashmap cost — these are the paper's "sending buffers").
  [[nodiscard]] std::size_t send_map_bytes(const MemoryModel& model)
      const noexcept {
    std::size_t entries = 0;
    for (const auto& m : out_maps_) {
      entries += m.size();
    }
    return entries * (kWireBytesPerMessage + model.hashmap_bytes_per_entry);
  }

 private:
  friend class Context;

  [[nodiscard]] std::span<const vid_t> neighbours_of(
      std::size_t local) const noexcept {
    return {targets_.data() + offsets_[local],
            targets_.data() + offsets_[local + 1]};
  }
  [[nodiscard]] std::span<const weight_t> weights_of(
      std::size_t local) const noexcept {
    return {weights_.data() + offsets_[local],
            weights_.data() + offsets_[local + 1]};
  }

  /// Sender-side combine into the destination worker's outgoing map.
  void send(vid_t dst, const Msg& msg) {
    auto& map = out_maps_[dst % num_workers_];
    const auto [it, inserted] = map.try_emplace(dst, msg);
    if (!inserted) {
      Program::combine(it->second, msg);
    }
  }

  std::size_t worker_id_;
  std::size_t num_workers_;
  const Program* program_;
  std::size_t total_vertices_;
  std::size_t superstep_ = 0;
  std::size_t sent_this_step_ = 0;

  std::vector<vid_t> vids_;
  std::vector<std::size_t> offsets_;
  std::vector<vid_t> targets_;
  std::vector<weight_t> weights_;
  std::unordered_map<vid_t, std::uint32_t> index_;
  std::vector<Value> values_;
  std::vector<std::uint8_t> halted_;
  std::vector<Msg> inbox_;
  std::vector<std::uint8_t> has_inbox_;
  std::vector<std::unordered_map<vid_t, Msg>> out_maps_;
};

}  // namespace pregelplus
