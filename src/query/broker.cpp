#include "query/broker.hpp"

#include <algorithm>
#include <array>
#include <optional>
#include <stdexcept>

#include "apps/multi_bfs.hpp"
#include "apps/ppr.hpp"

namespace ipregel::query {

namespace {

using Clock = std::chrono::steady_clock;

/// True when `id` addresses a populated slot of `g` — the guard between
/// caller-supplied target ids and unchecked slot arithmetic.
[[nodiscard]] bool addressable(const graph::CsrGraph& g,
                               graph::vid_t id) noexcept {
  if (id < g.id_offset()) {
    return false;
  }
  const std::size_t slot = g.slot_of(id);
  return slot >= g.first_slot() && slot < g.num_slots();
}

[[nodiscard]] Clock::time_point deadline_of(const PointQuery& q,
                                            Clock::time_point from) {
  if (q.deadline_seconds <= 0.0) {
    return Clock::time_point::max();
  }
  return from + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(q.deadline_seconds));
}

[[nodiscard]] QueryResult shed_result(service::ShedReason reason) {
  QueryResult r;
  r.status = QueryResult::Status::kShed;
  r.shed_reason = reason;
  return r;
}

}  // namespace

QueryBroker::QueryBroker(GraphRegistry& registry,
                         service::JobManager& jobs, ResultCache* cache)
    : QueryBroker(registry, jobs, cache, Config{}) {}

QueryBroker::QueryBroker(GraphRegistry& registry,
                         service::JobManager& jobs, ResultCache* cache,
                         Config config)
    : registry_(registry), jobs_(jobs), cache_(cache), config_(config) {
  config_.max_batch = std::clamp<std::size_t>(config_.max_batch, 1,
                                              kMaxLanes);
  const std::size_t dispatchers = std::max<std::size_t>(
      1, config_.dispatchers);
  dispatchers_.reserve(dispatchers);
  for (std::size_t i = 0; i < dispatchers; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
}

QueryBroker::~QueryBroker() { shutdown(); }

QueryTicket QueryBroker::submit(PointQuery q) {
  const Clock::time_point now = Clock::now();
  EpochPtr epoch = registry_.current();
  if (epoch == nullptr) {
    throw std::logic_error(
        "QueryBroker::submit: no epoch published — publish a graph first");
  }
  const std::uint64_t key = query_key(q);
  auto state = std::make_shared<detail::QueryState>();

  if (config_.enable_cache && cache_ != nullptr) {
    if (std::optional<QueryResult> hit =
            cache_->lookup(epoch->fingerprint(), key)) {
      {
        const std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) {
          throw service::ShedError(service::ShedReason::kShutdown,
                                   "query broker is shut down");
        }
        ++stats_.submitted;
        ++stats_.cache_hits;
      }
      hit->from_cache = true;
      hit->batch_occupancy = 0;
      hit->latency_seconds =
          std::chrono::duration<double>(Clock::now() - now).count();
      state->fulfil(std::move(*hit));
      return QueryTicket(std::move(state));
    }
  }

  Pending p;
  p.query = std::move(q);
  p.key = key;
  p.epoch = std::move(epoch);
  p.enqueued_at = now;
  p.deadline = deadline_of(p.query, now);
  p.state = state;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      throw service::ShedError(service::ShedReason::kShutdown,
                               "query broker is shut down");
    }
    if (pending_.size() >= config_.max_pending) {
      throw service::ShedError(
          service::ShedReason::kQueueFull,
          "pending queries at bound " +
              std::to_string(config_.max_pending));
    }
    ++stats_.submitted;
    pending_.push_back(std::move(p));
    stats_.max_pending_seen =
        std::max(stats_.max_pending_seen, pending_.size());
  }
  // All dispatchers, not one: a waiter lingering for companions needs the
  // wake-up as much as an idle one.
  work_cv_.notify_all();
  return QueryTicket(std::move(state));
}

void QueryBroker::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : dispatchers_) {
    t.join();
  }
  dispatchers_.clear();
  // Dispatchers are gone; whatever is still pending will never run.
  std::deque<Pending> orphans;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    orphans.swap(pending_);
  }
  for (Pending& p : orphans) {
    resolve(p, shed_result(service::ShedReason::kShutdown));
  }
}

QueryBroker::Stats QueryBroker::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void QueryBroker::dispatcher_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
    if (stopping_) {
      return;  // shutdown() sheds what remains after the join
    }
    Pending head = std::move(pending_.front());
    pending_.pop_front();
    if (Clock::now() >= head.deadline) {
      lock.unlock();
      resolve(head, shed_result(service::ShedReason::kDeadlineExpired));
      lock.lock();
      continue;
    }

    // Linger from the head's ENQUEUE time (not from now): time already
    // spent waiting in the queue counts against the linger budget, so a
    // backlogged service never adds artificial delay.
    const Clock::time_point linger_until =
        head.enqueued_at +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(config_.max_linger_seconds));
    const auto companions = [&] {
      std::size_t n = 1;
      for (const Pending& p : pending_) {
        if (compatible(p, head)) {
          ++n;
        }
      }
      return n;
    };
    while (!stopping_ && companions() < config_.max_batch &&
           Clock::now() < linger_until) {
      if (work_cv_.wait_until(lock, linger_until) ==
          std::cv_status::timeout) {
        break;
      }
    }

    // Re-check the head after lingering: a tight deadline can expire
    // while the head itself waits for companions.
    const Clock::time_point now = Clock::now();
    if (now >= head.deadline) {
      lock.unlock();
      resolve(head, shed_result(service::ShedReason::kDeadlineExpired));
      lock.lock();
      continue;
    }

    std::vector<Pending> batch;
    std::vector<Pending> expired;
    batch.reserve(config_.max_batch);
    batch.push_back(std::move(head));
    for (auto it = pending_.begin();
         it != pending_.end() && batch.size() < config_.max_batch;) {
      if (!compatible(*it, batch.front())) {
        ++it;
        continue;
      }
      if (now >= it->deadline) {
        expired.push_back(std::move(*it));
      } else {
        batch.push_back(std::move(*it));
      }
      it = pending_.erase(it);
    }
    lock.unlock();
    for (Pending& p : expired) {
      resolve(p, shed_result(service::ShedReason::kDeadlineExpired));
    }
    dispatch(std::move(batch));
    lock.lock();
  }
}

void QueryBroker::dispatch(std::vector<Pending> batch) {
  const std::size_t n = batch.size();
  const bool bfs = is_bfs_family(batch.front().query.kind);

  // Lane assignment with in-batch dedup: members asking about the same
  // source (BFS family) or the same seed set (PPR) share one lane. n is
  // at most kMaxLanes, so the quadratic scan is a handful of compares.
  std::vector<std::size_t> lane_of(n);
  std::vector<std::size_t> rep;
  rep.reserve(n);
  std::vector<std::vector<graph::vid_t>> seeds;
  if (!bfs) {
    seeds.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      seeds[i] = batch[i].query.seeds;
      std::sort(seeds[i].begin(), seeds[i].end());
      seeds[i].erase(std::unique(seeds[i].begin(), seeds[i].end()),
                     seeds[i].end());
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t lane = rep.size();
    for (std::size_t l = 0; l < rep.size(); ++l) {
      const std::size_t j = rep[l];
      const bool same = bfs ? batch[j].query.source == batch[i].query.source
                            : seeds[j] == seeds[i];
      if (same) {
        lane = l;
        break;
      }
    }
    if (lane == rep.size()) {
      rep.push_back(i);
    }
    lane_of[i] = lane;
  }
  const std::size_t u = rep.size();

  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches;
    stats_.lanes += n;
    stats_.engine_lanes += u;
  }
  if (bfs) {
    // Smallest compiled lane width that fits the UNIQUE lanes; spare
    // lanes are padded.
    if (u <= 1) {
      run_bfs_batch<1>(batch, lane_of, rep);
    } else if (u <= 2) {
      run_bfs_batch<2>(batch, lane_of, rep);
    } else if (u <= 4) {
      run_bfs_batch<4>(batch, lane_of, rep);
    } else {
      run_bfs_batch<8>(batch, lane_of, rep);
    }
  } else {
    if (u <= 1) {
      run_ppr_batch<1>(batch, lane_of, rep);
    } else if (u <= 2) {
      run_ppr_batch<2>(batch, lane_of, rep);
    } else if (u <= 4) {
      run_ppr_batch<4>(batch, lane_of, rep);
    } else {
      run_ppr_batch<8>(batch, lane_of, rep);
    }
  }
}

void QueryBroker::resolve(Pending& p, QueryResult r) {
  if (p.epoch != nullptr) {
    r.epoch_fingerprint = p.epoch->fingerprint();
    r.epoch_id = p.epoch->id();
  }
  r.latency_seconds =
      std::chrono::duration<double>(Clock::now() - p.enqueued_at).count();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    switch (r.status) {
      case QueryResult::Status::kOk:
        ++stats_.completed;
        break;
      case QueryResult::Status::kShed:
        ++stats_.shed;
        break;
      case QueryResult::Status::kFailed:
        ++stats_.failed;
        break;
    }
  }
  p.state->fulfil(std::move(r));
}

template <std::size_t K>
void QueryBroker::run_bfs_batch(std::vector<Pending>& batch,
                                const std::vector<std::size_t>& lane_of,
                                const std::vector<std::size_t>& rep) {
  const std::size_t n = batch.size();
  const std::size_t u = rep.size();
  const EpochPtr epoch = batch.front().epoch;
  const graph::CsrGraph& g = epoch->graph();

  apps::MultiBfs<K> program;
  for (std::size_t k = 0; k < K; ++k) {
    // Padding lanes repeat lane 0's source: a duplicate wavefront rides
    // the same supersteps at near-zero cost.
    program.sources[k] = batch[rep[std::min(k, u - 1)]].query.source;
  }

  service::JobSpec spec;
  const Clock::time_point now = Clock::now();
  Clock::time_point tightest = Clock::time_point::max();
  for (const Pending& p : batch) {
    spec.priority = std::max(spec.priority, p.query.priority);
    tightest = std::min(tightest, p.deadline);
  }
  if (tightest != Clock::time_point::max()) {
    spec.deadline_seconds = std::max(
        0.001, std::chrono::duration<double>(tightest - now).count());
  }

  std::optional<service::JobTicket<apps::MultiBfs<K>>> ticket;
  try {
    ticket.emplace(jobs_.submit(graph_of(epoch), program,
                                config_.bfs_version, EngineOptions{},
                                spec));
  } catch (const service::ShedError& e) {
    // Admission-time rejection (queue depth or memory ledger): the whole
    // batch is shed typed, mirroring what a direct submitter would see.
    for (Pending& p : batch) {
      resolve(p, shed_result(e.reason()));
    }
    return;
  }
  const service::JobReport& report = ticket->wait();
  if (report.state == service::JobState::kShed) {
    for (Pending& p : batch) {
      resolve(p, shed_result(report.shed_reason.value_or(
                     service::ShedReason::kShutdown)));
    }
    return;
  }
  if (report.state != service::JobState::kCompleted) {
    for (Pending& p : batch) {
      QueryResult r;
      r.status = QueryResult::Status::kFailed;
      r.error = report.error ? report.error->what() : "engine run failed";
      resolve(p, std::move(r));
    }
    return;
  }

  const auto& values = ticket->values();
  std::array<std::uint64_t, K> reached{};
  for (std::size_t slot = g.first_slot(); slot < g.num_slots(); ++slot) {
    for (std::size_t k = 0; k < K; ++k) {
      if (values[slot][k] != apps::MultiBfs<K>::kInfinity) {
        ++reached[k];
      }
    }
  }

  const bool cacheable =
      config_.enable_cache && cache_ != nullptr &&
      registry_.current_fingerprint() == epoch->fingerprint();
  for (std::size_t i = 0; i < n; ++i) {
    const PointQuery& q = batch[i].query;
    const std::size_t lane = lane_of[i];
    QueryResult r;
    r.epoch_fingerprint = epoch->fingerprint();
    r.epoch_id = epoch->id();
    r.batch_occupancy = n;
    if (q.kind == QueryKind::kDistance) {
      r.reached = reached[lane];
      r.distances.reserve(q.targets.size());
      for (const graph::vid_t t : q.targets) {
        r.distances.push_back(addressable(g, t)
                                  ? values[g.slot_of(t)][lane]
                                  : QueryResult::kUnreachable);
      }
    } else {
      r.reachable =
          !q.targets.empty() && addressable(g, q.targets.front()) &&
          values[g.slot_of(q.targets.front())][lane] !=
              apps::MultiBfs<K>::kInfinity;
    }
    if (cacheable) {
      cache_->insert(epoch->fingerprint(), batch[i].key, r);
    }
    resolve(batch[i], std::move(r));
  }
}

template <std::size_t K>
void QueryBroker::run_ppr_batch(std::vector<Pending>& batch,
                                const std::vector<std::size_t>& lane_of,
                                const std::vector<std::size_t>& rep) {
  const std::size_t n = batch.size();
  const std::size_t u = rep.size();
  const EpochPtr epoch = batch.front().epoch;
  const graph::CsrGraph& g = epoch->graph();

  apps::MultiPpr<K> program;
  program.rounds = config_.ppr_rounds;
  program.damping = config_.ppr_damping;
  // Padding lanes keep empty seed sets and converge to all-zero ranks.
  for (std::size_t k = 0; k < u; ++k) {
    program.set_seeds(k, batch[rep[k]].query.seeds);
  }

  service::JobSpec spec;
  const Clock::time_point now = Clock::now();
  Clock::time_point tightest = Clock::time_point::max();
  for (const Pending& p : batch) {
    spec.priority = std::max(spec.priority, p.query.priority);
    tightest = std::min(tightest, p.deadline);
  }
  if (tightest != Clock::time_point::max()) {
    spec.deadline_seconds = std::max(
        0.001, std::chrono::duration<double>(tightest - now).count());
  }

  std::optional<service::JobTicket<apps::MultiPpr<K>>> ticket;
  try {
    ticket.emplace(jobs_.submit(graph_of(epoch), program,
                                config_.ppr_version, EngineOptions{},
                                spec));
  } catch (const service::ShedError& e) {
    for (Pending& p : batch) {
      resolve(p, shed_result(e.reason()));
    }
    return;
  }
  const service::JobReport& report = ticket->wait();
  if (report.state == service::JobState::kShed) {
    for (Pending& p : batch) {
      resolve(p, shed_result(report.shed_reason.value_or(
                     service::ShedReason::kShutdown)));
    }
    return;
  }
  if (report.state != service::JobState::kCompleted) {
    for (Pending& p : batch) {
      QueryResult r;
      r.status = QueryResult::Status::kFailed;
      r.error = report.error ? report.error->what() : "engine run failed";
      resolve(p, std::move(r));
    }
    return;
  }

  const auto& values = ticket->values();
  const bool cacheable =
      config_.enable_cache && cache_ != nullptr &&
      registry_.current_fingerprint() == epoch->fingerprint();
  for (std::size_t i = 0; i < n; ++i) {
    const PointQuery& q = batch[i].query;
    QueryResult r;
    r.epoch_fingerprint = epoch->fingerprint();
    r.epoch_id = epoch->id();
    r.batch_occupancy = n;
    std::vector<RankedVertex> ranked;
    const std::size_t lane = lane_of[i];
    for (std::size_t slot = g.first_slot(); slot < g.num_slots(); ++slot) {
      const double rank = values[slot][lane];
      if (rank > 0.0) {
        ranked.push_back(RankedVertex{g.id_of(slot), rank});
      }
    }
    const std::size_t keep = std::min(q.top_n, ranked.size());
    std::partial_sort(ranked.begin(),
                      ranked.begin() + static_cast<std::ptrdiff_t>(keep),
                      ranked.end(),
                      [](const RankedVertex& a, const RankedVertex& b) {
                        if (a.rank != b.rank) {
                          return a.rank > b.rank;
                        }
                        return a.id < b.id;
                      });
    ranked.resize(keep);
    // The scratch vector held O(|V|) candidates; without this shrink the
    // top-N payload would keep that capacity alive in the result cache
    // (megabytes per entry, churning the byte cap) and in every caller.
    ranked.shrink_to_fit();
    r.top = std::move(ranked);
    if (cacheable) {
      cache_->insert(epoch->fingerprint(), batch[i].key, r);
    }
    resolve(batch[i], std::move(r));
  }
}

}  // namespace ipregel::query
