#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "query/epoch.hpp"
#include "query/point_query.hpp"
#include "query/result_cache.hpp"
#include "service/job_manager.hpp"

namespace ipregel::query {

namespace detail {

/// Completion state shared between the broker and a QueryTicket — the
/// same wait pattern as service::detail::JobStateBase, scoped to one
/// point query.
struct QueryState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  QueryResult result;

  void fulfil(QueryResult r) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      result = std::move(r);
      done = true;
    }
    cv.notify_all();
  }

  const QueryResult& wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    return result;
  }
};

}  // namespace detail

/// The caller's handle to a submitted point query. Copyable (shared
/// state); wait() blocks until the query resolves (answered, shed, or
/// failed — every admitted query resolves exactly once).
class QueryTicket {
 public:
  explicit QueryTicket(std::shared_ptr<detail::QueryState> state) noexcept
      : state_(std::move(state)) {}

  const QueryResult& wait() { return state_->wait(); }

 private:
  std::shared_ptr<detail::QueryState> state_;
};

/// Coalesces point queries into batched engine runs.
///
/// Mechanic: queries of the same engine family (BFS-family kinds share
/// apps::MultiBfs, kPpr uses apps::MultiPpr) against the same pinned
/// epoch are packed into the lanes of ONE engine run — a batch of k
/// queries costs one graph scan per superstep instead of k, which is
/// where the service's throughput win comes from. A dispatcher takes the
/// oldest pending query, lingers up to `max_linger_seconds` for
/// compatible companions (bounded latency cost), packs up to `max_batch`
/// lanes, and submits a single job through the PR-4 JobManager — so
/// admission control, the memory ledger, deadlines, and the degradation
/// ladder all apply to query traffic unchanged.
///
/// Within a batch, queries that need the same computation share a lane:
/// BFS-family queries from the same source (a popular vertex queried
/// against many different targets) and PPR queries over the same seed
/// set ride one lane and extract their own answers from it. Hot-source
/// traffic therefore costs one lane per distinct source, not per query.
///
/// Each query pins the epoch that was current at submit time. A reload
/// between submit and dispatch does not retarget the query: it runs
/// against its pinned epoch (the aliasing graph_of pointer keeps it
/// resident), and only the cache refuses to store the now-stale answer.
class QueryBroker {
 public:
  /// Hard lane ceiling (the largest MultiBfs/MultiPpr instantiation the
  /// dispatcher is compiled with).
  static constexpr std::size_t kMaxLanes = 8;

  struct Config {
    /// Lanes per engine run; clamped to kMaxLanes. 1 disables batching
    /// (the ablation baseline).
    std::size_t max_batch = kMaxLanes;
    /// How long the dispatcher holds the oldest query waiting for
    /// batch-compatible companions. The service's latency floor under
    /// light load, so keep it small relative to an engine run.
    double max_linger_seconds = 0.002;
    /// Bound on queries accepted but not yet dispatched; submit() throws
    /// ShedError(kQueueFull) beyond it.
    std::size_t max_pending = 4096;
    /// Dispatcher threads. Each blocks on its batch's engine run, so this
    /// is also the bound on engine runs in flight from query traffic.
    std::size_t dispatchers = 2;

    /// PPR service parameters — service-wide so any two PPR queries stay
    /// batch-compatible (a per-query rounds knob would fragment batches).
    std::size_t ppr_rounds = 20;
    double ppr_damping = 0.85;

    /// Engine versions per family. BFS lanes always halt, so the
    /// selection bypass applies and keeps supersteps proportional to the
    /// united wavefronts; PPR runs every vertex every round (no bypass).
    VersionId bfs_version{CombinerKind::kSpinlockPush, true};
    VersionId ppr_version{CombinerKind::kSpinlockPush, false};

    /// Serve repeat queries from the result cache (lookup at submit,
    /// insert after a completed run while the epoch is still current).
    bool enable_cache = true;
  };

  struct Stats {
    std::size_t submitted = 0;   ///< accepted submit() calls
    std::size_t cache_hits = 0;  ///< resolved at submit without a run
    std::size_t completed = 0;
    std::size_t shed = 0;    ///< resolved kShed (deadline, ladder, ...)
    std::size_t failed = 0;  ///< resolved kFailed
    std::size_t batches = 0;  ///< engine runs dispatched
    std::size_t lanes = 0;    ///< queries those runs served (occupancy
                              ///< = lanes / batches)
    /// Lanes actually computed: members of one batch that ask about the
    /// same source (BFS family) or the same seed set (PPR) share a lane,
    /// so engine_lanes <= lanes. lanes - engine_lanes = queries answered
    /// by a shared lane without their own computation.
    std::size_t engine_lanes = 0;
    std::size_t max_pending_seen = 0;
  };

  /// The broker borrows the registry, manager, and cache (the
  /// QueryService facade owns them and outlives it). `cache` may be null
  /// (equivalent to enable_cache = false).
  QueryBroker(GraphRegistry& registry, service::JobManager& jobs,
              ResultCache* cache);
  QueryBroker(GraphRegistry& registry, service::JobManager& jobs,
              ResultCache* cache, Config config);
  ~QueryBroker();

  QueryBroker(const QueryBroker&) = delete;
  QueryBroker& operator=(const QueryBroker&) = delete;

  /// Admits a point query against the current epoch. Resolves immediately
  /// on a cache hit; otherwise the query is queued for batching. Throws
  /// ShedError(kQueueFull) when the pending bound is hit, and
  /// std::logic_error when no epoch has been published yet.
  QueryTicket submit(PointQuery q);

  /// Stops intake, sheds pending queries (kShutdown), joins dispatchers.
  /// Idempotent; called by the destructor.
  void shutdown();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  struct Pending {
    PointQuery query;
    std::uint64_t key = 0;
    EpochPtr epoch;
    std::chrono::steady_clock::time_point enqueued_at;
    /// steady_clock::time_point::max() when the query has no deadline.
    std::chrono::steady_clock::time_point deadline;
    std::shared_ptr<detail::QueryState> state;
  };

  void dispatcher_loop();
  /// Runs one batch to completion and resolves every member. All entries
  /// are family- and epoch-compatible; batch.size() <= max_batch.
  void dispatch(std::vector<Pending> batch);
  void resolve(Pending& p, QueryResult r);
  [[nodiscard]] static bool compatible(const Pending& a,
                                       const Pending& b) noexcept {
    return a.epoch == b.epoch &&
           is_bfs_family(a.query.kind) == is_bfs_family(b.query.kind);
  }

  /// lane_of[i] is the engine lane batch[i] reads its answer from;
  /// rep[l] indexes the batch member whose source/seeds define lane l.
  /// K >= rep.size() (spare lanes are padded).
  template <std::size_t K>
  void run_bfs_batch(std::vector<Pending>& batch,
                     const std::vector<std::size_t>& lane_of,
                     const std::vector<std::size_t>& rep);
  template <std::size_t K>
  void run_ppr_batch(std::vector<Pending>& batch,
                     const std::vector<std::size_t>& lane_of,
                     const std::vector<std::size_t>& rep);

  GraphRegistry& registry_;
  service::JobManager& jobs_;
  ResultCache* cache_;
  Config config_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Pending> pending_;
  Stats stats_;
  bool stopping_ = false;

  std::vector<std::thread> dispatchers_;
};

}  // namespace ipregel::query
