#include "query/epoch.hpp"

#include "ft/fingerprint.hpp"

namespace ipregel::query {

GraphEpoch::GraphEpoch(graph::CsrGraph g, std::uint64_t id)
    : graph_(std::move(g)),
      stats_(graph::compute_stats(graph_)),
      fingerprint_(ft::graph_fingerprint(graph_)),
      id_(id) {}

EpochPtr GraphRegistry::publish(graph::CsrGraph g, EpochPtr* replaced) {
  // Build (stats + fingerprint, O(E)) outside the lock; only the pointer
  // swap is serialised.
  std::uint64_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
  }
  auto epoch = std::make_shared<const GraphEpoch>(std::move(g), id);
  EpochPtr old;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    old = std::exchange(current_, epoch);
    ++published_;
  }
  if (replaced != nullptr) {
    *replaced = std::move(old);
  }
  return epoch;
}

EpochPtr GraphRegistry::current() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

std::uint64_t GraphRegistry::current_fingerprint() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return current_ == nullptr ? 0 : current_->fingerprint();
}

std::size_t GraphRegistry::published() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

}  // namespace ipregel::query
