#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "graph/csr.hpp"
#include "graph/graph_stats.hpp"

namespace ipregel::query {

/// One immutable, resident version of the service's graph: the CSR itself
/// plus everything the serving layer derives from it once per load instead
/// of once per query — structural stats (for reservation estimates and
/// ops introspection) and the content fingerprint (the cache's epoch key
/// and the snapshot-binding identity).
///
/// Epochs are shared and immutable by construction: every accessor is
/// const, the graph is owned by value, and consumers only ever see a
/// `shared_ptr<const GraphEpoch>`. Queries pin the epoch they were
/// admitted against; a reload publishes a NEW epoch rather than mutating
/// this one, and the old epoch's memory is returned exactly when its last
/// pinned query drains (shared_ptr refcount zero) — the service-owned
/// lifetime that replaces the old "caller keeps the CsrGraph alive"
/// contract of JobManager::submit(const CsrGraph&).
class GraphEpoch {
 public:
  /// Takes ownership of a fully built CSR (build in-edges if the pull
  /// combiner should apply). Computes stats and fingerprint eagerly —
  /// O(E), once per reload, never on a query path.
  GraphEpoch(graph::CsrGraph g, std::uint64_t id);

  [[nodiscard]] const graph::CsrGraph& graph() const noexcept {
    return graph_;
  }
  [[nodiscard]] const graph::GraphStats& stats() const noexcept {
    return stats_;
  }
  /// Content fingerprint (ft::graph_fingerprint): identical graph content
  /// means identical fingerprint across reloads, so a reload that swaps
  /// in the same bytes keeps the result cache warm.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }
  /// Monotonic publish sequence number within one registry.
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

 private:
  graph::CsrGraph graph_;
  graph::GraphStats stats_;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t id_ = 0;
};

using EpochPtr = std::shared_ptr<const GraphEpoch>;

/// The epoch's graph as a shared_ptr whose control block owns the WHOLE
/// epoch (aliasing constructor) — what gets handed to
/// JobManager::submit(shared_ptr<const CsrGraph>, ...): as long as any
/// job holds the graph, the epoch it belongs to stays resident.
[[nodiscard]] inline std::shared_ptr<const graph::CsrGraph> graph_of(
    EpochPtr epoch) noexcept {
  const graph::CsrGraph* g = &epoch->graph();
  return std::shared_ptr<const graph::CsrGraph>(std::move(epoch), g);
}

/// Hosts the current epoch and swaps it atomically on reload.
///
/// `publish` is the only mutation: it builds the new epoch OUTSIDE the
/// lock (stats + fingerprint are O(E)), then swaps the current pointer
/// under it, so queries observe either the old epoch or the new one,
/// never a half-built state. The registry deliberately does NOT keep the
/// replaced epoch alive — in-flight queries that pinned it do.
class GraphRegistry {
 public:
  /// Publishes `g` as the new current epoch and returns it. When
  /// `replaced` is non-null it receives the previous epoch (null on the
  /// first publish) — the hook QueryService uses to invalidate the
  /// replaced epoch's cache entries.
  EpochPtr publish(graph::CsrGraph g, EpochPtr* replaced = nullptr);

  /// The current epoch, or null before the first publish.
  [[nodiscard]] EpochPtr current() const;

  /// Fingerprint of the current epoch, 0 before the first publish.
  [[nodiscard]] std::uint64_t current_fingerprint() const;

  /// Number of publish() calls so far.
  [[nodiscard]] std::size_t published() const;

 private:
  mutable std::mutex mu_;
  EpochPtr current_;
  std::uint64_t next_id_ = 1;
  std::size_t published_ = 0;
};

}  // namespace ipregel::query
