#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/types.hpp"
#include "runtime/rng.hpp"
#include "service/shed.hpp"

namespace ipregel::query {

/// The point-query repertoire of the resident service. The first two are
/// one engine family (a unit-BFS wavefront from `source`, batched into
/// apps::MultiBfs lanes); kPpr is the other (apps::MultiPpr lanes). Only
/// queries of the same family batch together.
enum class QueryKind : std::uint8_t {
  /// Hop distances from `source` at each id in `targets` (kUnreachable
  /// when not reachable), plus the total reached-vertex count.
  kDistance,
  /// Is `targets[0]` reachable from `source`?
  kReachability,
  /// Personalized PageRank from `seeds`: the `top_n` highest-ranked
  /// vertices, rank-descending.
  kPpr,
};

[[nodiscard]] constexpr std::string_view to_string(QueryKind k) noexcept {
  switch (k) {
    case QueryKind::kDistance:
      return "distance";
    case QueryKind::kReachability:
      return "reachability";
    case QueryKind::kPpr:
      return "ppr";
  }
  return "invalid";
}

/// True when the query runs as a MultiBfs lane (kPpr is the MultiPpr
/// family) — the batching-compatibility predicate.
[[nodiscard]] constexpr bool is_bfs_family(QueryKind k) noexcept {
  return k != QueryKind::kPpr;
}

/// One point query against the current epoch.
struct PointQuery {
  QueryKind kind = QueryKind::kDistance;

  /// BFS-family source vertex.
  graph::vid_t source = 0;
  /// kDistance: report distances at these ids (may be empty — the reached
  /// count alone is still computed). kReachability: exactly one target.
  std::vector<graph::vid_t> targets{};

  /// kPpr seed set (deduplicated by the engine program).
  std::vector<graph::vid_t> seeds{};
  /// kPpr: how many top-ranked vertices to return.
  std::size_t top_n = 10;

  /// Wall-clock budget from submit, queue wait included; 0 = none. Rides
  /// the JobManager deadline machinery, so an expired query is shed typed
  /// (kDeadlineExpired), never silently late.
  double deadline_seconds = 0.0;
  /// JobManager priority of the engine run serving this query; a batch
  /// runs at the max priority of its members.
  int priority = 0;
};

/// Content key of a query: two queries with the same key against the same
/// epoch have byte-identical results, which is exactly what the result
/// cache needs. Seeds are hashed order-insensitively (MultiPpr sorts and
/// dedups them); target order matters for kDistance (distances come back
/// parallel to `targets`).
[[nodiscard]] inline std::uint64_t query_key(const PointQuery& q) {
  std::uint64_t h = 0x5154u;  // arbitrary non-zero basis
  const auto fold = [&h](std::uint64_t v) { h = runtime::mix64(h ^ v); };
  fold(static_cast<std::uint64_t>(q.kind));
  if (is_bfs_family(q.kind)) {
    fold(q.source);
    fold(q.targets.size());
    for (const graph::vid_t t : q.targets) {
      fold(t);
    }
  } else {
    std::vector<graph::vid_t> seeds = q.seeds;
    std::sort(seeds.begin(), seeds.end());
    seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
    fold(seeds.size());
    for (const graph::vid_t s : seeds) {
      fold(s);
    }
    fold(q.top_n);
  }
  return h;
}

/// One vertex of a PPR top-N answer.
struct RankedVertex {
  graph::vid_t id = 0;
  double rank = 0.0;

  friend bool operator==(const RankedVertex&,
                         const RankedVertex&) = default;
};

/// What a query resolves to — compact by design: a service answering 10^5
/// point queries cannot hand each caller an O(|V|) vector, so the payload
/// is the requested slice (distances at targets, a bool, a top-N list),
/// never the full value array.
struct QueryResult {
  enum class Status : std::uint8_t {
    kOk,
    kShed,    ///< never ran; `shed_reason` says why
    kFailed,  ///< the engine run failed after retries; `error` has details
  };
  Status status = Status::kOk;
  std::optional<service::ShedReason> shed_reason;
  std::string error{};

  /// Marker for "not reachable" in `distances`.
  static constexpr std::uint32_t kUnreachable = 0xFFFFFFFFu;

  // --- payload (kOk only; which fields are meaningful depends on kind) ---
  /// kDistance: parallel to PointQuery::targets.
  std::vector<std::uint32_t> distances{};
  /// kDistance: vertices reachable from the source (source included).
  std::uint64_t reached = 0;
  /// kReachability.
  bool reachable = false;
  /// kPpr: rank-descending; ties broken by ascending id.
  std::vector<RankedVertex> top{};

  // --- provenance ---------------------------------------------------------
  /// Epoch the answer was computed against.
  std::uint64_t epoch_fingerprint = 0;
  std::uint64_t epoch_id = 0;
  /// Served from the result cache (no engine run).
  bool from_cache = false;
  /// Lanes served by the engine run that produced this answer (1 =
  /// unbatched; 0 for cache hits and sheds).
  std::size_t batch_occupancy = 0;
  /// Submit-to-fulfil wall time as measured by the broker.
  double latency_seconds = 0.0;
};

}  // namespace ipregel::query
