#include "query/result_cache.hpp"

#include <utility>

#include "runtime/rng.hpp"

namespace ipregel::query {

ResultCache::ResultCache() : ResultCache(Config{}) {}

ResultCache::ResultCache(Config config) : config_(config) {}

std::size_t ResultCache::KeyHash::operator()(const Key& k) const noexcept {
  return static_cast<std::size_t>(
      runtime::mix64(k.epoch_fp ^ runtime::mix64(k.key)));
}

std::size_t ResultCache::entry_bytes(const QueryResult& r) noexcept {
  // Estimated, not measured: struct + heap payloads + index/list overhead.
  // The ledger charge and the cap both use this estimate, so they agree.
  return sizeof(Entry) + 96 /* index node + list node overhead */ +
         r.distances.capacity() * sizeof(std::uint32_t) +
         r.top.capacity() * sizeof(RankedVertex) + r.error.capacity();
}

std::optional<QueryResult> ResultCache::lookup(std::uint64_t epoch_fp,
                                               std::uint64_t key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(Key{epoch_fp, key});
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh to MRU
  return it->second->result;
}

void ResultCache::insert(std::uint64_t epoch_fp, std::uint64_t key,
                         const QueryResult& result) {
  const std::size_t bytes = entry_bytes(result);
  const std::lock_guard<std::mutex> lock(mu_);
  if (bytes > config_.max_bytes || config_.max_entries == 0) {
    return;  // would evict everything and still not fit
  }
  const Key k{epoch_fp, key};
  if (const auto it = index_.find(k); it != index_.end()) {
    erase_locked(it->second);  // refresh: replace in place as MRU
  }
  lru_.push_front(Entry{k, result, bytes});
  index_.emplace(k, lru_.begin());
  bytes_ += bytes;
  ++stats_.insertions;
  enforce_caps_locked();
  reservation_.rebind(runtime::MemCategory::kQueryCache, bytes_);
}

void ResultCache::invalidate_epoch(std::uint64_t epoch_fp) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.epoch_fp == epoch_fp) {
      ++stats_.invalidated;
      const auto doomed = it++;
      erase_locked(doomed);
    } else {
      ++it;
    }
  }
  reservation_.rebind(runtime::MemCategory::kQueryCache, bytes_);
}

void ResultCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  stats_.invalidated += lru_.size();
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  reservation_.rebind(runtime::MemCategory::kQueryCache, 0);
}

ResultCache::Stats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  return s;
}

void ResultCache::erase_locked(std::list<Entry>::iterator it) {
  bytes_ -= it->bytes;
  index_.erase(it->key);
  lru_.erase(it);
}

void ResultCache::enforce_caps_locked() {
  while (!lru_.empty() &&
         (bytes_ > config_.max_bytes || lru_.size() > config_.max_entries)) {
    ++stats_.evictions;
    erase_locked(std::prev(lru_.end()));
  }
}

}  // namespace ipregel::query
