#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "query/point_query.hpp"
#include "runtime/memory_tracker.hpp"

namespace ipregel::query {

/// LRU result cache keyed by (epoch fingerprint, query key).
///
/// The epoch fingerprint in the key is what makes staleness structurally
/// impossible instead of a TTL guess: a lookup always carries the
/// CURRENT epoch's fingerprint, so entries computed against a replaced
/// epoch simply never match again. `invalidate_epoch` then reclaims their
/// bytes eagerly on swap rather than waiting for LRU pressure — and a
/// reload that republishes identical graph content (same fingerprint)
/// keeps the cache warm for free.
///
/// Every resident byte is charged to the global memory ledger under
/// MemCategory::kQueryCache, so cache footprint shows up in the same
/// accounting as mailboxes and locks, and the byte cap is enforced
/// against the same estimate the ledger sees.
class ResultCache {
 public:
  struct Config {
    /// Byte budget over the estimated footprint of resident entries.
    std::size_t max_bytes = 64u << 20;
    /// Entry-count cap, applied in addition to the byte cap.
    std::size_t max_entries = 4096;
  };

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t insertions = 0;
    std::size_t evictions = 0;    ///< LRU pressure (bytes or entries)
    std::size_t invalidated = 0;  ///< entries dropped by epoch swaps
    std::size_t entries = 0;      ///< currently resident
    std::size_t bytes = 0;        ///< currently charged to the ledger
  };

  ResultCache();
  explicit ResultCache(Config config);

  /// Returns a copy of the cached result, refreshed to most-recently-used.
  [[nodiscard]] std::optional<QueryResult> lookup(std::uint64_t epoch_fp,
                                                  std::uint64_t key);

  /// Inserts (or refreshes) an entry, evicting least-recently-used
  /// entries until both caps hold. An entry larger than the whole byte
  /// budget is not cached.
  void insert(std::uint64_t epoch_fp, std::uint64_t key,
              const QueryResult& result);

  /// Drops every entry computed against `epoch_fp`.
  void invalidate_epoch(std::uint64_t epoch_fp);

  void clear();

  [[nodiscard]] Stats stats() const;

 private:
  struct Key {
    std::uint64_t epoch_fp = 0;
    std::uint64_t key = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& k) const noexcept;
  };
  struct Entry {
    Key key;
    QueryResult result;
    std::size_t bytes = 0;
  };

  /// Estimated resident footprint of one entry (struct + heap payloads).
  [[nodiscard]] static std::size_t entry_bytes(
      const QueryResult& r) noexcept;

  /// Drops the entry at `it`, adjusting bytes. Caller holds mu_.
  void erase_locked(std::list<Entry>::iterator it);
  /// Evicts from the LRU tail until both caps hold. Caller holds mu_.
  void enforce_caps_locked();

  Config config_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  std::size_t bytes_ = 0;
  runtime::MemReservation reservation_;
  Stats stats_;
};

}  // namespace ipregel::query
