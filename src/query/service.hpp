#pragma once

#include <utility>

#include "query/broker.hpp"
#include "query/epoch.hpp"
#include "query/point_query.hpp"
#include "query/result_cache.hpp"
#include "service/job_manager.hpp"

namespace ipregel::query {

/// The resident graph query service, assembled: a GraphRegistry hosting
/// the current epoch, a JobManager providing admission control and
/// degradation, a ResultCache, and the QueryBroker batching point queries
/// into shared engine runs.
///
/// Lifecycle contract: publish() swaps epochs atomically — queries
/// submitted before the swap finish against their pinned epoch
/// (bit-identical to a solo run against it), queries submitted after see
/// the new one, and the replaced epoch's memory is returned when its last
/// in-flight query drains. The cache is invalidated for the REPLACED
/// epoch's fingerprint on every swap, so a later republish of identical
/// content starts cold only if the content actually changed.
class QueryService {
 public:
  struct Config {
    service::JobManager::Config jobs{};
    QueryBroker::Config broker{};
    ResultCache::Config cache{};
  };

  QueryService() : QueryService(Config{}) {}
  explicit QueryService(Config config)
      : cache_(config.cache),
        jobs_(config.jobs),
        broker_(registry_, jobs_,
                config.broker.enable_cache ? &cache_ : nullptr,
                config.broker) {}

  /// Stops the broker first (its dispatchers hold job tickets), then the
  /// job manager — the reverse of construction, via member order.
  ~QueryService() = default;

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Publishes a new epoch (atomic swap) and invalidates the replaced
  /// epoch's cache entries. Returns the new epoch.
  EpochPtr publish(graph::CsrGraph g) {
    EpochPtr replaced;
    EpochPtr fresh = registry_.publish(std::move(g), &replaced);
    if (replaced != nullptr &&
        replaced->fingerprint() != fresh->fingerprint()) {
      cache_.invalidate_epoch(replaced->fingerprint());
    }
    return fresh;
  }

  [[nodiscard]] EpochPtr current_epoch() const {
    return registry_.current();
  }

  /// Submits a point query against the current epoch (see
  /// QueryBroker::submit for the throwing admission contract).
  QueryTicket query(PointQuery q) { return broker_.submit(std::move(q)); }

  /// Convenience: submit and wait.
  QueryResult query_sync(PointQuery q) {
    QueryTicket ticket = broker_.submit(std::move(q));
    return ticket.wait();
  }

  /// Graceful stop: broker intake + dispatchers first, then the manager.
  void shutdown() {
    broker_.shutdown();
    jobs_.shutdown();
  }

  [[nodiscard]] GraphRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] service::JobManager& jobs() noexcept { return jobs_; }
  [[nodiscard]] QueryBroker::Stats broker_stats() const {
    return broker_.stats();
  }
  [[nodiscard]] ResultCache::Stats cache_stats() const {
    return cache_.stats();
  }

 private:
  // Destruction runs bottom-up: broker_ (joins dispatchers) before jobs_
  // (joins executors) before cache_/registry_ they both reference.
  GraphRegistry registry_;
  ResultCache cache_;
  service::JobManager jobs_;
  QueryBroker broker_;
};

}  // namespace ipregel::query
