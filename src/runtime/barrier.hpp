#pragma once

#include <atomic>
#include <cstddef>

namespace ipregel::runtime {

/// A reusable sense-reversing barrier for a fixed set of participants.
///
/// This is the global-synchronisation phase of a BSP superstep (paper
/// Fig. 1): every participant blocks in `arrive_and_wait()` until all
/// participants of the current generation have arrived. Unlike
/// `std::barrier` it is a single cache line of state and supports spinning,
/// which is appropriate for the short inter-superstep waits of a
/// compute-bound framework.
class SenseBarrier {
 public:
  explicit SenseBarrier(std::size_t participants) noexcept
      : participants_(participants), remaining_(participants) {}

  SenseBarrier(const SenseBarrier&) = delete;
  SenseBarrier& operator=(const SenseBarrier&) = delete;

  /// Blocks until all `participants` threads of this generation arrived.
  /// The last arriver flips the sense and releases everyone.
  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(participants_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) != my_sense) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  [[nodiscard]] std::size_t participants() const noexcept {
    return participants_;
  }

 private:
  const std::size_t participants_;
  std::atomic<std::size_t> remaining_;
  std::atomic<bool> sense_{false};
};

}  // namespace ipregel::runtime
