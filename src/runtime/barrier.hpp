#pragma once

#include <atomic>
#include <cstddef>

namespace ipregel::runtime {

/// A reusable sense-reversing barrier for a fixed set of participants.
///
/// This is the global-synchronisation phase of a BSP superstep (paper
/// Fig. 1): every participant blocks in `arrive_and_wait()` until all
/// participants of the current generation have arrived. Unlike
/// `std::barrier` it is a single cache line of state and supports spinning,
/// which is appropriate for the short inter-superstep waits of a
/// compute-bound framework.
///
/// Failure domain: the barrier is poisonable. A participant that fails
/// (e.g. a worker whose superstep body threw) calls `poison()` instead of
/// arriving; every current and future waiter then returns `false` from
/// `arrive_and_wait()` immediately instead of spinning forever on a
/// generation that can never complete — the classic "teammate died at the
/// barrier" deadlock. Poisoning is permanent: the barrier is dead
/// afterwards and callers must unwind (its participant count is no longer
/// coherent), which is exactly the cancellation protocol a superstep loop
/// needs at its synchronisation points.
class SenseBarrier {
 public:
  explicit SenseBarrier(std::size_t participants) noexcept
      : participants_(participants), remaining_(participants) {}

  SenseBarrier(const SenseBarrier&) = delete;
  SenseBarrier& operator=(const SenseBarrier&) = delete;

  /// Blocks until all `participants` threads of this generation arrived.
  /// The last arriver flips the sense and releases everyone. Returns true
  /// on a normal release; returns false — promptly, without waiting for
  /// the full generation — once the barrier has been poisoned.
  bool arrive_and_wait() noexcept {
    if (poisoned_.load(std::memory_order_acquire)) {
      return false;
    }
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(participants_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        if (poisoned_.load(std::memory_order_acquire)) {
          return false;
        }
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
    return !poisoned_.load(std::memory_order_acquire);
  }

  /// Marks the barrier as dead and releases every waiter (they return
  /// false from arrive_and_wait). Safe to call from any thread, any number
  /// of times. Poisoning outlives the failing generation: arrivals keep
  /// returning false until the barrier is explicitly re-armed.
  void poison() noexcept {
    poisoned_.store(true, std::memory_order_release);
  }

  /// Re-arms a poisoned barrier for a fresh team of the same size: resets
  /// the arrival count (the poisoned generation may have decremented it
  /// partway) and clears the poison flag. The caller must guarantee no
  /// thread is still inside arrive_and_wait — i.e. the old team has
  /// quiesced, which is exactly what the thread pool's bounded completion
  /// wait establishes between jobs. Re-arming a healthy barrier between
  /// generations is also safe under the same quiescence precondition.
  void rearm() noexcept {
    remaining_.store(participants_, std::memory_order_relaxed);
    sense_.store(false, std::memory_order_relaxed);
    poisoned_.store(false, std::memory_order_release);
  }

  [[nodiscard]] bool poisoned() const noexcept {
    return poisoned_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t participants() const noexcept {
    return participants_;
  }

 private:
  const std::size_t participants_;
  std::atomic<std::size_t> remaining_;
  std::atomic<bool> sense_{false};
  std::atomic<bool> poisoned_{false};
};

}  // namespace ipregel::runtime
