#include "runtime/memory_tracker.hpp"

#include <cassert>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace ipregel::runtime {

std::string_view to_string(MemCategory c) noexcept {
  switch (c) {
    case MemCategory::kGraphTopology:
      return "graph-topology";
    case MemCategory::kEdgeWeights:
      return "edge-weights";
    case MemCategory::kVertexValues:
      return "vertex-values";
    case MemCategory::kVertexInternals:
      return "vertex-internals";
    case MemCategory::kMailboxes:
      return "mailboxes";
    case MemCategory::kLocks:
      return "locks";
    case MemCategory::kOutboxes:
      return "outboxes";
    case MemCategory::kFrontier:
      return "frontier";
    case MemCategory::kHashIndex:
      return "hash-index";
    case MemCategory::kCommBuffers:
      return "comm-buffers";
    case MemCategory::kCheckpoint:
      return "checkpoint-staging";
    case MemCategory::kQueryCache:
      return "query-cache";
    case MemCategory::kPageCache:
      return "page-cache";
    case MemCategory::kOther:
      return "other";
    case MemCategory::kCount:
      break;
  }
  return "invalid";
}

MemoryTracker& MemoryTracker::instance() noexcept {
  static MemoryTracker tracker;
  return tracker;
}

void MemoryTracker::add(MemCategory c, std::size_t bytes) noexcept {
  by_category_[static_cast<std::size_t>(c)].fetch_add(
      bytes, std::memory_order_relaxed);
  const std::size_t now =
      total_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  // Lock-free peak update.
  std::size_t prev = peak_.load(std::memory_order_relaxed);
  while (now > prev &&
         !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
  }
}

namespace {

/// Saturating decrement: releasing more than a counter holds clamps it to
/// zero instead of wrapping to ~18 exabytes (which would poison every
/// subsequent budget check and report). A mismatched release is a caller
/// bug, so debug builds assert on it.
void saturating_sub(std::atomic<std::size_t>& counter,
                    std::size_t bytes) noexcept {
  std::size_t cur = counter.load(std::memory_order_relaxed);
  std::size_t next = 0;
  do {
    assert(cur >= bytes && "MemoryTracker release exceeds what was added");
    next = cur >= bytes ? cur - bytes : 0;
  } while (!counter.compare_exchange_weak(cur, next,
                                          std::memory_order_relaxed));
}

}  // namespace

void MemoryTracker::sub(MemCategory c, std::size_t bytes) noexcept {
  saturating_sub(by_category_[static_cast<std::size_t>(c)], bytes);
  saturating_sub(total_, bytes);
}

void MemoryScope::add(std::size_t bytes) noexcept {
  const std::size_t now =
      total_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::size_t prev = peak_.load(std::memory_order_relaxed);
  while (now > prev &&
         !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
  }
}

void MemoryScope::sub(std::size_t bytes) noexcept {
  saturating_sub(total_, bytes);
}

namespace {
thread_local MemoryScope* t_memory_scope = nullptr;
}  // namespace

MemoryScope* current_memory_scope() noexcept { return t_memory_scope; }

ScopedMemoryAttribution::ScopedMemoryAttribution(MemoryScope* scope) noexcept
    : previous_(t_memory_scope) {
  t_memory_scope = scope;
}

ScopedMemoryAttribution::~ScopedMemoryAttribution() {
  t_memory_scope = previous_;
}

std::size_t MemoryTracker::bytes(MemCategory c) const noexcept {
  return by_category_[static_cast<std::size_t>(c)].load(
      std::memory_order_relaxed);
}

std::size_t MemoryTracker::total() const noexcept {
  return total_.load(std::memory_order_relaxed);
}

std::size_t MemoryTracker::peak() const noexcept {
  return peak_.load(std::memory_order_relaxed);
}

void MemoryTracker::reset() noexcept {
  for (auto& c : by_category_) {
    c.store(0, std::memory_order_relaxed);
  }
  total_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
}

std::string MemoryTracker::report() const {
  std::ostringstream out;
  constexpr double kMiB = 1024.0 * 1024.0;
  for (std::size_t i = 0; i < static_cast<std::size_t>(MemCategory::kCount);
       ++i) {
    const auto c = static_cast<MemCategory>(i);
    const std::size_t b = bytes(c);
    if (b != 0) {
      out << "  " << to_string(c) << ": "
          << static_cast<double>(b) / kMiB << " MiB\n";
    }
  }
  out << "  total: " << static_cast<double>(total()) / kMiB
      << " MiB (peak " << static_cast<double>(peak()) / kMiB << " MiB)\n";
  return out.str();
}

namespace {

std::size_t read_status_field_kib(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  char line[256];
  std::size_t kib = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      unsigned long long value = 0;
      if (std::sscanf(line + key_len, " %llu", &value) == 1) {
        kib = static_cast<std::size_t>(value);
      }
      break;
    }
  }
  std::fclose(f);
  return kib;
}

}  // namespace

std::size_t read_vm_hwm_bytes() {
  return read_status_field_kib("VmHWM:") * 1024;
}

std::size_t read_vm_rss_bytes() {
  return read_status_field_kib("VmRSS:") * 1024;
}

std::size_t read_peak_rss_bytes() {
  const std::size_t hwm = read_vm_hwm_bytes();
  return hwm != 0 ? hwm : read_vm_rss_bytes();
}

}  // namespace ipregel::runtime
