#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>

namespace ipregel::runtime {

/// Memory categories tracked by the framework.
///
/// Being lightweight is the second half of the paper's motivation, and its
/// evaluation (sections 6.1, 7.4) reasons about *which component* owns each
/// byte: lock arrays, single-slot mailboxes, neighbour lists, frontiers,
/// hashmap indexes, communication buffers. Tagging every framework
/// allocation with one of these categories lets the benchmark harness print
/// the same per-component accounting the paper does (e.g. "switching from
/// mutexes to spinlocks drops the data-race protection from 730 MB to
/// 73 MB").
enum class MemCategory : std::size_t {
  kGraphTopology,   ///< CSR offsets + adjacency (the graph itself)
  kEdgeWeights,     ///< optional weight array
  kVertexValues,    ///< user vertex values
  kVertexInternals, ///< framework per-vertex state (halted flags, ...)
  kMailboxes,       ///< single-slot inboxes + has-message flags
  kLocks,           ///< per-vertex mutex/spinlock arrays (push combiners)
  kOutboxes,        ///< pull-combiner broadcast buffers
  kFrontier,        ///< selection-bypass work lists + claim bitmap
  kHashIndex,       ///< id -> location hashmaps (baseline addressing)
  kCommBuffers,     ///< serialised message buffers (distributed baseline)
  kCheckpoint,      ///< fault-tolerance snapshot staging buffers
  kQueryCache,      ///< query service result-cache entries
  kPageCache,       ///< paged-store resident edge pages (src/store)
  kOther,           ///< anything else the framework allocates
  kCount
};

[[nodiscard]] std::string_view to_string(MemCategory c) noexcept;

/// Process-wide, thread-safe, category-tagged byte counter.
///
/// Components report their allocations explicitly (they know exact sizes),
/// which keeps the accounting precise and free of allocator interposition.
/// `peak()` additionally tracks the high-water mark of the tracked total,
/// the analogue of the paper's "maximum resident set size" metric but
/// restricted to framework-owned data.
class MemoryTracker {
 public:
  static MemoryTracker& instance() noexcept;

  void add(MemCategory c, std::size_t bytes) noexcept;
  /// Saturating: releasing more than a category (or the total) holds
  /// clamps to zero rather than wrapping the counter; debug builds assert
  /// on the mismatch. Keeps budget checks and reports sane after a
  /// double-release bug instead of reporting exabytes in use.
  void sub(MemCategory c, std::size_t bytes) noexcept;

  [[nodiscard]] std::size_t bytes(MemCategory c) const noexcept;
  [[nodiscard]] std::size_t total() const noexcept;
  [[nodiscard]] std::size_t peak() const noexcept;

  /// Zeroes all counters (including the peak). Tests and benches call this
  /// between scenarios.
  void reset() noexcept;

  /// Multi-line human-readable breakdown, one row per non-empty category.
  [[nodiscard]] std::string report() const;

 private:
  MemoryTracker() = default;

  std::array<std::atomic<std::size_t>, static_cast<std::size_t>(
                                           MemCategory::kCount)>
      by_category_{};
  std::atomic<std::size_t> total_{0};
  std::atomic<std::size_t> peak_{0};
};

/// A per-job memory ledger. The MemoryTracker singleton answers "how much
/// does the *process* hold", which is the wrong question once several jobs
/// share the process: job A's mailboxes would trip job B's budget. A scope
/// is a second, independent accumulator that MemReservations made while it
/// is active (see ScopedMemoryAttribution) also report to, so a budget can
/// be enforced against *this job's* bytes alone.
class MemoryScope {
 public:
  void add(std::size_t bytes) noexcept;
  /// Saturating, like MemoryTracker::sub.
  void sub(std::size_t bytes) noexcept;

  [[nodiscard]] std::size_t total() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t peak() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    total_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> total_{0};
  std::atomic<std::size_t> peak_{0};
};

/// The calling thread's active attribution scope (nullptr = none). Every
/// MemReservation captures this at registration time and releases to the
/// same scope, so attribution survives the reservation outliving the
/// ScopedMemoryAttribution that was active when it was made.
[[nodiscard]] MemoryScope* current_memory_scope() noexcept;

/// RAII: attributes MemReservations made on this thread to `scope` (and
/// still to the process-wide tracker) until destruction restores the
/// previous scope. Nestable; nullptr deactivates attribution.
class ScopedMemoryAttribution {
 public:
  explicit ScopedMemoryAttribution(MemoryScope* scope) noexcept;
  ~ScopedMemoryAttribution();
  ScopedMemoryAttribution(const ScopedMemoryAttribution&) = delete;
  ScopedMemoryAttribution& operator=(const ScopedMemoryAttribution&) = delete;

 private:
  MemoryScope* previous_;
};

/// RAII registration of `bytes` against a category for the lifetime of the
/// owning object. Movable; moved-from reservations release nothing.
class MemReservation {
 public:
  MemReservation() noexcept = default;
  MemReservation(MemCategory c, std::size_t bytes) noexcept
      : category_(c), bytes_(bytes), scope_(current_memory_scope()) {
    MemoryTracker::instance().add(category_, bytes_);
    if (scope_ != nullptr) {
      scope_->add(bytes_);
    }
  }
  MemReservation(MemReservation&& other) noexcept
      : category_(other.category_),
        bytes_(other.bytes_),
        scope_(other.scope_) {
    other.bytes_ = 0;
  }
  MemReservation& operator=(MemReservation&& other) noexcept {
    if (this != &other) {
      release();
      category_ = other.category_;
      bytes_ = other.bytes_;
      scope_ = other.scope_;
      other.bytes_ = 0;
    }
    return *this;
  }
  MemReservation(const MemReservation&) = delete;
  MemReservation& operator=(const MemReservation&) = delete;
  ~MemReservation() { release(); }

  /// Re-targets this reservation to `bytes` (releasing the previous amount)
  /// and re-captures the calling thread's attribution scope.
  void rebind(MemCategory c, std::size_t bytes) noexcept {
    release();
    category_ = c;
    bytes_ = bytes;
    scope_ = current_memory_scope();
    MemoryTracker::instance().add(category_, bytes_);
    if (scope_ != nullptr) {
      scope_->add(bytes_);
    }
  }

  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

 private:
  void release() noexcept {
    if (bytes_ != 0) {
      MemoryTracker::instance().sub(category_, bytes_);
      if (scope_ != nullptr) {
        scope_->sub(bytes_);
      }
      bytes_ = 0;
    }
  }

  MemCategory category_ = MemCategory::kOther;
  std::size_t bytes_ = 0;
  MemoryScope* scope_ = nullptr;
};

/// Reads the process peak resident set size (VmHWM) in bytes from
/// /proc/self/status; returns 0 if unavailable. This is the exact metric of
/// the paper's section 7.1.2 ("maximum resident set size as returned by the
/// bash command time -v").
[[nodiscard]] std::size_t read_vm_hwm_bytes();

/// Reads the current resident set size (VmRSS) in bytes; 0 if unavailable.
[[nodiscard]] std::size_t read_vm_rss_bytes();

/// VmHWM when the kernel exposes it, otherwise the current VmRSS (some
/// container kernels omit the high-water mark). Callers wanting the paper's
/// exact metric should sample this at the expected peak.
[[nodiscard]] std::size_t read_peak_rss_bytes();

}  // namespace ipregel::runtime
