#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "runtime/rng.hpp"

namespace ipregel::runtime {

/// Half-open index range [begin, end).
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  [[nodiscard]] bool empty() const noexcept { return begin >= end; }
  friend bool operator==(const Range&, const Range&) = default;
};

/// Splits [0, n) into `parts` contiguous blocks whose sizes differ by at
/// most one, and returns block `index`.
///
/// This is the static "equal share of the vertices" distribution the paper
/// describes in section 4: before the selection phase each thread receives
/// an equal share, and with the selection bypass those shares are drawn from
/// the frontier (all known-active) instead of from all vertices, which is
/// what restores load balance.
[[nodiscard]] constexpr Range block_partition(std::size_t n,
                                              std::size_t parts,
                                              std::size_t index) noexcept {
  if (parts == 0) {
    return Range{0, n};
  }
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  // The first `extra` blocks get one additional element.
  const std::size_t begin =
      index * base + (index < extra ? index : extra);
  const std::size_t len = base + (index < extra ? 1 : 0);
  return Range{begin, begin + len};
}

/// Deterministic hash owner of element `index` among `parts` — the
/// alternative to block_partition for workloads whose hot vertices
/// cluster (power-law graphs renumbered by degree put all the hubs in
/// shard 0 under a block split). The mix64 finalizer decorrelates owner
/// from index, spreading hubs uniformly; the salt keeps the assignment
/// independent of other mix64-derived streams. Pure and seed-free: every
/// process computes the same owner for the same index, which is what lets
/// the sharded runtime route messages without an ownership table
/// exchange.
[[nodiscard]] constexpr std::size_t hash_partition(std::size_t index,
                                                   std::size_t parts) noexcept {
  if (parts <= 1) {
    return 0;
  }
  constexpr std::uint64_t kSalt = 0xA24BAED4963EE407ULL;
  return static_cast<std::size_t>(
      mix64(static_cast<std::uint64_t>(index) ^ kSalt) % parts);
}

/// Number of chunks of size `chunk` needed to cover n elements.
[[nodiscard]] constexpr std::size_t ceil_div(std::size_t n,
                                             std::size_t chunk) noexcept {
  return chunk == 0 ? 0 : (n + chunk - 1) / chunk;
}

}  // namespace ipregel::runtime
