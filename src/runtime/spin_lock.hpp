#pragma once

#include <atomic>
#include <cstdint>

namespace ipregel::runtime {

/// A 4-byte test-and-test-and-set spinlock ("busy-waiting synchronisation",
/// paper section 6.1).
///
/// The paper contrasts gcc's block-waiting `pthread_mutex_t` (40 bytes) with
/// the busy-waiting `pthread_spinlock_t` (4 bytes): with one lock per vertex
/// mailbox, the 90% per-lock size reduction is multiplied by |V|. This class
/// reproduces that design point exactly: `sizeof(SpinLock) == 4`, and the
/// critical sections it protects (a combiner's compare-and-replace) are so
/// short that busy waiting beats suspending the thread.
///
/// Lock/unlock use acquire/release ordering, which is sufficient to make the
/// protected mailbox update visible to the next acquirer.
class SpinLock {
 public:
  SpinLock() noexcept = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept {
    for (;;) {
      // Optimistic exchange first: uncontended locks take a single RMW.
      if (state_.exchange(1, std::memory_order_acquire) == 0) {
        return;
      }
      // Contended: spin on plain loads so the cache line stays shared
      // until the holder releases it (the "test-and-test-and-set" part).
      while (state_.load(std::memory_order_relaxed) != 0) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  [[nodiscard]] bool try_lock() noexcept {
    return state_.load(std::memory_order_relaxed) == 0 &&
           state_.exchange(1, std::memory_order_acquire) == 0;
  }

  void unlock() noexcept { state_.store(0, std::memory_order_release); }

 private:
  std::atomic<std::uint32_t> state_{0};
};

static_assert(sizeof(SpinLock) == 4,
              "the paper's memory accounting assumes 4-byte spinlocks");

}  // namespace ipregel::runtime
