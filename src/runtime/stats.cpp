#include "runtime/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ipregel::runtime {

double student_t_99(std::size_t dof) noexcept {
  // Two-sided 99% (alpha = 0.01, 0.005 per tail).
  static constexpr double kTable[] = {
      0.0,    63.657, 9.925, 5.841, 4.604, 3.707, 3.499, 3.355, 3.250, 3.169,
      3.106,  3.055,  3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
      2.831,  2.819,  2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
      2.744};
  constexpr std::size_t kMax = sizeof(kTable) / sizeof(kTable[0]) - 1;
  if (dof == 0) {
    return kTable[1];  // degenerate; be conservative
  }
  if (dof <= kMax) {
    return kTable[dof];
  }
  return 2.576;  // normal approximation
}

Summary summarize(std::span<const double> samples) noexcept {
  Summary s;
  s.n = samples.size();
  if (s.n == 0) {
    return s;
  }
  double sum = 0.0;
  s.min = samples[0];
  s.max = samples[0];
  for (double x : samples) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(s.n);
  if (s.n >= 2) {
    double sq = 0.0;
    for (double x : samples) {
      const double d = x - s.mean;
      sq += d * d;
    }
    s.stddev = std::sqrt(sq / static_cast<double>(s.n - 1));
    const double t = student_t_99(s.n - 1);
    s.ci_half_width = t * s.stddev / std::sqrt(static_cast<double>(s.n));
  }
  return s;
}

MeasuredResult run_until_precise(const std::function<double()>& sample,
                                 const PrecisionOptions& options) {
  MeasuredResult result;
  result.samples.reserve(options.min_runs);
  for (std::size_t i = 0; i < options.min_runs; ++i) {
    result.samples.push_back(sample());
  }
  result.summary = summarize(result.samples);
  while (result.summary.relative_margin() > options.target_relative_margin &&
         result.samples.size() < options.max_runs) {
    result.samples.push_back(sample());
    result.summary = summarize(result.samples);
  }
  result.converged =
      result.summary.relative_margin() <= options.target_relative_margin;
  return result;
}

}  // namespace ipregel::runtime
