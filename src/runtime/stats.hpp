#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace ipregel::runtime {

/// Summary statistics of a sample of runtimes.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;          ///< sample standard deviation (n-1)
  double ci_half_width = 0.0;   ///< half-width of the 99% confidence interval
  double min = 0.0;
  double max = 0.0;

  /// ci_half_width / mean — the paper stops when this drops below 1%.
  [[nodiscard]] double relative_margin() const noexcept {
    return mean == 0.0 ? 0.0 : ci_half_width / mean;
  }
};

/// Two-sided Student-t critical value at 99% confidence for `dof` degrees
/// of freedom (exact table for dof <= 30, normal asymptote 2.576 beyond).
[[nodiscard]] double student_t_99(std::size_t dof) noexcept;

/// Computes mean / sample stddev / 99% CI half-width of `samples`.
[[nodiscard]] Summary summarize(std::span<const double> samples) noexcept;

/// Controls `run_until_precise`.
struct PrecisionOptions {
  std::size_t min_runs = 5;     ///< the paper's "initially run 5 times"
  std::size_t max_runs = 100;   ///< safety cap (the paper has none)
  double target_relative_margin = 0.01;  ///< "less than 1% of the average"
};

/// Result of a measured experiment.
struct MeasuredResult {
  Summary summary;
  std::vector<double> samples;
  bool converged = false;  ///< margin target reached within max_runs
};

/// The paper's measurement methodology (section 7.1.2): run the experiment
/// at least `min_runs` times, then keep repeating until the 99%-confidence
/// margin of error is below `target_relative_margin` of the mean (or
/// `max_runs` is hit). `sample` returns one runtime in seconds.
[[nodiscard]] MeasuredResult run_until_precise(
    const std::function<double()>& sample,
    const PrecisionOptions& options = {});

}  // namespace ipregel::runtime
