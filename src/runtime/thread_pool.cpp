#include "runtime/thread_pool.hpp"

#include <cassert>
#include <utility>

namespace ipregel::runtime {
namespace {

constexpr int kSpinIterations = 4096;

void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#endif
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : size_(threads == 0
                ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                : threads) {
  workers_.reserve(size_ - 1);
  for (std::size_t tid = 1; tid < size_; ++tid) {
    workers_.emplace_back([this, tid] { worker_loop(tid); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::run(const std::function<void(std::size_t)>& fn) {
  assert(fn);
  // Fresh region: the previous region's cancellation (from a failure, a
  // watchdog, or an explicit request) must not bleed into this one.
  cancel_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;
  error_tid_ = 0;
  if (size_ == 1) {
    fn(0);  // no team to quiesce; exceptions propagate directly
    return;
  }
  job_ = &fn;
  done_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();

  try {
    fn(0);
  } catch (...) {
    capture_error(0, std::current_exception());
  }

  // Wait for the background members. Spin briefly: regions are usually
  // balanced, so the stragglers finish within the spin window. The wait is
  // bounded by the region's own runtime: workers report completion even on
  // their exception path (worker_loop captures, never terminates), so a
  // failing member can no longer strand this loop forever.
  int spins = kSpinIterations;
  while (done_.load(std::memory_order_acquire) != size_ - 1) {
    if (--spins > 0) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
  job_ = nullptr;
  if (first_error_ != nullptr) {
    // The team has quiesced: rethrow the first failure on thread 0. The
    // cancellation flag stays raised until the next region so the caller
    // can still observe it.
    std::exception_ptr ep = std::exchange(first_error_, nullptr);
    std::rethrow_exception(ep);
  }
}

void ThreadPool::capture_error(std::size_t tid,
                               std::exception_ptr ep) noexcept {
  cancel_.store(true, std::memory_order_release);
  const std::lock_guard<std::mutex> lock(error_mutex_);
  if (first_error_ == nullptr) {
    first_error_ = ep;
    error_tid_ = tid;
  }
}

void ThreadPool::worker_loop(std::size_t tid) {
  std::uint64_t seen = 0;
  for (;;) {
    // Spin a little before sleeping: back-to-back supersteps dispatch
    // regions far faster than a futex wake.
    int spins = kSpinIterations;
    while (epoch_.load(std::memory_order_acquire) == seen && --spins > 0) {
      cpu_relax();
    }
    epoch_.wait(seen, std::memory_order_acquire);
    seen = epoch_.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_acquire)) {
      return;
    }
    try {
      (*job_)(tid);
    } catch (...) {
      // A background member must never let an exception reach
      // std::terminate; park it for thread 0 and keep the protocol alive.
      capture_error(tid, std::current_exception());
    }
    done_.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace ipregel::runtime
