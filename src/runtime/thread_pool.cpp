#include "runtime/thread_pool.hpp"

#include <cassert>

namespace ipregel::runtime {
namespace {

constexpr int kSpinIterations = 4096;

void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#endif
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : size_(threads == 0
                ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                : threads) {
  workers_.reserve(size_ - 1);
  for (std::size_t tid = 1; tid < size_; ++tid) {
    workers_.emplace_back([this, tid] { worker_loop(tid); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::run(const std::function<void(std::size_t)>& fn) {
  assert(fn);
  if (size_ == 1) {
    fn(0);
    return;
  }
  job_ = &fn;
  done_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();

  fn(0);

  // Wait for the background members. Spin briefly: regions are usually
  // balanced, so the stragglers finish within the spin window.
  int spins = kSpinIterations;
  while (done_.load(std::memory_order_acquire) != size_ - 1) {
    if (--spins > 0) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
  job_ = nullptr;
}

void ThreadPool::worker_loop(std::size_t tid) {
  std::uint64_t seen = 0;
  for (;;) {
    // Spin a little before sleeping: back-to-back supersteps dispatch
    // regions far faster than a futex wake.
    int spins = kSpinIterations;
    while (epoch_.load(std::memory_order_acquire) == seen && --spins > 0) {
      cpu_relax();
    }
    epoch_.wait(seen, std::memory_order_acquire);
    seen = epoch_.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_acquire)) {
      return;
    }
    (*job_)(tid);
    done_.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace ipregel::runtime
