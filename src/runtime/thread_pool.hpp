#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "runtime/partition.hpp"

namespace ipregel::runtime {

/// A pool of persistent worker threads for fork-join parallel regions.
///
/// The paper parallelises iPregel with OpenMP; this reproduction uses an
/// explicit pool with the same execution structure: a fixed team of threads
/// is created once, and each parallel region runs the same callable on every
/// team member with its thread id. The calling thread always participates as
/// thread 0, so a pool of size N uses N-1 background threads.
///
/// Two usage patterns are supported:
///  - `run(fn)` executes `fn(tid)` once on every team member. The iPregel
///    engine uses a single `run` for an entire computation and synchronises
///    supersteps internally with a `SenseBarrier`, avoiding per-superstep
///    fork-join overhead (SSSP on road-like graphs runs thousands of
///    supersteps).
///  - `parallel_for(n, fn)` statically block-partitions [0, n) across the
///    team — the "equal share of the vertices" distribution of section 4.
///
/// Dispatch uses C++20 atomic wait/notify with a short spin prelude, so
/// back-to-back regions do not pay a futex round-trip.
class ThreadPool {
 public:
  /// Creates a team of `threads` members (>= 1). Zero selects
  /// `std::thread::hardware_concurrency()`.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Team size, including the calling thread.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Runs `fn(tid)` on every team member (tid in [0, size())) and returns
  /// when all members finished. Must not be called re-entrantly from inside
  /// a running region.
  void run(const std::function<void(std::size_t)>& fn);

  /// Runs `fn(tid, range)` with [0, n) block-partitioned across the team.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    if (n == 0) {
      return;
    }
    run([&](std::size_t tid) {
      const Range r = block_partition(n, size_, tid);
      if (!r.empty()) {
        fn(tid, r);
      }
    });
  }

  /// parallel_for with per-element callable `fn(tid, i)`.
  template <typename Fn>
  void parallel_for_each(std::size_t n, Fn&& fn) {
    parallel_for(n, [&](std::size_t tid, Range r) {
      for (std::size_t i = r.begin; i < r.end; ++i) {
        fn(tid, i);
      }
    });
  }

  /// Runs `fn(tid, range)` over [0, n) in chunks of `chunk` claimed from a
  /// shared atomic cursor — dynamic (guided-style) scheduling. Costs one
  /// atomic RMW per chunk but rebalances skewed per-element work, the
  /// "load-balancing strategies" the paper's conclusion names as future
  /// work (a scale-free graph's hub vertices make static shares uneven).
  template <typename Fn>
  void parallel_for_dynamic(std::size_t n, std::size_t chunk, Fn&& fn) {
    if (n == 0) {
      return;
    }
    const std::size_t step = chunk == 0 ? 1 : chunk;
    std::atomic<std::size_t> cursor{0};
    run([&](std::size_t tid) {
      for (;;) {
        const std::size_t begin =
            cursor.fetch_add(step, std::memory_order_relaxed);
        if (begin >= n) {
          break;
        }
        fn(tid, Range{begin, std::min(begin + step, n)});
      }
    });
  }

  /// Map-reduce over [0, n): `map(tid, range) -> T`, combined pairwise with
  /// `reduce`. Deterministic combination order (by thread id).
  template <typename T, typename Map, typename Reduce>
  [[nodiscard]] T parallel_reduce(std::size_t n, T identity, Map&& map,
                                  Reduce&& reduce) {
    std::vector<T> partial(size_, identity);
    parallel_for(n, [&](std::size_t tid, Range r) {
      partial[tid] = map(tid, r);
    });
    T acc = identity;
    for (const T& p : partial) {
      acc = reduce(acc, p);
    }
    return acc;
  }

 private:
  void worker_loop(std::size_t tid);

  std::size_t size_;
  std::vector<std::thread> workers_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> done_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace ipregel::runtime
