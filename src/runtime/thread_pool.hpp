#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/partition.hpp"

namespace ipregel::runtime {

/// A pool of persistent worker threads for fork-join parallel regions.
///
/// The paper parallelises iPregel with OpenMP; this reproduction uses an
/// explicit pool with the same execution structure: a fixed team of threads
/// is created once, and each parallel region runs the same callable on every
/// team member with its thread id. The calling thread always participates as
/// thread 0, so a pool of size N uses N-1 background threads.
///
/// Two usage patterns are supported:
///  - `run(fn)` executes `fn(tid)` once on every team member.
///  - `parallel_for(n, fn)` statically block-partitions [0, n) across the
///    team — the "equal share of the vertices" distribution of section 4.
///
/// Dispatch uses C++20 atomic wait/notify with a short spin prelude, so
/// back-to-back regions do not pay a futex round-trip.
///
/// Failure domain. A parallel region is exception-safe: an exception thrown
/// by any team member (including thread 0) is captured via
/// std::exception_ptr instead of escaping a background thread into
/// std::terminate. The first capture wins and raises the team-wide
/// cancellation flag; the remaining members run their shares to completion
/// (or bail early if the region body polls `cancel_requested()`), and once
/// the team has quiesced the captured exception is rethrown on thread 0.
/// Workers always report completion — even on the exception path — so the
/// caller's completion wait is bounded by the region's own runtime and a
/// failing member can no longer strand the caller in an infinite spin.
///
/// The cancellation flag is also a cooperative external kill switch:
/// `request_cancel()` may be called from any thread (the engine's superstep
/// watchdog uses it); region bodies that poll `cancel_requested()` at work
/// boundaries unwind early. The flag is cleared when the next region starts.
class ThreadPool {
 public:
  /// Creates a team of `threads` members (>= 1). Zero selects
  /// `std::thread::hardware_concurrency()`.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Team size, including the calling thread.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Runs `fn(tid)` on every team member (tid in [0, size())) and returns
  /// when all members finished. Must not be called re-entrantly from inside
  /// a running region. If any member threw, the first exception (by capture
  /// order) is rethrown here after the team quiesced.
  void run(const std::function<void(std::size_t)>& fn);

  /// Raises the team-wide cancellation flag. Cooperative: region bodies
  /// observe it via `cancel_requested()` at their own work boundaries.
  /// Cleared when the next region starts.
  void request_cancel() noexcept {
    cancel_.store(true, std::memory_order_release);
  }

  /// True when the current (or just-finished) region was cancelled, either
  /// by a failing team member or by an explicit request_cancel().
  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancel_.load(std::memory_order_relaxed);
  }

  /// Thread id of the member whose exception the last failing region
  /// rethrew (meaningful only immediately after run() threw).
  [[nodiscard]] std::size_t failing_thread() const noexcept {
    return error_tid_;
  }

  /// Runs `fn(tid, range)` with [0, n) block-partitioned across the team.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    if (n == 0) {
      return;
    }
    run([&](std::size_t tid) {
      const Range r = block_partition(n, size_, tid);
      if (!r.empty()) {
        fn(tid, r);
      }
    });
  }

  /// parallel_for with per-element callable `fn(tid, i)`.
  template <typename Fn>
  void parallel_for_each(std::size_t n, Fn&& fn) {
    parallel_for(n, [&](std::size_t tid, Range r) {
      for (std::size_t i = r.begin; i < r.end; ++i) {
        fn(tid, i);
      }
    });
  }

  /// Runs `fn(tid, range)` over [0, n) in chunks of `chunk` claimed from a
  /// shared atomic cursor — dynamic (guided-style) scheduling. Costs one
  /// atomic RMW per chunk but rebalances skewed per-element work, the
  /// "load-balancing strategies" the paper's conclusion names as future
  /// work (a scale-free graph's hub vertices make static shares uneven).
  /// Cancellation-aware: a cancelled region stops claiming chunks.
  template <typename Fn>
  void parallel_for_dynamic(std::size_t n, std::size_t chunk, Fn&& fn) {
    if (n == 0) {
      return;
    }
    const std::size_t step = chunk == 0 ? 1 : chunk;
    std::atomic<std::size_t> cursor{0};
    run([&](std::size_t tid) {
      for (;;) {
        if (cancel_requested()) {
          break;
        }
        const std::size_t begin =
            cursor.fetch_add(step, std::memory_order_relaxed);
        if (begin >= n) {
          break;
        }
        fn(tid, Range{begin, std::min(begin + step, n)});
      }
    });
  }

  /// Map-reduce over [0, n): `map(tid, range) -> T`, combined pairwise with
  /// `reduce`. Deterministic combination order (by thread id).
  template <typename T, typename Map, typename Reduce>
  [[nodiscard]] T parallel_reduce(std::size_t n, T identity, Map&& map,
                                  Reduce&& reduce) {
    std::vector<T> partial(size_, identity);
    parallel_for(n, [&](std::size_t tid, Range r) {
      partial[tid] = map(tid, r);
    });
    T acc = identity;
    for (const T& p : partial) {
      acc = reduce(acc, p);
    }
    return acc;
  }

 private:
  void worker_loop(std::size_t tid);

  /// Records `ep` as the region's outcome if it is the first failure, and
  /// raises the cancellation flag either way.
  void capture_error(std::size_t tid, std::exception_ptr ep) noexcept;

  std::size_t size_;
  std::vector<std::thread> workers_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> done_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> cancel_{false};

  // First-exception capture: written under error_mutex_, read by thread 0
  // only after the team quiesced (done_ acquire gives the happens-before).
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
  std::size_t error_tid_ = 0;
};

}  // namespace ipregel::runtime
