#pragma once

#include <chrono>

namespace ipregel::runtime {

/// Monotonic wall-clock stopwatch. The paper's methodology (section 7.1.2)
/// reports superstep execution time only — graph loading and preprocessing
/// excluded — so the engine wraps only the superstep loop in one of these.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept {
    return seconds() * 1e3;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ipregel::runtime
