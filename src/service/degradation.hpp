#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ipregel::service {

/// The degradation ladder, in the order the manager climbs it. Each rung
/// trades a little quality of service for headroom; the ordering puts the
/// cheapest concession first so overload degrades smoothly instead of
/// falling off a cliff (the Pregelix argument: resource management, not
/// OOM, separates a deployable engine from a research one).
enum class DegradationStep : std::uint8_t {
  /// Run the job on a smaller thread team: slower, but a smaller working
  /// set of per-thread buffers and less memory bandwidth pressure.
  kShrinkThreads,
  /// Downgrade heavyweight checkpoints to lightweight ones: the snapshot
  /// staging buffer shrinks from values+mailboxes to values only.
  kLightweightCheckpoint,
  /// Evict the least important queued job. The last rung: somebody's work
  /// is dropped, but with a typed reason instead of an OOM kill.
  kShedQueued,
};

[[nodiscard]] constexpr std::string_view to_string(
    DegradationStep s) noexcept {
  switch (s) {
    case DegradationStep::kShrinkThreads:
      return "shrink-threads";
    case DegradationStep::kLightweightCheckpoint:
      return "lightweight-checkpoint";
    case DegradationStep::kShedQueued:
      return "shed-queued";
  }
  return "invalid";
}

/// One recorded policy step-down.
struct DegradationEvent {
  DegradationStep step;
  /// The job the step was applied to (for kShedQueued, the evicted job).
  std::uint64_t job_id = 0;
  std::string detail;
};

/// Thread-safe, append-only record of every degradation transition the
/// manager took. The chaos-under-load matrix asserts on it: overload must
/// leave an auditable trail, not just different timings.
class DegradationLog {
 public:
  void record(DegradationStep step, std::uint64_t job_id,
              std::string detail) {
    const std::lock_guard<std::mutex> lock(mu_);
    events_.push_back({step, job_id, std::move(detail)});
  }

  [[nodiscard]] std::vector<DegradationEvent> events() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }

  [[nodiscard]] std::size_t count(DegradationStep step) const {
    const std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const DegradationEvent& e : events_) {
      if (e.step == step) {
        ++n;
      }
    }
    return n;
  }

 private:
  mutable std::mutex mu_;
  std::vector<DegradationEvent> events_;
};

}  // namespace ipregel::service
