#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "service/shed.hpp"

namespace ipregel::service {

/// Per-job service parameters, orthogonal to the EngineOptions the job
/// runs with (which stay the caller's business).
struct JobSpec {
  /// Higher runs first; ties run in submission order. Under overload a
  /// strictly higher-priority arrival may evict the lowest-priority queued
  /// job (never a running one).
  int priority = 0;

  /// Wall-clock budget covering queue wait AND execution; 0 = none. A job
  /// still queued when it expires is shed (kDeadlineExpired); a running
  /// job gets the remainder as its run watchdog and fails with
  /// RunErrorKind::kRunTimeout if it blows through it.
  double deadline_seconds = 0.0;

  /// Bytes reserved from the service's global memory budget for the whole
  /// time the job is admitted (queued + running). 0 lets the manager
  /// derive an estimate from the graph's shape at submit time. Admission
  /// fails (ShedError::kMemoryBudget) when the ledger cannot cover it.
  std::size_t memory_reservation_bytes = 0;

  /// Also enforce the reservation as the job's own memory budget
  /// (guards.memory_budget_bytes against the job's MemoryScope): a job
  /// that allocates past what it reserved fails typed (kMemoryBudget)
  /// instead of silently eating its neighbours' headroom.
  bool enforce_reservation = false;
};

/// Where a job ended up.
enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kCompleted,  ///< ran to a successful RunResult
  kFailed,     ///< ran and failed with a typed RunError (after retries)
  kShed,       ///< never ran; report.shed_reason says why
};

[[nodiscard]] constexpr std::string_view to_string(JobState s) noexcept {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kCompleted:
      return "completed";
    case JobState::kFailed:
      return "failed";
    case JobState::kShed:
      return "shed";
  }
  return "invalid";
}

/// Everything the service knows about a finished (or shed) job.
struct JobReport {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;

  /// kShed only.
  std::optional<ShedReason> shed_reason;
  /// kFailed only: the final attempt's typed failure.
  std::optional<RunError> error;
  /// kCompleted only.
  RunResult result{};

  /// Supervisor statistics (kCompleted/kFailed).
  std::size_t attempts = 0;
  std::size_t resumed_from_snapshot = 0;
  /// Attempts that failed with a detected silent-data-corruption
  /// violation before the supervisor recovered (or gave up). A completed
  /// job with integrity_violations > 0 hit corruption, detected it, and
  /// was healed by checkpoint recovery — retried, not shed.
  std::size_t integrity_violations = 0;
  /// Snapshots quarantined during this job's recovery walks.
  std::size_t snapshots_quarantined = 0;

  /// Seconds spent waiting in the queue / executing.
  double queue_seconds = 0.0;
  double run_seconds = 0.0;

  /// What the job actually ran with after degradation.
  std::size_t threads_used = 0;
  bool checkpoint_downgraded = false;
  /// This job's attributed memory high-water mark (scope peak), bytes.
  std::size_t peak_tracked_bytes = 0;
};

namespace detail {

/// Type-erased completion state shared between the manager and a ticket.
/// The typed layer (TypedJobState<Program>) adds the output values.
struct JobStateBase {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  JobReport report;
  /// Cooperative kill switch, routed into guards.cancel_token while the
  /// job runs. Raised by JobManager::cancel and by destructive shutdown.
  std::atomic<bool> cancel{false};

  virtual ~JobStateBase() = default;

  void finish(JobReport r) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      report = std::move(r);
      done = true;
    }
    cv.notify_all();
  }

  const JobReport& wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    return report;
  }
};

template <typename Program>
struct TypedJobState : JobStateBase {
  std::vector<typename Program::value_type> values;
};

}  // namespace detail

/// The submitter's handle to an admitted job: wait for it, read its
/// report, and — for completed jobs — its output values. Copyable (shared
/// state); cheap to pass around.
template <typename Program>
class JobTicket {
 public:
  explicit JobTicket(
      std::shared_ptr<detail::TypedJobState<Program>> state) noexcept
      : state_(std::move(state)) {}

  /// Blocks until the job completes, fails, or is shed.
  const JobReport& wait() { return state_->wait(); }

  /// Final vertex values (valid once wait() reported kCompleted).
  [[nodiscard]] const std::vector<typename Program::value_type>& values()
      const noexcept {
    return state_->values;
  }

  [[nodiscard]] std::uint64_t id() const noexcept {
    const std::lock_guard<std::mutex> lock(state_->mu);
    return state_->report.id;
  }

 private:
  friend class JobManager;
  std::shared_ptr<detail::TypedJobState<Program>> state_;
};

}  // namespace ipregel::service
