#include "service/job_manager.hpp"

#include <exception>
#include <string>

namespace ipregel::service {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

[[nodiscard]] double seconds_since(
    std::chrono::steady_clock::time_point t) noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t)
      .count();
}

}  // namespace

JobManager::JobManager() : JobManager(Config{}) {}

JobManager::JobManager(Config config) : config_(config) {
  config_.executors = std::max<std::size_t>(1, config_.executors);
  if (config_.team_threads == 0) {
    config_.team_threads =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  executors_.reserve(config_.executors);
  for (std::size_t i = 0; i < config_.executors; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

JobManager::~JobManager() { shutdown(); }

void JobManager::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // Shed back-to-front so indices stay valid; these jobs were admitted
    // (their reservations are held) but will never run.
    while (!queue_.empty()) {
      shed_at_locked(queue_.size() - 1, ShedReason::kShutdown);
    }
  }
  work_cv_.notify_all();
  for (std::thread& t : executors_) {
    if (t.joinable()) {
      t.join();
    }
  }
  executors_.clear();
}

bool JobManager::cancel(std::uint64_t job_id) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].id == job_id) {
      shed_at_locked(i, ShedReason::kCancelled);
      return true;
    }
  }
  const auto it = running_.find(job_id);
  if (it != running_.end()) {
    // Cooperative: the run observes the token at its next guard tick or
    // superstep barrier and fails with RunErrorKind::kCancelled.
    it->second->cancel.store(true, std::memory_order_release);
    return true;
  }
  return false;
}

JobManager::Stats JobManager::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

bool JobManager::shed_weakest_queued(const std::string& detail) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::size_t weakest = weakest_locked();
  if (weakest == kNpos) {
    return false;
  }
  log_.record(DegradationStep::kShedQueued, queue_[weakest].id, detail);
  shed_at_locked(weakest, ShedReason::kPriorityEvicted);
  return true;
}

void JobManager::admit(PendingJob&& job) {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.submitted;
  if (stopping_) {
    ++stats_.rejected;
    throw ShedError(ShedReason::kShutdown, "manager is shutting down");
  }
  // A reservation the whole budget could never cover is unservable at any
  // load; reject it before it starves the queue.
  if (config_.memory_budget_bytes != 0 &&
      job.reserved_bytes > config_.memory_budget_bytes) {
    ++stats_.rejected;
    throw ShedError(
        ShedReason::kMemoryBudget,
        "reservation of " + std::to_string(job.reserved_bytes) +
            " bytes exceeds the whole service budget of " +
            std::to_string(config_.memory_budget_bytes) + " bytes");
  }

  // Depth bound: one strictly weaker queued job may be evicted to make
  // room (the ladder's kShedQueued rung); otherwise the arrival is shed.
  if (queue_.size() >= config_.max_queue_depth) {
    const std::size_t weakest = weakest_locked();
    if (weakest != kNpos &&
        queue_[weakest].spec.priority < job.spec.priority) {
      log_.record(DegradationStep::kShedQueued, queue_[weakest].id,
                  "queue at depth bound " +
                      std::to_string(config_.max_queue_depth) +
                      "; evicted priority " +
                      std::to_string(queue_[weakest].spec.priority) +
                      " for arriving priority " +
                      std::to_string(job.spec.priority));
      shed_at_locked(weakest, ShedReason::kPriorityEvicted);
    } else {
      ++stats_.rejected;
      throw ShedError(ShedReason::kQueueFull,
                      "queue at its depth bound of " +
                          std::to_string(config_.max_queue_depth) +
                          " and no queued job is lower priority");
    }
  }

  // Memory ledger: evict strictly weaker queued jobs while the reservation
  // does not fit. Running jobs are never evicted, so when they hold the
  // budget the arrival is shed instead.
  if (config_.memory_budget_bytes != 0) {
    while (stats_.reserved_bytes + job.reserved_bytes >
           config_.memory_budget_bytes) {
      const std::size_t weakest = weakest_locked();
      if (weakest == kNpos ||
          queue_[weakest].spec.priority >= job.spec.priority) {
        ++stats_.rejected;
        throw ShedError(
            ShedReason::kMemoryBudget,
            "admitting " + std::to_string(job.reserved_bytes) +
                " bytes would exceed the service budget (" +
                std::to_string(stats_.reserved_bytes) + " of " +
                std::to_string(config_.memory_budget_bytes) +
                " bytes already reserved)");
      }
      log_.record(DegradationStep::kShedQueued, queue_[weakest].id,
                  "evicted to free " +
                      std::to_string(queue_[weakest].reserved_bytes) +
                      " reserved bytes for arriving priority " +
                      std::to_string(job.spec.priority));
      shed_at_locked(weakest, ShedReason::kPriorityEvicted);
    }
  }

  job.id = next_id_++;
  job.submitted_at = std::chrono::steady_clock::now();
  {
    // Publish the id so JobTicket::id() works before completion.
    const std::lock_guard<std::mutex> slock(job.state->mu);
    job.state->report.id = job.id;
  }
  stats_.reserved_bytes += job.reserved_bytes;
  stats_.peak_reserved_bytes =
      std::max(stats_.peak_reserved_bytes, stats_.reserved_bytes);
  ++stats_.admitted;
  queue_.push_back(std::move(job));
  stats_.max_queue_depth_seen =
      std::max(stats_.max_queue_depth_seen, queue_.size());
  lock.unlock();
  work_cv_.notify_one();
}

JobManager::PendingJob JobManager::pop_best_locked() {
  // Highest priority wins; the queue is in submission order, so the first
  // hit is also the oldest of that priority (FIFO within a priority).
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    if (queue_[i].spec.priority > queue_[best].spec.priority) {
      best = i;
    }
  }
  PendingJob job = std::move(queue_[best]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
  return job;
}

std::size_t JobManager::weakest_locked() const noexcept {
  if (queue_.empty()) {
    return kNpos;
  }
  // Lowest priority loses; >= keeps the newest of that priority (shedding
  // the most recent arrival preserves FIFO fairness among equals).
  std::size_t weakest = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    if (queue_[i].spec.priority <= queue_[weakest].spec.priority) {
      weakest = i;
    }
  }
  return weakest;
}

void JobManager::shed_at_locked(std::size_t index, ShedReason reason) {
  PendingJob job = std::move(queue_[index]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
  release_reservation_locked(job.reserved_bytes);
  ++stats_.shed;
  JobReport report;
  report.id = job.id;
  report.state = JobState::kShed;
  report.shed_reason = reason;
  report.queue_seconds = seconds_since(job.submitted_at);
  job.state->finish(std::move(report));
}

void JobManager::release_reservation_locked(std::size_t bytes) noexcept {
  stats_.reserved_bytes =
      stats_.reserved_bytes >= bytes ? stats_.reserved_bytes - bytes : 0;
}

void JobManager::executor_loop() {
  for (;;) {
    PendingJob job;
    ExecPlan plan;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) {
          return;
        }
        continue;
      }
      job = pop_best_locked();
      const double waited = seconds_since(job.submitted_at);

      // Jobs whose service window closed while queued never start: the
      // capacity they would burn belongs to jobs that can still make it.
      if ((job.spec.deadline_seconds > 0.0 &&
           waited >= job.spec.deadline_seconds) ||
          job.state->cancel.load(std::memory_order_acquire)) {
        const ShedReason reason =
            job.state->cancel.load(std::memory_order_acquire)
                ? ShedReason::kCancelled
                : ShedReason::kDeadlineExpired;
        release_reservation_locked(job.reserved_bytes);
        ++stats_.shed;
        JobReport report;
        report.id = job.id;
        report.state = JobState::kShed;
        report.shed_reason = reason;
        report.queue_seconds = waited;
        lock.unlock();
        job.state->finish(std::move(report));
        continue;
      }

      // --- degradation ladder, decided per job start ---------------------
      plan.threads = config_.team_threads;
      if (config_.memory_budget_bytes != 0) {
        const double pressure =
            static_cast<double>(stats_.reserved_bytes) /
            static_cast<double>(config_.memory_budget_bytes);
        if (pressure >= config_.memory_pressure && plan.threads > 1) {
          plan.threads = std::max<std::size_t>(1, plan.threads / 2);
          log_.record(DegradationStep::kShrinkThreads, job.id,
                      "reservation pressure " + std::to_string(pressure) +
                          "; team " + std::to_string(config_.team_threads) +
                          " -> " + std::to_string(plan.threads));
        }
        if (pressure >= config_.memory_pressure_severe) {
          plan.downgrade_checkpoint = true;
        }
      }
      if (job.spec.deadline_seconds > 0.0) {
        plan.run_seconds = job.spec.deadline_seconds - waited;
        if (waited >=
            config_.deadline_pressure * job.spec.deadline_seconds) {
          plan.downgrade_checkpoint = true;
        }
      }
      if (job.spec.enforce_reservation) {
        plan.memory_budget_bytes = job.reserved_bytes;
      }
      running_.emplace(job.id, job.state);
    }

    JobReport report;
    report.id = job.id;
    report.queue_seconds = seconds_since(job.submitted_at);
    report.threads_used = plan.threads;

    // All of this job's MemReservations (engine buffers, checkpoint
    // staging) are attributed to its scope: the per-job budget guard and
    // peak_tracked_bytes see this job alone, not its neighbours.
    runtime::MemoryScope scope;
    runtime::Timer timer;
    {
      const runtime::ScopedMemoryAttribution attribution(&scope);
      try {
        job.execute(*job.state, plan, report);
      } catch (const std::exception& e) {
        // Configuration errors (inapplicable version, snapshot mismatch)
        // escape ft::supervise as exceptions; they must fail the job, not
        // the executor thread.
        report.state = JobState::kFailed;
        report.error = RunError(
            RunErrorKind::kUserException, 0, 0, RunError::kNoVertex,
            std::string("job configuration error: ") + e.what());
      }
    }
    report.run_seconds = timer.seconds();
    report.peak_tracked_bytes = scope.peak();
    if (report.checkpoint_downgraded) {
      // Recorded after the fact: the closure knows whether the program can
      // actually take lightweight snapshots; a mere request is not a
      // transition.
      log_.record(DegradationStep::kLightweightCheckpoint, job.id,
                  "heavyweight -> lightweight checkpoints");
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      running_.erase(job.id);
      release_reservation_locked(job.reserved_bytes);
      if (report.state == JobState::kCompleted) {
        ++stats_.completed;
      } else {
        ++stats_.failed;
      }
    }
    job.state->finish(std::move(report));
  }
}

}  // namespace ipregel::service
