#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/aggregator_traits.hpp"
#include "core/runner.hpp"
#include "ft/supervisor.hpp"
#include "graph/csr.hpp"
#include "runtime/memory_tracker.hpp"
#include "runtime/timer.hpp"
#include "service/degradation.hpp"
#include "service/job.hpp"
#include "service/shed.hpp"

namespace ipregel::service {

namespace detail {

/// True when the program can run under lightweight checkpoints — the
/// static precondition Engine::capture_state enforces at runtime. Checked
/// here so the degradation ladder only *requests* a downgrade the engine
/// will accept. The resend probe never instantiates the hook's body (the
/// requires-expression is unevaluated); it only asks whether a call is
/// well-formed.
template <typename Program>
inline constexpr bool kLightweightCapable =
    requires(const Program& p, int& probe) { p.resend(probe); } &&
    !HasAggregator<Program> &&
    std::is_trivially_copyable_v<typename Program::value_type> &&
    std::is_trivially_copyable_v<typename Program::message_type>;

}  // namespace detail

/// A multi-job admission-controlled service on top of the single-run
/// engine: accepts concurrent graph jobs, bounds what the node takes on
/// (queue depth, a global memory-reservation ledger), and under pressure
/// steps down policies in a recorded ladder instead of letting the
/// machine OOM or deadlock. Failures inside a job stay inside the job:
/// execution goes through ft::supervise, so an injected fault retries
/// from the newest checkpoint exactly as it would solo, and every
/// abnormal end is typed (RunError for runs, ShedReason for sheds).
class JobManager {
 public:
  struct Config {
    /// Concurrently running jobs (executor threads).
    std::size_t executors = 2;
    /// Full-strength thread team per job; the first degradation rung
    /// halves it. 0 = hardware concurrency.
    std::size_t team_threads = 2;
    /// Bound on *queued* (admitted, not yet running) jobs.
    std::size_t max_queue_depth = 8;
    /// Global memory-reservation budget the admission ledger carves
    /// per-job reservations from. 0 = unlimited (ledger still tracked).
    std::size_t memory_budget_bytes = 0;
    /// Reserved/budget fraction at which the ladder's first rung (shrink
    /// the thread team) engages for newly started jobs.
    double memory_pressure = 0.75;
    /// Reserved/budget fraction at which heavyweight checkpoints are
    /// downgraded to lightweight (second rung).
    double memory_pressure_severe = 0.90;
    /// Fraction of a job's deadline it may burn in the queue before its
    /// checkpoints are downgraded to claw back superstep time.
    double deadline_pressure = 0.5;
  };

  struct Stats {
    std::size_t submitted = 0;  ///< submit() calls, admitted or not
    std::size_t admitted = 0;
    std::size_t rejected = 0;   ///< admission-time ShedErrors
    std::size_t shed = 0;       ///< admitted but never ran (typed reason)
    std::size_t completed = 0;
    std::size_t failed = 0;     ///< ran, typed RunError after retries
    std::size_t max_queue_depth_seen = 0;
    std::size_t reserved_bytes = 0;       ///< current ledger
    std::size_t peak_reserved_bytes = 0;  ///< ledger high-water mark
  };

  JobManager();
  explicit JobManager(Config config);
  /// Graceful: stops intake, sheds what is still queued (kShutdown), and
  /// joins the executors after their current jobs finish.
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Submits a job. Admission control runs here, synchronously: a bounded
  /// queue-depth check and the memory-reservation ledger, each of which
  /// may first evict strictly lower-priority queued jobs (the ladder's
  /// kShedQueued rung) and then, if still over, throws a typed ShedError.
  /// On admission the reservation is held until the job leaves the system.
  ///
  /// `options` are the job's own engine options; the manager overlays the
  /// degradation ladder (threads, checkpoint mode) and the failure-domain
  /// guards (deadline watchdog, cancel token, per-job memory budget) on
  /// top. `retry` drives ft::supervise, so a job with a checkpoint
  /// directory survives injected faults without the caller noticing.
  ///
  /// The job takes SHARED OWNERSHIP of the graph: the submit() caller may
  /// drop its own reference the moment this returns, and the graph stays
  /// alive until the job leaves the system (completed, failed, or shed).
  /// query::GraphEpoch rides this directly — graph_of(epoch) is an
  /// aliasing pointer whose control block pins the whole epoch, so an
  /// epoch swapped out of the registry mid-run is freed only after its
  /// last in-flight job drains.
  template <VertexProgram Program>
  JobTicket<Program> submit(std::shared_ptr<const graph::CsrGraph> graph,
                            Program program, VersionId version,
                            EngineOptions options = {}, JobSpec spec = {},
                            ft::RetryPolicy retry = {}) {
    auto state = std::make_shared<detail::TypedJobState<Program>>();
    if (spec.memory_reservation_bytes == 0) {
      spec.memory_reservation_bytes = estimate_reservation<Program>(*graph);
    }
    PendingJob job;
    job.spec = spec;
    job.reserved_bytes = spec.memory_reservation_bytes;
    job.state = state;
    job.execute = [graph = std::move(graph), program = std::move(program),
                   version, options,
                   retry](detail::JobStateBase& base, const ExecPlan& plan,
                          JobReport& report) {
      auto& typed = static_cast<detail::TypedJobState<Program>&>(base);
      EngineOptions opts = options;
      opts.threads = plan.threads;
      opts.guards.cancel_token = &base.cancel;
      if (plan.run_seconds > 0.0) {
        opts.guards.run_seconds =
            opts.guards.run_seconds > 0.0
                ? std::min(opts.guards.run_seconds, plan.run_seconds)
                : plan.run_seconds;
      }
      if (plan.memory_budget_bytes != 0) {
        opts.guards.memory_budget_bytes = plan.memory_budget_bytes;
      }
      if (plan.downgrade_checkpoint && opts.checkpoint.enabled() &&
          opts.checkpoint.mode == ft::CheckpointMode::kHeavyweight) {
        if constexpr (detail::kLightweightCapable<Program>) {
          opts.checkpoint.mode = ft::CheckpointMode::kLightweight;
          report.checkpoint_downgraded = true;
        }
      }
      const ft::SupervisedOutcome out = ft::supervise(
          *graph, program, version, opts, retry, nullptr, &typed.values);
      report.attempts = out.attempts;
      report.resumed_from_snapshot = out.resumed_from_snapshot;
      report.integrity_violations = out.integrity_violations;
      report.snapshots_quarantined = out.snapshots_quarantined;
      if (out.ok()) {
        report.state = JobState::kCompleted;
        report.result = out.result;
      } else {
        report.state = JobState::kFailed;
        report.error = out.error;
      }
    };
    admit(std::move(job));  // throws ShedError on rejection
    return JobTicket<Program>(std::move(state));
  }

  /// Borrowed-graph convenience overload: the CALLER guarantees `graph`
  /// outlives the job (ticket waited or manager shut down first). This
  /// used to be the only entry point — a job held a bare reference, so a
  /// caller that released the graph while the job was still queued left a
  /// dangling reference the executor would chase. Internally this wraps
  /// the reference in a non-owning aliasing shared_ptr and delegates, so
  /// there is exactly one execution path; callers who cannot prove the
  /// lifetime should pass a shared_ptr (or publish through
  /// query::GraphRegistry) instead.
  template <VertexProgram Program>
  JobTicket<Program> submit(const graph::CsrGraph& graph, Program program,
                            VersionId version, EngineOptions options = {},
                            JobSpec spec = {}, ft::RetryPolicy retry = {}) {
    return submit(
        std::shared_ptr<const graph::CsrGraph>(std::shared_ptr<void>{},
                                               &graph),
        std::move(program), version, std::move(options), std::move(spec),
        std::move(retry));
  }

  /// Cancels a job: a queued job is shed (kCancelled) immediately; a
  /// running job's cancel token is raised and it fails with
  /// RunErrorKind::kCancelled at its next guard tick. Returns false when
  /// the id is unknown or already finished.
  bool cancel(std::uint64_t job_id);

  /// Stops intake, sheds everything still queued (kShutdown), and joins
  /// the executors once their current jobs finish. Idempotent; called by
  /// the destructor.
  void shutdown();

  /// External-pressure relief valve: sheds the least important queued job
  /// (kPriorityEvicted, recorded on the degradation log as kShedQueued
  /// with `detail`). Returns false when nothing is queued. The paged
  /// store's cache points its rung-3 callback here, so sustained paging
  /// thrash relieves pressure through the same audited ladder admission
  /// control uses, instead of silently overrunning memory.
  bool shed_weakest_queued(const std::string& detail);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const DegradationLog& degradation_log() const noexcept {
    return log_;
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Conservative (deliberately high) per-job reservation estimate from
  /// the graph's shape: per-slot values, internals, double-buffered
  /// mailboxes with the heaviest lock variant, frontier, and checkpoint
  /// staging, plus a fixed overhead floor.
  template <typename Program>
  [[nodiscard]] static std::size_t estimate_reservation(
      const graph::CsrGraph& g) noexcept {
    using V = typename Program::value_type;
    using M = typename Program::message_type;
    const std::size_t slots = g.num_slots();
    return slots * (2 * sizeof(V) + 3 * sizeof(M) + 64) + (1u << 16);
  }

 private:
  /// What the executor decided this job actually runs with.
  struct ExecPlan {
    std::size_t threads = 1;
    bool downgrade_checkpoint = false;
    double run_seconds = 0.0;           ///< remaining deadline; 0 = none
    std::size_t memory_budget_bytes = 0;  ///< per-job guard; 0 = off
  };

  using ExecuteFn = std::function<void(detail::JobStateBase&,
                                       const ExecPlan&, JobReport&)>;

  struct PendingJob {
    std::uint64_t id = 0;
    JobSpec spec;
    std::size_t reserved_bytes = 0;
    std::chrono::steady_clock::time_point submitted_at;
    std::shared_ptr<detail::JobStateBase> state;
    ExecuteFn execute;
  };

  void admit(PendingJob&& job);
  void executor_loop();
  /// Pops the best queued job (highest priority, FIFO within a priority).
  /// Caller holds mu_.
  [[nodiscard]] PendingJob pop_best_locked();
  /// Index of the least important queued job (lowest priority, newest
  /// within it), or npos when empty. Caller holds mu_.
  [[nodiscard]] std::size_t weakest_locked() const noexcept;
  /// Sheds queue_[index] with `reason`, releasing its reservation and
  /// finishing its state. Caller holds mu_.
  void shed_at_locked(std::size_t index, ShedReason reason);
  void release_reservation_locked(std::size_t bytes) noexcept;

  Config config_;
  DegradationLog log_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<PendingJob> queue_;
  std::unordered_map<std::uint64_t,
                     std::shared_ptr<detail::JobStateBase>>
      running_;
  Stats stats_;
  std::uint64_t next_id_ = 1;
  bool stopping_ = false;

  std::vector<std::thread> executors_;
};

}  // namespace ipregel::service
