#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ipregel::service {

/// Why the job service refused to run (or finish) a job. Every job the
/// JobManager does not execute to a RunOutcome carries exactly one of
/// these, so load generators and callers can account for every submission
/// — the overload analogue of RunErrorKind's failure taxonomy.
enum class ShedReason : std::uint8_t {
  /// The queue was at its depth bound and the job was not important enough
  /// to displace anything (admission-time rejection).
  kQueueFull,
  /// Admitting the job would push the global memory reservation over the
  /// service budget (admission-time rejection).
  kMemoryBudget,
  /// The job was admitted but later evicted from the queue to make room
  /// for a higher-priority arrival or to relieve memory pressure — the
  /// final rung of the degradation ladder.
  kPriorityEvicted,
  /// The job's deadline elapsed while it was still queued; starting it
  /// could only waste capacity the deadline already forfeited.
  kDeadlineExpired,
  /// The caller cancelled the job before it started running.
  kCancelled,
  /// The manager was shut down while the job was still queued.
  kShutdown,
};

[[nodiscard]] constexpr std::string_view to_string(ShedReason r) noexcept {
  switch (r) {
    case ShedReason::kQueueFull:
      return "queue-full";
    case ShedReason::kMemoryBudget:
      return "memory-budget";
    case ShedReason::kPriorityEvicted:
      return "priority-evicted";
    case ShedReason::kDeadlineExpired:
      return "deadline-expired";
    case ShedReason::kCancelled:
      return "cancelled";
    case ShedReason::kShutdown:
      return "shutdown";
  }
  return "invalid";
}

/// Thrown by JobManager::submit when admission control rejects the job
/// outright (queue depth or memory reservation). Jobs shed *after*
/// admission do not throw — their ticket's JobReport carries the reason —
/// because by then the submitter has already moved on.
class ShedError : public std::runtime_error {
 public:
  ShedError(ShedReason reason, const std::string& detail)
      : std::runtime_error("[shed:" + std::string(to_string(reason)) + "] " +
                           detail),
        reason_(reason) {}

  [[nodiscard]] ShedReason reason() const noexcept { return reason_; }

 private:
  ShedReason reason_;
};

}  // namespace ipregel::service
