#include "shard/channel.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>

#include "net/error.hpp"

namespace ipregel::shard {

namespace {

[[nodiscard]] double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Channel::~Channel() { close(); }

Channel& Channel::operator=(Channel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    peer_dead_ = std::exchange(other.peer_dead_, false);
  }
  return *this;
}

void Channel::close() noexcept {
  if (fd_ >= 0) {
    // EINTR after close(2) on Linux still releases the fd; never retry.
    ::close(fd_);
    fd_ = -1;
  }
  peer_dead_ = false;
}

std::pair<Channel, Channel> Channel::make_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_SEQPACKET, 0, fds) != 0) {
    throw net::NetError(net::NetOp::kSocket, "seqpacket pair", errno);
  }
  return {Channel(fds[0]), Channel(fds[1])};
}

namespace {

[[nodiscard]] sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    throw net::NetError(net::NetOp::kSocket, path, 0,
                        "unix socket path too long");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Channel Channel::listen_at(const std::string& path, int backlog) {
  // Nonblocking listener: accept() must be a poll, never a wait — the
  // coordinator interleaves it with the rest of its event loop. Accepted
  // connections are plain blocking fds like every other Channel.
  const int fd =
      ::socket(AF_UNIX, SOCK_SEQPACKET | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    throw net::NetError(net::NetOp::kSocket, path, errno);
  }
  // CLOEXEC is moot (workers are fork()ed, never exec), but keeps the
  // listener out of any future exec'd tooling. Stale socket files from a
  // previous run in the same directory would make bind fail with
  // EADDRINUSE; they carry no state, so replace them.
  ::unlink(path.c_str());
  const sockaddr_un addr = unix_addr(path);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw net::NetError(net::NetOp::kBind, path, err);
  }
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    throw net::NetError(net::NetOp::kListen, path, err);
  }
  return Channel(fd);
}

std::optional<Channel> Channel::accept() {
  for (;;) {
    const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) {
      return Channel(fd);
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return std::nullopt;  // nothing pending (listener is nonblocking via
                            // poll-before-accept callers; ECONNABORTED is a
                            // connector that gave up while queued)
    }
    throw net::NetError(net::NetOp::kAccept,
                        "reattach listener fd " + std::to_string(fd_), errno);
  }
}

std::optional<Channel> Channel::connect_to(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_SEQPACKET | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw net::NetError(net::NetOp::kSocket, path, errno);
  }
  const sockaddr_un addr = unix_addr(path);
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return Channel(fd);
    }
    if (errno == EINTR) {
      continue;
    }
    // No listener yet (ENOENT/ECONNREFUSED) or its backlog is full
    // (EAGAIN): the parked worker retries until its window expires.
    ::close(fd);
    return std::nullopt;
  }
}

bool Channel::send(const CtrlMsg& msg) {
  for (;;) {
    const ssize_t n = ::send(fd_, &msg, sizeof(msg), MSG_NOSIGNAL);
    if (n == static_cast<ssize_t>(sizeof(msg))) {
      return true;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      peer_dead_ = true;
      return false;  // peer died; the caller's liveness machinery handles it
    }
    throw net::NetError(net::NetOp::kSend,
                        "shard channel fd " + std::to_string(fd_), errno);
  }
}

std::optional<CtrlMsg> Channel::recv(int timeout_ms) {
  // EINTR discipline: recompute the REMAINING timeout from an absolute
  // deadline on every retry. Restarting the full timeout after each
  // interruption would let a SIGCHLD storm (every sibling-worker death
  // raises one) extend a bounded wait indefinitely.
  const bool bounded = timeout_ms > 0;
  const double deadline =
      bounded ? monotonic_seconds() + static_cast<double>(timeout_ms) / 1e3
              : 0.0;
  for (;;) {
    int wait_ms = timeout_ms;
    if (bounded) {
      const double remaining = deadline - monotonic_seconds();
      if (remaining <= 0.0) {
        return std::nullopt;  // timeout consumed by earlier retries
      }
      wait_ms = static_cast<int>(remaining * 1e3) + 1;
    }
    struct pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw net::NetError(net::NetOp::kPoll,
                          "shard channel fd " + std::to_string(fd_), errno);
    }
    if (ready == 0) {
      return std::nullopt;  // timeout
    }
    CtrlMsg msg;
    const ssize_t n = ::recv(fd_, &msg, sizeof(msg), 0);
    if (n == static_cast<ssize_t>(sizeof(msg))) {
      return msg;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n == 0 || (n < 0 && (errno == ECONNRESET || errno == EPIPE))) {
      peer_dead_ = true;
      return std::nullopt;  // peer closed — distinguishable from timeout
                            // via peer_dead()
    }
    if (n > 0) {
      // Truncated/oversized datagram: a protocol bug, not an I/O state.
      throw net::NetError(net::NetOp::kRecv,
                          "shard channel fd " + std::to_string(fd_), 0,
                          "malformed datagram of " + std::to_string(n) +
                              " bytes, expected " +
                              std::to_string(sizeof(msg)));
    }
    throw net::NetError(net::NetOp::kRecv,
                        "shard channel fd " + std::to_string(fd_), errno);
  }
}

}  // namespace ipregel::shard
