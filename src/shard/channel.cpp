#include "shard/channel.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

#include "net/error.hpp"

namespace ipregel::shard {

namespace {

[[nodiscard]] double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Channel::~Channel() { close(); }

Channel& Channel::operator=(Channel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Channel::close() noexcept {
  if (fd_ >= 0) {
    // EINTR after close(2) on Linux still releases the fd; never retry.
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<Channel, Channel> Channel::make_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_SEQPACKET, 0, fds) != 0) {
    throw net::NetError(net::NetOp::kSocket, "seqpacket pair", errno);
  }
  return {Channel(fds[0]), Channel(fds[1])};
}

bool Channel::send(const CtrlMsg& msg) {
  for (;;) {
    const ssize_t n = ::send(fd_, &msg, sizeof(msg), MSG_NOSIGNAL);
    if (n == static_cast<ssize_t>(sizeof(msg))) {
      return true;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return false;  // peer died; the caller's liveness machinery handles it
    }
    throw net::NetError(net::NetOp::kSend,
                        "shard channel fd " + std::to_string(fd_), errno);
  }
}

std::optional<CtrlMsg> Channel::recv(int timeout_ms) {
  // EINTR discipline: recompute the REMAINING timeout from an absolute
  // deadline on every retry. Restarting the full timeout after each
  // interruption would let a SIGCHLD storm (every sibling-worker death
  // raises one) extend a bounded wait indefinitely.
  const bool bounded = timeout_ms > 0;
  const double deadline =
      bounded ? monotonic_seconds() + static_cast<double>(timeout_ms) / 1e3
              : 0.0;
  for (;;) {
    int wait_ms = timeout_ms;
    if (bounded) {
      const double remaining = deadline - monotonic_seconds();
      if (remaining <= 0.0) {
        return std::nullopt;  // timeout consumed by earlier retries
      }
      wait_ms = static_cast<int>(remaining * 1e3) + 1;
    }
    struct pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw net::NetError(net::NetOp::kPoll,
                          "shard channel fd " + std::to_string(fd_), errno);
    }
    if (ready == 0) {
      return std::nullopt;  // timeout
    }
    CtrlMsg msg;
    const ssize_t n = ::recv(fd_, &msg, sizeof(msg), 0);
    if (n == static_cast<ssize_t>(sizeof(msg))) {
      return msg;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n == 0 || (n < 0 && (errno == ECONNRESET || errno == EPIPE))) {
      return std::nullopt;  // peer closed
    }
    if (n > 0) {
      // Truncated/oversized datagram: a protocol bug, not an I/O state.
      throw net::NetError(net::NetOp::kRecv,
                          "shard channel fd " + std::to_string(fd_), 0,
                          "malformed datagram of " + std::to_string(n) +
                              " bytes, expected " +
                              std::to_string(sizeof(msg)));
    }
    throw net::NetError(net::NetOp::kRecv,
                        "shard channel fd " + std::to_string(fd_), errno);
  }
}

}  // namespace ipregel::shard
