#include "shard/channel.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace ipregel::shard {

Channel::~Channel() { close(); }

Channel& Channel::operator=(Channel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Channel::close() noexcept {
  if (fd_ >= 0) {
    // EINTR after close(2) on Linux still releases the fd; never retry.
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<Channel, Channel> Channel::make_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_SEQPACKET, 0, fds) != 0) {
    throw std::runtime_error(std::string("socketpair failed: ") +
                             std::strerror(errno));
  }
  return {Channel(fds[0]), Channel(fds[1])};
}

bool Channel::send(const CtrlMsg& msg) {
  for (;;) {
    const ssize_t n = ::send(fd_, &msg, sizeof(msg), MSG_NOSIGNAL);
    if (n == static_cast<ssize_t>(sizeof(msg))) {
      return true;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return false;  // peer died; the caller's liveness machinery handles it
    }
    throw std::runtime_error(std::string("shard channel send failed: ") +
                             std::strerror(errno));
  }
}

std::optional<CtrlMsg> Channel::recv(int timeout_ms) {
  for (;;) {
    struct pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;  // conservative: may extend the wait, never corrupts it
      }
      throw std::runtime_error(std::string("shard channel poll failed: ") +
                               std::strerror(errno));
    }
    if (ready == 0) {
      return std::nullopt;  // timeout
    }
    CtrlMsg msg;
    const ssize_t n = ::recv(fd_, &msg, sizeof(msg), 0);
    if (n == static_cast<ssize_t>(sizeof(msg))) {
      return msg;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n == 0 || (n < 0 && (errno == ECONNRESET || errno == EPIPE))) {
      return std::nullopt;  // peer closed
    }
    if (n > 0) {
      // Truncated/oversized datagram: a protocol bug, not an I/O state.
      throw std::runtime_error("shard channel received a malformed datagram");
    }
    throw std::runtime_error(std::string("shard channel recv failed: ") +
                             std::strerror(errno));
  }
}

}  // namespace ipregel::shard
