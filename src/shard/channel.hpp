#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>

namespace ipregel::shard {

/// Control-plane datagram between the coordinator and a worker. Fixed-
/// size trivially-copyable POD: one SOCK_SEQPACKET datagram per message,
/// no framing, no partial reads. The aggregate partial rides inline
/// (bounded by kMaxAggregate — aggregate_type is trivially copyable and
/// small by the HasSerializableAggregator contract).
struct CtrlMsg {
  enum class Kind : std::uint32_t {
    /// worker → coordinator, once per incarnation after (re)initialising:
    /// "I am shard `shard`, generation `generation`, resuming at
    /// `superstep`". For generation > 0 the coordinator answers by
    /// broadcasting kRecover to the survivors. `active` qualifies the
    /// hello: 0 = fresh (re)spawn, 1 = adoption (a LIVE incarnation
    /// re-binding to a takeover coordinator — no kRecover broadcast
    /// needed), 2 = full-respawn cut negotiation (`superstep` is the
    /// achieved resume point, which may be below the proposed cut).
    /// `sent` carries the worker's pid so a takeover coordinator that
    /// did not fork it can still supervise it.
    kHello = 1,
    /// worker → coordinator: liveness tick, sent from inside the
    /// compute/drain/wait loops.
    kHeartbeat,
    /// worker → coordinator: "superstep `superstep` computed and posted;
    /// sent/active/executed are my local counters, payload is my
    /// aggregate partial". The worker then blocks for kProceed.
    kBarrier,
    /// coordinator → worker: barrier release for `superstep`. `flag` is a
    /// Command; payload is the globally folded aggregate of `superstep`.
    kProceed,
    /// coordinator → surviving workers: "shard `shard` is back at
    /// superstep `superstep`; republish your retained frames to it".
    kRecover,
    /// coordinator → workers: tear down now (job failed or cancelled).
    kAbort,
    /// takeover coordinator → parked worker, first message on a freshly
    /// accepted reattach connection: "I am the coordinator incarnation
    /// with fencing epoch `epoch`; the committed barrier is `superstep`".
    /// The worker answers kHello (adoption accepted) or kFenced (the
    /// claimed epoch is older than one it has already obeyed).
    kAdopt,
    /// worker → stale coordinator: "your fencing epoch `flag` is older
    /// than epoch `epoch`, which I have already seen — step down". The
    /// typed split-brain rejection; a coordinator receiving this aborts
    /// with RunErrorKind::kCoordinatorFenced without touching any worker.
    kFenced,
    /// coordinator → worker (resilient TCP runs only): "your final values
    /// are durably received — it is safe to exit". Workers in a resilient
    /// TCP run hold their final values until acked, so a coordinator
    /// crash between values receipt and job completion cannot lose them.
    kValuesAck,
  };

  /// kProceed sub-command.
  enum class Command : std::uint64_t {
    kContinue = 0,  ///< advance to the next superstep
    kHalt = 1,      ///< computation converged — write nothing more, exit 0
  };

  static constexpr std::size_t kMaxAggregate = 64;

  Kind kind = Kind::kHeartbeat;
  std::uint32_t shard = 0;
  std::uint64_t superstep = 0;
  std::uint64_t flag = 0;      ///< kProceed: Command; kHello: generation
  std::uint64_t sent = 0;      ///< kBarrier: messages sent
  std::uint64_t active = 0;    ///< kBarrier: vertices not halted
  std::uint64_t executed = 0;  ///< kBarrier: vertices executed
  std::uint32_t payload_len = 0;
  /// Coordinator fencing epoch (0 in non-resilient runs). Stamped on
  /// every coordinator→worker message; a worker rejects an epoch older
  /// than one it has already obeyed (kFenced). Worker→coordinator
  /// messages echo the sender's last-known epoch. An adoption kHello
  /// additionally carries the worker's pid in `sent` so a takeover
  /// coordinator (which did not fork it) can supervise and kill it.
  std::uint64_t epoch = 0;
  std::uint8_t payload[kMaxAggregate] = {};
};
static_assert(std::is_trivially_copyable_v<CtrlMsg>);

/// One end of a coordinator↔worker SEQPACKET socketpair. Datagram
/// semantics give atomic whole-message delivery both ways; EOF/EPIPE on a
/// dead peer is reported as a status, not an exception — peer death is a
/// normal event the control plane is built to observe.
class Channel {
 public:
  Channel() = default;
  explicit Channel(int fd) noexcept : fd_(fd) {}
  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;
  Channel(Channel&& other) noexcept
      : fd_(std::exchange(other.fd_, -1)),
        peer_dead_(std::exchange(other.peer_dead_, false)) {}
  Channel& operator=(Channel&& other) noexcept;

  /// socketpair(AF_UNIX, SOCK_SEQPACKET): (coordinator end, worker end).
  /// Throws net::NetError on failure.
  [[nodiscard]] static std::pair<Channel, Channel> make_pair();

  /// Binds + listens a named AF_UNIX SEQPACKET socket at `path` (any
  /// stale socket file is unlinked first) — the reattach rendezvous a
  /// takeover coordinator accepts parked workers on. The returned Channel
  /// is a LISTENER: use accept(), never send/recv. Throws net::NetError.
  [[nodiscard]] static Channel listen_at(const std::string& path,
                                         int backlog);

  /// Accepts one queued connection on a listener, without blocking.
  /// nullopt when none is pending.
  [[nodiscard]] std::optional<Channel> accept();

  /// Connects to a named listener. nullopt when nothing listens there (or
  /// the backlog is full) — the parked worker's retry loop handles it.
  [[nodiscard]] static std::optional<Channel> connect_to(
      const std::string& path);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  void close() noexcept;

  /// True once a send saw EPIPE/ECONNRESET or a recv saw EOF: the peer
  /// process is gone for good on a socketpair (distinguishes recv's
  /// nullopt-on-timeout from nullopt-on-death, which is what bounds the
  /// orphaned-worker exit on the shm transport).
  [[nodiscard]] bool peer_dead() const noexcept { return peer_dead_; }

  /// Sends one message. Retries EINTR (SIGCHLD storms from sibling-worker
  /// deaths land mid-call); returns false when the peer is gone (EPIPE /
  /// ECONNRESET — never raises SIGPIPE). Any other errno throws a typed
  /// net::NetError carrying the op and errno.
  bool send(const CtrlMsg& msg);

  /// Receives one message, waiting up to timeout_ms (0 = just poll, <0 =
  /// block). nullopt on timeout or dead peer. EINTR is retried against an
  /// absolute deadline — the remaining timeout is recomputed on every
  /// retry, so interrupt storms can never extend a bounded wait.
  /// Unexpected errnos and malformed datagrams throw net::NetError.
  [[nodiscard]] std::optional<CtrlMsg> recv(int timeout_ms);

 private:
  int fd_ = -1;
  bool peer_dead_ = false;
};

}  // namespace ipregel::shard
