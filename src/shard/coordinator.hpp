#pragma once

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/aggregator_traits.hpp"
#include "core/program_traits.hpp"
#include "core/run_error.hpp"
#include "ft/fingerprint.hpp"
#include "io/vfs.hpp"
#include "shard/channel.hpp"
#include "shard/layout.hpp"
#include "shard/options.hpp"
#include "shard/partition.hpp"
#include "shard/supervisor.hpp"
#include "shard/tcp_transport.hpp"
#include "shard/transport.hpp"
#include "shard/worker.hpp"

namespace ipregel::shard {

/// The coordinator half of the sharded runtime: forks one worker process
/// per shard, runs the BSP barrier protocol over a CtrlPlane (SEQPACKET
/// channels for shm, accepted TCP streams for kTcp), watches liveness
/// (waitpid + heartbeat deadlines), and — through ShardSupervisor —
/// respawns failed shards from their newest valid snapshot while the
/// survivors replay retained frames to them. Single-threaded: one poll
/// loop owns every fd and every child, so there is nothing to lock and
/// fork() has no threading caveats.
template <VertexProgram Program>
class Coordinator {
 public:
  using Value = typename Program::value_type;
  using Msg = typename Program::message_type;

  Coordinator(const graph::CsrGraph& graph, Program program,
              const ShardOptions& options)
      : graph_(graph),
        program_(std::move(program)),
        options_(options),
        part_(graph, options.num_shards, options.partition),
        supervisor_(options.supervisor, part_.shards()) {
    validate_options();
    graph_fp_ = ft::graph_fingerprint(graph_);
    if (options_.transport == TransportKind::kTcp) {
      // TCP needs no shared arena at all: data frames go shard-to-shard
      // over sockets and the final values come back as kValues frames
      // into net_board_. Listeners are bound BEFORE any fork so every
      // worker (and every respawn) inherits every port.
      rendezvous_ = std::make_unique<TcpRendezvous>(part_.shards());
      net_board_.assign(graph_.num_slots() * sizeof(Value), 0);
      auto tcp = std::make_unique<TcpCtrlPlane>(
          rendezvous_->ctrl_listener(), part_.shards(), options_.net,
          &net_board_);
      tcp_ctrl_ = tcp.get();
      ctrl_ = std::move(tcp);
    } else {
      build_arena();
      ctrl_ = std::make_unique<ShmCtrlPlane>(part_.shards());
    }
  }

  [[nodiscard]] ShardOutcome run(std::vector<Value>* out_values) {
    const double t0 = now();
    start_ = t0;
    if (options_.checkpoint.enabled()) {
      io::Vfs& vfs = io::vfs_or_real(options_.checkpoint.vfs);
      if (!vfs.exists(options_.checkpoint.directory)) {
        vfs.mkdir(options_.checkpoint.directory);
      }
    }
    workers_.resize(part_.shards());
    entries_.assign(part_.shards(), std::nullopt);
    for (std::size_t shard = 0; shard < part_.shards(); ++shard) {
      spawn(shard, 0);
    }

    while (!done_) {
      if (outcome_.error.has_value()) {
        break;
      }
      step();
    }
    reap_everything();
    outcome_.result.seconds = now() - t0;
    if (outcome_.ok() && tcp_ctrl_ != nullptr &&
        !tcp_ctrl_->values_complete()) {
      // A worker halted without its values terminator landing: the board
      // would be silently stale. Typed failure instead.
      outcome_.error.emplace(RunErrorKind::kShardFailure,
                             static_cast<std::size_t>(barrier_superstep_), 0,
                             RunError::kNoVertex,
                             "final values incomplete: a shard halted "
                             "without delivering its kValues frames");
    }
    if (outcome_.ok() && out_values != nullptr) {
      out_values->resize(graph_.num_slots());
      const std::uint8_t* board = options_.transport == TransportKind::kTcp
                                      ? net_board_.data()
                                      : arena_->at(spec_.board_offset);
      std::memcpy(out_values->data(), board,
                  graph_.num_slots() * sizeof(Value));
    }
    return std::move(outcome_);
  }

 private:
  struct WorkerSlot {
    pid_t pid = -1;
    double last_seen = 0.0;
    std::size_t generation = 0;
    bool alive = false;
    /// Death detected, replacement not yet back at a barrier.
    bool recovering = false;
    double recovering_since = 0.0;
  };

  struct BarrierEntry {
    std::uint64_t sent = 0;
    std::uint64_t active = 0;
    std::uint64_t executed = 0;
    std::uint32_t payload_len = 0;
    std::uint8_t payload[CtrlMsg::kMaxAggregate] = {};
  };

  struct Release {
    CtrlMsg::Command cmd = CtrlMsg::Command::kContinue;
    std::uint32_t payload_len = 0;
    std::uint8_t payload[CtrlMsg::kMaxAggregate] = {};
  };

  [[nodiscard]] static double now() noexcept {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void validate_options() const {
    if (part_.shards() == 0) {
      throw std::invalid_argument("run_sharded: num_shards must be >= 1");
    }
    if (options_.checkpoint.enabled() &&
        options_.checkpoint.vfs != nullptr) {
      throw std::invalid_argument(
          "run_sharded: shard snapshots must live on the real filesystem — "
          "an in-memory Vfs dies with the worker process it was meant to "
          "revive");
    }
    if constexpr (HasAggregator<Program>) {
      static_assert(HasSerializableAggregator<Program>,
                    "sharded aggregator programs need a trivially copyable "
                    "aggregate_type (it crosses a process boundary)");
      static_assert(sizeof(typename Program::aggregate_type) <=
                        CtrlMsg::kMaxAggregate,
                    "aggregate_type exceeds the control-plane payload");
      if (options_.checkpoint.enabled() &&
          options_.checkpoint.mode == ft::CheckpointMode::kLightweight) {
        throw std::invalid_argument(
            "run_sharded: lightweight checkpoints cannot carry aggregator "
            "state (same rule as the single-process engine)");
      }
    }
    if (options_.checkpoint.enabled() &&
        options_.checkpoint.mode == ft::CheckpointMode::kLightweight &&
        !ShardEngine<Program>::resend_capable()) {
      throw std::invalid_argument(
          "run_sharded: lightweight checkpoints need Program::resend(ctx)");
    }
  }

  void build_arena() {
    const std::size_t n = part_.shards();
    spec_.shards = n;
    spec_.ring_capacity.assign(n * n, 0);
    constexpr std::size_t kEntryBytes = sizeof(std::uint32_t) + sizeof(Msg);
    for (std::size_t src = 0; src < n; ++src) {
      for (std::size_t dst = 0; dst < n; ++dst) {
        if (src == dst) {
          continue;
        }
        const std::size_t frame =
            sizeof(FrameHeader) + sizeof(std::uint64_t) +
            part_.size(dst) * kEntryBytes;
        // Sized for the steady state (two supersteps in flight) plus a
        // full recovery republish burst, so producers practically never
        // block.
        spec_.ring_capacity[src * n + dst] =
            (options_.retain_supersteps + 2) * frame +
            options_.ring_slack_bytes;
      }
    }
    spec_.board_bytes = graph_.num_slots() * sizeof(Value);
    spec_.finalize();
    arena_ = std::make_unique<ShmArena>(spec_.total_bytes);
    for (std::size_t src = 0; src < n; ++src) {
      for (std::size_t dst = 0; dst < n; ++dst) {
        if (src != dst) {
          (void)spec_.attach(*arena_, src, dst, /*initialize=*/true);
        }
      }
    }
  }

  void spawn(std::size_t shard, std::size_t generation) {
    Channel worker_end;
    ctrl_->begin_incarnation(shard, generation, &worker_end);
    WorkerConfig<Program> cfg;
    cfg.graph = &graph_;
    cfg.program = &program_;
    cfg.options = &options_;
    cfg.spec = &spec_;
    cfg.arena = arena_.get();
    cfg.rendezvous = rendezvous_.get();
    cfg.me = shard;
    cfg.generation = generation;
    cfg.graph_fp = graph_fp_;
    const pid_t pid = ::fork();
    if (pid < 0) {
      throw std::runtime_error("run_sharded: fork failed");
    }
    if (pid == 0) {
      // Child: drop every inherited coordinator-side fd (the worker talks
      // through its own plane only) and become the worker. worker_main
      // closes the inherited rendezvous listeners it does not own.
      ctrl_->close_inherited_in_child();
      worker_main<Program>(cfg, std::move(worker_end));  // never returns
    }
    worker_end.close();
    WorkerSlot& slot = workers_[shard];
    const bool was_recovering = slot.recovering;
    const double since = slot.recovering_since;
    slot = WorkerSlot{};
    slot.pid = pid;
    slot.last_seen = now();
    slot.generation = generation;
    slot.alive = true;
    slot.recovering = was_recovering;
    slot.recovering_since = since;
  }

  /// One poll-loop iteration: guards, messages, deaths, watchdogs,
  /// due respawns.
  void step() {
    if (options_.guards.cancel_token != nullptr &&
        options_.guards.cancel_token->load(std::memory_order_relaxed)) {
      abort_run(RunErrorKind::kCancelled, "cancel token raised");
      return;
    }
    if (options_.guards.run_seconds > 0.0 &&
        now() - start_ > options_.guards.run_seconds) {
      abort_run(RunErrorKind::kRunTimeout,
                "sharded run exceeded guards.run_seconds");
      return;
    }

    // Wait up to 10ms for the first event, then drain the rest dry.
    int timeout_ms = 10;
    while (const auto event = ctrl_->next(timeout_ms)) {
      timeout_ms = 0;
      const std::size_t shard = event->shard;
      if (shard >= workers_.size() || !workers_[shard].alive) {
        continue;  // stale message from a reaped incarnation
      }
      workers_[shard].last_seen = now();
      switch (event->msg.kind) {
        case CtrlMsg::Kind::kHello:
          handle_hello(shard, event->msg);
          break;
        case CtrlMsg::Kind::kHeartbeat:
          break;
        case CtrlMsg::Kind::kBarrier:
          handle_barrier(shard, event->msg);
          break;
        default:
          break;  // workers do not send coordinator->worker kinds
      }
      if (outcome_.error.has_value()) {
        return;
      }
    }

    reap_dead();
    check_heartbeats();
    start_due_respawns();
  }

  void handle_hello(std::size_t shard, const CtrlMsg& msg) {
    if (msg.flag == 0) {
      return;  // initial incarnation, nothing to reconcile
    }
    const std::uint64_t resume = msg.superstep;
    if (resume > 0) {
      ++outcome_.shard.snapshot_recoveries;
    }
    if (resume > barrier_superstep_) {
      abort_run(RunErrorKind::kShardFailure,
                "shard " + std::to_string(shard) +
                    " resumed AHEAD of the barrier (superstep " +
                    std::to_string(resume) + " > " +
                    std::to_string(barrier_superstep_) +
                    ") — stale snapshots from a different run?");
      return;
    }
    // The deepest frames the rebuild needs: resume - 1 for a lightweight
    // inbox reconstruction, resume itself otherwise.
    const bool lw = options_.checkpoint.mode ==
                    ft::CheckpointMode::kLightweight;
    const std::uint64_t oldest =
        (lw && resume > 0) ? resume - 1 : resume;
    if (oldest + options_.retain_supersteps <= barrier_superstep_) {
      abort_run(
          RunErrorKind::kShardFailure,
          "shard " + std::to_string(shard) + " resumed at superstep " +
              std::to_string(resume) +
              ", beyond the survivors' retained frame window (barrier at " +
              std::to_string(barrier_superstep_) + ", retain " +
              std::to_string(options_.retain_supersteps) + ")");
      return;
    }
    CtrlMsg recover;
    recover.kind = CtrlMsg::Kind::kRecover;
    recover.shard = static_cast<std::uint32_t>(shard);
    recover.superstep = resume;
    for (std::size_t peer = 0; peer < workers_.size(); ++peer) {
      if (peer != shard && workers_[peer].alive) {
        (void)ctrl_->send(peer, recover);
      }
    }
  }

  void handle_barrier(std::size_t shard, const CtrlMsg& msg) {
    WorkerSlot& w = workers_[shard];
    if (w.recovering) {
      w.recovering = false;
      outcome_.shard.recovery_seconds += now() - w.recovering_since;
    }
    if (msg.superstep < barrier_superstep_) {
      // A redo of an already-released superstep: replay the recorded
      // decision to this worker alone. The counts were folded the first
      // time; deterministic redo reproduces them exactly. (TCP reconnects
      // also land here: the worker requeues its last barrier after a
      // control-link loss, and the replayed release is idempotent.)
      const auto it = history_.find(msg.superstep);
      if (it != history_.end()) {
        send_proceed(shard, msg.superstep, it->second);
      }
      return;
    }
    if (msg.superstep > barrier_superstep_) {
      return;  // impossible by protocol; drop rather than corrupt state
    }
    BarrierEntry entry;
    entry.sent = msg.sent;
    entry.active = msg.active;
    entry.executed = msg.executed;
    entry.payload_len = msg.payload_len;
    std::memcpy(entry.payload, msg.payload, sizeof(entry.payload));
    entries_[shard] = entry;
    for (const auto& e : entries_) {
      if (!e.has_value()) {
        return;
      }
    }
    release_barrier();
  }

  void release_barrier() {
    std::uint64_t sent = 0;
    std::uint64_t active = 0;
    std::uint64_t executed = 0;
    Release rel;
    if constexpr (HasSerializableAggregator<Program>) {
      auto agg = Program::aggregate_identity();
      // Deterministic shard-order fold — the cross-process analogue of
      // the engine's in-thread-order aggregate reduce.
      for (const auto& e : entries_) {
        Program::aggregate(
            agg, aggregate_from_bytes<Program>(
                     std::span<const std::uint8_t>(e->payload,
                                                   e->payload_len)));
      }
      const auto bytes = aggregate_to_bytes<Program>(agg);
      rel.payload_len = static_cast<std::uint32_t>(bytes.size());
      std::memcpy(rel.payload, bytes.data(), bytes.size());
    }
    for (const auto& e : entries_) {
      sent += e->sent;
      active += e->active;
      executed += e->executed;
    }
    outcome_.result.total_messages += sent;
    outcome_.result.total_executed_vertices += executed;
    outcome_.result.supersteps =
        static_cast<std::size_t>(barrier_superstep_) + 1;

    const bool cap =
        barrier_superstep_ + 1 >= options_.max_supersteps;
    const bool converged = sent == 0 && active == 0;
    rel.cmd = (converged || cap) ? CtrlMsg::Command::kHalt
                                 : CtrlMsg::Command::kContinue;
    outcome_.result.reached_superstep_cap = cap && !converged;

    history_[barrier_superstep_] = rel;
    while (history_.size() > options_.retain_supersteps + 8) {
      history_.erase(history_.begin());
    }
    for (std::size_t shard = 0; shard < workers_.size(); ++shard) {
      if (workers_[shard].alive) {
        send_proceed(shard, barrier_superstep_, rel);
      }
    }
    if (rel.cmd == CtrlMsg::Command::kHalt) {
      halting_ = true;
    }
    ++barrier_superstep_;
    entries_.assign(workers_.size(), std::nullopt);
  }

  void send_proceed(std::size_t shard, std::uint64_t superstep,
                    const Release& rel) {
    CtrlMsg msg;
    msg.kind = CtrlMsg::Kind::kProceed;
    msg.superstep = superstep;
    msg.flag = static_cast<std::uint64_t>(rel.cmd);
    msg.payload_len = rel.payload_len;
    std::memcpy(msg.payload, rel.payload, sizeof(msg.payload));
    (void)ctrl_->send(shard, msg);
  }

  void reap_dead() {
    for (;;) {
      int status = 0;
      const pid_t pid = ::waitpid(-1, &status, WNOHANG);
      if (pid <= 0) {
        return;
      }
      for (std::size_t shard = 0; shard < workers_.size(); ++shard) {
        WorkerSlot& w = workers_[shard];
        if (w.alive && w.pid == pid) {
          w.alive = false;
          // Halt path drains in-flight kValues frames before closing.
          ctrl_->drop(shard, halting_);
          const bool clean = WIFEXITED(status) &&
                             WEXITSTATUS(status) == kWorkerExitHalt;
          const bool unreachable =
              WIFEXITED(status) &&
              WEXITSTATUS(status) == kWorkerExitUnreachable;
          if (halting_) {
            if (++exited_ == workers_.size()) {
              done_ = true;
            }
          } else {
            // Retract any barrier entry the dead incarnation posted: the
            // barrier — and in particular a halt decision — must wait for
            // the respawn's fresh re-entry, so survivors are still alive
            // (and replaying frames) for the whole redo. A clean exit
            // outside the halt drain is equally a failure: the worker saw
            // a halt this coordinator never issued.
            entries_[shard].reset();
            plan_respawn(shard, clean       ? "worker exited unexpectedly"
                                : unreachable
                                    ? "worker lost a peer link "
                                      "(reconnect budget exhausted)"
                                    : "worker died");
          }
          break;
        }
      }
    }
  }

  void plan_respawn(std::size_t shard, const std::string& why) {
    WorkerSlot& w = workers_[shard];
    if (!w.recovering) {
      w.recovering = true;
      w.recovering_since = now();
    }
    const auto backoff = supervisor_.plan_respawn(shard);
    if (!backoff.has_value()) {
      abort_run(RunErrorKind::kShardFailure,
                why + ": shard " + std::to_string(shard) +
                    " exhausted its respawn budget (" +
                    std::to_string(supervisor_.generation(shard)) +
                    " respawns, " +
                    std::to_string(supervisor_.total_respawns()) + " total)");
      return;
    }
    ++outcome_.shard.respawns;
    respawn_at_[shard] = now() + *backoff;
  }

  void start_due_respawns() {
    const double t = now();
    for (auto it = respawn_at_.begin(); it != respawn_at_.end();) {
      if (it->second <= t) {
        const std::size_t shard = it->first;
        it = respawn_at_.erase(it);
        spawn(shard, supervisor_.generation(shard));
      } else {
        ++it;
      }
    }
  }

  void check_heartbeats() {
    const double timeout =
        options_.hang_timeout_seconds > 0.0
            ? options_.hang_timeout_seconds
            : (options_.guards.superstep_seconds > 0.0
                   ? options_.guards.superstep_seconds
                   : 30.0);
    const double t = now();
    for (WorkerSlot& w : workers_) {
      if (w.alive && t - w.last_seen > timeout) {
        // A worker that stopped heartbeating stopped progressing —
        // heartbeats are sent from inside the compute/drain loops (and a
        // stalled TCP control link drops them, which is the point). Kill
        // it and let the reaper route it into the respawn path.
        ++outcome_.shard.heartbeat_kills;
        ::kill(w.pid, SIGKILL);
        w.last_seen = t;  // one kill per missed deadline
      }
    }
  }

  void abort_run(RunErrorKind kind, const std::string& detail) {
    CtrlMsg abort_msg;
    abort_msg.kind = CtrlMsg::Kind::kAbort;
    for (std::size_t shard = 0; shard < workers_.size(); ++shard) {
      if (workers_[shard].alive) {
        (void)ctrl_->send(shard, abort_msg);
      }
    }
    outcome_.error.emplace(kind,
                           static_cast<std::size_t>(barrier_superstep_), 0,
                           RunError::kNoVertex, detail);
  }

  /// Terminal cleanup: whatever state the run ended in, no child
  /// processes survive this coordinator.
  void reap_everything() {
    const double deadline = now() + 1.0;
    for (;;) {
      bool any_alive = false;
      for (std::size_t shard = 0; shard < workers_.size(); ++shard) {
        WorkerSlot& w = workers_[shard];
        if (!w.alive) {
          continue;
        }
        int status = 0;
        const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
        if (r == w.pid || r < 0) {
          w.alive = false;
          ctrl_->drop(shard, halting_);
        } else {
          any_alive = true;
          if (now() > deadline) {
            ::kill(w.pid, SIGKILL);
          }
        }
      }
      if (!any_alive) {
        return;
      }
      ::usleep(2000);
    }
  }

  const graph::CsrGraph& graph_;
  Program program_;
  ShardOptions options_;
  ShardPartition part_;
  ShardSupervisor supervisor_;
  std::uint64_t graph_fp_ = 0;

  ArenaSpec spec_;
  std::unique_ptr<ShmArena> arena_;
  std::unique_ptr<TcpRendezvous> rendezvous_;
  std::unique_ptr<CtrlPlane> ctrl_;
  TcpCtrlPlane* tcp_ctrl_ = nullptr;  ///< non-owning view, kTcp only
  std::vector<std::uint8_t> net_board_;
  std::vector<WorkerSlot> workers_;

  std::uint64_t barrier_superstep_ = 0;
  std::vector<std::optional<BarrierEntry>> entries_;
  std::map<std::uint64_t, Release> history_;
  std::map<std::size_t, double> respawn_at_;

  bool halting_ = false;
  std::size_t exited_ = 0;
  bool done_ = false;
  double start_ = now();
  ShardOutcome outcome_;
};

/// Entry point of the sharded execution mode: runs `program` over `graph`
/// across options.num_shards worker processes and returns the fused
/// outcome. On success `out_values` (when non-null) receives the final
/// per-slot vertex values, byte-identical to what Engine::values() holds
/// for the populated range under the same deterministic schedule.
template <VertexProgram Program>
[[nodiscard]] ShardOutcome run_sharded(
    const graph::CsrGraph& graph, Program program, const ShardOptions& options,
    std::vector<typename Program::value_type>* out_values = nullptr) {
  Coordinator<Program> coordinator(graph, std::move(program), options);
  return coordinator.run(out_values);
}

}  // namespace ipregel::shard
