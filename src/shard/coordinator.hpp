#pragma once

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/aggregator_traits.hpp"
#include "core/program_traits.hpp"
#include "core/run_error.hpp"
#include "ft/binary_format.hpp"
#include "ft/fingerprint.hpp"
#include "io/fault_wrap_vfs.hpp"
#include "io/stream.hpp"
#include "io/vfs.hpp"
#include "shard/channel.hpp"
#include "shard/layout.hpp"
#include "shard/manifest.hpp"
#include "shard/options.hpp"
#include "shard/partition.hpp"
#include "shard/supervisor.hpp"
#include "shard/tcp_transport.hpp"
#include "shard/transport.hpp"
#include "shard/worker.hpp"

namespace ipregel::shard {

/// Death notification the resilient supervisor relays for workers it
/// reaped on the coordinator's behalf (adopted workers are children of a
/// DEAD coordinator incarnation, reparented to the supervisor — the live
/// coordinator cannot waitpid them). One fixed-size record per pipe
/// write, always below PIPE_BUF, so reads never tear.
struct CoordOrphanDeath {
  std::int32_t pid = 0;
  std::int32_t status = 0;
};

/// How run_sharded_resilient boots one coordinator incarnation: the
/// supervisor owns every cross-incarnation resource (the shm arena, the
/// TCP rendezvous, the reattach listener, the orphan-death pipe) and each
/// forked coordinator borrows them. A default-constructed boot is the
/// plain run_sharded path: no recovery, everything owned by the
/// Coordinator itself.
struct RecoveryBoot {
  /// Entered through run_sharded_resilient: honour RecoveryOptions and
  /// CoordFaults. Plain run_sharded leaves this false and both are
  /// cleared — a coordinator with no supervisor must not kill itself.
  bool resilient = false;
  /// This incarnation continues a run a dead coordinator left behind.
  bool takeover = false;
  /// 0 = the first incarnation; takeovers are 1, 2, ... (what the
  /// stale_epoch_at_takeover test hook indexes).
  std::size_t takeover_index = 0;
  /// Supervisor-owned shm plane (kShm only): arena + finalized spec.
  const ArenaSpec* spec = nullptr;
  const ShmArena* arena = nullptr;
  /// Supervisor-owned TCP rendezvous (kTcp only).
  TcpRendezvous* rendezvous = nullptr;
  /// Supervisor-owned reattach listener (kShm only) parked workers
  /// connect to; the coordinator accepts and adopts.
  Channel* reattach = nullptr;
  /// Read end of the supervisor's orphan-death pipe (CoordOrphanDeath
  /// records), O_NONBLOCK. -1 = none.
  int orphan_fd = -1;
  /// Write end of this incarnation's result pipe. The coordinator itself
  /// writes its outcome there at the END of run(); here it is only so
  /// spawn() can close the inherited copy in every worker child —
  /// otherwise a coordinator crash would leave the pipe open (no EOF)
  /// until the last parked worker died.
  int result_fd = -1;
};

/// The coordinator half of the sharded runtime: forks one worker process
/// per shard, runs the BSP barrier protocol over a CtrlPlane (SEQPACKET
/// channels for shm, accepted TCP streams for kTcp), watches liveness
/// (waitpid + heartbeat deadlines), and — through ShardSupervisor —
/// respawns failed shards from their newest valid snapshot while the
/// survivors replay retained frames to them. Single-threaded: one poll
/// loop owns every fd and every child, so there is nothing to lock and
/// fork() has no threading caveats.
///
/// With coordinator recovery enabled (run_sharded_resilient), the
/// coordinator itself becomes a recoverable failure domain:
///  - WRITE-AHEAD MANIFEST: every barrier release is published to the
///    durable run manifest BEFORE any kProceed is sent. A coordinator
///    death on either side of that line is safe — died-before-commit
///    means the workers re-send their barrier and the deterministic
///    re-fold reproduces the identical release; died-after-commit means
///    the release is replayed from history. Counters are folded exactly
///    once per superstep either way.
///  - FENCED TAKEOVER: a takeover claims fencing epoch max-seen + 1 and
///    publishes the claim before touching any worker. Workers reject any
///    older epoch with kFenced; a fenced coordinator stands down with
///    RunErrorKind::kCoordinatorFenced WITHOUT killing anything — the
///    run belongs to a newer incarnation.
///  - ADOPTION: parked survivors re-bind over the reattach rendezvous
///    (shm) or the ordinary reconnect machinery (TCP); shards that never
///    re-attach are respawned from their newest valid snapshot.
template <VertexProgram Program>
class Coordinator {
 public:
  using Value = typename Program::value_type;
  using Msg = typename Program::message_type;

  Coordinator(const graph::CsrGraph& graph, Program program,
              const ShardOptions& options)
      : Coordinator(graph, std::move(program), options, RecoveryBoot{}) {}

  Coordinator(const graph::CsrGraph& graph, Program program,
              const ShardOptions& options, const RecoveryBoot& boot)
      : graph_(graph),
        program_(std::move(program)),
        options_(options),
        part_(graph, options.num_shards, options.partition),
        supervisor_(options.supervisor, part_.shards()),
        resilient_(boot.resilient),
        takeover_(boot.resilient && boot.takeover),
        takeover_index_(boot.takeover_index),
        reattach_(boot.reattach),
        orphan_fd_(boot.orphan_fd),
        result_fd_(boot.result_fd) {
    if (!resilient_) {
      // Plain run_sharded has no supervisor to fork a takeover: recovery
      // and coordinator faults are inert by contract.
      options_.recovery = RecoveryOptions{};
      options_.coord_faults.clear();
    }
    validate_options();
    graph_fp_ = ft::graph_fingerprint(graph_);
    if (options_.transport == TransportKind::kTcp) {
      // TCP needs no shared arena at all: data frames go shard-to-shard
      // over sockets and the final values come back as kValues frames
      // into net_board_. Listeners are bound BEFORE any fork so every
      // worker (and every respawn) inherits every port.
      if (boot.rendezvous != nullptr) {
        rendezvous_view_ = boot.rendezvous;
      } else {
        rendezvous_ = std::make_unique<TcpRendezvous>(part_.shards());
        rendezvous_view_ = rendezvous_.get();
      }
      net_board_.assign(graph_.num_slots() * sizeof(Value), 0);
      auto tcp = std::make_unique<TcpCtrlPlane>(
          rendezvous_view_->ctrl_listener(), part_.shards(), options_.net,
          &net_board_);
      tcp_ctrl_ = tcp.get();
      ctrl_ = std::move(tcp);
    } else {
      if (boot.spec != nullptr && boot.arena != nullptr) {
        spec_ = *boot.spec;
        arena_view_ = boot.arena;
      } else {
        build_arena();
      }
      ctrl_ = std::make_unique<ShmCtrlPlane>(part_.shards());
    }
    history_keep_ = options_.retain_supersteps + 8;
    if (options_.recovery.enabled() && options_.checkpoint.enabled()) {
      // A full-respawn cut can reach back as far as the oldest retained
      // snapshot; the manifest's release history must cover the whole
      // redo range [cut, barrier).
      history_keep_ = std::max(
          history_keep_,
          options_.checkpoint.keep *
                  std::max<std::size_t>(options_.checkpoint.every, 1) +
              8);
    }
    if (options_.recovery.enabled()) {
      manifest_dir_.emplace(options_.recovery.directory, nullptr,
                            options_.recovery.keep_manifests);
    }
  }

  /// The per-shard-pair arena layout this configuration needs — exposed
  /// so run_sharded_resilient can build ONE arena that outlives every
  /// coordinator incarnation.
  [[nodiscard]] static ArenaSpec make_arena_spec(const graph::CsrGraph& graph,
                                                 const ShardPartition& part,
                                                 const ShardOptions& options) {
    ArenaSpec spec;
    const std::size_t n = part.shards();
    spec.shards = n;
    spec.ring_capacity.assign(n * n, 0);
    constexpr std::size_t kEntryBytes = sizeof(std::uint32_t) + sizeof(Msg);
    for (std::size_t src = 0; src < n; ++src) {
      for (std::size_t dst = 0; dst < n; ++dst) {
        if (src == dst) {
          continue;
        }
        const std::size_t frame = sizeof(FrameHeader) +
                                  sizeof(std::uint64_t) +
                                  part.size(dst) * kEntryBytes;
        // Sized for the steady state (two supersteps in flight) plus a
        // full recovery republish burst, so producers practically never
        // block.
        spec.ring_capacity[src * n + dst] =
            (options.retain_supersteps + 2) * frame +
            options.ring_slack_bytes;
      }
    }
    spec.board_bytes = graph.num_slots() * sizeof(Value);
    spec.finalize();
    return spec;
  }

  [[nodiscard]] ShardOutcome run(std::vector<Value>* out_values) {
    const double t0 = now();
    start_ = t0;
    if (options_.checkpoint.enabled()) {
      io::Vfs& vfs = io::vfs_or_real(options_.checkpoint.vfs);
      if (!vfs.exists(options_.checkpoint.directory)) {
        vfs.mkdir(options_.checkpoint.directory);
      }
    }
    workers_.resize(part_.shards());
    entries_.assign(part_.shards(), std::nullopt);
    if (options_.recovery.enabled()) {
      boot_recovery();
    }
    if (!outcome_.error.has_value()) {
      if (takeover_) {
        begin_takeover();
      } else {
        for (std::size_t shard = 0; shard < part_.shards(); ++shard) {
          spawn(shard, 0);
        }
      }
    }

    while (!done_) {
      if (outcome_.error.has_value()) {
        break;
      }
      step();
    }
    if (takeover_ && outcome_.ok() && !recovery_measured_) {
      // A takeover that never committed a fresh barrier (halt replay
      // only): the recovery interval ends when the run is done.
      recovery_measured_ = true;
      outcome_.shard.coordinator_recovery_seconds += now() - takeover_started_;
    }
    reap_everything();
    outcome_.result.seconds = now() - t0;
    if (outcome_.ok() && tcp_ctrl_ != nullptr &&
        !tcp_ctrl_->values_complete()) {
      // A worker halted without its values terminator landing: the board
      // would be silently stale. Typed failure instead.
      outcome_.error.emplace(RunErrorKind::kShardFailure,
                             static_cast<std::size_t>(barrier_superstep_), 0,
                             RunError::kNoVertex,
                             "final values incomplete: a shard halted "
                             "without delivering its kValues frames");
    }
    if (outcome_.ok() && out_values != nullptr) {
      out_values->resize(graph_.num_slots());
      const std::uint8_t* board = options_.transport == TransportKind::kTcp
                                      ? net_board_.data()
                                      : arena_view_->at(spec_.board_offset);
      std::memcpy(out_values->data(), board,
                  graph_.num_slots() * sizeof(Value));
    }
    return std::move(outcome_);
  }

 private:
  struct WorkerSlot {
    pid_t pid = -1;
    double last_seen = 0.0;
    std::size_t generation = 0;
    bool alive = false;
    /// Death detected, replacement not yet back at a barrier.
    bool recovering = false;
    double recovering_since = 0.0;
    /// Inherited from a dead incarnation via reattach: not our child, so
    /// deaths arrive over the orphan pipe and teardown must not waitpid.
    bool adopted = false;
    /// Resilient TCP halt: this worker's kValuesAck has been sent.
    bool values_acked = false;
  };

  struct BarrierEntry {
    std::uint64_t sent = 0;
    std::uint64_t active = 0;
    std::uint64_t executed = 0;
    std::uint32_t payload_len = 0;
    std::uint8_t payload[CtrlMsg::kMaxAggregate] = {};
  };

  struct Release {
    CtrlMsg::Command cmd = CtrlMsg::Command::kContinue;
    std::uint32_t payload_len = 0;
    std::uint8_t payload[CtrlMsg::kMaxAggregate] = {};
  };

  struct PendingAdopt {
    Channel chan;
    double deadline = 0.0;
  };

  /// commit_manifest fault_superstep value that matches no CoordFault.
  static constexpr std::uint64_t kNoFaultStep = ~0ULL;
  static constexpr std::uint64_t kValuesBlobMagic = 0x4C41562D52504900ULL;
  static constexpr std::uint32_t kValuesMetaTag = 1;
  static constexpr std::uint32_t kValuesBoardTag = 2;

  [[nodiscard]] static double now() noexcept {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void validate_options() const {
    if (part_.shards() == 0) {
      throw std::invalid_argument("run_sharded: num_shards must be >= 1");
    }
    if (options_.checkpoint.enabled() &&
        options_.checkpoint.vfs != nullptr) {
      throw std::invalid_argument(
          "run_sharded: shard snapshots must live on the real filesystem — "
          "an in-memory Vfs dies with the worker process it was meant to "
          "revive");
    }
    if constexpr (HasAggregator<Program>) {
      static_assert(HasSerializableAggregator<Program>,
                    "sharded aggregator programs need a trivially copyable "
                    "aggregate_type (it crosses a process boundary)");
      static_assert(sizeof(typename Program::aggregate_type) <=
                        CtrlMsg::kMaxAggregate,
                    "aggregate_type exceeds the control-plane payload");
      if (options_.checkpoint.enabled() &&
          options_.checkpoint.mode == ft::CheckpointMode::kLightweight) {
        throw std::invalid_argument(
            "run_sharded: lightweight checkpoints cannot carry aggregator "
            "state (same rule as the single-process engine)");
      }
    }
    if (options_.checkpoint.enabled() &&
        options_.checkpoint.mode == ft::CheckpointMode::kLightweight &&
        !ShardEngine<Program>::resend_capable()) {
      throw std::invalid_argument(
          "run_sharded: lightweight checkpoints need Program::resend(ctx)");
    }
  }

  void build_arena() {
    spec_ = make_arena_spec(graph_, part_, options_);
    arena_ = std::make_unique<ShmArena>(spec_.total_bytes);
    arena_view_ = arena_.get();
    reinit_rings();
  }

  /// (Re)initialises every ring header in the arena. Run once at build
  /// time, and again between full-respawn negotiation rounds so no frame
  /// of a killed era can leak into the next one.
  void reinit_rings() {
    if (options_.transport == TransportKind::kTcp || arena_view_ == nullptr) {
      return;
    }
    const std::size_t n = part_.shards();
    for (std::size_t src = 0; src < n; ++src) {
      for (std::size_t dst = 0; dst < n; ++dst) {
        if (src != dst) {
          (void)spec_.attach(*arena_view_, src, dst, /*initialize=*/true);
        }
      }
    }
  }

  void spawn(std::size_t shard, std::size_t generation,
             std::uint64_t resume_cap = kNoResumeCap) {
    Channel worker_end;
    ctrl_->begin_incarnation(shard, generation, &worker_end);
    WorkerConfig<Program> cfg;
    cfg.graph = &graph_;
    cfg.program = &program_;
    cfg.options = &options_;
    cfg.spec = &spec_;
    cfg.arena = arena_view_;
    cfg.rendezvous = rendezvous_view_;
    cfg.me = shard;
    cfg.generation = generation;
    cfg.graph_fp = graph_fp_;
    cfg.coord_epoch = epoch_;
    cfg.resume_cap = resume_cap;
    const pid_t pid = ::fork();
    if (pid < 0) {
      throw std::runtime_error("run_sharded: fork failed");
    }
    if (pid == 0) {
      // Child: drop every inherited coordinator-side fd (the worker talks
      // through its own plane only) and become the worker. worker_main
      // closes the inherited rendezvous listeners it does not own.
      ctrl_->close_inherited_in_child();
      if (orphan_fd_ >= 0) {
        ::close(orphan_fd_);
      }
      if (result_fd_ >= 0) {
        ::close(result_fd_);
      }
      if (reattach_ != nullptr) {
        // The listener must stay supervisor-owned; the worker connects to
        // its PATH, never through an inherited fd.
        ::close(reattach_->fd());
      }
      worker_main<Program>(cfg, std::move(worker_end));  // never returns
    }
    worker_end.close();
    WorkerSlot& slot = workers_[shard];
    const bool was_recovering = slot.recovering;
    const double since = slot.recovering_since;
    slot = WorkerSlot{};
    slot.pid = pid;
    slot.last_seen = now();
    slot.generation = generation;
    slot.alive = true;
    slot.recovering = was_recovering;
    slot.recovering_since = since;
    maybe_coord_fault(CoordFault::Phase::kSpawn, shard);
  }

  // --- recovery boot -------------------------------------------------------

  [[nodiscard]] bool identity_matches(const RunManifest& m) const {
    return m.graph_fingerprint == graph_fp_ &&
           m.options_digest == options_digest(options_) &&
           m.num_shards == part_.shards();
  }

  void boot_recovery() {
    io::Vfs& vfs = io::vfs_or_real(nullptr);
    try {
      if (!vfs.exists(options_.recovery.directory)) {
        vfs.mkdir(options_.recovery.directory);
      }
      std::optional<RunManifest> prior = manifest_dir_->newest_valid();
      if (prior.has_value() && !identity_matches(*prior)) {
        outcome_.error.emplace(
            RunErrorKind::kSnapshotMismatch,
            static_cast<std::size_t>(barrier_superstep_), 0,
            RunError::kNoVertex,
            "recovery directory belongs to a different run (graph "
            "fingerprint / options digest / shard count mismatch)");
        return;
      }
      if (takeover_ && !prior.has_value()) {
        // The boot manifest is published BEFORE any worker is forked, so
        // an empty directory proves the dead coordinator never started
        // anything: run fresh (under a bumped epoch, out of caution).
        takeover_ = false;
      }
      if (takeover_) {
        restore_from(*prior);
        const bool stale =
            options_.recovery.stale_epoch_at_takeover != 0 &&
            options_.recovery.stale_epoch_at_takeover == takeover_index_;
        if (stale) {
          // TEST HOOK — a resurrected first incarnation: present epoch 1
          // and claim nothing durable. Workers that obeyed a newer epoch
          // must fence us.
          epoch_ = 1;
        } else {
          epoch_ = prior->epoch + 1;
          // The fence claim: durable before acting, so any FURTHER
          // takeover sees this epoch and claims above it.
          commit_manifest(barrier_superstep_, halting_, kNoFaultStep);
        }
      } else {
        epoch_ = (prior.has_value() ? prior->epoch : 0) + 1 + takeover_index_;
        commit_seq_ = prior.has_value() ? prior->commit_seq : 0;
        // Write-ahead boot publish: identity + epoch are durable before
        // any worker exists.
        commit_manifest(barrier_superstep_, halting_, kNoFaultStep);
      }
    } catch (const io::PowerLoss&) {
      throw;  // the resilient child wrapper maps this to the power-cut exit
    } catch (const io::IoError& e) {
      outcome_.error.emplace(RunErrorKind::kShardFailure,
                             static_cast<std::size_t>(barrier_superstep_), 0,
                             RunError::kNoVertex,
                             std::string("recovery bootstrap failed: ") +
                                 e.what());
      return;
    }
    if (tcp_ctrl_ != nullptr) {
      tcp_ctrl_->set_epoch(epoch_);
    }
  }

  void restore_from(const RunManifest& m) {
    commit_seq_ = m.commit_seq;
    barrier_superstep_ = m.barrier_superstep;
    halting_ = m.halting;
    outcome_.result.supersteps = static_cast<std::size_t>(m.supersteps);
    outcome_.result.total_messages = m.total_messages;
    outcome_.result.total_executed_vertices = m.total_executed;
    outcome_.result.reached_superstep_cap = m.reached_cap;
    outcome_.shard.respawns = static_cast<std::size_t>(m.respawns);
    outcome_.shard.snapshot_recoveries =
        static_cast<std::size_t>(m.snapshot_recoveries);
    outcome_.shard.heartbeat_kills =
        static_cast<std::size_t>(m.heartbeat_kills);
    outcome_.shard.coordinator_takeovers =
        static_cast<std::size_t>(m.coordinator_takeovers) + 1;
    outcome_.shard.adopted_workers =
        static_cast<std::size_t>(m.adopted_workers);
    outcome_.shard.recovery_seconds = m.recovery_seconds;
    outcome_.shard.coordinator_recovery_seconds =
        m.coordinator_recovery_seconds;
    history_.clear();
    for (const ManifestRelease& rel : m.history) {
      Release r;
      r.cmd = static_cast<CtrlMsg::Command>(rel.command);
      r.payload_len = static_cast<std::uint32_t>(rel.aggregate.size());
      if (!rel.aggregate.empty()) {
        std::memcpy(r.payload, rel.aggregate.data(), rel.aggregate.size());
      }
      history_[rel.superstep] = r;
    }
    const std::size_t n =
        std::min<std::size_t>(m.generations.size(), part_.shards());
    for (std::size_t shard = 0; shard < n; ++shard) {
      supervisor_.seed_generation(
          shard, static_cast<std::size_t>(m.generations[shard]));
    }
  }

  void begin_takeover() {
    takeover_started_ = now();
    reattach_deadline_ = now() + options_.recovery.reattach_wait_seconds;
    takeover_pending_ = true;
    full_respawn_ = !options_.recovery.prefer_reattach && !halting_;
    if (halting_ && tcp_ctrl_ != nullptr) {
      // The dead coordinator may already have made the values durable —
      // then the workers that exited after its ack are not needed again.
      try_load_values_blob();
    }
    // From here the step() loop does the work: poll_reattach() adopts
    // parked shm survivors, TCP survivors reconnect into the shared ctrl
    // listener on their own (synthetic kAdopt events), and
    // takeover_progress() resolves the deadline.
  }

  /// The manifest commit — the durability point of a barrier. MUST run
  /// before any proceed of that barrier is sent (write-ahead ordering).
  /// `fault_superstep` indexes kManifestPublish/kPowerCut faults; boot
  /// and fence publishes pass kNoFaultStep (not a targetable commit).
  void commit_manifest(std::uint64_t next_barrier, bool halting,
                       std::uint64_t fault_superstep) {
    RunManifest m;
    m.graph_fingerprint = graph_fp_;
    m.options_digest = options_digest(options_);
    m.num_shards = part_.shards();
    m.partition = static_cast<std::uint8_t>(options_.partition);
    m.transport = static_cast<std::uint8_t>(options_.transport);
    m.epoch = epoch_;
    m.commit_seq = ++commit_seq_;
    m.barrier_superstep = next_barrier;
    m.halting = halting;
    m.supersteps = outcome_.result.supersteps;
    m.total_messages = outcome_.result.total_messages;
    m.total_executed = outcome_.result.total_executed_vertices;
    m.reached_cap = outcome_.result.reached_superstep_cap;
    m.respawns = outcome_.shard.respawns;
    m.snapshot_recoveries = outcome_.shard.snapshot_recoveries;
    m.heartbeat_kills = outcome_.shard.heartbeat_kills;
    m.coordinator_takeovers = outcome_.shard.coordinator_takeovers;
    m.adopted_workers = outcome_.shard.adopted_workers;
    m.recovery_seconds = outcome_.shard.recovery_seconds;
    m.coordinator_recovery_seconds =
        outcome_.shard.coordinator_recovery_seconds;
    m.generations.resize(part_.shards());
    for (std::size_t shard = 0; shard < part_.shards(); ++shard) {
      m.generations[shard] = std::max<std::uint64_t>(
          workers_[shard].generation, supervisor_.generation(shard));
    }
    for (const auto& [superstep, rel] : history_) {
      ManifestRelease mr;
      mr.superstep = superstep;
      mr.command = static_cast<std::uint64_t>(rel.cmd);
      mr.aggregate.assign(rel.payload, rel.payload + rel.payload_len);
      m.history.push_back(std::move(mr));
    }
    if (fault_superstep != kNoFaultStep) {
      for (const CoordFault& f : options_.coord_faults) {
        if (f.kind == CoordFault::Kind::kPowerCut &&
            f.phase == CoordFault::Phase::kManifestPublish &&
            f.superstep == fault_superstep && f.epoch == epoch_) {
          // Publish through a counting write-cut: the Nth mutating
          // syscall throws PowerLoss and the resilient child wrapper
          // dies, leaving whatever torn bytes the REAL filesystem holds.
          io::WriteCutVfs cut(io::vfs_or_real(nullptr), f.at_syscall,
                              "manifest.");
          ManifestDirectory dir(options_.recovery.directory, &cut,
                                options_.recovery.keep_manifests);
          dir.publish(m);
          return;
        }
      }
    }
    manifest_dir_->publish(m);
  }

  /// Scripted coordinator death (kSigkill). Power cuts are handled inside
  /// commit_manifest, where the counted syscalls live.
  void maybe_coord_fault(CoordFault::Phase phase, std::uint64_t superstep) {
    if (!resilient_) {
      return;
    }
    for (const CoordFault& f : options_.coord_faults) {
      if (f.kind == CoordFault::Kind::kSigkill && f.phase == phase &&
          f.epoch == epoch_ &&
          (phase == CoordFault::Phase::kRecover || f.superstep == superstep)) {
        ::kill(::getpid(), SIGKILL);
      }
    }
  }

  // --- the poll loop -------------------------------------------------------

  /// One poll-loop iteration: guards, takeover progress, messages,
  /// deaths, watchdogs, due respawns.
  void step() {
    if (options_.guards.cancel_token != nullptr &&
        options_.guards.cancel_token->load(std::memory_order_relaxed)) {
      abort_run(RunErrorKind::kCancelled, "cancel token raised");
      return;
    }
    if (options_.guards.run_seconds > 0.0 &&
        now() - start_ > options_.guards.run_seconds) {
      abort_run(RunErrorKind::kRunTimeout,
                "sharded run exceeded guards.run_seconds");
      return;
    }
    if (takeover_pending_) {
      takeover_progress();
      if (outcome_.error.has_value()) {
        return;
      }
    }
    poll_reattach();
    poll_pending_adopts();
    if (outcome_.error.has_value()) {
      return;
    }

    // Wait up to 10ms for the first event, then drain the rest dry.
    int timeout_ms = 10;
    while (const auto event = ctrl_->next(timeout_ms)) {
      timeout_ms = 0;
      const std::size_t shard = event->shard;
      if (shard >= workers_.size()) {
        continue;
      }
      if (event->msg.kind == CtrlMsg::Kind::kFenced) {
        handle_fenced(event->msg);
        return;
      }
      if (event->msg.kind == CtrlMsg::Kind::kAdopt) {
        // Synthetic TCP plane event: a worker's ctrl link (re)handshook.
        handle_adopt_event(shard, event->msg);
        continue;
      }
      if (!workers_[shard].alive) {
        continue;  // stale message from a reaped incarnation
      }
      workers_[shard].last_seen = now();
      switch (event->msg.kind) {
        case CtrlMsg::Kind::kHello:
          handle_hello(shard, event->msg);
          break;
        case CtrlMsg::Kind::kHeartbeat:
          break;
        case CtrlMsg::Kind::kBarrier:
          handle_barrier(shard, event->msg);
          break;
        default:
          break;  // workers do not send coordinator->worker kinds
      }
      if (outcome_.error.has_value()) {
        return;
      }
    }

    reap_dead();
    check_heartbeats();
    start_due_respawns();
    maybe_finish_values();
    maybe_takeover_done();
  }

  // --- takeover machinery --------------------------------------------------

  void takeover_progress() {
    if (full_respawn_) {
      if (now() < reattach_deadline_) {
        return;  // drain window: poll_reattach aborts the old era
      }
      takeover_pending_ = false;
      full_respawn_negotiate();
      return;
    }
    bool all = true;
    for (const WorkerSlot& w : workers_) {
      if (!w.alive) {
        all = false;
        break;
      }
    }
    if (all) {
      takeover_pending_ = false;
      return;
    }
    if (now() < reattach_deadline_) {
      return;
    }
    takeover_pending_ = false;
    if (halting_) {
      return;  // nothing to recompute; maybe_takeover_done tears down
    }
    for (std::size_t shard = 0; shard < workers_.size(); ++shard) {
      if (!workers_[shard].alive) {
        plan_respawn(shard,
                     "worker never re-attached after coordinator takeover");
        if (outcome_.error.has_value()) {
          return;
        }
        maybe_coord_fault(CoordFault::Phase::kRecover, barrier_superstep_);
      }
    }
  }

  /// shm reattach rendezvous: accept parked workers, greet each with
  /// kAdopt{epoch, committed barrier}, and park the connection until its
  /// adoption hello (or kFenced) arrives.
  void poll_reattach() {
    if (reattach_ == nullptr || !reattach_->valid()) {
      return;
    }
    while (auto conn = reattach_->accept()) {
      if (full_respawn_) {
        // Full-respawn takeover: the old era is abandoned, not adopted —
        // for the REST of this incarnation, not just the drain window. A
        // survivor that parks late must never be re-armed next to the
        // freshly respawned worker that now owns its shard's rings.
        CtrlMsg abort_msg;
        abort_msg.kind = CtrlMsg::Kind::kAbort;
        abort_msg.epoch = epoch_;
        (void)conn->send(abort_msg);
        continue;
      }
      CtrlMsg greet;
      greet.kind = CtrlMsg::Kind::kAdopt;
      greet.superstep = barrier_superstep_;
      greet.epoch = epoch_;
      if (!conn->send(greet)) {
        continue;
      }
      PendingAdopt pending;
      pending.chan = std::move(*conn);
      pending.deadline = now() + 2.0;
      pending_adopts_.push_back(std::move(pending));
    }
  }

  void poll_pending_adopts() {
    const double t = now();
    for (auto it = pending_adopts_.begin(); it != pending_adopts_.end();) {
      std::optional<CtrlMsg> msg = it->chan.recv(0);
      if (msg.has_value()) {
        if (msg->kind == CtrlMsg::Kind::kFenced) {
          handle_fenced(*msg);
          return;
        }
        if (msg->kind == CtrlMsg::Kind::kHello && msg->active == 1 &&
            msg->shard < workers_.size() && !workers_[msg->shard].alive) {
          register_adoption(msg->shard, *msg, std::move(it->chan));
        }
        it = pending_adopts_.erase(it);
        continue;
      }
      if (it->chan.peer_dead() || t > it->deadline) {
        it = pending_adopts_.erase(it);
        continue;
      }
      ++it;
    }
  }

  void register_adoption(std::size_t shard, const CtrlMsg& hello,
                         Channel chan) {
    ctrl_->adopt(shard, std::move(chan));
    WorkerSlot& slot = workers_[shard];
    slot = WorkerSlot{};
    slot.pid = static_cast<pid_t>(hello.sent);
    slot.generation = static_cast<std::size_t>(hello.flag);
    slot.alive = true;
    slot.adopted = true;
    slot.last_seen = now();
    supervisor_.seed_generation(shard, slot.generation);
    ++outcome_.shard.adopted_workers;
    // The worker re-sends its pending barrier right after this hello; the
    // plane delivers it on the next poll and history replays the release.
    maybe_coord_fault(CoordFault::Phase::kRecover, barrier_superstep_);
  }

  /// TCP control link (re)established for `shard` — synthetic plane
  /// event carrying the worker's generation (flag), pid (sent) and
  /// last-obeyed epoch.
  void handle_adopt_event(std::size_t shard, const CtrlMsg& msg) {
    WorkerSlot& slot = workers_[shard];
    if (slot.alive) {
      slot.last_seen = now();  // routine reconnect of a known incarnation
      return;
    }
    if (!takeover_) {
      return;  // unknown incarnation outside a takeover: not ours
    }
    if (full_respawn_) {
      // Old-era survivors are never adopted by a full-respawn takeover,
      // even after the drain window closed.
      CtrlMsg abort_msg;
      abort_msg.kind = CtrlMsg::Kind::kAbort;
      abort_msg.epoch = epoch_;
      (void)ctrl_->send(shard, abort_msg);
      return;
    }
    slot = WorkerSlot{};
    slot.pid = static_cast<pid_t>(msg.sent);
    slot.generation = static_cast<std::size_t>(msg.flag);
    slot.alive = true;
    slot.adopted = true;
    slot.last_seen = now();
    supervisor_.seed_generation(shard, slot.generation);
    ++outcome_.shard.adopted_workers;
    if (halting_ && tcp_ctrl_ != nullptr && values_durable_) {
      // This worker may be holding values we already have durably.
      CtrlMsg ack;
      ack.kind = CtrlMsg::Kind::kValuesAck;
      ack.epoch = epoch_;
      if (ctrl_->send(shard, ack)) {
        slot.values_acked = true;
      }
    }
    maybe_coord_fault(CoordFault::Phase::kRecover, barrier_superstep_);
  }

  /// Full-respawn takeover: the old era was drained; rebuild the entire
  /// worker set from durable state at a consistent cut. Rounds propose a
  /// cut, spawn everyone with resume_cap = cut, and lower the cut to the
  /// minimum achieved resume until every shard lands exactly on it
  /// (monotone decreasing, converges to 0 = restart).
  void full_respawn_negotiate() {
    reinit_rings();
    entries_.assign(workers_.size(), std::nullopt);
    std::uint64_t cut = barrier_superstep_;
    std::size_t failed_rounds = 0;
    std::vector<CtrlPlane::Event> stashed;
    for (std::size_t round = 0;; ++round) {
      for (std::size_t shard = 0; shard < workers_.size(); ++shard) {
        const std::size_t gen = supervisor_.generation(shard) + 1;
        supervisor_.seed_generation(shard, gen);
        // Every negotiation spawn is a worker respawned from durable
        // state — account it like the supervisor ladder does.
        ++outcome_.shard.respawns;
        spawn(shard, gen, cut);
        if (round == 0 && shard == 0) {
          maybe_coord_fault(CoordFault::Phase::kRecover, barrier_superstep_);
        }
      }
      std::vector<std::optional<std::uint64_t>> achieved(workers_.size());
      std::size_t have = 0;
      stashed.clear();
      const double deadline =
          now() + std::max(options_.recovery.reattach_wait_seconds, 2.0) + 8.0;
      while (have < workers_.size() && now() < deadline) {
        if (options_.guards.run_seconds > 0.0 &&
            now() - start_ > options_.guards.run_seconds) {
          kill_round();
          abort_run(RunErrorKind::kRunTimeout,
                    "sharded run exceeded guards.run_seconds during cut "
                    "negotiation");
          return;
        }
        const auto event = ctrl_->next(10);
        if (!event.has_value()) {
          continue;
        }
        const std::size_t shard = event->shard;
        if (shard >= workers_.size()) {
          continue;
        }
        switch (event->msg.kind) {
          case CtrlMsg::Kind::kHello:
            if (event->msg.active == 2 && !achieved[shard].has_value()) {
              achieved[shard] = event->msg.superstep;
              ++have;
              workers_[shard].last_seen = now();
            }
            break;
          case CtrlMsg::Kind::kHeartbeat:
            workers_[shard].last_seen = now();
            break;
          case CtrlMsg::Kind::kBarrier:
            // A worker that matched the cut is already running; its
            // barrier belongs to the accepted era — replay it only if
            // this round succeeds.
            stashed.push_back(*event);
            break;
          case CtrlMsg::Kind::kFenced:
            handle_fenced(event->msg);
            return;
          default:
            break;  // kAdopt echoes of the fresh links, etc.
        }
      }
      if (have < workers_.size()) {
        kill_round();
        if (++failed_rounds > 3) {
          abort_run(RunErrorKind::kShardFailure,
                    "full-respawn cut negotiation stalled: a shard "
                    "repeatedly failed to report an achieved resume point");
          return;
        }
        continue;
      }
      std::uint64_t min_achieved = cut;
      for (const auto& a : achieved) {
        min_achieved = std::min(min_achieved, *a);
      }
      if (min_achieved == cut) {
        for (const CtrlPlane::Event& ev : stashed) {
          workers_[ev.shard].last_seen = now();
          handle_barrier(ev.shard, ev.msg);
          if (outcome_.error.has_value()) {
            return;
          }
        }
        return;  // era accepted; the main loop continues the run
      }
      cut = min_achieved;
      kill_round();
    }
  }

  void kill_round() {
    for (std::size_t shard = 0; shard < workers_.size(); ++shard) {
      WorkerSlot& w = workers_[shard];
      if (!w.alive || w.adopted) {
        continue;
      }
      ::kill(w.pid, SIGKILL);
      int status = 0;
      (void)::waitpid(w.pid, &status, 0);
      w.alive = false;
      ctrl_->drop(shard, false);
    }
    entries_.assign(workers_.size(), std::nullopt);
    reinit_rings();
  }

  /// Halting takeover teardown rule: once the reattach window closed, no
  /// worker is left alive, and the values are trustworthy, the run is
  /// complete — workers that exited against the DEAD coordinator never
  /// report here, so the exited_ count alone cannot close a takeover.
  void maybe_takeover_done() {
    if (!takeover_ || !halting_ || done_) {
      return;
    }
    if (now() < reattach_deadline_) {
      return;
    }
    for (const WorkerSlot& w : workers_) {
      if (w.alive) {
        return;
      }
    }
    if (tcp_ctrl_ != nullptr && !tcp_ctrl_->values_complete()) {
      return;  // still waiting on value resends (bounded by run guards)
    }
    done_ = true;
  }

  // --- resilient TCP values durability -------------------------------------

  [[nodiscard]] std::string values_path() const {
    return options_.recovery.directory + "/values.bin";
  }

  void write_values_blob() {
    io::Vfs& vfs = io::vfs_or_real(nullptr);
    io::AtomicFile file(vfs, values_path());
    ft::BinaryWriter writer(file.stream(), kValuesBlobMagic, 1);
    ft::FieldWriter meta;
    meta.u64(graph_fp_);
    meta.u64(net_board_.size());
    writer.section(kValuesMetaTag, meta.bytes().data(), meta.bytes().size());
    writer.section(kValuesBoardTag, net_board_.data(), net_board_.size());
    writer.finish();
    file.commit();
  }

  void try_load_values_blob() {
    try {
      io::Vfs& vfs = io::vfs_or_real(nullptr);
      io::VfsIStream in(vfs, values_path());
      ft::BinaryReader reader(in.stream(), values_path(), kValuesBlobMagic, 1,
                              1);
      const std::vector<std::uint8_t> meta_bytes =
          reader.expect_section(kValuesMetaTag);
      ft::FieldReader meta(meta_bytes, values_path() + " meta");
      const std::uint64_t fp = meta.u64();
      const std::uint64_t size = meta.u64();
      meta.done();
      const std::vector<std::uint8_t> board =
          reader.expect_section(kValuesBoardTag);
      if (fp != graph_fp_ || size != net_board_.size() ||
          board.size() != net_board_.size()) {
        return;
      }
      std::memcpy(net_board_.data(), board.data(), board.size());
      values_durable_ = true;
      if (tcp_ctrl_ != nullptr) {
        tcp_ctrl_->mark_values_done_all();
      }
    } catch (...) {
      // No durable values (or unreadable): the workers still holding
      // theirs will re-deliver after adoption.
    }
  }

  /// Resilient TCP halt: once every shard's values landed, make them
  /// durable FIRST, then ack — a crash between the two re-acks after
  /// reload, never loses. Un-acked workers hold and re-deliver.
  void maybe_finish_values() {
    if (tcp_ctrl_ == nullptr || !halting_ || !options_.recovery.enabled()) {
      return;
    }
    if (!tcp_ctrl_->values_complete()) {
      return;
    }
    if (!values_durable_) {
      try {
        write_values_blob();
      } catch (const io::PowerLoss&) {
        throw;
      } catch (const io::IoError& e) {
        abort_run(RunErrorKind::kShardFailure,
                  std::string("could not make final values durable: ") +
                      e.what());
        return;
      }
      values_durable_ = true;
    }
    for (std::size_t shard = 0; shard < workers_.size(); ++shard) {
      WorkerSlot& w = workers_[shard];
      if (w.alive && !w.values_acked) {
        CtrlMsg ack;
        ack.kind = CtrlMsg::Kind::kValuesAck;
        ack.epoch = epoch_;
        if (ctrl_->send(shard, ack)) {
          w.values_acked = true;
        }
      }
    }
  }

  // --- protocol handlers ---------------------------------------------------

  void handle_fenced(const CtrlMsg& msg) {
    // A worker has obeyed a newer epoch: this incarnation is STALE. Stand
    // down typed, without killing anything — the run belongs to the
    // rightful owner.
    fenced_ = true;
    ++outcome_.shard.coordinator_fenced;
    outcome_.error.emplace(
        RunErrorKind::kCoordinatorFenced,
        static_cast<std::size_t>(barrier_superstep_), 0, RunError::kNoVertex,
        "coordinator fenced: shard " + std::to_string(msg.shard) +
            " has obeyed epoch " + std::to_string(msg.epoch) +
            ", newer than this incarnation's claimed epoch " +
            std::to_string(msg.flag) + " — standing down");
  }

  void handle_hello(std::size_t shard, const CtrlMsg& msg) {
    if (msg.active != 0) {
      // Adoption (1) carries a LIVE worker that needs no reconciliation;
      // negotiation hellos (2) are consumed by full_respawn_negotiate.
      return;
    }
    if (msg.flag == 0) {
      return;  // initial incarnation, nothing to reconcile
    }
    const std::uint64_t resume = msg.superstep;
    if (resume > 0) {
      ++outcome_.shard.snapshot_recoveries;
    }
    if (resume > barrier_superstep_) {
      abort_run(RunErrorKind::kShardFailure,
                "shard " + std::to_string(shard) +
                    " resumed AHEAD of the barrier (superstep " +
                    std::to_string(resume) + " > " +
                    std::to_string(barrier_superstep_) +
                    ") — stale snapshots from a different run?");
      return;
    }
    // The deepest frames the rebuild needs: resume - 1 for a lightweight
    // inbox reconstruction, resume itself otherwise.
    const bool lw = options_.checkpoint.mode ==
                    ft::CheckpointMode::kLightweight;
    const std::uint64_t oldest =
        (lw && resume > 0) ? resume - 1 : resume;
    if (oldest + options_.retain_supersteps <= barrier_superstep_) {
      abort_run(
          RunErrorKind::kShardFailure,
          "shard " + std::to_string(shard) + " resumed at superstep " +
              std::to_string(resume) +
              ", beyond the survivors' retained frame window (barrier at " +
              std::to_string(barrier_superstep_) + ", retain " +
              std::to_string(options_.retain_supersteps) + ")");
      return;
    }
    CtrlMsg recover;
    recover.kind = CtrlMsg::Kind::kRecover;
    recover.shard = static_cast<std::uint32_t>(shard);
    recover.superstep = resume;
    recover.epoch = epoch_;
    for (std::size_t peer = 0; peer < workers_.size(); ++peer) {
      if (peer != shard && workers_[peer].alive) {
        (void)ctrl_->send(peer, recover);
      }
    }
  }

  void handle_barrier(std::size_t shard, const CtrlMsg& msg) {
    WorkerSlot& w = workers_[shard];
    if (w.recovering) {
      w.recovering = false;
      outcome_.shard.recovery_seconds += now() - w.recovering_since;
    }
    if (msg.superstep < barrier_superstep_) {
      // A redo of an already-released superstep: replay the recorded
      // decision to this worker alone. The counts were folded the first
      // time; deterministic redo reproduces them exactly. (TCP reconnects
      // also land here: the worker requeues its last barrier after a
      // control-link loss, and the replayed release is idempotent.)
      const auto it = history_.find(msg.superstep);
      if (it != history_.end()) {
        send_proceed(shard, msg.superstep, it->second);
      }
      return;
    }
    if (msg.superstep > barrier_superstep_) {
      return;  // impossible by protocol; drop rather than corrupt state
    }
    maybe_coord_fault(CoordFault::Phase::kBarrierCollect, msg.superstep);
    BarrierEntry entry;
    entry.sent = msg.sent;
    entry.active = msg.active;
    entry.executed = msg.executed;
    entry.payload_len = msg.payload_len;
    std::memcpy(entry.payload, msg.payload, sizeof(entry.payload));
    entries_[shard] = entry;
    for (const auto& e : entries_) {
      if (!e.has_value()) {
        return;
      }
    }
    release_barrier();
  }

  void release_barrier() {
    std::uint64_t sent = 0;
    std::uint64_t active = 0;
    std::uint64_t executed = 0;
    Release rel;
    if constexpr (HasSerializableAggregator<Program>) {
      auto agg = Program::aggregate_identity();
      // Deterministic shard-order fold — the cross-process analogue of
      // the engine's in-thread-order aggregate reduce.
      for (const auto& e : entries_) {
        Program::aggregate(
            agg, aggregate_from_bytes<Program>(
                     std::span<const std::uint8_t>(e->payload,
                                                   e->payload_len)));
      }
      const auto bytes = aggregate_to_bytes<Program>(agg);
      rel.payload_len = static_cast<std::uint32_t>(bytes.size());
      std::memcpy(rel.payload, bytes.data(), bytes.size());
    }
    for (const auto& e : entries_) {
      sent += e->sent;
      active += e->active;
      executed += e->executed;
    }
    outcome_.result.total_messages += sent;
    outcome_.result.total_executed_vertices += executed;
    outcome_.result.supersteps =
        static_cast<std::size_t>(barrier_superstep_) + 1;

    const bool cap =
        barrier_superstep_ + 1 >= options_.max_supersteps;
    const bool converged = sent == 0 && active == 0;
    rel.cmd = (converged || cap) ? CtrlMsg::Command::kHalt
                                 : CtrlMsg::Command::kContinue;
    outcome_.result.reached_superstep_cap = cap && !converged;
    const bool halt = rel.cmd == CtrlMsg::Command::kHalt;

    history_[barrier_superstep_] = rel;
    while (history_.size() > history_keep_) {
      history_.erase(history_.begin());
    }
    if (options_.recovery.enabled()) {
      // WRITE-AHEAD: the release is durable before anyone hears it. Death
      // before this line = the barrier never happened (workers re-send it
      // and the deterministic re-fold is identical); death after = replay
      // from history. Counters fold exactly once either way.
      maybe_coord_fault(CoordFault::Phase::kManifestPublish,
                        barrier_superstep_);
      try {
        commit_manifest(barrier_superstep_ + 1, halt, barrier_superstep_);
      } catch (const io::PowerLoss&) {
        throw;  // resilient child wrapper: power-cut exit
      } catch (const io::IoError& e) {
        abort_run(RunErrorKind::kShardFailure,
                  std::string("manifest publish failed: ") + e.what());
        return;
      }
      if (takeover_ && !recovery_measured_) {
        // Resume-to-first-fresh-barrier: the headline recovery latency.
        recovery_measured_ = true;
        outcome_.shard.coordinator_recovery_seconds +=
            now() - takeover_started_;
      }
    }
    bool first_delivery = true;
    for (std::size_t shard = 0; shard < workers_.size(); ++shard) {
      if (workers_[shard].alive) {
        send_proceed(shard, barrier_superstep_, rel);
        if (first_delivery) {
          first_delivery = false;
          maybe_coord_fault(CoordFault::Phase::kProceed, barrier_superstep_);
        }
      }
    }
    if (halt) {
      halting_ = true;
    }
    ++barrier_superstep_;
    entries_.assign(workers_.size(), std::nullopt);
  }

  void send_proceed(std::size_t shard, std::uint64_t superstep,
                    const Release& rel) {
    CtrlMsg msg;
    msg.kind = CtrlMsg::Kind::kProceed;
    msg.superstep = superstep;
    msg.flag = static_cast<std::uint64_t>(rel.cmd);
    msg.payload_len = rel.payload_len;
    msg.epoch = epoch_;
    std::memcpy(msg.payload, rel.payload, sizeof(msg.payload));
    (void)ctrl_->send(shard, msg);
  }

  // --- liveness ------------------------------------------------------------

  void handle_death(pid_t pid, int status) {
    for (std::size_t shard = 0; shard < workers_.size(); ++shard) {
      WorkerSlot& w = workers_[shard];
      if (w.alive && w.pid == pid) {
        w.alive = false;
        // Halt path drains in-flight kValues frames before closing.
        ctrl_->drop(shard, halting_);
        const bool clean = WIFEXITED(status) &&
                           WEXITSTATUS(status) == kWorkerExitHalt;
        const bool unreachable =
            WIFEXITED(status) &&
            WEXITSTATUS(status) == kWorkerExitUnreachable;
        if (halting_) {
          if (++exited_ == workers_.size()) {
            done_ = true;
          }
        } else {
          // Retract any barrier entry the dead incarnation posted: the
          // barrier — and in particular a halt decision — must wait for
          // the respawn's fresh re-entry, so survivors are still alive
          // (and replaying frames) for the whole redo. A clean exit
          // outside the halt drain is equally a failure: the worker saw
          // a halt this coordinator never issued.
          entries_[shard].reset();
          plan_respawn(shard, clean       ? "worker exited unexpectedly"
                              : unreachable
                                  ? "worker lost a peer link "
                                    "(reconnect budget exhausted)"
                                  : "worker died");
        }
        return;
      }
    }
  }

  void reap_dead() {
    for (;;) {
      int status = 0;
      const pid_t pid = ::waitpid(-1, &status, WNOHANG);
      if (pid <= 0) {
        break;
      }
      handle_death(pid, status);
    }
    drain_orphan_notifications();
  }

  /// Deaths of ADOPTED workers (children of a dead incarnation) arrive
  /// from the supervisor over the orphan pipe — waitpid cannot see them.
  void drain_orphan_notifications() {
    if (orphan_fd_ < 0) {
      return;
    }
    CoordOrphanDeath rec;
    for (;;) {
      const ssize_t n = ::read(orphan_fd_, &rec, sizeof(rec));
      if (n != static_cast<ssize_t>(sizeof(rec))) {
        return;  // EAGAIN / EOF / partial-never (records are atomic)
      }
      handle_death(static_cast<pid_t>(rec.pid), rec.status);
    }
  }

  void plan_respawn(std::size_t shard, const std::string& why) {
    WorkerSlot& w = workers_[shard];
    if (!w.recovering) {
      w.recovering = true;
      w.recovering_since = now();
    }
    const auto backoff = supervisor_.plan_respawn(shard);
    if (!backoff.has_value()) {
      abort_run(RunErrorKind::kShardFailure,
                why + ": shard " + std::to_string(shard) +
                    " exhausted its respawn budget (" +
                    std::to_string(supervisor_.generation(shard)) +
                    " respawns, " +
                    std::to_string(supervisor_.total_respawns()) + " total)");
      return;
    }
    ++outcome_.shard.respawns;
    respawn_at_[shard] = now() + *backoff;
  }

  void start_due_respawns() {
    const double t = now();
    for (auto it = respawn_at_.begin(); it != respawn_at_.end();) {
      if (it->second <= t) {
        const std::size_t shard = it->first;
        it = respawn_at_.erase(it);
        spawn(shard, supervisor_.generation(shard));
      } else {
        ++it;
      }
    }
  }

  void check_heartbeats() {
    const double timeout =
        options_.hang_timeout_seconds > 0.0
            ? options_.hang_timeout_seconds
            : (options_.guards.superstep_seconds > 0.0
                   ? options_.guards.superstep_seconds
                   : 30.0);
    const double t = now();
    for (WorkerSlot& w : workers_) {
      if (w.alive && t - w.last_seen > timeout) {
        // A worker that stopped heartbeating stopped progressing —
        // heartbeats are sent from inside the compute/drain loops (and a
        // stalled TCP control link drops them, which is the point). Kill
        // it and let the reaper route it into the respawn path.
        ++outcome_.shard.heartbeat_kills;
        ::kill(w.pid, SIGKILL);
        w.last_seen = t;  // one kill per missed deadline
      }
    }
  }

  void abort_run(RunErrorKind kind, const std::string& detail) {
    CtrlMsg abort_msg;
    abort_msg.kind = CtrlMsg::Kind::kAbort;
    abort_msg.epoch = epoch_;
    for (std::size_t shard = 0; shard < workers_.size(); ++shard) {
      if (workers_[shard].alive) {
        (void)ctrl_->send(shard, abort_msg);
      }
    }
    outcome_.error.emplace(kind,
                           static_cast<std::size_t>(barrier_superstep_), 0,
                           RunError::kNoVertex, detail);
  }

  /// Terminal cleanup: whatever state the run ended in, no child
  /// processes survive this coordinator. Adopted workers are killed but
  /// never waitpid'ed (the supervisor reaps them); a FENCED coordinator
  /// touches nothing — the run belongs to a newer incarnation.
  void reap_everything() {
    if (fenced_) {
      return;
    }
    const double deadline = now() + 1.0;
    for (;;) {
      bool any_alive = false;
      for (std::size_t shard = 0; shard < workers_.size(); ++shard) {
        WorkerSlot& w = workers_[shard];
        if (!w.alive) {
          continue;
        }
        if (w.adopted) {
          ::kill(w.pid, SIGKILL);
          w.alive = false;
          ctrl_->drop(shard, halting_);
          continue;
        }
        int status = 0;
        const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
        if (r == w.pid || r < 0) {
          w.alive = false;
          ctrl_->drop(shard, halting_);
        } else {
          any_alive = true;
          if (now() > deadline) {
            ::kill(w.pid, SIGKILL);
          }
        }
      }
      if (!any_alive) {
        return;
      }
      ::usleep(2000);
    }
  }

  const graph::CsrGraph& graph_;
  Program program_;
  ShardOptions options_;
  ShardPartition part_;
  ShardSupervisor supervisor_;
  std::uint64_t graph_fp_ = 0;

  ArenaSpec spec_;
  std::unique_ptr<ShmArena> arena_;         ///< owned (plain runs)
  const ShmArena* arena_view_ = nullptr;    ///< owned or supervisor's
  std::unique_ptr<TcpRendezvous> rendezvous_;  ///< owned (plain runs)
  TcpRendezvous* rendezvous_view_ = nullptr;
  std::unique_ptr<CtrlPlane> ctrl_;
  TcpCtrlPlane* tcp_ctrl_ = nullptr;  ///< non-owning view, kTcp only
  std::vector<std::uint8_t> net_board_;
  std::vector<WorkerSlot> workers_;

  std::uint64_t barrier_superstep_ = 0;
  std::vector<std::optional<BarrierEntry>> entries_;
  std::map<std::uint64_t, Release> history_;
  std::map<std::size_t, double> respawn_at_;
  std::size_t history_keep_ = 0;

  // Coordinator-recovery state.
  bool resilient_ = false;
  bool takeover_ = false;
  std::size_t takeover_index_ = 0;
  Channel* reattach_ = nullptr;  ///< supervisor-owned listener, kShm only
  int orphan_fd_ = -1;
  int result_fd_ = -1;
  std::optional<ManifestDirectory> manifest_dir_;
  std::uint64_t epoch_ = 0;
  std::uint64_t commit_seq_ = 0;
  bool takeover_pending_ = false;
  bool full_respawn_ = false;
  bool fenced_ = false;
  bool values_durable_ = false;
  bool recovery_measured_ = false;
  double takeover_started_ = 0.0;
  double reattach_deadline_ = 0.0;
  std::vector<PendingAdopt> pending_adopts_;

  bool halting_ = false;
  std::size_t exited_ = 0;
  bool done_ = false;
  double start_ = now();
  ShardOutcome outcome_;
};

/// Entry point of the sharded execution mode: runs `program` over `graph`
/// across options.num_shards worker processes and returns the fused
/// outcome. On success `out_values` (when non-null) receives the final
/// per-slot vertex values, byte-identical to what Engine::values() holds
/// for the populated range under the same deterministic schedule.
/// RecoveryOptions and CoordFaults are IGNORED here — coordinator
/// recovery needs the run_sharded_resilient supervision tree.
template <VertexProgram Program>
[[nodiscard]] ShardOutcome run_sharded(
    const graph::CsrGraph& graph, Program program, const ShardOptions& options,
    std::vector<typename Program::value_type>* out_values = nullptr) {
  Coordinator<Program> coordinator(graph, std::move(program), options);
  return coordinator.run(out_values);
}

}  // namespace ipregel::shard
