#pragma once

#include <cstddef>
#include <vector>

#include "shard/ring.hpp"

namespace ipregel::shard {

/// Byte layout of the shared-memory arena: N*(N-1) directed rings plus
/// the result board the coordinator reads final vertex values from.
/// Computed once by the coordinator pre-fork; workers inherit the mapping
/// and attach by offset.
struct ArenaSpec {
  std::size_t shards = 0;
  /// Data-byte capacity of ring src→dst at [src * shards + dst]; 0 on the
  /// diagonal (self-delivery never leaves the process).
  std::vector<std::size_t> ring_capacity;
  std::size_t board_bytes = 0;

  // Derived by finalize():
  std::vector<std::size_t> ring_offset;
  std::size_t board_offset = 0;
  std::size_t total_bytes = 0;

  /// Lays rings and board out back to back, cache-line aligned.
  void finalize() {
    constexpr std::size_t kAlign = 64;
    ring_offset.assign(shards * shards, 0);
    std::size_t at = 0;
    for (std::size_t i = 0; i < shards * shards; ++i) {
      if (ring_capacity[i] == 0) {
        continue;
      }
      ring_offset[i] = at;
      at += SpscRing::bytes_required(ring_capacity[i]);
      at = (at + kAlign - 1) / kAlign * kAlign;
    }
    board_offset = at;
    total_bytes = at + board_bytes;
  }

  /// Attaches a ring view for src→dst over `arena`.
  [[nodiscard]] SpscRing attach(const ShmArena& arena, std::size_t src,
                                std::size_t dst, bool initialize) const {
    const std::size_t i = src * shards + dst;
    SpscRing ring;
    ring.attach(arena.at(ring_offset[i]), ring_capacity[i], initialize);
    return ring;
  }
};

}  // namespace ipregel::shard
