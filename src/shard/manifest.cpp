#include "shard/manifest.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ft/binary_format.hpp"
#include "io/stream.hpp"
#include "io/vfs.hpp"
#include "runtime/rng.hpp"

namespace ipregel::shard {

namespace {

constexpr std::uint64_t kManifestMagic = 0x464E414D52504900ULL;  // "IPRMANF"
constexpr std::uint32_t kManifestVersion = 1;

constexpr std::uint32_t kMetaTag = 1;
constexpr std::uint32_t kShardsTag = 2;
constexpr std::uint32_t kHistoryTag = 3;

constexpr const char* kPrefix = "manifest.";
constexpr const char* kSuffix = ".ipman";

[[nodiscard]] std::uint64_t double_bits(double v) noexcept {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

[[nodiscard]] double bits_double(std::uint64_t bits) noexcept {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

std::uint64_t options_digest(const ShardOptions& options) {
  std::uint64_t h = 0x1972'5045'4C4D'414EULL;
  const auto fold = [&h](std::uint64_t v) { h = runtime::mix64(h ^ v); };
  fold(options.num_shards);
  fold(static_cast<std::uint64_t>(options.partition));
  fold(static_cast<std::uint64_t>(options.transport));
  fold(static_cast<std::uint64_t>(options.checkpoint.mode));
  fold(options.checkpoint.every);
  fold(options.retain_supersteps);
  fold(options.max_supersteps);
  return h;
}

void write_manifest(io::Vfs& vfs, const std::string& path,
                    const RunManifest& m) {
  io::AtomicFile file(vfs, path);
  ft::BinaryWriter writer(file.stream(), kManifestMagic, kManifestVersion);

  ft::FieldWriter meta;
  meta.u64(m.graph_fingerprint);
  meta.u64(m.options_digest);
  meta.u64(m.num_shards);
  meta.u8(m.partition);
  meta.u8(m.transport);
  meta.u64(m.epoch);
  meta.u64(m.commit_seq);
  meta.u64(m.barrier_superstep);
  meta.u8(m.halting ? 1 : 0);
  meta.u64(m.supersteps);
  meta.u64(m.total_messages);
  meta.u64(m.total_executed);
  meta.u8(m.reached_cap ? 1 : 0);
  meta.u64(m.respawns);
  meta.u64(m.snapshot_recoveries);
  meta.u64(m.heartbeat_kills);
  meta.u64(m.coordinator_takeovers);
  meta.u64(m.adopted_workers);
  meta.u64(double_bits(m.recovery_seconds));
  meta.u64(double_bits(m.coordinator_recovery_seconds));
  writer.section(kMetaTag, meta.bytes().data(), meta.bytes().size());

  ft::FieldWriter shards;
  shards.u64(m.generations.size());
  for (const std::uint64_t g : m.generations) {
    shards.u64(g);
  }
  writer.section(kShardsTag, shards.bytes().data(), shards.bytes().size());

  ft::FieldWriter history;
  history.u64(m.history.size());
  for (const ManifestRelease& rel : m.history) {
    history.u64(rel.superstep);
    history.u64(rel.command);
    history.u32(static_cast<std::uint32_t>(rel.aggregate.size()));
    for (const std::uint8_t b : rel.aggregate) {
      history.u8(b);
    }
  }
  writer.section(kHistoryTag, history.bytes().data(),
                 history.bytes().size());

  writer.finish();
  file.commit();
}

RunManifest read_manifest(io::Vfs& vfs, const std::string& path) {
  io::VfsIStream in(vfs, path);
  RunManifest m;
  try {
    ft::BinaryReader reader(in.stream(), path, kManifestMagic,
                            kManifestVersion, kManifestVersion);

    const std::vector<std::uint8_t> meta_bytes =
        reader.expect_section(kMetaTag);
    ft::FieldReader meta(meta_bytes, path + " meta");
    m.graph_fingerprint = meta.u64();
    m.options_digest = meta.u64();
    m.num_shards = meta.u64();
    m.partition = meta.u8();
    m.transport = meta.u8();
    m.epoch = meta.u64();
    m.commit_seq = meta.u64();
    m.barrier_superstep = meta.u64();
    m.halting = meta.u8() != 0;
    m.supersteps = meta.u64();
    m.total_messages = meta.u64();
    m.total_executed = meta.u64();
    m.reached_cap = meta.u8() != 0;
    m.respawns = meta.u64();
    m.snapshot_recoveries = meta.u64();
    m.heartbeat_kills = meta.u64();
    m.coordinator_takeovers = meta.u64();
    m.adopted_workers = meta.u64();
    m.recovery_seconds = bits_double(meta.u64());
    m.coordinator_recovery_seconds = bits_double(meta.u64());
    meta.done();

    const std::vector<std::uint8_t> shard_bytes =
        reader.expect_section(kShardsTag);
    ft::FieldReader shards(shard_bytes, path + " shards");
    const std::uint64_t n = shards.u64();
    if (n != m.num_shards || n > 65'536) {
      throw ft::FormatError(path + ": shard table size mismatch");
    }
    m.generations.resize(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      m.generations[i] = shards.u64();
    }
    shards.done();

    const std::vector<std::uint8_t> history_bytes =
        reader.expect_section(kHistoryTag);
    ft::FieldReader history(history_bytes, path + " history");
    const std::uint64_t releases = history.u64();
    if (releases > 1'000'000) {
      throw ft::FormatError(path + ": implausible history size");
    }
    m.history.resize(releases);
    for (std::uint64_t i = 0; i < releases; ++i) {
      ManifestRelease& rel = m.history[i];
      rel.superstep = history.u64();
      rel.command = history.u64();
      const std::uint32_t len = history.u32();
      rel.aggregate.resize(len);
      for (std::uint32_t b = 0; b < len; ++b) {
        rel.aggregate[b] = history.u8();
      }
      if (i > 0 && rel.superstep <= m.history[i - 1].superstep) {
        throw ft::FormatError(path + ": history not ascending");
      }
    }
    history.done();
  } catch (...) {
    // A parse failure may be a disguised I/O failure; surface the typed
    // IoError (PowerLoss included) when one was captured.
    in.rethrow_io_error();
    throw;
  }
  return m;
}

ManifestDirectory::ManifestDirectory(std::string dir, io::Vfs* vfs,
                                     std::size_t keep)
    : dir_(std::move(dir)), vfs_(vfs), keep_(keep == 0 ? 1 : keep) {}

std::string ManifestDirectory::path_for(std::uint64_t seq) const {
  char name[48];
  std::snprintf(name, sizeof(name), "%s%012llu%s", kPrefix,
                static_cast<unsigned long long>(seq), kSuffix);
  return dir_ + "/" + name;
}

std::vector<ManifestDirectory::Entry> ManifestDirectory::list() const {
  io::Vfs& vfs = io::vfs_or_real(vfs_);
  std::vector<Entry> entries;
  std::vector<std::string> names;
  try {
    names = vfs.list(dir_);
  } catch (const io::IoError&) {
    return entries;  // missing directory = no manifests yet
  }
  const std::string prefix = kPrefix;
  const std::string suffix = kSuffix;
  for (const std::string& name : names) {
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    Entry e;
    e.seq = std::strtoull(digits.c_str(), nullptr, 10);
    e.path = dir_ + "/" + name;
    entries.push_back(std::move(e));
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
  return entries;
}

std::optional<RunManifest> ManifestDirectory::newest_valid() {
  io::Vfs& vfs = io::vfs_or_real(vfs_);
  std::vector<Entry> entries = list();
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    try {
      return read_manifest(vfs, it->path);
    } catch (const io::PowerLoss&) {
      throw;  // the simulated machine is dead; there is no "fall back"
    } catch (const ft::FormatError&) {
      quarantine(it->path);
    } catch (const io::IoError&) {
      quarantine(it->path);
    }
  }
  return std::nullopt;
}

void ManifestDirectory::publish(const RunManifest& m) {
  io::Vfs& vfs = io::vfs_or_real(vfs_);
  write_manifest(vfs, path_for(m.commit_seq), m);
  // Bounded retention, oldest-first. Final-named manifests are always
  // fully fsynced (AtomicFile renames only after a successful flush), so
  // a name-based prune can never delete the only good fallback.
  std::vector<Entry> entries = list();
  if (entries.size() <= keep_) {
    return;
  }
  for (std::size_t i = 0; i + keep_ < entries.size(); ++i) {
    try {
      vfs.unlink(entries[i].path);
    } catch (const io::PowerLoss&) {
      throw;
    } catch (const io::IoError&) {
      // Retention is best-effort; an undeletable old manifest is noise.
    }
  }
}

void ManifestDirectory::quarantine(const std::string& path) {
  io::Vfs& vfs = io::vfs_or_real(vfs_);
  try {
    vfs.rename(path, path + ".quarantined");
    ++quarantined_;
  } catch (const io::PowerLoss&) {
    throw;
  } catch (const io::IoError&) {
    // Leave it; the walk skips it either way.
  }
}

}  // namespace ipregel::shard
