#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "shard/options.hpp"

namespace ipregel::io {
class Vfs;
}  // namespace ipregel::io

namespace ipregel::shard {

/// The durable run manifest — what makes the coordinator a recoverable
/// failure domain. Every barrier commit publishes (via io::AtomicFile on
/// the io::Vfs seam, CRC-sealed with the shared ft binary framing) the
/// coordinator's entire decision state: run identity, the fencing epoch,
/// the committed barrier frontier, the cumulative outcome counters, every
/// shard's incarnation generation, and a window of committed barrier
/// releases for idempotent replay. A takeover incarnation reads the
/// newest valid manifest and continues the run exactly where the dead
/// coordinator durably left it; everything the dead coordinator did
/// AFTER its last publish is, by the write-ahead ordering (manifest
/// before proceeds), work the workers will simply re-request.
///
/// Files are `manifest.<seq>.ipman` with a commit sequence monotone
/// across incarnations, so "newest" is a filename comparison and a torn
/// publish can never shadow the previous good manifest (AtomicFile only
/// renames after a successful fsync; a power cut mid-publish leaves a
/// .tmp the directory walk ignores).

/// One committed barrier release retained for replay: enough to re-send
/// the identical kProceed to a worker that re-asks a barrier the run has
/// already decided.
struct ManifestRelease {
  std::uint64_t superstep = 0;
  /// CtrlMsg::Command the release carried (continue / halt).
  std::uint64_t command = 0;
  /// The globally folded aggregate payload of that superstep.
  std::vector<std::uint8_t> aggregate;
};

/// The coordinator's durable state, one barrier commit's worth.
struct RunManifest {
  // --- run identity (must match across incarnations) ---------------------
  std::uint64_t graph_fingerprint = 0;
  std::uint64_t options_digest = 0;
  std::uint64_t num_shards = 0;
  std::uint8_t partition = 0;
  std::uint8_t transport = 0;

  // --- fencing + ordering ------------------------------------------------
  /// Fencing epoch of the committing coordinator incarnation (1 = the
  /// first). A takeover claims max-seen + 1 and publishes the claim
  /// before acting; workers reject any older epoch.
  std::uint64_t epoch = 0;
  /// Monotone publish counter across incarnations; also the filename.
  std::uint64_t commit_seq = 0;

  // --- progress ------------------------------------------------------------
  /// The next barrier to collect (all below it are committed).
  std::uint64_t barrier_superstep = 0;
  /// The run has released its halt barrier; only values collection and
  /// worker teardown remain.
  bool halting = false;
  /// Cumulative outcome counters over the committed releases.
  std::uint64_t supersteps = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t total_executed = 0;
  bool reached_cap = false;

  // --- control-plane stats carried across incarnations ---------------------
  std::uint64_t respawns = 0;
  std::uint64_t snapshot_recoveries = 0;
  std::uint64_t heartbeat_kills = 0;
  std::uint64_t coordinator_takeovers = 0;
  std::uint64_t adopted_workers = 0;
  double recovery_seconds = 0.0;
  double coordinator_recovery_seconds = 0.0;

  // --- per-shard incarnation generations -----------------------------------
  std::vector<std::uint64_t> generations;

  // --- committed release window, ascending by superstep --------------------
  std::vector<ManifestRelease> history;
};

/// Digest of the ShardOptions fields that must be identical for a
/// takeover to legally continue a run (shard topology, transport,
/// checkpoint cadence, replay-window math). A mismatch means the run
/// directory is being reused by a differently-configured job.
[[nodiscard]] std::uint64_t options_digest(const ShardOptions& options);

/// Serialises `m` into `path` via AtomicFile on `vfs` — durable once this
/// returns. Throws io::IoError (PowerLoss included) on failure.
void write_manifest(io::Vfs& vfs, const std::string& path,
                    const RunManifest& m);

/// Parses and fully validates one manifest file. Throws ft::FormatError
/// on any structural/CRC violation, io::IoError on I/O failure.
[[nodiscard]] RunManifest read_manifest(io::Vfs& vfs,
                                        const std::string& path);

/// The manifest directory discipline, mirroring ft::SnapshotDirectory:
/// newest-first walk with quarantine-and-fall-back, atomic publish with
/// monotone sequence numbers, bounded retention.
class ManifestDirectory {
 public:
  struct Entry {
    std::uint64_t seq = 0;
    std::string path;
  };

  /// `vfs` nullptr = the real filesystem; not owned.
  explicit ManifestDirectory(std::string dir, io::Vfs* vfs = nullptr,
                             std::size_t keep = 4);

  /// All finished manifests, ascending by sequence, validity unknown.
  /// A missing directory yields an empty list.
  [[nodiscard]] std::vector<Entry> list() const;

  /// The newest manifest that parses and validates, or nullopt when none
  /// does. Unreadable/corrupt candidates on the way are renamed to
  /// "<path>.quarantined" (best-effort) so they stop shadowing older good
  /// manifests. A simulated power loss propagates.
  [[nodiscard]] std::optional<RunManifest> newest_valid();

  /// Atomically publishes `m` as manifest.<commit_seq>.ipman and prunes
  /// retention to `keep` (newest by sequence). Throws io::IoError.
  void publish(const RunManifest& m);

  /// Path a given sequence number publishes to.
  [[nodiscard]] std::string path_for(std::uint64_t seq) const;

  [[nodiscard]] std::size_t quarantined() const noexcept {
    return quarantined_;
  }

 private:
  void quarantine(const std::string& path);

  std::string dir_;
  io::Vfs* vfs_;
  std::size_t keep_;
  std::size_t quarantined_ = 0;
};

}  // namespace ipregel::shard
