#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/run_error.hpp"
#include "ft/checkpoint.hpp"
#include "shard/partition.hpp"
#include "shard/supervisor.hpp"

namespace ipregel::shard {

/// Which data/control plane carries shard traffic.
enum class TransportKind : std::uint8_t {
  /// Shared-memory SPSC rings + SEQPACKET socketpairs (fork()ed workers
  /// on one box; the PR-7 plane).
  kShm,
  /// Nonblocking TCP frame streams on loopback: the same wire frames,
  /// plus handshakes, reconnect-with-resync, and heartbeats over the
  /// network. Single-host today (workers are still fork()ed), but every
  /// byte crosses a real socket — the multi-node data path, exercised
  /// end to end.
  kTcp,
};

/// Tuning of the TCP transport. Defaults are sized for loopback tests:
/// real deployments would scale the timeouts with RTT.
struct NetOptions {
  /// Give up on one connect attempt after this long.
  double connect_timeout_seconds = 2.0;
  /// A blocking frame operation (publish with a full kernel buffer, the
  /// final values flush) fails the link after this long without progress.
  double io_timeout_seconds = 5.0;
  /// Exponential reconnect backoff: initial delay, multiplier, ceiling.
  double backoff_initial_seconds = 0.01;
  double backoff_multiplier = 2.0;
  double backoff_max_seconds = 0.25;
  /// Seed of the deterministic backoff jitter (mixed with shard/peer/
  /// attempt, so concurrent reconnectors do not stampede in lockstep).
  std::uint64_t backoff_jitter_seed = 0x1BAD'C0DE'5EEDULL;
  /// Consecutive failed (re)connect attempts on one link before the
  /// worker declares the peer unreachable and exits for the supervisor
  /// ladder (typed degradation, never a hang).
  std::size_t max_reconnects_per_link = 8;
};

/// A scripted network fault, the transport-level sibling of ShardFault:
/// "shard S's link to peer P, in incarnation G, misbehaves at counted
/// frame operation `at_op`". Ops count protocol frames (data frames and
/// handshakes on the data plane; hello/barrier/values on the control
/// plane — NOT timer-driven heartbeats), so a seeded plan replays
/// deterministically.
struct NetFault {
  enum class Kind : std::uint8_t {
    kNone,
    /// The next frame write is split into single-byte sends (partial-
    /// write resume).
    kShortWrite,
    /// The next frame read arrives one byte at a time (partial-read
    /// resume).
    kShortRead,
    /// The connection is closed with SO_LINGER{0} mid-frame: the peer
    /// sees ECONNRESET with a torn frame on the wire.
    kResetMidFrame,
    /// The connection is dropped cleanly before the frame is sent.
    kDropConn,
    /// The link goes silent (all I/O blocked) for `seconds` — long stalls
    /// exercise the peer's io_timeout teardown and the coordinator's
    /// missed-heartbeat watchdog.
    kStall,
    /// The link is fully partitioned for `seconds`: the live connection
    /// is reset AND new connects are rejected until the window ends.
    /// Arm it on both endpoints of a pair for a symmetric partition.
    kPartition,
  };
  enum class Plane : std::uint8_t { kData, kCtrl };

  static constexpr std::size_t kAnyPeer = static_cast<std::size_t>(-1);

  Kind kind = Kind::kNone;
  /// The shard whose transport injects the fault.
  std::size_t shard = 0;
  Plane plane = Plane::kData;
  /// Data-plane peer the fault applies to (kAnyPeer = every peer link).
  /// Ignored for the ctrl plane (one link, to the coordinator).
  std::size_t peer = kAnyPeer;
  /// Counted frame-op index on that link the fault trips at.
  std::uint64_t at_op = 0;
  /// Incarnation the fault arms in (0 = original process, 1 = first
  /// respawn, ...), mirroring ShardFault::generation.
  std::size_t generation = 0;
  /// Window length for kStall / kPartition.
  double seconds = 0.25;
};

/// A scripted worker-process fault, the multi-process analogue of
/// ft::FaultPlan: "shard S, in its G-th incarnation, dies (or hangs) at
/// superstep T, at this point of the superstep protocol". Deterministic
/// and per-incarnation, so a chaos test can kill a shard, let the
/// supervisor respawn it, and know the respawn will not re-trip the same
/// fault.
struct ShardFault {
  enum class Kind : std::uint8_t {
    kNone,
    /// The worker raise(SIGKILL)s itself — an instant, uncatchable death,
    /// indistinguishable from an OOM kill or an operator's kill -9.
    kSigkill,
    /// The worker stops making progress AND stops heartbeating (sleeps
    /// forever); only the coordinator's missed-heartbeat watchdog can
    /// detect it. Exercises the SIGKILL-by-coordinator path.
    kHang,
  };
  /// Where in the superstep protocol the fault trips.
  enum class Phase : std::uint8_t {
    /// Mid-compute, before any of this superstep's frames are posted.
    kCompute,
    /// After posting outgoing frames, before entering the barrier — the
    /// survivors may already be consuming this superstep's messages.
    kAfterPost,
    /// After receiving the barrier release, before the checkpoint for the
    /// next superstep is written — redo resumes from the PREVIOUS
    /// snapshot.
    kBeforeCheckpoint,
    /// After the checkpoint for the next superstep is on disk — redo
    /// resumes exactly at the superstep the survivors are entering.
    kAfterCheckpoint,
  };

  Kind kind = Kind::kNone;
  std::size_t shard = 0;
  std::uint64_t superstep = 0;
  Phase phase = Phase::kCompute;
  /// Incarnation the fault arms in: 0 = the original process, 1 = the
  /// first respawn, ... Lets tests fault a RECOVERY, not just a run.
  std::size_t generation = 0;
};

/// A scripted snapshot-read fault during recovery: shard S's G-th
/// incarnation sees EIO on its first `fail_reads` snapshot read()s (the
/// restore path wraps its filesystem in io::ReadFaultVfs). The newest
/// snapshot gets quarantined and recovery falls back one generation — the
/// fallback ladder, exercised across a real fork() boundary.
struct RestoreFault {
  std::size_t shard = 0;
  /// Incarnation the fault arms in; respawns are generation 1, 2, ...
  std::size_t generation = 1;
  std::size_t fail_reads = 1;
};

/// A scripted COORDINATOR fault, the control-plane sibling of ShardFault:
/// "the coordinator incarnation with fencing epoch E dies at this point of
/// the run protocol". Only honoured by run_sharded_resilient — a plain
/// run_sharded has no supervisor to take over, so killing its coordinator
/// would just kill the run.
struct CoordFault {
  enum class Kind : std::uint8_t {
    kNone,
    /// The coordinator raise(SIGKILL)s itself — instant, uncatchable, the
    /// operator's kill -9 / OOM-kill model.
    kSigkill,
    /// A power cut at counted mutating-filesystem-syscall `at_syscall` of
    /// the NEXT manifest publish: the write stops mid-syscall and the
    /// process dies, leaving whatever bytes the real filesystem already
    /// holds on disk. Only meaningful with phase kManifestPublish.
    kPowerCut,
  };
  /// Where in the coordinator protocol the fault trips.
  enum class Phase : std::uint8_t {
    /// During the initial spawn loop, right after forking shard
    /// `superstep` (partial spawn; later shards never existed).
    kSpawn,
    /// On receiving the first barrier entry for superstep `superstep`,
    /// before the barrier is complete.
    kBarrierCollect,
    /// During the manifest publish for the release of `superstep` (the
    /// commit point). kSigkill dies just before the write; kPowerCut dies
    /// inside it at `at_syscall`.
    kManifestPublish,
    /// After the release of `superstep` was durably committed and the
    /// proceed was delivered to shard 0 — but before the remaining shards
    /// heard it (partial delivery).
    kProceed,
    /// During a TAKEOVER's recovery bring-up, right after the first worker
    /// was adopted (reattach mode) or the first replacement shard was
    /// forked (full-respawn mode). Arms a second takeover on top of the
    /// first. `superstep` is ignored.
    kRecover,
  };

  Kind kind = Kind::kNone;
  Phase phase = Phase::kProceed;
  /// Barrier superstep (or spawn index, for kSpawn) the fault trips at.
  std::uint64_t superstep = 0;
  /// Fencing epoch of the incarnation the fault arms in: 1 = the first
  /// coordinator, 2 = the first takeover, ... Lets a plan kill a TAKEOVER.
  std::uint64_t epoch = 1;
  /// Counted mutating syscall within the manifest publish (kPowerCut).
  std::uint64_t at_syscall = 0;
};

/// Coordinator crash-recovery configuration. Recovery is ON when
/// `directory` is non-empty AND the run enters through
/// run_sharded_resilient; plain run_sharded ignores it entirely.
struct RecoveryOptions {
  /// Durable run directory: the manifest sequence, the shm reattach
  /// rendezvous socket, and (TCP) the sealed final-values blob live here.
  /// Must be a real filesystem path (same constraint as checkpoints).
  std::string directory;

  /// How long a worker whose ctrl plane died PARKS awaiting adoption by a
  /// takeover coordinator before giving up with today's typed orphan exit
  /// (kWorkerExitOrphan). 0 disables parking — ctrl loss exits
  /// immediately, the pre-recovery behaviour.
  double park_seconds = 10.0;

  /// How long a takeover coordinator waits for parked survivors to
  /// reattach before falling back to respawning the missing shards from
  /// their newest valid snapshots.
  double reattach_wait_seconds = 2.0;

  /// Takeover strategy: true = adopt parked survivors (their in-memory
  /// state and retained frames survive, no snapshot restore needed);
  /// false = abandon the old era and respawn EVERY shard from snapshots
  /// at a consistent cut (exercises the pure-durable-state path).
  bool prefer_reattach = true;

  /// Coordinator incarnations beyond the first the supervisor will fork.
  std::size_t max_takeovers = 4;

  /// Manifest files retained in the run directory.
  std::size_t keep_manifests = 4;

  /// TEST HOOK — simulate a RESURRECTED STALE coordinator: the Nth
  /// takeover (1 = first takeover) skips the fence-claim manifest write
  /// and presents fencing epoch 1, as a woken-up dead incarnation that
  /// still believes it owns the run would. Workers that have seen a newer
  /// epoch must reject it (kCoordinatorFenced), proving split-brain
  /// cannot commit. 0 = off.
  std::size_t stale_epoch_at_takeover = 0;

  [[nodiscard]] bool enabled() const noexcept { return !directory.empty(); }
};

/// Per-run observability counters of the shard control plane, reported
/// next to the RunResult.
struct ShardRunStats {
  /// Worker processes forked beyond the initial N (one per recovery).
  std::size_t respawns = 0;
  /// Respawns that restored from a snapshot (vs. restarting superstep 0).
  std::size_t snapshot_recoveries = 0;
  /// Workers SIGKILLed by the coordinator for missed heartbeats.
  std::size_t heartbeat_kills = 0;
  /// Wall-clock seconds spent with at least one shard dead or recovering
  /// (death detection to the respawned worker's barrier re-entry).
  double recovery_seconds = 0.0;
  /// Coordinator takeovers performed (incarnations beyond the first).
  std::size_t coordinator_takeovers = 0;
  /// Parked workers adopted across all takeovers (vs. respawned).
  std::size_t adopted_workers = 0;
  /// Wall-clock seconds from the LAST takeover's boot to its first freshly
  /// committed barrier — the bench/shard_scaling
  /// `coordinator_recovery_seconds` column.
  double coordinator_recovery_seconds = 0.0;
  /// Coordinator incarnations that were rejected by workers as STALE
  /// (kCoordinatorFenced) and superseded by a rightful takeover. A fenced
  /// incarnation never commits anything — this counts how often the
  /// fencing rule actually fired.
  std::size_t coordinator_fenced = 0;
};

/// The typed result of a sharded run: RunOutcome's shape plus the shard
/// control-plane counters.
struct ShardOutcome {
  RunResult result{};
  std::optional<RunError> error;
  ShardRunStats shard{};

  [[nodiscard]] bool ok() const noexcept { return !error.has_value(); }
};

/// Configuration of a sharded multi-process run (shard::run_sharded).
struct ShardOptions {
  /// Worker processes; each owns the slot set the partition scheme
  /// assigns it.
  std::size_t num_shards = 2;

  /// How slots are assigned to shards. kBlock reproduces the engine's
  /// thread split (bit-identical combine order); kHash spreads hub
  /// vertices of degree-renumbered graphs across shards.
  PartitionScheme partition = PartitionScheme::kBlock;

  /// Data/control plane: shared-memory rings or loopback TCP streams.
  TransportKind transport = TransportKind::kShm;

  /// TCP transport tuning (ignored under kShm).
  NetOptions net{};

  /// Scripted network faults (chaos tests; empty in production; ignored
  /// under kShm).
  std::vector<NetFault> net_faults;

  /// Hard superstep ceiling, mirroring EngineOptions::max_supersteps.
  std::size_t max_supersteps = 10'000;

  /// Per-shard checkpointing. Each worker writes its slice through
  /// AtomicFile into `directory`/shard<K>/ and prunes/quarantines its own
  /// subdirectory via SnapshotDirectory. kOff disables recovery-by-
  /// snapshot: a died shard restarts from superstep 0 (only acceptable
  /// when faults are not expected).
  ft::CheckpointPolicy checkpoint{};

  /// Watchdogs. guards.run_seconds bounds the whole job (kRunTimeout);
  /// guards.superstep_seconds, when set, overrides hang_timeout_seconds
  /// as the missed-heartbeat ceiling — the PR-2 watchdog knobs routed
  /// into the multi-process control plane. memory_budget/cancel_token are
  /// coordinator-side: the cancel token aborts the job at the next poll.
  RunGuards guards{};

  /// How often a live worker heartbeats the coordinator. Heartbeats are
  /// sent from inside the compute/drain/barrier loops (progress-coupled:
  /// a stuck worker stops heartbeating; there is no helper thread to
  /// keep a corpse looking alive).
  double heartbeat_interval_seconds = 0.05;

  /// Coordinator kills a worker whose last heartbeat is older than this.
  /// 0 = derive: guards.superstep_seconds when set, else 30s.
  double hang_timeout_seconds = 0.0;

  /// Outgoing frame generations each worker retains for replay to a
  /// recovering peer. Must cover the deepest possible resume gap: barrier
  /// skew is at most 1 superstep and an EIO fallback costs one more
  /// snapshot generation, so 3 covers single-failure chaos with
  /// checkpoint.every == 1 and heavyweight snapshots. A lightweight
  /// resume reads one generation deeper still (resume is the snapshot's
  /// superstep + 1, and resend rebuilds from the frames BELOW it), so
  /// runs stacking lightweight mode with snapshot-read faults should set
  /// 4 — what the kill-matrix chaos cells do.
  std::size_t retain_supersteps = 3;

  /// Respawn budget and backoff.
  SupervisorPolicy supervisor{};

  /// Scripted process faults (chaos tests; empty in production).
  std::vector<ShardFault> faults;

  /// Scripted snapshot-read faults during recovery.
  std::vector<RestoreFault> restore_faults;

  /// Extra bytes per ring beyond the computed 2-full-batch minimum.
  std::size_t ring_slack_bytes = 4096;

  /// Coordinator crash recovery (run_sharded_resilient only).
  RecoveryOptions recovery{};

  /// Scripted coordinator faults (chaos tests; empty in production;
  /// honoured only by run_sharded_resilient).
  std::vector<CoordFault> coord_faults;
};

}  // namespace ipregel::shard
