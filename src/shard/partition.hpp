#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "runtime/partition.hpp"
#include "runtime/rng.hpp"

namespace ipregel::shard {

/// How the populated slot range is split across shards.
enum class PartitionScheme : std::uint8_t {
  /// Contiguous blocks via runtime::block_partition — the SAME split the
  /// single-process engine hands its threads, which is what makes a
  /// sharded run's per-destination combine order reproduce the engine's
  /// and keeps integer-combiner apps bit-identical across the two
  /// execution modes.
  kBlock,
  /// Hashed ownership via runtime::hash_partition — spreads hub vertices
  /// of degree-renumbered power-law graphs across shards instead of
  /// concentrating them in shard 0. Combine order per destination slot is
  /// still ascending-source, so min-combine apps stay bit-identical; the
  /// cost is an O(populated) owner/local-index table per process.
  kHash,
};

/// Static slot ownership of a sharded run: the populated slot range
/// [first_slot, num_slots) split across `shards` by a PartitionScheme.
/// Deterministic and computed identically in every process — routing
/// needs no ownership exchange.
class ShardPartition {
 public:
  ShardPartition(const graph::CsrGraph& g, std::size_t shards,
                 PartitionScheme scheme = PartitionScheme::kBlock)
      : first_(g.first_slot()),
        populated_(g.num_slots() - g.first_slot()),
        shards_(shards == 0 ? 1 : shards),
        scheme_(scheme) {
    if (scheme_ == PartitionScheme::kHash) {
      owner_.resize(populated_);
      local_.resize(populated_);
      owned_.resize(shards_);
      for (std::size_t idx = 0; idx < populated_; ++idx) {
        const std::size_t owner =
            runtime::hash_partition(first_ + idx, shards_);
        owner_[idx] = static_cast<std::uint32_t>(owner);
        local_[idx] = static_cast<std::uint32_t>(owned_[owner].size());
        owned_[owner].push_back(first_ + idx);  // ascending by construction
      }
    }
  }

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }
  [[nodiscard]] PartitionScheme scheme() const noexcept { return scheme_; }

  /// Number of slots `shard` owns.
  [[nodiscard]] std::size_t size(std::size_t shard) const noexcept {
    if (scheme_ == PartitionScheme::kHash) {
      return owned_[shard].size();
    }
    return runtime::block_partition(populated_, shards_, shard).size();
  }

  /// Contiguous slot range owned by `shard` — kBlock only (a hash shard's
  /// slots are not contiguous; use size()/slot_at()).
  [[nodiscard]] runtime::Range slots(std::size_t shard) const noexcept {
    const runtime::Range r =
        runtime::block_partition(populated_, shards_, shard);
    return {r.begin + first_, r.end + first_};
  }

  /// Inverse of ownership: which shard owns an absolute slot index. O(1)
  /// — the sender's routing decision, taken once per delivered message.
  [[nodiscard]] std::size_t shard_of_slot(std::size_t slot) const noexcept {
    const std::size_t idx = slot - first_;
    if (scheme_ == PartitionScheme::kHash) {
      return owner_[idx];
    }
    const std::size_t base = populated_ / shards_;
    const std::size_t extra = populated_ % shards_;
    const std::size_t fat = extra * (base + 1);  // slots in the +1 blocks
    if (idx < fat) {
      return idx / (base + 1);
    }
    return base == 0 ? shards_ - 1 : extra + (idx - fat) / base;
  }

  /// Position of an absolute slot within its owner's local arrays.
  /// Local indices enumerate a shard's owned slots in ascending slot
  /// order under BOTH schemes — that shared invariant is what keeps the
  /// exchange's ascending-source, ascending-slot combine order (and with
  /// it min-combiner bit-identity) independent of the scheme.
  [[nodiscard]] std::size_t local_index(std::size_t slot) const noexcept {
    if (scheme_ == PartitionScheme::kHash) {
      return local_[slot - first_];
    }
    return slot - slots(shard_of_slot(slot)).begin;
  }

  /// The `local`-th slot (ascending) owned by `shard` — inverse of
  /// local_index.
  [[nodiscard]] std::size_t slot_at(std::size_t shard,
                                    std::size_t local) const noexcept {
    if (scheme_ == PartitionScheme::kHash) {
      return owned_[shard][local];
    }
    return slots(shard).begin + local;
  }

  /// All slots owned by `shard`, ascending. Materialized (used once per
  /// worker for the values board layout, not on hot paths).
  [[nodiscard]] std::vector<std::size_t> owned_slots(std::size_t shard) const {
    if (scheme_ == PartitionScheme::kHash) {
      return owned_[shard];
    }
    const runtime::Range r = slots(shard);
    std::vector<std::size_t> out;
    out.reserve(r.size());
    for (std::size_t s = r.begin; s < r.end; ++s) {
      out.push_back(s);
    }
    return out;
  }

 private:
  std::size_t first_;
  std::size_t populated_;
  std::size_t shards_;
  PartitionScheme scheme_;
  // kHash lookup tables (empty for kBlock).
  std::vector<std::uint32_t> owner_;
  std::vector<std::uint32_t> local_;
  std::vector<std::vector<std::size_t>> owned_;
};

/// Program fingerprint bound to a shard topology. Per-shard snapshots are
/// slices of a larger run; a slice written by a 4-shard run must never be
/// resurrected into an 8-shard run even when its slot range happens to
/// line up (shard 0 of 4 and shard 0 of 8 share first_slot on aligned
/// sizes). Mixing (num_shards, shard_index, partition scheme) into the v2
/// program_fingerprint makes topology part of the snapshot's identity, so
/// the existing fingerprint check rejects cross-topology restores with a
/// typed SnapshotMismatch — no new metadata field, no format bump.
[[nodiscard]] inline std::uint64_t shard_fingerprint(
    std::uint64_t program_fp, std::size_t num_shards, std::size_t shard,
    PartitionScheme scheme = PartitionScheme::kBlock) noexcept {
  const std::uint64_t h = runtime::mix64(
      program_fp ^ (static_cast<std::uint64_t>(num_shards) << 32) ^
      (static_cast<std::uint64_t>(scheme) << 24) ^
      static_cast<std::uint64_t>(shard));
  return h == 0 ? 1 : h;  // 0 means "unknown" in v1 snapshots
}

}  // namespace ipregel::shard
