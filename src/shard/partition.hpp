#pragma once

#include <cstddef>
#include <cstdint>

#include "graph/csr.hpp"
#include "runtime/partition.hpp"
#include "runtime/rng.hpp"

namespace ipregel::shard {

/// Static slot ownership of a sharded run: the populated slot range
/// [first_slot, num_slots) split into `shards` contiguous blocks with
/// runtime::block_partition — the SAME split the single-process engine
/// hands its threads, which is what makes a sharded run's per-destination
/// combine order reproduce the engine's and keeps integer-combiner apps
/// bit-identical across the two execution modes.
class ShardPartition {
 public:
  ShardPartition(const graph::CsrGraph& g, std::size_t shards) noexcept
      : first_(g.first_slot()),
        populated_(g.num_slots() - g.first_slot()),
        shards_(shards == 0 ? 1 : shards) {}

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }

  /// Slot range owned by `shard` (absolute slot indices).
  [[nodiscard]] runtime::Range slots(std::size_t shard) const noexcept {
    const runtime::Range r =
        runtime::block_partition(populated_, shards_, shard);
    return {r.begin + first_, r.end + first_};
  }

  /// Inverse of slots(): which shard owns an absolute slot index. O(1) —
  /// the sender's routing decision, taken once per delivered message.
  [[nodiscard]] std::size_t shard_of_slot(std::size_t slot) const noexcept {
    const std::size_t idx = slot - first_;
    const std::size_t base = populated_ / shards_;
    const std::size_t extra = populated_ % shards_;
    const std::size_t fat = extra * (base + 1);  // slots in the +1 blocks
    if (idx < fat) {
      return idx / (base + 1);
    }
    return base == 0 ? shards_ - 1 : extra + (idx - fat) / base;
  }

 private:
  std::size_t first_;
  std::size_t populated_;
  std::size_t shards_;
};

/// Program fingerprint bound to a shard topology. Per-shard snapshots are
/// slices of a larger run; a slice written by a 4-shard run must never be
/// resurrected into an 8-shard run even when its slot range happens to
/// line up (shard 0 of 4 and shard 0 of 8 share first_slot on aligned
/// sizes). Mixing (num_shards, shard_index) into the v2
/// program_fingerprint makes topology part of the snapshot's identity, so
/// the existing fingerprint check rejects cross-topology restores with a
/// typed SnapshotMismatch — no new metadata field, no format bump.
[[nodiscard]] inline std::uint64_t shard_fingerprint(
    std::uint64_t program_fp, std::size_t num_shards,
    std::size_t shard) noexcept {
  const std::uint64_t h = runtime::mix64(
      program_fp ^ (static_cast<std::uint64_t>(num_shards) << 32) ^
      static_cast<std::uint64_t>(shard));
  return h == 0 ? 1 : h;  // 0 means "unknown" in v1 snapshots
}

}  // namespace ipregel::shard
