#pragma once

#include <fcntl.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ft/binary_format.hpp"
#include "shard/coordinator.hpp"

namespace ipregel::shard {

/// Exit status of a coordinator incarnation that died to a simulated
/// power cut (io::PowerLoss out of a manifest publish): the supervisor
/// treats it exactly like a SIGKILL — fork a takeover.
inline constexpr int kCoordExitPowerCut = 9;

namespace detail {

inline constexpr std::uint64_t kResultMagic = 0x544C555352504900ULL;

[[nodiscard]] inline double resilient_now() noexcept {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

[[nodiscard]] inline std::uint64_t resilient_double_bits(double v) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

[[nodiscard]] inline double resilient_bits_double(std::uint64_t bits) noexcept {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

inline bool write_all(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    p += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Serialises a finished incarnation's outcome (+ final values when ok)
/// into the self-framed, CRC-sealed result-pipe blob.
inline void write_result_blob(int fd, const ShardOutcome& out,
                              const std::vector<std::uint8_t>& values) {
  ft::FieldWriter fields;
  fields.u8(out.ok() ? 1 : 0);
  fields.u64(out.result.supersteps);
  fields.u64(resilient_double_bits(out.result.seconds));
  fields.u64(out.result.total_messages);
  fields.u64(out.result.total_executed_vertices);
  fields.u8(out.result.reached_superstep_cap ? 1 : 0);
  if (out.error.has_value()) {
    fields.u8(static_cast<std::uint8_t>(out.error->kind()));
    fields.u64(out.error->superstep());
    fields.u64(out.error->thread());
    fields.u64(out.error->vertex());
    const std::string detail = out.error->what();
    fields.u32(static_cast<std::uint32_t>(detail.size()));
    for (const char c : detail) {
      fields.u8(static_cast<std::uint8_t>(c));
    }
  }
  fields.u64(out.shard.respawns);
  fields.u64(out.shard.snapshot_recoveries);
  fields.u64(out.shard.heartbeat_kills);
  fields.u64(resilient_double_bits(out.shard.recovery_seconds));
  fields.u64(out.shard.coordinator_takeovers);
  fields.u64(out.shard.adopted_workers);
  fields.u64(resilient_double_bits(out.shard.coordinator_recovery_seconds));
  fields.u64(out.shard.coordinator_fenced);

  const std::vector<std::uint8_t>& fb = fields.bytes();
  std::uint32_t crc = ft::crc32(fb.data(), fb.size());
  crc = ft::crc32(values.data(), values.size(), crc);
  const std::uint64_t header[3] = {kResultMagic, fb.size(), values.size()};
  (void)(write_all(fd, header, sizeof(header)) &&
         write_all(fd, fb.data(), fb.size()) &&
         write_all(fd, values.data(), values.size()) &&
         write_all(fd, &crc, sizeof(crc)));
}

/// Parses a result-pipe blob. false = short / garbled / CRC mismatch,
/// which the supervisor treats as a coordinator crash.
inline bool read_result_blob(const std::vector<std::uint8_t>& buf,
                             ShardOutcome* out,
                             std::vector<std::uint8_t>* values) {
  if (buf.size() < 3 * sizeof(std::uint64_t) + sizeof(std::uint32_t)) {
    return false;
  }
  std::uint64_t header[3];
  std::memcpy(header, buf.data(), sizeof(header));
  if (header[0] != kResultMagic) {
    return false;
  }
  const std::size_t fields_len = header[1];
  const std::size_t values_len = header[2];
  const std::size_t need =
      sizeof(header) + fields_len + values_len + sizeof(std::uint32_t);
  if (buf.size() != need) {
    return false;
  }
  const std::uint8_t* fields_at = buf.data() + sizeof(header);
  const std::uint8_t* values_at = fields_at + fields_len;
  std::uint32_t crc = 0;
  std::memcpy(&crc, values_at + values_len, sizeof(crc));
  std::uint32_t actual = ft::crc32(fields_at, fields_len);
  actual = ft::crc32(values_at, values_len, actual);
  if (actual != crc) {
    return false;
  }
  try {
    const std::vector<std::uint8_t> fb(fields_at, fields_at + fields_len);
    ft::FieldReader r(fb, "coordinator result blob");
    const bool ok = r.u8() != 0;
    *out = ShardOutcome{};
    out->result.supersteps = static_cast<std::size_t>(r.u64());
    out->result.seconds = resilient_bits_double(r.u64());
    out->result.total_messages = static_cast<std::size_t>(r.u64());
    out->result.total_executed_vertices = static_cast<std::size_t>(r.u64());
    out->result.reached_superstep_cap = r.u8() != 0;
    if (!ok) {
      const auto kind = static_cast<RunErrorKind>(r.u8());
      const auto superstep = static_cast<std::size_t>(r.u64());
      const auto thread = static_cast<std::size_t>(r.u64());
      const std::uint64_t vertex = r.u64();
      const std::uint32_t len = r.u32();
      std::string detail(len, '\0');
      for (std::uint32_t i = 0; i < len; ++i) {
        detail[i] = static_cast<char>(r.u8());
      }
      out->error.emplace(kind, superstep, thread, vertex, detail);
    }
    out->shard.respawns = static_cast<std::size_t>(r.u64());
    out->shard.snapshot_recoveries = static_cast<std::size_t>(r.u64());
    out->shard.heartbeat_kills = static_cast<std::size_t>(r.u64());
    out->shard.recovery_seconds = resilient_bits_double(r.u64());
    out->shard.coordinator_takeovers = static_cast<std::size_t>(r.u64());
    out->shard.adopted_workers = static_cast<std::size_t>(r.u64());
    out->shard.coordinator_recovery_seconds = resilient_bits_double(r.u64());
    out->shard.coordinator_fenced = static_cast<std::size_t>(r.u64());
    r.done();
    values->assign(values_at, values_at + values_len);
    return true;
  } catch (const ft::FormatError&) {
    return false;
  }
}

}  // namespace detail

/// The coordinator-recovery entry point: run_sharded with the coordinator
/// itself inside a failure domain. The calling process becomes a thin
/// SUPERVISOR that owns every cross-incarnation resource — the shm arena
/// and reattach listener (kShm), the TCP rendezvous (kTcp), the recovery
/// directory — and forks the coordinator as a child. If that child dies
/// (SIGKILL, power cut mid-manifest-publish, crash), the supervisor forks
/// a TAKEOVER incarnation that loads the newest valid manifest, claims a
/// higher fencing epoch, re-attaches the parked workers (or respawns them
/// from snapshots), and continues the run — bit-identical to an
/// undisturbed one, bounded by recovery.max_takeovers.
///
/// The supervisor also runs as a child SUBREAPER: workers orphaned by a
/// dead coordinator reparent here, and their deaths are relayed to the
/// live coordinator over the orphan pipe so adopted workers stay
/// supervised. With recovery disabled this is exactly run_sharded.
template <VertexProgram Program>
[[nodiscard]] ShardOutcome run_sharded_resilient(
    const graph::CsrGraph& graph, Program program, const ShardOptions& options,
    std::vector<typename Program::value_type>* out_values = nullptr) {
  using Value = typename Program::value_type;
  if (!options.recovery.enabled()) {
    return run_sharded(graph, std::move(program), options, out_values);
  }

  io::Vfs& vfs = io::vfs_or_real(nullptr);
  if (!vfs.exists(options.recovery.directory)) {
    vfs.mkdir(options.recovery.directory);
  }
  ::prctl(PR_SET_CHILD_SUBREAPER, 1);

  // The shared plane: built ONCE, inherited by every incarnation.
  ShardPartition part(graph, options.num_shards, options.partition);
  ArenaSpec spec;
  std::unique_ptr<ShmArena> arena;
  std::unique_ptr<TcpRendezvous> rendezvous;
  Channel reattach;
  if (options.transport == TransportKind::kTcp) {
    rendezvous = std::make_unique<TcpRendezvous>(part.shards());
  } else {
    spec = Coordinator<Program>::make_arena_spec(graph, part, options);
    arena = std::make_unique<ShmArena>(spec.total_bytes);
    for (std::size_t src = 0; src < part.shards(); ++src) {
      for (std::size_t dst = 0; dst < part.shards(); ++dst) {
        if (src != dst) {
          (void)spec.attach(*arena, src, dst, /*initialize=*/true);
        }
      }
    }
    reattach = Channel::listen_at(options.recovery.directory +
                                      "/reattach.sock",
                                  static_cast<int>(part.shards()) * 2 + 8);
  }

  // Orphan-death relay: supervisor writes CoordOrphanDeath records, the
  // live coordinator polls the read end. Nonblocking on both ends.
  int orphan_pipe[2] = {-1, -1};
  if (::pipe(orphan_pipe) != 0) {
    throw std::runtime_error("run_sharded_resilient: pipe failed");
  }
  ::fcntl(orphan_pipe[0], F_SETFL, O_NONBLOCK);
  ::fcntl(orphan_pipe[1], F_SETFL, O_NONBLOCK);

  const double t_begin = detail::resilient_now();
  ShardOutcome final_outcome;
  std::vector<std::uint8_t> final_values;
  bool have_final = false;
  std::size_t fenced_incarnations = 0;
  std::vector<CoordOrphanDeath> pending_deaths;

  for (std::size_t incarnation = 0;
       incarnation <= options.recovery.max_takeovers && !have_final;
       ++incarnation) {
    if (options.guards.run_seconds > 0.0 &&
        detail::resilient_now() - t_begin > options.guards.run_seconds) {
      final_outcome = ShardOutcome{};
      final_outcome.error.emplace(RunErrorKind::kRunTimeout, 0, 0,
                                  RunError::kNoVertex,
                                  "sharded run exceeded guards.run_seconds "
                                  "across coordinator takeovers");
      have_final = true;
      break;
    }
    int result_pipe[2] = {-1, -1};
    if (::pipe(result_pipe) != 0) {
      throw std::runtime_error("run_sharded_resilient: pipe failed");
    }
    const pid_t coord = ::fork();
    if (coord < 0) {
      ::close(result_pipe[0]);
      ::close(result_pipe[1]);
      throw std::runtime_error("run_sharded_resilient: fork failed");
    }
    if (coord == 0) {
      // --- coordinator incarnation ---------------------------------------
      ::close(result_pipe[0]);
      ::close(orphan_pipe[1]);
      try {
        RecoveryBoot boot;
        boot.resilient = true;
        boot.takeover = incarnation > 0;
        boot.takeover_index = incarnation;
        if (arena != nullptr) {
          boot.spec = &spec;
          boot.arena = arena.get();
        }
        boot.rendezvous = rendezvous.get();
        boot.reattach = reattach.valid() ? &reattach : nullptr;
        boot.orphan_fd = orphan_pipe[0];
        boot.result_fd = result_pipe[1];
        Coordinator<Program> coordinator(graph, program, options, boot);
        std::vector<Value> values;
        ShardOutcome out = coordinator.run(&values);
        std::vector<std::uint8_t> bytes;
        if (out.ok()) {
          bytes.resize(values.size() * sizeof(Value));
          std::memcpy(bytes.data(), values.data(), bytes.size());
        }
        detail::write_result_blob(result_pipe[1], out, bytes);
      } catch (const io::PowerLoss&) {
        ::_exit(kCoordExitPowerCut);  // the simulated machine lost power
      } catch (const std::exception& e) {
        // Configuration and unexpected failures surface typed, not as an
        // endless takeover loop over a deterministic throw.
        ShardOutcome out;
        out.error.emplace(RunErrorKind::kShardFailure, 0, 0,
                          RunError::kNoVertex,
                          std::string("coordinator exception: ") + e.what());
        detail::write_result_blob(result_pipe[1], out, {});
      }
      ::close(result_pipe[1]);
      ::_exit(0);
    }

    // --- supervisor: pump the result pipe, reap, relay orphan deaths -----
    ::close(result_pipe[1]);
    ::fcntl(result_pipe[0], F_SETFL, O_NONBLOCK);
    std::vector<std::uint8_t> buf;
    int coord_status = 0;
    bool coord_dead = false;
    bool pipe_eof = false;
    bool killed_on_timeout = false;
    while (!pipe_eof || !coord_dead) {
      std::uint8_t tmp[4096];
      for (;;) {
        const ssize_t n = ::read(result_pipe[0], tmp, sizeof(tmp));
        if (n > 0) {
          buf.insert(buf.end(), tmp, tmp + n);
          continue;
        }
        if (n == 0) {
          pipe_eof = true;
        }
        break;
      }
      for (;;) {
        int status = 0;
        const pid_t p = ::waitpid(-1, &status, WNOHANG);
        if (p <= 0) {
          break;
        }
        if (p == coord) {
          coord_dead = true;
          coord_status = status;
        } else {
          CoordOrphanDeath death;
          death.pid = static_cast<std::int32_t>(p);
          death.status = status;
          pending_deaths.push_back(death);
        }
      }
      while (!pending_deaths.empty()) {
        const ssize_t n = ::write(orphan_pipe[1], &pending_deaths.front(),
                                  sizeof(CoordOrphanDeath));
        if (n != static_cast<ssize_t>(sizeof(CoordOrphanDeath))) {
          break;  // pipe full; retry next tick
        }
        pending_deaths.erase(pending_deaths.begin());
      }
      if (!coord_dead && !killed_on_timeout &&
          options.guards.run_seconds > 0.0 &&
          detail::resilient_now() - t_begin >
              options.guards.run_seconds + 5.0) {
        // Backstop for a coordinator too wedged to honour its own guard.
        ::kill(coord, SIGKILL);
        killed_on_timeout = true;
      }
      if (!pipe_eof || !coord_dead) {
        ::usleep(2000);
      }
    }
    ::close(result_pipe[0]);

    const bool power_cut = WIFEXITED(coord_status) &&
                           WEXITSTATUS(coord_status) == kCoordExitPowerCut;
    const bool clean =
        WIFEXITED(coord_status) && WEXITSTATUS(coord_status) == 0;
    ShardOutcome out;
    std::vector<std::uint8_t> values;
    if (clean && detail::read_result_blob(buf, &out, &values)) {
      const bool fenced =
          out.error.has_value() &&
          out.error->kind() == RunErrorKind::kCoordinatorFenced;
      if (fenced && incarnation < options.recovery.max_takeovers) {
        // The stale loser stood down without touching the run; fork a
        // fresh takeover that claims the epoch properly.
        ++fenced_incarnations;
        continue;
      }
      out.shard.coordinator_fenced += fenced_incarnations;
      final_outcome = std::move(out);
      final_values = std::move(values);
      have_final = true;
      continue;
    }
    // Crashed (signal), power cut, or a garbled result: takeover if the
    // budget allows.
    (void)power_cut;
    if (incarnation == options.recovery.max_takeovers) {
      final_outcome = ShardOutcome{};
      final_outcome.error.emplace(
          RunErrorKind::kShardFailure, 0, 0, RunError::kNoVertex,
          "coordinator takeover budget exhausted (" +
              std::to_string(options.recovery.max_takeovers) +
              " takeovers)");
      final_outcome.shard.coordinator_fenced = fenced_incarnations;
      have_final = true;
    }
  }

  // Bounded final drain: reap whatever reparented here. Any worker still
  // alive is inside its bounded park window and exits on its own.
  const double drain_deadline = detail::resilient_now() + 0.25;
  while (detail::resilient_now() < drain_deadline) {
    int status = 0;
    const pid_t p = ::waitpid(-1, &status, WNOHANG);
    if (p <= 0) {
      if (::waitpid(-1, &status, WNOHANG) < 0) {
        break;  // no children at all remain
      }
      ::usleep(2000);
    }
  }
  ::close(orphan_pipe[0]);
  ::close(orphan_pipe[1]);
  ::prctl(PR_SET_CHILD_SUBREAPER, 0);

  if (!have_final) {
    final_outcome = ShardOutcome{};
    final_outcome.error.emplace(RunErrorKind::kShardFailure, 0, 0,
                                RunError::kNoVertex,
                                "coordinator takeover budget exhausted");
  }
  if (final_outcome.ok() && out_values != nullptr) {
    out_values->resize(final_values.size() / sizeof(Value));
    std::memcpy(out_values->data(), final_values.data(),
                final_values.size());
  }
  return final_outcome;
}

}  // namespace ipregel::shard
