#include "shard/ring.hpp"

#include <sys/mman.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <new>
#include <stdexcept>
#include <string>

namespace ipregel::shard {

ShmArena::ShmArena(std::size_t bytes) : size_(bytes) {
  base_ = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (base_ == MAP_FAILED) {
    base_ = nullptr;
    throw std::runtime_error("ShmArena: mmap of " + std::to_string(bytes) +
                             " bytes failed: " +
                             std::string(std::strerror(errno)));
  }
}

ShmArena::~ShmArena() {
  if (base_ != nullptr) {
    ::munmap(base_, size_);
  }
}

std::size_t SpscRing::bytes_required(std::size_t capacity) noexcept {
  return sizeof(Header) + capacity;
}

void SpscRing::attach(void* mem, std::size_t capacity,
                      bool initialize) noexcept {
  header_ = static_cast<Header*>(mem);
  data_ = static_cast<std::uint8_t*>(mem) + sizeof(Header);
  capacity_ = capacity;
  if (initialize) {
    // Placement-init the atomics in the shared page. Done once, pre-fork,
    // single-threaded — no concurrent attacher exists yet.
    new (&header_->tail) std::atomic<std::uint64_t>(0);
    new (&header_->head) std::atomic<std::uint64_t>(0);
    header_->capacity = capacity;
  }
}

std::size_t SpscRing::free_bytes() const noexcept {
  const std::uint64_t tail = header_->tail.load(std::memory_order_relaxed);
  const std::uint64_t head = header_->head.load(std::memory_order_acquire);
  return capacity_ - static_cast<std::size_t>(tail - head);
}

void SpscRing::copy_in(std::uint64_t pos, const void* src,
                       std::size_t n) noexcept {
  const std::size_t at = static_cast<std::size_t>(pos % capacity_);
  const std::size_t first = std::min(n, capacity_ - at);
  std::memcpy(data_ + at, src, first);
  if (first < n) {
    std::memcpy(data_, static_cast<const std::uint8_t*>(src) + first,
                n - first);
  }
}

void SpscRing::copy_out(std::uint64_t pos, void* dst,
                        std::size_t n) const noexcept {
  const std::size_t at = static_cast<std::size_t>(pos % capacity_);
  const std::size_t first = std::min(n, capacity_ - at);
  std::memcpy(dst, data_ + at, first);
  if (first < n) {
    std::memcpy(static_cast<std::uint8_t*>(dst) + first, data_, n - first);
  }
}

bool SpscRing::try_push(std::uint32_t src, std::uint64_t superstep,
                        std::span<const std::uint8_t> payload) noexcept {
  const std::size_t need = sizeof(FrameHeader) + payload.size();
  if (need > free_bytes()) {
    return false;
  }
  const std::uint64_t tail = header_->tail.load(std::memory_order_relaxed);
  FrameHeader fh;
  fh.kind = static_cast<std::uint16_t>(net::FrameKind::kData);
  fh.src = static_cast<std::uint16_t>(src);
  fh.superstep = superstep;
  net::seal_header(fh, payload);
  copy_in(tail, &fh, sizeof(fh));
  if (!payload.empty()) {
    copy_in(tail + sizeof(fh), payload.data(), payload.size());
  }
  // The release store is the commit point; death anywhere above leaves
  // the frame invisible.
  header_->tail.store(tail + need, std::memory_order_release);
  return true;
}

std::optional<Frame> SpscRing::try_pop() {
  const std::uint64_t head = header_->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = header_->tail.load(std::memory_order_acquire);
  if (tail == head) {
    return std::nullopt;
  }
  Frame frame;
  copy_out(head, &frame.header, sizeof(frame.header));
  // Validate the length before trusting it for the payload copy and the
  // cursor advance: a corrupt payload_len would otherwise walk the
  // consumer cursor off into garbage forever.
  net::check_header(frame.header, capacity_ - sizeof(FrameHeader));
  frame.payload.resize(frame.header.payload_len);
  if (frame.header.payload_len != 0) {
    copy_out(head + sizeof(FrameHeader), frame.payload.data(),
             frame.header.payload_len);
  }
  net::check_frame(frame.header, frame.payload,
                   capacity_ - sizeof(FrameHeader));
  header_->head.store(head + sizeof(FrameHeader) + frame.header.payload_len,
                      std::memory_order_release);
  return frame;
}

}  // namespace ipregel::shard
