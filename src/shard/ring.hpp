#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/wire.hpp"

namespace ipregel::shard {

/// One anonymous MAP_SHARED mapping, created by the coordinator BEFORE
/// forking workers so every process inherits the same physical pages —
/// the data plane of the sharded runtime. Holds the N*(N-1) shard-to-
/// shard message rings plus the result board the coordinator reads final
/// vertex values from.
///
/// The mapping outlives any worker incarnation: a SIGKILLed worker's
/// rings keep their contents, and its respawn inherits them at the same
/// addresses (the mapping predates every fork), so undelivered frames
/// survive the crash and in-flight cursors stay meaningful.
class ShmArena {
 public:
  /// Maps `bytes` of zeroed shared memory. Throws std::runtime_error when
  /// mmap fails.
  explicit ShmArena(std::size_t bytes);
  ~ShmArena();

  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;

  [[nodiscard]] void* base() const noexcept { return base_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint8_t* at(std::size_t offset) const noexcept {
    return static_cast<std::uint8_t*>(base_) + offset;
  }

 private:
  void* base_ = nullptr;
  std::size_t size_ = 0;
};

/// Frame header preceding every payload in a ring. One frame carries one
/// (source shard, superstep) combined batch; an empty batch still posts a
/// zero-payload frame so receivers can advance their per-source cursor
/// without timing heuristics.
///
/// The header IS the network wire header: rings and TCP streams speak the
/// same CRC32-sealed frame envelope, so the frame-protocol tests (and the
/// corruption sweep) cover both transports with one format. try_push
/// seals the CRC; try_pop verifies it and throws net::WireError on
/// corruption — a torn shared mapping is detected, never silently
/// consumed.
using FrameHeader = net::WireHeader;

/// A popped frame: header plus payload bytes (copied out of the ring).
using Frame = net::Frame;

/// Single-producer single-consumer byte ring over shared memory — the
/// transport under one directed shard pair. Cursors are monotonically
/// increasing byte positions (never wrapped), stored as lock-free
/// std::atomic<uint64_t> directly in the shared mapping; data indices are
/// position % capacity.
///
/// Crash safety is by construction: a producer copies header+payload into
/// the data area FIRST and publishes with a release store to `tail` LAST,
/// so a producer killed mid-push leaves the ring exactly as before the
/// push (the bytes past `tail` are invisible and its respawn rewrites
/// them). A consumer advances `head` only after copying a complete frame
/// out, so a consumer killed mid-pop re-reads the same frame after
/// respawn. SPSC holds across incarnations because at most one
/// incarnation of a shard is alive at a time (the coordinator waitpid()s
/// the corpse before forking the replacement).
class SpscRing {
 public:
  SpscRing() = default;

  /// Shared-memory footprint of a ring with `capacity` data bytes.
  [[nodiscard]] static std::size_t bytes_required(
      std::size_t capacity) noexcept;

  /// Attaches to ring memory at `mem` (inside a ShmArena). `initialize`
  /// is set only by the coordinator pre-fork; workers attach to the
  /// already-initialised header.
  void attach(void* mem, std::size_t capacity, bool initialize) noexcept;

  /// Free data bytes right now (racy snapshot; monotone for the producer).
  [[nodiscard]] std::size_t free_bytes() const noexcept;

  /// Pushes one kData frame (CRC-sealed); returns false when it does not
  /// currently fit (the producer must drain-or-retry — rings are sized so
  /// a full superstep batch always fits twice, making persistent falses a
  /// peer-death symptom, not a flow-control state).
  [[nodiscard]] bool try_push(std::uint32_t src, std::uint64_t superstep,
                              std::span<const std::uint8_t> payload) noexcept;

  /// Pops one complete frame if available. Throws net::WireError when the
  /// frame fails validation (bad kind, length exceeding the ring, CRC
  /// mismatch) — corruption of the shared mapping is typed, not consumed.
  [[nodiscard]] std::optional<Frame> try_pop();

 private:
  struct Header {
    std::atomic<std::uint64_t> tail;  // producer cursor (bytes written)
    char pad0[64 - sizeof(std::atomic<std::uint64_t>)];
    std::atomic<std::uint64_t> head;  // consumer cursor (bytes consumed)
    char pad1[64 - sizeof(std::atomic<std::uint64_t>)];
    std::uint64_t capacity;
  };
  static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
                "cross-process ring cursors must be address-free");

  void copy_in(std::uint64_t pos, const void* src, std::size_t n) noexcept;
  void copy_out(std::uint64_t pos, void* dst, std::size_t n) const noexcept;

  Header* header_ = nullptr;
  std::uint8_t* data_ = nullptr;
  std::size_t capacity_ = 0;
};

}  // namespace ipregel::shard
