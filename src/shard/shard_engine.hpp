#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "core/aggregator_traits.hpp"
#include "core/program_traits.hpp"
#include "ft/snapshot.hpp"
#include "graph/csr.hpp"
#include "runtime/partition.hpp"
#include "shard/partition.hpp"

namespace ipregel::shard {

namespace detail {
/// P::aggregate_type when present, an empty placeholder otherwise — lets
/// ShardEngine hold aggregate state unconditionally without instantiating
/// a missing member type.
template <typename P, bool = HasAggregator<P>>
struct AggregateOf {
  using type = typename P::aggregate_type;
};
template <typename P>
struct AggregateOf<P, false> {
  struct type {};
};
}  // namespace detail

/// SnapshotMeta::combiner sentinel for per-shard snapshots — a value no
/// single-process CombinerKind uses, so an engine resume can never
/// mistake a shard slice for whole-run state even before the fingerprint
/// check fires.
inline constexpr std::uint8_t kShardCombinerTag = 0xF5;

/// The per-worker compute core of a sharded run: one shard's slice of
/// vertex state plus dense per-destination outboxes, with the engine's
/// exact selection rule and Context surface. Single-threaded by design —
/// parallelism in the sharded mode comes from processes, which keeps
/// every worker's combine order deterministic (local slot order), makes
/// heartbeats progress-coupled, and lets the whole thing run under fork()
/// without threading caveats.
///
/// Holds no process machinery: rings, sockets, and checkpoint policy live
/// in worker.hpp/coordinator.hpp. This class is pure state + transitions,
/// which is what makes it unit-testable in-process (tests/test_shard_engine
/// drives two of them against each other with plain byte vectors).
template <VertexProgram Program>
class ShardEngine {
 public:
  using Value = typename Program::value_type;
  using Msg = typename Program::message_type;

  static constexpr bool kHasAggregator = HasAggregator<Program>;

  ShardEngine(const graph::CsrGraph& graph, Program program,
              const ShardPartition& part, std::size_t me)
      : graph_(graph),
        program_(std::move(program)),
        part_(part),
        me_(me),
        n_local_(part.size(me)),
        first_owned_(n_local_ != 0 ? part.slot_at(me, 0) : 0) {
    const std::size_t n = n_local_;
    values_.resize(n);
    halted_.assign(n, 0);
    in_msg_.resize(n);
    in_flag_.assign(n, 0);
    nx_msg_.resize(n);
    nx_flag_.assign(n, 0);
    out_.resize(part_.shards());
    for (std::size_t d = 0; d < part_.shards(); ++d) {
      out_[d].msg.resize(part_.size(d));
      out_[d].flag.assign(part_.size(d), 0);
      out_[d].count = 0;
    }
    if constexpr (kHasAggregator) {
      partial_ = Program::aggregate_identity();
      aggregated_ = Program::aggregate_identity();
    }
  }

  /// Slots this shard owns. Local indices 0..local_size() enumerate them
  /// in ascending slot order under every partition scheme.
  [[nodiscard]] std::size_t local_size() const noexcept { return n_local_; }
  /// Smallest owned slot — the per-shard snapshot's range anchor.
  [[nodiscard]] std::size_t first_owned_slot() const noexcept {
    return first_owned_;
  }

  /// Fresh superstep-0 state (initial values, nothing halted, empty
  /// mailboxes).
  void initialize() {
    for (std::size_t li = 0; li < n_local_; ++li) {
      values_[li] = program_.initial_value(graph_.id_of(part_.slot_at(me_, li)));
    }
    std::fill(halted_.begin(), halted_.end(), 0);
    std::fill(in_flag_.begin(), in_flag_.end(), 0);
    std::fill(nx_flag_.begin(), nx_flag_.end(), 0);
    for (auto& ob : out_) {
      std::fill(ob.flag.begin(), ob.flag.end(), 0);
      ob.count = 0;
    }
    if constexpr (kHasAggregator) {
      partial_ = Program::aggregate_identity();
      aggregated_ = Program::aggregate_identity();
    }
  }

  struct StepCounts {
    std::uint64_t sent = 0;
    std::uint64_t executed = 0;
    std::uint64_t active = 0;
  };

  /// Runs one superstep over the local slice: the engine's selection rule
  /// (execute iff pending message, superstep 0, or not halted), compute,
  /// vote collection. Deliveries land combined in the per-destination
  /// outboxes. `tick(executed_so_far)` fires every few vertices and once
  /// after the loop — the worker hangs heartbeats and fault injection on
  /// it.
  template <typename Tick>
  StepCounts compute_superstep(std::uint64_t superstep, Tick&& tick) {
    superstep_ = superstep;
    resend_mode_ = false;
    sent_ = 0;
    StepCounts counts;
    for (std::size_t li = 0; li < n_local_; ++li) {
      const std::size_t slot = part_.slot_at(me_, li);
      const bool has = in_flag_[li] != 0;
      if (!has && superstep > 0 && halted_[li] != 0) {
        continue;
      }
      Context ctx(*this, slot, li, has ? &in_msg_[li] : nullptr);
      program_.compute(ctx);
      halted_[li] = ctx.voted_ ? 1 : 0;
      ++counts.executed;
      if ((counts.executed & 7) == 0) {
        tick(counts.executed);
      }
    }
    std::fill(in_flag_.begin(), in_flag_.end(), 0);
    counts.sent = sent_;
    counts.active = static_cast<std::uint64_t>(
        std::count(halted_.begin(), halted_.end(), std::uint8_t{0}));
    tick(counts.executed);
    return counts;
  }

  /// Serialises and clears the outbox for destination shard `dst`:
  /// [u64 count] then `count` (u32 local-dst-index, Msg) entries in
  /// ascending index order. Deterministic bytes for deterministic input —
  /// the redo-after-crash path replays identical frames.
  [[nodiscard]] std::vector<std::uint8_t> take_outbox(std::size_t dst) {
    Outbox& ob = out_[dst];
    std::vector<std::uint8_t> payload(sizeof(std::uint64_t) +
                                      ob.count * kEntryBytes);
    std::uint8_t* p = payload.data();
    const std::uint64_t count = ob.count;
    std::memcpy(p, &count, sizeof(count));
    p += sizeof(count);
    if (ob.count != 0) {
      for (std::uint32_t i = 0; i < ob.flag.size(); ++i) {
        if (ob.flag[i] == 0) {
          continue;
        }
        std::memcpy(p, &i, sizeof(i));
        std::memcpy(p + sizeof(i), &ob.msg[i], sizeof(Msg));
        p += kEntryBytes;
        ob.flag[i] = 0;
      }
      ob.count = 0;
    }
    return payload;
  }

  /// Applies one serialised frame to the NEXT inbox (normal exchange) or
  /// the CURRENT one (lightweight-recovery rebuild), combining per slot.
  /// Frames must be applied in ascending source-shard order for
  /// bit-reproducible folds; the worker's cursor machinery guarantees it.
  void apply_frame(std::span<const std::uint8_t> payload, bool into_current) {
    auto& msg = into_current ? in_msg_ : nx_msg_;
    auto& flag = into_current ? in_flag_ : nx_flag_;
    const std::uint8_t* p = payload.data();
    std::uint64_t count = 0;
    std::memcpy(&count, p, sizeof(count));
    p += sizeof(count);
    for (std::uint64_t e = 0; e < count; ++e) {
      std::uint32_t li = 0;
      Msg m;
      std::memcpy(&li, p, sizeof(li));
      std::memcpy(&m, p + sizeof(li), sizeof(Msg));
      p += kEntryBytes;
      if (flag[li] != 0) {
        Program::combine(msg[li], m);
      } else {
        msg[li] = m;
        flag[li] = 1;
      }
    }
  }

  /// Barrier commit: the next inbox becomes current.
  void advance() {
    in_msg_.swap(nx_msg_);
    in_flag_.swap(nx_flag_);
    std::fill(nx_flag_.begin(), nx_flag_.end(), 0);
  }

  /// Raw value bytes of the local slice, for the shared result board.
  [[nodiscard]] std::span<const std::uint8_t> value_bytes() const noexcept {
    return {reinterpret_cast<const std::uint8_t*>(values_.data()),
            values_.size() * sizeof(Value)};
  }

  /// Detected from Program, same probe as the engine's: lightweight
  /// recovery needs `resend(ctx)`.
  static constexpr bool resend_capable() noexcept { return kResendCapable; }

  /// Lightweight-recovery message regeneration, self-destined slice only:
  /// replays Program::resend for every local vertex AS superstep
  /// `resume - 1`, routing deliveries through the self-outbox (identical
  /// fold shape to the original exchange), and applies that synthesized
  /// frame to the CURRENT inbox. The worker interleaves this at source
  /// position `me` between the survivors' republished frames, so the
  /// rebuilt inbox folds in exactly the original source order.
  void resend_self(std::uint64_t resume) {
    if (resume == 0) {
      return;  // superstep 0 has no inbox
    }
    if constexpr (kResendCapable) {
      superstep_ = resume - 1;
      resend_mode_ = true;
      for (std::size_t li = 0; li < n_local_; ++li) {
        Context ctx(*this, part_.slot_at(me_, li), li, nullptr);
        program_.resend(ctx);
      }
      resend_mode_ = false;
      const std::vector<std::uint8_t> frame = take_outbox(me_);
      apply_frame(frame, /*into_current=*/true);
      // Remote-destined regenerated messages are not ours to deliver —
      // the survivors' own state already reflects them.
      for (std::size_t d = 0; d < out_.size(); ++d) {
        if (d != me_) {
          std::fill(out_[d].flag.begin(), out_[d].flag.end(), 0);
          out_[d].count = 0;
        }
      }
    }
  }

  /// Full-era lightweight rebuild: replays Program::resend for every local
  /// vertex AS superstep `resume - 1`, filling the per-destination outboxes
  /// for ALL shards (unlike resend_self, which keeps only the self slice).
  /// Used when every shard restarts at the same cut — nobody retained the
  /// original frames, so each shard regenerates its own outgoing slice and
  /// pushes it; the caller then applies peers' regenerated frames plus the
  /// self outbox (take_outbox(me), into_current) in ascending source order,
  /// the same fold shape as the original exchange.
  void regenerate_all(std::uint64_t resume) {
    if (resume == 0) {
      return;  // superstep 0 has no inbox
    }
    if constexpr (kResendCapable) {
      superstep_ = resume - 1;
      resend_mode_ = true;
      for (std::size_t li = 0; li < n_local_; ++li) {
        Context ctx(*this, part_.slot_at(me_, li), li, nullptr);
        program_.resend(ctx);
      }
      resend_mode_ = false;
    }
  }

  // --- aggregator plumbing (cross-shard reduction) -----------------------

  /// This superstep's local partial, reset to identity for the next one.
  template <typename P = Program>
    requires HasSerializableAggregator<P>
  [[nodiscard]] std::vector<std::uint8_t> take_aggregate_partial() {
    auto bytes = aggregate_to_bytes<P>(partial_);
    partial_ = P::aggregate_identity();
    return bytes;
  }

  /// Installs the coordinator's globally folded aggregate (visible to the
  /// next superstep via ctx.aggregated()).
  template <typename P = Program>
    requires HasSerializableAggregator<P>
  void set_aggregated(std::span<const std::uint8_t> bytes) {
    aggregated_ = aggregate_from_bytes<P>(bytes);
  }

  // --- per-shard snapshots ----------------------------------------------

  /// Captures this shard's slice as an EngineSnapshot whose meta binds
  /// (graph, program, shard topology): num_slots/first_slot describe the
  /// LOCAL range and program_fingerprint carries the shard-bound
  /// fingerprint, so the existing restore-side identity checks reject
  /// slices from a different shard count or index. The inbox stored is
  /// the CURRENT one — state as of "about to compute `resume`".
  [[nodiscard]] ft::EngineSnapshot capture(ft::CheckpointMode mode,
                                           std::uint64_t resume,
                                           std::uint64_t graph_fp,
                                           std::uint64_t bound_fp) const {
    ft::EngineSnapshot snap;
    snap.meta.mode = mode;
    snap.meta.combiner = kShardCombinerTag;
    snap.meta.selection_bypass = false;
    snap.meta.has_aggregator = kHasAggregator;
    snap.meta.superstep = resume;
    snap.meta.num_slots = n_local_;
    snap.meta.first_slot = first_owned_;
    snap.meta.num_vertices = graph_.num_vertices();
    snap.meta.num_edges = graph_.num_edges();
    snap.meta.graph_fingerprint = graph_fp;
    snap.meta.program_fingerprint = bound_fp;
    snap.meta.value_size = sizeof(Value);
    snap.meta.message_size = sizeof(Msg);
    snap.values.resize(values_.size() * sizeof(Value));
    std::memcpy(snap.values.data(), values_.data(), snap.values.size());
    snap.halted = halted_;
    if (mode == ft::CheckpointMode::kHeavyweight) {
      snap.inbox.resize(in_msg_.size() * sizeof(Msg));
      std::memcpy(snap.inbox.data(), in_msg_.data(), snap.inbox.size());
      snap.inbox_flags = in_flag_;
      if constexpr (kHasAggregator) {
        if constexpr (HasSerializableAggregator<Program>) {
          snap.aggregate = aggregate_to_bytes<Program>(aggregated_);
          snap.meta.aggregate_size = sizeof(typename Program::aggregate_type);
        }
      }
    }
    return snap;
  }

  /// Validates a parsed snapshot against this engine's binding; returns
  /// nullptr when it fits or a static reason. Shaped for
  /// SnapshotDirectory::Validator so unusable candidates get QUARANTINED
  /// during the newest-first walk instead of aborting it — a slice from a
  /// different shard topology must never shadow this shard's own older
  /// snapshots.
  [[nodiscard]] const char* validate(const ft::EngineSnapshot& snap,
                                     std::uint64_t graph_fp,
                                     std::uint64_t bound_fp) const noexcept {
    const ft::SnapshotMeta& m = snap.meta;
    if (m.graph_fingerprint != 0 && m.graph_fingerprint != graph_fp) {
      return "snapshot belongs to a different graph";
    }
    if (m.program_fingerprint != 0 && m.program_fingerprint != bound_fp) {
      return "snapshot belongs to a different program or shard topology";
    }
    if (m.combiner != kShardCombinerTag) {
      return "not a per-shard snapshot slice";
    }
    if (m.num_slots != n_local_ || m.first_slot != first_owned_) {
      return "snapshot covers a different slot range";
    }
    if (m.value_size != sizeof(Value) || m.message_size != sizeof(Msg)) {
      return "snapshot value/message layout mismatch";
    }
    if (m.mode == ft::CheckpointMode::kLightweight &&
        (!kResendCapable || kHasAggregator)) {
      return "lightweight slice but the program cannot regenerate state";
    }
    return nullptr;
  }

  /// Installs a validated snapshot. Heavyweight restores the inbox and
  /// aggregate exactly; lightweight leaves the inbox EMPTY — the caller
  /// must run the resend_self / republished-frame rebuild before
  /// computing.
  void restore(const ft::EngineSnapshot& snap) {
    std::memcpy(values_.data(), snap.values.data(), snap.values.size());
    std::copy(snap.halted.begin(), snap.halted.end(), halted_.begin());
    std::fill(in_flag_.begin(), in_flag_.end(), 0);
    std::fill(nx_flag_.begin(), nx_flag_.end(), 0);
    if (snap.meta.mode == ft::CheckpointMode::kHeavyweight) {
      if (!snap.inbox.empty()) {
        std::memcpy(in_msg_.data(), snap.inbox.data(), snap.inbox.size());
      }
      if (!snap.inbox_flags.empty()) {
        std::copy(snap.inbox_flags.begin(), snap.inbox_flags.end(),
                  in_flag_.begin());
      }
      if constexpr (HasSerializableAggregator<Program>) {
        set_aggregated(snap.aggregate);
      }
    }
  }

  /// Worst-case serialised frame bytes this shard can send to `dst` in
  /// one superstep — the ring-sizing input.
  [[nodiscard]] std::size_t max_frame_bytes(std::size_t dst) const noexcept {
    return sizeof(std::uint64_t) + part_.size(dst) * kEntryBytes;
  }

 private:
  static constexpr std::size_t kEntryBytes =
      sizeof(std::uint32_t) + sizeof(Msg);

  struct Outbox {
    std::vector<Msg> msg;
    std::vector<std::uint8_t> flag;
    std::size_t count = 0;
  };

  void deliver(graph::vid_t dst, const Msg& m) {
    const std::size_t slot = graph_.slot_of(dst);
    Outbox& ob = out_[part_.shard_of_slot(slot)];
    const std::size_t li = part_.local_index(slot);
    if (ob.flag[li] != 0) {
      Program::combine(ob.msg[li], m);
    } else {
      ob.msg[li] = m;
      ob.flag[li] = 1;
      ++ob.count;
    }
    // Resend regeneration replays past messages for recovery; it is not
    // new traffic (remote-destined regenerations are discarded by
    // resend_self) and must not skew the barrier's sent count.
    if (!resend_mode_) {
      ++sent_;
    }
  }

  class Context {
   public:
    bool get_next_message(Msg& out) noexcept {
      if (msg_ == nullptr) {
        return false;
      }
      out = *msg_;
      msg_ = nullptr;
      return true;
    }

    void broadcast(const Msg& msg) {
      for (const graph::vid_t v : engine_.graph_.out_neighbours(slot_)) {
        engine_.deliver(v, msg);
      }
    }
    void send_message(graph::vid_t dst, const Msg& msg) {
      engine_.deliver(dst, msg);
    }
    void vote_to_halt() noexcept { voted_ = true; }

    template <typename P = Program>
      requires HasAggregator<P>
    void aggregate(const typename P::aggregate_type& x) {
      P::aggregate(engine_.partial_, x);
    }
    template <typename P = Program>
      requires HasAggregator<P>
    [[nodiscard]] const typename P::aggregate_type& aggregated()
        const noexcept {
      return engine_.aggregated_;
    }

    [[nodiscard]] std::size_t superstep() const noexcept {
      return static_cast<std::size_t>(engine_.superstep_);
    }
    [[nodiscard]] bool is_first_superstep() const noexcept {
      return engine_.superstep_ == 0;
    }
    [[nodiscard]] std::size_t num_vertices() const noexcept {
      return engine_.graph_.num_vertices();
    }
    [[nodiscard]] graph::vid_t id() const noexcept {
      return engine_.graph_.id_of(slot_);
    }
    [[nodiscard]] Value& value() noexcept { return engine_.values_[li_]; }
    [[nodiscard]] const Value& value() const noexcept {
      return engine_.values_[li_];
    }
    [[nodiscard]] std::size_t out_degree() const noexcept {
      return engine_.graph_.out_degree(slot_);
    }
    [[nodiscard]] std::span<const graph::vid_t> out_neighbours()
        const noexcept {
      return engine_.graph_.out_neighbours(slot_);
    }
    [[nodiscard]] std::span<const graph::weight_t> out_weights()
        const noexcept {
      return engine_.graph_.out_weights(slot_);
    }

   private:
    friend class ShardEngine;
    Context(ShardEngine& engine, std::size_t slot, std::size_t li,
            const Msg* msg) noexcept
        : engine_(engine), slot_(slot), li_(li), msg_(msg) {}

    ShardEngine& engine_;
    std::size_t slot_;
    std::size_t li_;
    const Msg* msg_;
    bool voted_ = false;
  };
  friend class Context;

  static constexpr bool kResendCapable =
      requires(const Program& p, Context& c) { p.resend(c); };

  using AggregateOrNothing = typename detail::AggregateOf<Program>::type;

  const graph::CsrGraph& graph_;
  Program program_;
  ShardPartition part_;
  std::size_t me_;
  std::size_t n_local_;
  std::size_t first_owned_;

  std::vector<Value> values_;
  std::vector<std::uint8_t> halted_;
  std::vector<Msg> in_msg_;
  std::vector<std::uint8_t> in_flag_;
  std::vector<Msg> nx_msg_;
  std::vector<std::uint8_t> nx_flag_;
  std::vector<Outbox> out_;

  std::uint64_t superstep_ = 0;
  std::uint64_t sent_ = 0;
  bool resend_mode_ = false;

  AggregateOrNothing partial_{};
  AggregateOrNothing aggregated_{};
};

}  // namespace ipregel::shard
