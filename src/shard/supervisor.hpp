#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <vector>

namespace ipregel::shard {

/// Respawn budget and backoff schedule for failed worker processes — the
/// multi-process generalisation of ft::RetryPolicy (which restarts a
/// single in-process engine run). The same three dials: how many times,
/// how long to wait, how fast the wait grows.
struct SupervisorPolicy {
  /// Respawns allowed for any single shard before the run aborts with
  /// kShardFailure. A shard that keeps dying is not transient bad luck.
  std::size_t max_respawns_per_shard = 3;
  /// Total respawns across all shards — a run-wide fuse against rolling
  /// failures that never repeat on one shard.
  std::size_t max_total_respawns = 8;
  /// Exponential backoff before each respawn of the same shard: the k-th
  /// respawn waits initial * multiplier^(k-1), capped at max. Graceful
  /// degradation: repeated failures slow the run down before the budget
  /// finally aborts it.
  double backoff_initial_seconds = 0.02;
  double backoff_multiplier = 2.0;
  double backoff_max_seconds = 1.0;
};

/// Bookkeeping half of the supervisor: decides whether a dead shard may
/// be respawned and how long to wait first. The coordinator owns the
/// process-level half (fork, waitpid, SIGKILL) — splitting the policy out
/// keeps it unit-testable without forking anything.
class ShardSupervisor {
 public:
  ShardSupervisor(SupervisorPolicy policy, std::size_t shards)
      : policy_(policy), respawns_(shards, 0) {}

  /// Charges one respawn of `shard` against the budget. Returns the
  /// backoff to wait before forking the replacement, or nullopt when the
  /// budget is exhausted (the caller must abort the run).
  [[nodiscard]] std::optional<double> plan_respawn(std::size_t shard) {
    if (respawns_[shard] >= policy_.max_respawns_per_shard ||
        total_ >= policy_.max_total_respawns) {
      return std::nullopt;
    }
    const std::size_t attempt = ++respawns_[shard];
    ++total_;
    double backoff = policy_.backoff_initial_seconds;
    for (std::size_t i = 1; i < attempt; ++i) {
      backoff *= policy_.backoff_multiplier;
    }
    return std::min(backoff, policy_.backoff_max_seconds);
  }

  /// Respawns charged to `shard` so far — also the generation number of
  /// its current incarnation (0 = original process).
  [[nodiscard]] std::size_t generation(std::size_t shard) const noexcept {
    return respawns_[shard];
  }

  /// Seeds a shard's generation from a durable run manifest, so a takeover
  /// coordinator resumes numbering where the dead incarnation left off and
  /// never re-issues a generation a live worker already holds. Charges the
  /// seeded respawns against the per-shard budget but NOT the run-wide
  /// total: the takeover should not inherit a near-exhausted global fuse
  /// from failures it already survived.
  void seed_generation(std::size_t shard, std::size_t generation) noexcept {
    respawns_[shard] = std::max(respawns_[shard], generation);
  }
  [[nodiscard]] std::size_t total_respawns() const noexcept { return total_; }

 private:
  SupervisorPolicy policy_;
  std::vector<std::size_t> respawns_;
  std::size_t total_ = 0;
};

}  // namespace ipregel::shard
