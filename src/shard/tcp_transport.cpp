#include "shard/tcp_transport.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

#include "runtime/rng.hpp"

namespace ipregel::shard {

namespace {

constexpr std::uint16_t kCoordSrc = 0xFFFF;
/// Backpressure ceiling per link: a publish against a fuller queue
/// reports "does not fit" and the worker pumps/drains like a full ring.
constexpr std::size_t kMaxQueuedBytes = 8u << 20;
/// Values are chunked so one lost frame costs one chunk, not the board.
constexpr std::size_t kValuesChunkBytes = 48u << 10;

[[nodiscard]] std::vector<std::uint8_t> encode_ctrl(const CtrlMsg& msg,
                                                    std::uint16_t src) {
  std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(&msg), sizeof(CtrlMsg));
  return net::encode_frame(net::FrameKind::kCtrl, src, msg.superstep, bytes);
}

[[nodiscard]] std::optional<CtrlMsg> decode_ctrl(const net::Frame& frame) {
  if (frame.payload.size() != sizeof(CtrlMsg)) {
    return std::nullopt;
  }
  CtrlMsg msg{};
  std::memcpy(&msg, frame.payload.data(), sizeof(CtrlMsg));
  return msg;
}

[[nodiscard]] double steady_seconds() noexcept {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpRendezvous

TcpRendezvous::TcpRendezvous(std::size_t shards)
    : ctrl_(net::Listener::loopback()) {
  data_.reserve(shards);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    data_.push_back(net::Listener::loopback());
  }
}

void TcpRendezvous::close_in_child_except(std::size_t me) noexcept {
  ctrl_.close();
  for (std::size_t shard = 0; shard < data_.size(); ++shard) {
    if (shard != me) {
      data_[shard].close();
    }
  }
}

// ---------------------------------------------------------------------------
// TcpTransport

TcpTransport::TcpTransport(net::Listener& data_listener,
                           std::uint16_t ctrl_port,
                           std::vector<std::uint16_t> data_ports,
                           std::size_t me, std::size_t shards,
                           std::size_t generation, const NetOptions& net,
                           std::vector<NetFault> armed)
    : listener_(data_listener),
      ctrl_port_(ctrl_port),
      data_ports_(std::move(data_ports)),
      me_(me),
      shards_(shards),
      generation_(generation),
      net_(net),
      armed_(std::move(armed)),
      links_(shards) {
  for (std::size_t peer = 0; peer < shards_; ++peer) {
    // Orientation: exactly one bidirectional connection per pair; the
    // HIGHER shard id initiates toward the lower id's listener.
    links_[peer].initiator = me_ > peer;
    links_[peer].port = data_ports_[peer];
  }
  ctrl_link_.initiator = true;
  ctrl_link_.port = ctrl_port_;
}

TcpTransport::~TcpTransport() = default;

double TcpTransport::now() noexcept { return steady_seconds(); }

double TcpTransport::backoff_delay(const Link& link, std::size_t peer) const {
  double delay = net_.backoff_initial_seconds;
  for (std::size_t i = 1; i < link.failures; ++i) {
    delay *= net_.backoff_multiplier;
    if (delay >= net_.backoff_max_seconds) {
      break;
    }
  }
  delay = std::min(delay, net_.backoff_max_seconds);
  // Deterministic jitter in [0.5, 1.0): concurrent reconnectors spread
  // out, and the same (seed, shard, peer, attempt) always waits the same.
  const std::uint64_t h = runtime::mix64(
      net_.backoff_jitter_seed ^ (static_cast<std::uint64_t>(me_) << 40) ^
      (static_cast<std::uint64_t>(peer) << 20) ^ link.attempts);
  const double frac =
      static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
  return delay * (0.5 + 0.5 * frac);
}

void TcpTransport::on_send_op(std::size_t peer) {
  Link& link = is_ctrl(peer) ? ctrl_link_ : links_[peer];
  const std::uint64_t op = link.send_ops++;
  const auto plane =
      is_ctrl(peer) ? NetFault::Plane::kCtrl : NetFault::Plane::kData;
  for (std::size_t i = 0; i < armed_.size(); ++i) {
    const NetFault& fault = armed_[i];
    if (fault.plane != plane || fault.kind == NetFault::Kind::kNone ||
        fault.kind == NetFault::Kind::kShortRead || fault.at_op != op) {
      continue;
    }
    if (!is_ctrl(peer) && fault.peer != NetFault::kAnyPeer &&
        fault.peer != peer) {
      continue;
    }
    if (!fired_.insert({i, peer}).second) {
      continue;
    }
    apply_fault(peer, fault);
  }
}

void TcpTransport::on_recv_op_boundary(std::size_t peer) {
  Link& link = is_ctrl(peer) ? ctrl_link_ : links_[peer];
  const auto plane =
      is_ctrl(peer) ? NetFault::Plane::kCtrl : NetFault::Plane::kData;
  for (std::size_t i = 0; i < armed_.size(); ++i) {
    const NetFault& fault = armed_[i];
    if (fault.plane != plane || fault.kind != NetFault::Kind::kShortRead ||
        fault.at_op != link.recv_ops) {
      continue;
    }
    if (!is_ctrl(peer) && fault.peer != NetFault::kAnyPeer &&
        fault.peer != peer) {
      continue;
    }
    if (!fired_.insert({i, peer}).second) {
      continue;
    }
    apply_fault(peer, fault);
  }
}

void TcpTransport::apply_fault(std::size_t peer, const NetFault& fault) {
  Link& link = is_ctrl(peer) ? ctrl_link_ : links_[peer];
  const double t = now();
  switch (fault.kind) {
    case NetFault::Kind::kNone:
      break;
    case NetFault::Kind::kShortWrite:
      link.stream.socket().inject(net::SocketFault::Kind::kShortWrite, 1);
      break;
    case NetFault::Kind::kShortRead:
      link.stream.socket().inject(net::SocketFault::Kind::kShortRead, 1);
      break;
    case NetFault::Kind::kResetMidFrame:
      link.stream.socket().inject(net::SocketFault::Kind::kResetMidWrite, 0);
      break;
    case NetFault::Kind::kDropConn:
      link.stream.socket().inject(net::SocketFault::Kind::kCloseBeforeWrite);
      break;
    case NetFault::Kind::kStall:
      link.mute_until = t + fault.seconds;
      if (link.stream.valid()) {
        link.stream.socket().inject(net::SocketFault::Kind::kMute);
      }
      break;
    case NetFault::Kind::kPartition:
      link.partition_until = t + fault.seconds;
      if (link.stream.valid()) {
        link.stream.hard_reset();
      }
      teardown(peer);
      break;
  }
}

void TcpTransport::queue_frame(std::size_t peer,
                               std::vector<std::uint8_t> encoded,
                               bool counted) {
  Link& link = is_ctrl(peer) ? ctrl_link_ : links_[peer];
  if (counted) {
    // May inject a fault that kills the link; a lost frame is recovered
    // by the reconnect resync (data) or the control backlog (ctrl).
    on_send_op(peer);
  }
  if (link.state == Link::State::kDown ||
      link.state == Link::State::kConnecting || !link.stream.valid()) {
    return;
  }
  link.stream.queue(std::move(encoded));
  if (!link.stream.pump_writes()) {
    teardown(peer);
  }
}

void TcpTransport::start_connect(std::size_t peer, double t) {
  Link& link = is_ctrl(peer) ? ctrl_link_ : links_[peer];
  link.connecting = net::connect_loopback(link.port);
  if (!link.connecting.valid()) {
    fail_attempt(peer, "connect refused");
    return;
  }
  link.state = Link::State::kConnecting;
  link.attempt_deadline = t + net_.connect_timeout_seconds;
}

void TcpTransport::fail_attempt(std::size_t peer, const char* why) {
  Link& link = is_ctrl(peer) ? ctrl_link_ : links_[peer];
  link.connecting.close();
  link.stream.close();
  link.state = Link::State::kDown;
  ++link.failures;
  ++link.attempts;
  link.next_attempt = now() + backoff_delay(link, peer);
  if (is_ctrl(peer) && park_seconds_ > 0.0) {
    // Coordinator-recovery mode: the ctrl budget is TIME, not attempts —
    // the worker parks through a coordinator takeover (which can outlast
    // any attempt count) but still exits within a bounded wall-clock
    // window if no rightful coordinator ever returns.
    if (ctrl_down_since_ == 0.0) {
      ctrl_down_since_ = now();
    }
    if (now() - ctrl_down_since_ > park_seconds_) {
      orphaned_ = true;  // park window expired: bounded orphan exit
    }
    return;
  }
  if (link.failures < net_.max_reconnects_per_link) {
    return;
  }
  if (is_ctrl(peer)) {
    orphaned_ = true;  // the worker exits via ctrl_send() == false
    return;
  }
  if (halting_) {
    link.next_attempt = now() + 3600.0;  // park; only values matter now
    return;
  }
  throw PeerUnreachable(
      peer, std::string(why) + " after " + std::to_string(link.failures) +
                " consecutive attempts");
}

void TcpTransport::link_established(std::size_t peer) {
  Link& link = is_ctrl(peer) ? ctrl_link_ : links_[peer];
  const double t = now();
  link.state = Link::State::kUp;
  link.failures = 0;
  link.attempt_deadline = 0.0;
  link.stall_check_at = 0.0;
  link.stall_check_bytes = 0;
  if (t < link.mute_until) {
    // A reconnect inside a stall window stays stalled.
    link.stream.socket().inject(net::SocketFault::Kind::kMute);
  }
  if (is_ctrl(peer)) {
    ctrl_resynced_ = true;
    ctrl_down_since_ = 0.0;  // the park clock restarts at the next outage
    // Requeue everything that must survive the connection loss; the
    // coordinator's hello/barrier replay machinery makes duplicates safe.
    if (!backlog_hello_.empty()) {
      queue_frame(peer, backlog_hello_, true);
    }
    if (!backlog_barrier_.empty()) {
      queue_frame(peer, backlog_barrier_, true);
    }
    for (const auto& frame : backlog_values_) {
      queue_frame(peer, frame, true);
    }
  } else {
    resynced_.push_back(peer);
  }
}

void TcpTransport::teardown(std::size_t peer) {
  Link& link = is_ctrl(peer) ? ctrl_link_ : links_[peer];
  link.connecting.close();
  link.stream.close();
  link.state = Link::State::kDown;
  link.stall_check_at = 0.0;
  if (is_ctrl(peer) && park_seconds_ > 0.0 && ctrl_down_since_ == 0.0) {
    // The park window is measured from the moment the established link
    // died, not from the first failed reconnect.
    ctrl_down_since_ = now();
  }
  // An established connection's death retries immediately (first failure
  // backs off if the retry also fails) — failures counts consecutive
  // failed ATTEMPTS, not connection losses.
  link.next_attempt = now();
}

void TcpTransport::route_frames(std::size_t peer) {
  Link& link = is_ctrl(peer) ? ctrl_link_ : links_[peer];
  for (;;) {
    on_recv_op_boundary(peer);
    std::optional<net::Frame> frame;
    try {
      frame = link.stream.poll_frame();
    } catch (const net::WireError&) {
      // Desynchronized stream: rebuild the connection, resync replays.
      teardown(peer);
      return;
    }
    if (!frame.has_value()) {
      if (link.stream.dead()) {
        teardown(peer);
      }
      return;
    }
    ++link.recv_ops;
    switch (static_cast<net::FrameKind>(frame->header.kind)) {
      case net::FrameKind::kData:
        link.inbox.push_back(std::move(*frame));
        break;
      case net::FrameKind::kCtrl: {
        if (auto msg = decode_ctrl(*frame)) {
          if (msg->kind == CtrlMsg::Kind::kProceed) {
            // The coordinator folded a barrier of ours, which proves the
            // hello (sent earlier on the same ordered stream) was
            // processed — stop replaying it on reconnect.
            backlog_hello_.clear();
          }
          ctrl_inbox_.push_back(*msg);
        }
        break;
      }
      case net::FrameKind::kHello:
      case net::FrameKind::kValues:
        break;  // duplicate handshake / not worker-bound: ignore
    }
  }
}

void TcpTransport::progress_link(std::size_t peer) {
  Link& link = is_ctrl(peer) ? ctrl_link_ : links_[peer];
  const double t = now();
  switch (link.state) {
    case Link::State::kDown: {
      if (!link.initiator || (is_ctrl(peer) && orphaned_)) {
        return;
      }
      if (t < link.next_attempt) {
        return;
      }
      if (t < link.partition_until) {
        // The partition window rejects new connects outright; each
        // rejected attempt consumes reconnect budget, so an unhealed
        // partition deterministically exhausts into PeerUnreachable.
        fail_attempt(peer, "partitioned");
        return;
      }
      start_connect(peer, t);
      return;
    }
    case Link::State::kConnecting: {
      switch (net::connect_probe(link.connecting)) {
        case net::ConnectState::kPending:
          if (t > link.attempt_deadline) {
            fail_attempt(peer, "connect timeout");
          }
          return;
        case net::ConnectState::kFailed:
          fail_attempt(peer, "connect failed");
          return;
        case net::ConnectState::kUp:
          break;
      }
      link.stream = net::FrameStream(
          net::FaultySocket(std::move(link.connecting)), kMaxDataPayload);
      link.state = Link::State::kHandshaking;
      link.attempt_deadline = t + net_.connect_timeout_seconds;
      const auto role =
          is_ctrl(peer) ? net::HelloRole::kCtrl : net::HelloRole::kData;
      // v2 hello: the newest epoch this worker has obeyed plus its pid, so
      // a takeover coordinator (which did not fork us) can fence itself
      // against us and supervise us.
      queue_frame(peer,
                  net::encode_hello(role, static_cast<std::uint16_t>(me_),
                                    generation_, coord_epoch_,
                                    static_cast<std::uint64_t>(::getpid())),
                  true);
      return;
    }
    case Link::State::kHandshaking: {
      if (link.stream.dead() || !link.stream.pump_writes()) {
        fail_attempt(peer, "handshake connection lost");
        return;
      }
      std::optional<net::Frame> frame;
      try {
        frame = link.stream.poll_frame();
      } catch (const net::WireError&) {
        fail_attempt(peer, "handshake wire error");
        return;
      }
      if (!frame.has_value()) {
        if (link.stream.dead()) {
          fail_attempt(peer, "handshake connection lost");
        } else if (t > link.attempt_deadline) {
          fail_attempt(peer, "handshake timeout");
        }
        return;
      }
      ++link.recv_ops;
      if (static_cast<net::FrameKind>(frame->header.kind) !=
          net::FrameKind::kHello) {
        fail_attempt(peer, "handshake expected hello");
        return;
      }
      try {
        const net::WireHello hello = net::decode_hello(frame->payload);
        // Data ack echoes the peer's identity; ctrl ack echoes OURS (the
        // coordinator proving it registered this incarnation).
        const std::uint16_t expect =
            static_cast<std::uint16_t>(is_ctrl(peer) ? me_ : peer);
        if (hello.shard != expect) {
          fail_attempt(peer, "handshake identity mismatch");
          return;
        }
        if (is_ctrl(peer) && park_seconds_ > 0.0) {
          if (hello.epoch < coord_epoch_) {
            // The fenced HELLO over TCP: a coordinator claiming an epoch
            // older than one already obeyed gets a typed kFenced and no
            // link. The worker keeps reconnecting (a rightful successor
            // may still appear) until the park window expires.
            CtrlMsg fenced{};
            fenced.kind = CtrlMsg::Kind::kFenced;
            fenced.shard = static_cast<std::uint32_t>(me_);
            fenced.flag = hello.epoch;
            fenced.epoch = coord_epoch_;
            link.stream.queue(
                encode_ctrl(fenced, static_cast<std::uint16_t>(me_)));
            (void)link.stream.pump_writes();
            fail_attempt(peer, "stale coordinator fenced");
            return;
          }
          coord_epoch_ = hello.epoch;
        }
      } catch (const net::WireError&) {
        fail_attempt(peer, "handshake bad hello");
        return;
      }
      link_established(peer);
      return;
    }
    case Link::State::kUp: {
      if (link.stream.dead() || !link.stream.pump_writes()) {
        teardown(peer);
        return;
      }
      // io_timeout write-progress watchdog: queued bytes that do not
      // shrink for io_timeout_seconds kill the connection (a peer that
      // accepted the connect but reads nothing — e.g. mid-stall).
      if (link.stream.queued_bytes() == 0) {
        link.stall_check_at = 0.0;
      } else if (link.stall_check_at == 0.0 ||
                 link.stream.queued_bytes() < link.stall_check_bytes) {
        link.stall_check_at = t;
        link.stall_check_bytes = link.stream.queued_bytes();
      } else if (t - link.stall_check_at > net_.io_timeout_seconds) {
        teardown(peer);
        return;
      }
      route_frames(peer);
      return;
    }
  }
}

void TcpTransport::accept_new(double t) {
  if (!listener_.valid()) {
    return;
  }
  while (auto sock = listener_.accept()) {
    PendingAccept pending;
    pending.stream = net::FrameStream(net::FaultySocket(std::move(*sock)),
                                      kMaxDataPayload);
    pending.deadline = t + net_.connect_timeout_seconds;
    pending_.push_back(std::move(pending));
  }
}

void TcpTransport::identify_pending(double t) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    bool discard = false;
    bool installed = false;
    std::optional<net::Frame> frame;
    if (!it->stream.pump_writes()) {
      discard = true;
    } else {
      try {
        frame = it->stream.poll_frame();
      } catch (const net::WireError&) {
        discard = true;
      }
    }
    if (frame.has_value()) {
      std::size_t peer = shards_;
      try {
        const net::WireHello hello = net::decode_hello(frame->payload);
        if (static_cast<net::FrameKind>(frame->header.kind) ==
                net::FrameKind::kHello &&
            hello.role == static_cast<std::uint16_t>(net::HelloRole::kData) &&
            hello.shard < shards_ && hello.shard > me_) {
          peer = hello.shard;  // only HIGHER ids initiate toward us
        }
      } catch (const net::WireError&) {
      }
      if (peer == shards_) {
        it->stream.hard_reset();
        discard = true;
      } else if (t < links_[peer].partition_until) {
        it->stream.hard_reset();  // partition: refuse inbound connects
        discard = true;
      } else {
        Link& link = links_[peer];
        link.connecting.close();
        link.stream.close();
        link.stream = std::move(it->stream);
        ++link.recv_ops;  // the hello we just consumed
        link_established(peer);
        // Ack with OUR identity — the initiator validates it saw the
        // shard it dialed.
        queue_frame(peer,
                    net::encode_hello(net::HelloRole::kData,
                                      static_cast<std::uint16_t>(me_),
                                      generation_),
                    true);
        installed = true;
      }
    } else if (!discard && (it->stream.dead() || t > it->deadline)) {
      discard = true;
    }
    if (discard || installed) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void TcpTransport::progress() {
  const double t = now();
  auto lift = [&](Link& link) {
    if (link.stream.valid() && link.stream.socket().muted() &&
        t >= link.mute_until) {
      link.stream.socket().unmute();
    }
  };
  for (Link& link : links_) {
    lift(link);
  }
  lift(ctrl_link_);
  accept_new(t);
  identify_pending(t);
  for (std::size_t peer = 0; peer < shards_; ++peer) {
    if (peer != me_) {
      progress_link(peer);
    }
  }
  if (ctrl_port_ != 0) {
    progress_link(kCtrlPeer);
  }
}

void TcpTransport::poll_fds(int timeout_ms) {
  const double t = now();
  double next_event = t + static_cast<double>(timeout_ms) / 1e3;
  std::vector<pollfd> fds;
  auto add_link = [&](Link& link) {
    switch (link.state) {
      case Link::State::kDown:
        if (link.initiator) {
          next_event = std::min(next_event, link.next_attempt);
        }
        break;
      case Link::State::kConnecting:
        fds.push_back(pollfd{link.connecting.fd(), POLLOUT, 0});
        next_event = std::min(next_event, link.attempt_deadline);
        break;
      case Link::State::kHandshaking:
      case Link::State::kUp: {
        short events = POLLIN;
        if (link.stream.queued_bytes() > 0) {
          events |= POLLOUT;
        }
        fds.push_back(pollfd{link.stream.fd(), events, 0});
        if (link.state == Link::State::kHandshaking) {
          next_event = std::min(next_event, link.attempt_deadline);
        }
        break;
      }
    }
    if (link.stream.valid() && link.stream.socket().muted()) {
      next_event = std::min(next_event, link.mute_until);
    }
  };
  for (Link& link : links_) {
    if (&link != &links_[me_]) {
      add_link(link);
    }
  }
  if (ctrl_port_ != 0) {
    add_link(ctrl_link_);
  }
  if (listener_.valid()) {
    fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
  }
  for (const PendingAccept& pending : pending_) {
    fds.push_back(pollfd{pending.stream.fd(), POLLIN, 0});
    next_event = std::min(next_event, pending.deadline);
  }
  const double wait = std::max(0.0, next_event - t);
  const int wait_ms =
      std::min(timeout_ms, static_cast<int>(wait * 1e3) + 1);
  ::poll(fds.empty() ? nullptr : fds.data(), static_cast<nfds_t>(fds.size()),
         std::max(0, wait_ms));
}

void TcpTransport::pump(int timeout_ms) {
  progress();
  if (timeout_ms > 0) {
    poll_fds(timeout_ms);
    progress();
  }
}

bool TcpTransport::try_publish(std::size_t dst, std::uint64_t superstep,
                               std::span<const std::uint8_t> payload) {
  pump(0);
  Link& link = links_[dst];
  if (link.state != Link::State::kUp ||
      link.stream.queued_bytes() > kMaxQueuedBytes) {
    return false;
  }
  queue_frame(dst,
              net::encode_frame(net::FrameKind::kData,
                                static_cast<std::uint16_t>(me_), superstep,
                                payload),
              true);
  return true;
}

std::optional<net::Frame> TcpTransport::try_collect(std::size_t src) {
  Link& link = links_[src];
  if (link.inbox.empty()) {
    pump(0);
  }
  if (link.inbox.empty()) {
    return std::nullopt;
  }
  net::Frame frame = std::move(link.inbox.front());
  link.inbox.pop_front();
  return frame;
}

bool TcpTransport::ctrl_send(const CtrlMsg& msg) {
  pump(0);
  if (ctrl_port_ == 0) {
    return true;  // standalone data-plane mode (soak tests)
  }
  auto encoded = encode_ctrl(msg, static_cast<std::uint16_t>(me_));
  if (msg.kind == CtrlMsg::Kind::kHeartbeat) {
    // Best-effort: a heartbeat has no backlog — while the link is down
    // (or stalled) beats are simply missed, which is exactly what feeds
    // the coordinator's missed-heartbeat watchdog.
    if (ctrl_link_.state == Link::State::kUp &&
        ctrl_link_.stream.queued_bytes() < kMaxQueuedBytes) {
      queue_frame(kCtrlPeer, std::move(encoded), false);
    }
    return !orphaned_;
  }
  if (msg.kind == CtrlMsg::Kind::kHello) {
    backlog_hello_ = encoded;
  } else if (msg.kind == CtrlMsg::Kind::kBarrier) {
    backlog_barrier_ = encoded;
  }
  if (ctrl_link_.state == Link::State::kUp) {
    queue_frame(kCtrlPeer, std::move(encoded), true);
  }
  return !orphaned_;
}

std::optional<CtrlMsg> TcpTransport::ctrl_recv(int timeout_ms) {
  if (ctrl_inbox_.empty()) {
    pump(timeout_ms);
  }
  if (ctrl_inbox_.empty()) {
    return std::nullopt;
  }
  const CtrlMsg msg = ctrl_inbox_.front();
  ctrl_inbox_.pop_front();
  return msg;
}

void TcpTransport::publish_values(std::span<const std::uint8_t> bytes,
                                  std::size_t value_size,
                                  std::span<const std::size_t> slots) {
  values_bytes_.assign(bytes.begin(), bytes.end());
  values_value_size_ = value_size;
  if (values_slots_.empty()) {
    values_slots_.assign(slots.begin(), slots.end());
  }
}

bool TcpTransport::finish_values() {
  if (ctrl_port_ == 0) {
    return true;
  }
  halting_ = true;
  // Encode the final values as [u64 board_offset][u32 len][bytes] record
  // chunks, contiguous slot runs coalesced, then an empty terminator the
  // coordinator treats as "this shard's values are complete".
  backlog_values_.clear();
  std::vector<std::uint8_t> chunk;
  auto flush_chunk = [&]() {
    if (!chunk.empty()) {
      backlog_values_.push_back(net::encode_frame(
          net::FrameKind::kValues, static_cast<std::uint16_t>(me_), 0, chunk));
      chunk.clear();
    }
  };
  std::size_t li = 0;
  while (li < values_slots_.size()) {
    std::size_t run = 1;
    while (li + run < values_slots_.size() &&
           values_slots_[li + run] == values_slots_[li] + run) {
      ++run;
    }
    // Split long runs so every record fits a chunk.
    std::size_t done = 0;
    while (done < run) {
      const std::size_t max_values =
          std::max<std::size_t>(1, kValuesChunkBytes / values_value_size_);
      const std::size_t take = std::min(run - done, max_values);
      const std::uint64_t offset =
          static_cast<std::uint64_t>((values_slots_[li] + done) *
                                     values_value_size_);
      const std::uint32_t len =
          static_cast<std::uint32_t>(take * values_value_size_);
      const std::size_t base = chunk.size();
      chunk.resize(base + sizeof(offset) + sizeof(len) + len);
      std::memcpy(chunk.data() + base, &offset, sizeof(offset));
      std::memcpy(chunk.data() + base + sizeof(offset), &len, sizeof(len));
      std::memcpy(chunk.data() + base + sizeof(offset) + sizeof(len),
                  values_bytes_.data() + (li + done) * values_value_size_,
                  len);
      done += take;
      if (chunk.size() >= kValuesChunkBytes) {
        flush_chunk();
      }
    }
    li += run;
  }
  flush_chunk();
  backlog_values_.push_back(net::encode_frame(
      net::FrameKind::kValues, static_cast<std::uint16_t>(me_), 0, {}));
  if (ctrl_link_.state == Link::State::kUp) {
    for (const auto& frame : backlog_values_) {
      queue_frame(kCtrlPeer, frame, true);
    }
  }
  // Flush until every byte is handed to the kernel (loopback delivers
  // what the kernel has even after _exit closes the fd), reconnecting —
  // and requeueing via link_established — if the link drops meanwhile.
  const double deadline =
      now() + std::max(2.0 * net_.io_timeout_seconds, 2.0);
  while (now() < deadline) {
    pump(5);
    if (orphaned_) {
      return false;
    }
    if (ctrl_link_.state == Link::State::kUp &&
        ctrl_link_.stream.write_idle()) {
      return true;
    }
  }
  return false;
}

std::vector<std::size_t> TcpTransport::take_resync_peers() {
  std::sort(resynced_.begin(), resynced_.end());
  resynced_.erase(std::unique(resynced_.begin(), resynced_.end()),
                  resynced_.end());
  return std::exchange(resynced_, {});
}

std::unique_ptr<TcpTransport> make_tcp_transport(TcpRendezvous& rendezvous,
                                                 std::size_t me,
                                                 std::size_t generation,
                                                 const ShardOptions& options) {
  std::vector<std::uint16_t> ports;
  ports.reserve(rendezvous.shards());
  for (std::size_t shard = 0; shard < rendezvous.shards(); ++shard) {
    ports.push_back(rendezvous.data_port(shard));
  }
  std::vector<NetFault> armed;
  for (const NetFault& fault : options.net_faults) {
    if (fault.shard == me && fault.generation == generation &&
        fault.kind != NetFault::Kind::kNone) {
      armed.push_back(fault);
    }
  }
  auto transport = std::make_unique<TcpTransport>(
      rendezvous.data_listener(me), rendezvous.ctrl_port(), std::move(ports),
      me, rendezvous.shards(), generation, options.net, std::move(armed));
  if (options.recovery.enabled()) {
    transport->set_recovery(options.recovery.park_seconds, 0);
  }
  return transport;
}

// ---------------------------------------------------------------------------
// TcpCtrlPlane

TcpCtrlPlane::TcpCtrlPlane(net::Listener& listener, std::size_t shards,
                           const NetOptions& net,
                           std::vector<std::uint8_t>* board)
    : listener_(listener), net_(net), links_(shards), board_(board) {}

double TcpCtrlPlane::now() noexcept { return steady_seconds(); }

void TcpCtrlPlane::begin_incarnation(std::size_t shard, std::size_t generation,
                                     Channel* /*worker_end*/) {
  WorkerLink& link = links_[shard];
  link.stream.close();
  link.up = false;
  link.expected_generation = generation;
  link.values_done = false;
}

bool TcpCtrlPlane::send(std::size_t shard, const CtrlMsg& msg) {
  WorkerLink& link = links_[shard];
  if (!link.up || link.stream.dead()) {
    return false;
  }
  link.stream.queue(encode_ctrl(msg, kCoordSrc));
  if (!link.stream.pump_writes()) {
    link.up = false;
    link.stream.close();
    return false;
  }
  return true;
}

void TcpCtrlPlane::apply_values(std::size_t shard, const net::Frame& frame) {
  WorkerLink& link = links_[shard];
  if (frame.payload.empty()) {
    link.values_done = true;  // the terminator
    return;
  }
  if (board_ == nullptr) {
    return;
  }
  const std::uint8_t* cursor = frame.payload.data();
  std::size_t remaining = frame.payload.size();
  while (remaining >= sizeof(std::uint64_t) + sizeof(std::uint32_t)) {
    std::uint64_t offset = 0;
    std::uint32_t len = 0;
    std::memcpy(&offset, cursor, sizeof(offset));
    std::memcpy(&len, cursor + sizeof(offset), sizeof(len));
    cursor += sizeof(offset) + sizeof(len);
    remaining -= sizeof(offset) + sizeof(len);
    if (len > remaining || offset + len > board_->size()) {
      return;  // malformed record: drop the rest, terminator never comes
    }
    std::memcpy(board_->data() + offset, cursor, len);
    cursor += len;
    remaining -= len;
  }
}

void TcpCtrlPlane::route(std::size_t shard) {
  WorkerLink& link = links_[shard];
  if (!link.up) {
    return;
  }
  if (link.stream.dead() || !link.stream.pump_writes()) {
    link.up = false;
    link.stream.close();
    return;
  }
  for (;;) {
    std::optional<net::Frame> frame;
    try {
      frame = link.stream.poll_frame();
    } catch (const net::WireError&) {
      link.up = false;
      link.stream.close();
      return;
    }
    if (!frame.has_value()) {
      if (link.stream.dead()) {
        link.up = false;
        link.stream.close();
      }
      return;
    }
    switch (static_cast<net::FrameKind>(frame->header.kind)) {
      case net::FrameKind::kCtrl:
        if (auto msg = decode_ctrl(*frame)) {
          queue_.push_back(Event{shard, *msg});
        }
        break;
      case net::FrameKind::kValues:
        apply_values(shard, *frame);
        break;
      case net::FrameKind::kHello:
      case net::FrameKind::kData:
        break;  // duplicate handshake / misdirected: ignore
    }
  }
}

void TcpCtrlPlane::accept_and_identify(double t) {
  if (listener_.valid()) {
    while (auto sock = listener_.accept()) {
      PendingAccept pending;
      pending.stream = net::FrameStream(net::FaultySocket(std::move(*sock)),
                                        1u << 26);
      pending.deadline = t + net_.connect_timeout_seconds;
      pending_.push_back(std::move(pending));
    }
  }
  for (auto it = pending_.begin(); it != pending_.end();) {
    bool discard = false;
    bool installed = false;
    std::optional<net::Frame> frame;
    if (!it->stream.pump_writes()) {
      discard = true;
    } else {
      try {
        frame = it->stream.poll_frame();
      } catch (const net::WireError&) {
        discard = true;
      }
    }
    if (frame.has_value()) {
      std::size_t shard = links_.size();
      std::uint64_t generation = 0;
      std::uint64_t worker_epoch = 0;
      std::uint64_t worker_pid = 0;
      try {
        const net::WireHello hello = net::decode_hello(frame->payload);
        if (static_cast<net::FrameKind>(frame->header.kind) ==
                net::FrameKind::kHello &&
            hello.role == static_cast<std::uint16_t>(net::HelloRole::kCtrl) &&
            hello.shard < links_.size()) {
          shard = hello.shard;
          generation = hello.generation;
          worker_epoch = hello.epoch;
          worker_pid = hello.pid;
        }
      } catch (const net::WireError&) {
      }
      if (shard == links_.size()) {
        it->stream.hard_reset();
        discard = true;
      } else if (generation < links_[shard].expected_generation) {
        // A stale incarnation (e.g. a zombie that raced its own SIGKILL)
        // must not impersonate the respawn the supervisor registered. A
        // HIGHER generation is legitimate after a coordinator takeover —
        // the dead coordinator may have respawned the shard after its
        // last manifest publish, so the expectation is a floor, not an
        // exact match.
        it->stream.hard_reset();
        discard = true;
      } else {
        WorkerLink& link = links_[shard];
        link.expected_generation = generation;
        link.stream.close();
        link.stream = std::move(it->stream);
        link.up = true;
        // Ack echoes the WORKER's shard id ("I know who you are and I
        // expect this incarnation") and carries OUR fencing epoch — the
        // worker refuses the link if it has already obeyed a newer one.
        link.stream.queue(net::encode_hello(
            net::HelloRole::kCtrl, static_cast<std::uint16_t>(shard),
            generation, epoch_));
        if (!link.stream.pump_writes()) {
          link.up = false;
          link.stream.close();
        } else {
          // Surface the attachment as a synthetic kAdopt event: a takeover
          // coordinator learns which live incarnation (generation, pid)
          // re-bound without any worker-side protocol change. Non-takeover
          // coordinators ignore it.
          CtrlMsg adopt{};
          adopt.kind = CtrlMsg::Kind::kAdopt;
          adopt.shard = static_cast<std::uint32_t>(shard);
          adopt.flag = generation;
          adopt.sent = worker_pid;
          adopt.epoch = worker_epoch;
          queue_.push_back(Event{shard, adopt});
        }
        installed = true;
      }
    } else if (!discard && (it->stream.dead() || t > it->deadline)) {
      discard = true;
    }
    if (discard || installed) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void TcpCtrlPlane::pump(int timeout_ms) {
  accept_and_identify(now());
  for (std::size_t shard = 0; shard < links_.size(); ++shard) {
    route(shard);
  }
  if (!queue_.empty() || timeout_ms <= 0) {
    return;
  }
  std::vector<pollfd> fds;
  if (listener_.valid()) {
    fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
  }
  for (const WorkerLink& link : links_) {
    if (link.up && link.stream.valid()) {
      short events = POLLIN;
      if (link.stream.queued_bytes() > 0) {
        events |= POLLOUT;
      }
      fds.push_back(pollfd{link.stream.fd(), events, 0});
    }
  }
  for (const PendingAccept& pending : pending_) {
    fds.push_back(pollfd{pending.stream.fd(), POLLIN, 0});
  }
  ::poll(fds.empty() ? nullptr : fds.data(), static_cast<nfds_t>(fds.size()),
         timeout_ms);
  accept_and_identify(now());
  for (std::size_t shard = 0; shard < links_.size(); ++shard) {
    route(shard);
  }
}

std::optional<CtrlPlane::Event> TcpCtrlPlane::next(int timeout_ms) {
  if (queue_.empty()) {
    pump(timeout_ms);
  }
  if (queue_.empty()) {
    return std::nullopt;
  }
  const Event event = queue_.front();
  queue_.pop_front();
  return event;
}

void TcpCtrlPlane::drop(std::size_t shard, bool drain_values) {
  WorkerLink& link = links_[shard];
  if (drain_values && link.up && !link.stream.dead()) {
    // Halt path: the worker may still be flushing its final kValues
    // frames; drain them (bounded) before closing.
    const double deadline = now() + std::max(net_.io_timeout_seconds, 1.0);
    while (!link.values_done && link.up && now() < deadline) {
      pollfd fd{link.stream.fd(), POLLIN, 0};
      ::poll(&fd, 1, 20);
      route(shard);
      if (link.stream.dead()) {
        route(shard);  // consume anything read before the EOF
        break;
      }
    }
  }
  link.up = false;
  link.stream.close();
}

void TcpCtrlPlane::close_inherited_in_child() {
  for (WorkerLink& link : links_) {
    link.stream.close();
    link.up = false;
  }
  pending_.clear();
}

bool TcpCtrlPlane::values_complete() const noexcept {
  for (const WorkerLink& link : links_) {
    if (!link.values_done) {
      return false;
    }
  }
  return true;
}

}  // namespace ipregel::shard
